//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment has no network access, so this workspace vendors
//! the tiny slice of the `rand` 0.8 API it actually uses: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], and the [`Rng`] extension methods
//! `gen`, `gen_range` and `gen_bool`. The generator is SplitMix64 — fully
//! deterministic for a given seed, which is exactly what the reproducible
//! experiments need. It is **not** the upstream ChaCha-based `StdRng`;
//! do not use it for anything security-sensitive.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Core random-number source: 64 bits at a time.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, mirroring `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types producible by [`Rng::gen`] (the `Standard` distribution).
pub trait Standard: Sized {
    /// Samples one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 high-quality bits -> uniform in [0, 1).
        (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

/// Types samplable uniformly from a range by [`Rng::gen_range`].
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform sample from `[lo, hi)` (`hi` included when `inclusive`).
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                let span = (hi as i128 - lo as i128) + if inclusive { 1 } else { 0 };
                assert!(span > 0, "cannot sample from an empty range");
                let r = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span as u128;
                (lo as i128 + r as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                _inclusive: bool,
            ) -> Self {
                assert!(lo < hi, "cannot sample from an empty range");
                let unit = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                lo + (hi - lo) * unit
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// Range arguments accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Samples one value from the range.
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, *self.start(), *self.end(), true)
    }
}

/// Convenience extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value from the standard distribution of `T`
    /// (`f32`/`f64` in `[0, 1)`, uniform bits for integers).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from a range, e.g. `rng.gen_range(0..10)` or
    /// `rng.gen_range(-1.0..1.0)`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_one(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator standing in for `rand`'s
    /// `StdRng`. Same seed, same stream — on every platform.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..10 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_are_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f32 = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&x));
            let n = rng.gen_range(3usize..17);
            assert!((3..17).contains(&n));
            let m = rng.gen_range(0u32..=5);
            assert!(m <= 5);
            let f: f32 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "{hits}");
    }
}
