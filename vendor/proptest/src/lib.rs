//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The build environment has no network access, so this workspace vendors
//! the subset of the proptest API its property tests use:
//!
//! * the [`Strategy`] trait with `prop_map`, [`Just`], [`any`], integer
//!   range strategies, tuple strategies (arity 1–8),
//!   [`prop::collection::vec`], weighted [`prop_oneof!`], and
//!   character-class string strategies (`"[a-z]{1,12}"`);
//! * the [`proptest!`] macro with optional
//!   `#![proptest_config(ProptestConfig::with_cases(N))]`;
//! * [`prop_assert!`], [`prop_assert_eq!`] and [`prop_assume!`].
//!
//! Semantics differ from upstream in one deliberate way: failing cases are
//! **not shrunk** — the failing case number and assertion message are
//! reported as-is. Sampling is deterministic per test name, so failures
//! reproduce exactly on re-run.

#![forbid(unsafe_code)]

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Deterministic SplitMix64 sampling source for strategies.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator from a test name (FNV-1a hash), so every test
    /// gets a distinct but reproducible stream.
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `u64` below `bound` (`bound > 0`).
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

/// Why a generated case did not count as a pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// `prop_assume!` filtered the inputs; try another case.
    Reject,
    /// An assertion failed.
    Fail(String),
}

impl TestCaseError {
    /// Builds a failure with a message.
    pub fn fail(message: String) -> Self {
        TestCaseError::Fail(message)
    }
}

/// Per-`proptest!` block configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of passing cases required.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Samples one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// Object-safe strategy wrapper, so [`prop_oneof!`] arms can differ in type.
pub struct BoxedStrategy<T>(Box<dyn DynStrategy<T>>);

trait DynStrategy<T> {
    fn dyn_new_value(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_new_value(&self, rng: &mut TestRng) -> S::Value {
        self.new_value(rng)
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        self.0.dyn_new_value(rng)
    }
}

/// Weighted choice between boxed strategies (built by [`prop_oneof!`]).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
}

impl<T> Union<T> {
    /// Builds a weighted union; total weight must be positive.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(
            arms.iter().map(|(w, _)| *w as u64).sum::<u64>() > 0,
            "prop_oneof! needs a positive total weight"
        );
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        let total: u64 = self.arms.iter().map(|(w, _)| *w as u64).sum();
        let mut pick = rng.below(total);
        for (w, s) in &self.arms {
            if pick < *w as u64 {
                return s.new_value(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weights sum checked in Union::new")
    }
}

/// Integer types usable as range strategies.
pub trait RangeValue: Copy {
    /// Uniform sample from `[lo, hi)` (`hi` included when `inclusive`).
    fn sample_range(rng: &mut TestRng, lo: Self, hi: Self, inclusive: bool) -> Self;
}

macro_rules! impl_range_value {
    ($($t:ty),*) => {$(
        impl RangeValue for $t {
            fn sample_range(rng: &mut TestRng, lo: Self, hi: Self, inclusive: bool) -> Self {
                let span = (hi as i128 - lo as i128) + if inclusive { 1 } else { 0 };
                assert!(span > 0, "cannot sample from an empty range");
                let r = (rng.next_u64() as u128 % span as u128) as i128;
                (lo as i128 + r) as $t
            }
        }
    )*};
}

impl_range_value!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: RangeValue> Strategy for Range<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        T::sample_range(rng, self.start, self.end, false)
    }
}

impl<T: RangeValue> Strategy for RangeInclusive<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        T::sample_range(rng, *self.start(), *self.end(), true)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

/// `any::<T>()` strategy for a type's full value domain.
pub struct Any<T>(PhantomData<T>);

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Samples an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Full-domain strategy for `T`, e.g. `any::<u64>()`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// String strategies from character-class patterns.
///
/// Supports exactly the `"[class]{lo,hi}"` shape (e.g. `"[a-z]{1,12}"`,
/// `"[a-zA-Z0-9_-]{0,20}"`): a single character class with ranges and
/// literal characters, repeated a bounded number of times.
impl Strategy for &'static str {
    type Value = String;
    fn new_value(&self, rng: &mut TestRng) -> String {
        let (alphabet, lo, hi) = parse_class_pattern(self);
        let len = lo + rng.below((hi - lo + 1) as u64) as usize;
        (0..len)
            .map(|_| alphabet[rng.below(alphabet.len() as u64) as usize])
            .collect()
    }
}

fn bad_pattern(pattern: &str) -> ! {
    panic!("unsupported string pattern {pattern:?}: expected \"[class]{{lo,hi}}\"")
}

fn parse_class_pattern(pattern: &str) -> (Vec<char>, usize, usize) {
    let rest = pattern
        .strip_prefix('[')
        .unwrap_or_else(|| bad_pattern(pattern));
    let (class, reps) = rest.split_once(']').unwrap_or_else(|| bad_pattern(pattern));
    let mut alphabet = Vec::new();
    let chars: Vec<char> = class.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        if i + 2 < chars.len() && chars[i + 1] == '-' {
            let (a, b) = (chars[i] as u32, chars[i + 2] as u32);
            assert!(a <= b, "bad range in pattern {pattern:?}");
            alphabet.extend((a..=b).filter_map(char::from_u32));
            i += 3;
        } else {
            alphabet.push(chars[i]);
            i += 1;
        }
    }
    assert!(!alphabet.is_empty(), "empty class in pattern {pattern:?}");
    let reps = reps
        .strip_prefix('{')
        .and_then(|r| r.strip_suffix('}'))
        .unwrap_or_else(|| bad_pattern(pattern));
    let (lo, hi) = reps.split_once(',').unwrap_or_else(|| bad_pattern(pattern));
    let lo: usize = lo.trim().parse().unwrap_or_else(|_| bad_pattern(pattern));
    let hi: usize = hi.trim().parse().unwrap_or_else(|_| bad_pattern(pattern));
    assert!(lo <= hi, "bad repetition in pattern {pattern:?}");
    (alphabet, lo, hi)
}

/// Namespaced strategy constructors (`prop::collection::vec`).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use std::ops::Range;

        /// Strategy for `Vec`s whose length is drawn from `len`.
        pub struct VecStrategy<S> {
            elem: S,
            len: Range<usize>,
        }

        /// Generates vectors of values from `elem` with a length in `len`.
        pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
            assert!(!len.is_empty(), "empty length range");
            VecStrategy { elem, len }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let span = (self.len.end - self.len.start) as u64;
                let n = self.len.start + rng.below(span) as usize;
                (0..n).map(|_| self.elem.new_value(rng)).collect()
            }
        }
    }
}

/// Everything a property-test file needs.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest, Just,
        ProptestConfig, Strategy, TestCaseError, TestRng,
    };
}

/// Weighted choice between strategies: `prop_oneof![ 1 => a, 8 => b ]`.
#[macro_export]
macro_rules! prop_oneof {
    ( $( $weight:expr => $strategy:expr ),+ $(,)? ) => {
        $crate::Union::new(vec![
            $( ($weight as u32, $crate::Strategy::boxed($strategy)) ),+
        ])
    };
}

/// Fails the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless both sides compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                        "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                        stringify!($left),
                        stringify!($right),
                        l,
                        r
                    )));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
                }
            }
        }
    };
}

/// Discards the current case (does not count toward the case budget).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Declares property tests:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn holds(x in 0u32..100, (a, b) in arb_pair()) { prop_assert!(x < 100); }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($config:expr)] $($rest:tt)* ) => {
        $crate::__proptest_impl! { config = ($config); $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! { config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( config = ($config:expr);
      $(
        $(#[$meta:meta])*
        fn $name:ident ( $( $pat:pat_param in $strategy:expr ),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $config;
                let mut __rng = $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
                let __strategies = ( $( $strategy, )+ );
                let mut __passed: u32 = 0;
                let mut __attempts: u64 = 0;
                while __passed < __config.cases {
                    __attempts += 1;
                    assert!(
                        __attempts <= __config.cases as u64 * 20,
                        "proptest {}: too many rejected cases ({} attempts for {} passes)",
                        stringify!($name), __attempts, __passed
                    );
                    let ( $( $pat, )+ ) =
                        $crate::Strategy::new_value(&__strategies, &mut __rng);
                    // The immediately-invoked closure gives `prop_assert!`
                    // and `prop_assume!` an early-return scope per case.
                    #[allow(clippy::redundant_closure_call)]
                    let __outcome: ::core::result::Result<(), $crate::TestCaseError> =
                        (|| {
                            $body;
                            ::core::result::Result::Ok(())
                        })();
                    match __outcome {
                        ::core::result::Result::Ok(()) => __passed += 1,
                        ::core::result::Result::Err($crate::TestCaseError::Reject) => {}
                        ::core::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                            panic!("proptest {} failed at case {}: {}", stringify!($name), __passed + 1, msg);
                        }
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_small_even() -> impl Strategy<Value = u32> {
        (0u32..50).prop_map(|x| x * 2)
    }

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u8..17, y in -5i64..=5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-5..=5).contains(&y));
        }

        #[test]
        fn maps_and_tuples_compose((a, b) in (arb_small_even(), any::<bool>())) {
            prop_assert_eq!(a % 2, 0);
            let _ = b;
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u32..10) {
            prop_assume!(x != 3);
            prop_assert!(x != 3);
        }

        #[test]
        fn vec_lengths_respect_range(v in prop::collection::vec(0u8..5, 2..7)) {
            prop_assert!((2..7).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 5));
        }

        #[test]
        fn string_patterns_generate_from_class(s in "[a-c]{1,4}") {
            prop_assert!((1..=4).contains(&s.len()));
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
        }

        #[test]
        fn oneof_respects_arms(x in prop_oneof![1 => Just(0u32), 1 => 10u32..20]) {
            prop_assert!(x == 0 || (10..20).contains(&x));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]
        #[test]
        fn config_is_honoured(_x in 0u32..2) {
            // Runs exactly 7 cases; nothing to assert beyond not panicking.
        }
    }

    #[test]
    fn parse_class_pattern_handles_mixed_classes() {
        let (alpha, lo, hi) = super::parse_class_pattern("[a-zA-Z0-9_-]{0,20}");
        assert_eq!((lo, hi), (0, 20));
        assert!(alpha.contains(&'k') && alpha.contains(&'Q'));
        assert!(alpha.contains(&'7') && alpha.contains(&'_') && alpha.contains(&'-'));
    }
}
