//! Offline stand-in for the [`bytes`](https://crates.io/crates/bytes) crate.
//!
//! The trace codec needs a growable write buffer ([`BytesMut`]), a frozen
//! read-only buffer ([`Bytes`]) and little-endian cursor-style accessors
//! ([`Buf`] over `&[u8]`, [`BufMut`] over the write buffer). This vendored
//! version implements exactly that subset over `Vec<u8>`; there is no
//! reference-counted zero-copy machinery.

#![forbid(unsafe_code)]

use std::ops::Deref;

/// An immutable byte buffer (here: an owned `Vec<u8>` behind `Deref`).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Bytes(Vec<u8>);

impl Bytes {
    /// Copies the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.0.clone()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(v)
    }
}

/// A mutable, growable byte buffer.
#[derive(Clone, Debug, Default)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    /// Creates an empty buffer with at least the given capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut(Vec::with_capacity(cap))
    }

    /// Creates an empty buffer.
    pub fn new() -> Self {
        BytesMut(Vec::new())
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes(self.0)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

/// Write-side accessors (little-endian variants only).
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Read-side cursor accessors (little-endian variants only).
///
/// # Panics
///
/// The `get_*` and `copy_to_slice` methods panic when the buffer holds too
/// few bytes; callers are expected to check [`Buf::remaining`] first, as the
/// trace codec does.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Whether any bytes are left.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Skips `n` bytes.
    fn advance(&mut self, n: usize);

    /// Copies `dst.len()` bytes out and advances.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Reads a little-endian `f32`.
    fn get_f32_le(&mut self) -> f32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        f32::from_le_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance past end of buffer");
        *self = &self[n..];
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.len(), "read past end of buffer");
        dst.copy_from_slice(&self[..dst.len()]);
        *self = &self[dst.len()..];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_widths() {
        let mut buf = BytesMut::with_capacity(32);
        buf.put_u8(7);
        buf.put_u16_le(0xBEEF);
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_u64_le(0x0123_4567_89AB_CDEF);
        buf.put_f32_le(1.5);
        buf.put_slice(b"xyz");
        let frozen = buf.freeze();
        let mut r: &[u8] = &frozen;
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16_le(), 0xBEEF);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64_le(), 0x0123_4567_89AB_CDEF);
        assert_eq!(r.get_f32_le(), 1.5);
        let mut tail = [0u8; 3];
        r.copy_to_slice(&mut tail);
        assert_eq!(&tail, b"xyz");
        assert!(!r.has_remaining());
    }

    #[test]
    fn advance_and_remaining() {
        let data = [1u8, 2, 3, 4];
        let mut r: &[u8] = &data;
        assert_eq!(r.remaining(), 4);
        r.advance(2);
        assert_eq!(r.get_u8(), 3);
        assert_eq!(r.remaining(), 1);
    }

    #[test]
    #[should_panic(expected = "read past end")]
    fn overread_panics() {
        let mut r: &[u8] = &[1u8];
        let _ = r.get_u32_le();
    }
}
