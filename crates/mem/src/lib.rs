//! Memory-hierarchy substrate for the FPRaker reproduction.
//!
//! Implements the data-supply machinery of Sections IV-D and IV-E:
//!
//! * [`bdc`] — exponent base-delta compression for off-chip traffic
//!   (groups of 32 values, dynamic delta width, Fig. 9/10);
//! * [`container`] — 32×32-value memory containers and the 8×8 transposer
//!   unit that serves the backward pass's transposed access order;
//! * [`dram`] — the LPDDR4-3200 bandwidth model (Table II) converting
//!   traffic to cycles;
//! * [`sram`] — the 9-bank global buffer (odd bank count to dodge strided
//!   conflicts) and 2 KB per-PE scratchpads.
//!
//! # Example
//!
//! ```
//! use fpraker_mem::bdc;
//! use fpraker_num::Bf16;
//!
//! let values = vec![Bf16::from_f32(0.5); 64];
//! let (bytes, footprint) = bdc::compress(&values);
//! assert!(footprint.exponent_ratio() < 0.1);
//! assert_eq!(bdc::decompress(&bytes, 64).unwrap(), values);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bdc;
pub mod container;
pub mod dram;
pub mod sram;

pub use container::{Container, Transposer, CONTAINER_DIM, TRANSPOSE_DIM};
pub use dram::{DramModel, Traffic};
pub use sram::{GlobalBuffer, Scratchpad};
