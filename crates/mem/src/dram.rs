//! Off-chip memory bandwidth model.
//!
//! The paper's configuration (Table II): 16 GB of 4-channel LPDDR4-3200,
//! modelled with Micron's power calculator. We model bandwidth analytically:
//! LPDDR4-3200 delivers 3200 MT/s on a ×16 channel = 6.4 GB/s per channel,
//! 25.6 GB/s over 4 channels. At the accelerator's 600 MHz clock that is
//! ~42.7 bytes per accelerator cycle. Energy is accounted in
//! `fpraker-energy`; this crate owns traffic → cycles.

/// Bandwidth model of the off-chip memory.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DramModel {
    /// Deliverable bytes per accelerator cycle.
    pub bytes_per_cycle: f64,
}

impl DramModel {
    /// The paper's configuration: 4-channel LPDDR4-3200 (25.6 GB/s) against
    /// a 600 MHz accelerator clock.
    pub fn paper() -> Self {
        DramModel {
            bytes_per_cycle: 25.6e9 / 600.0e6,
        }
    }

    /// Cycles needed to transfer `bytes` at peak bandwidth.
    pub fn cycles_for(&self, bytes: u64) -> u64 {
        (bytes as f64 / self.bytes_per_cycle).ceil() as u64
    }
}

impl Default for DramModel {
    fn default() -> Self {
        Self::paper()
    }
}

/// Per-layer off-chip traffic of one GEMM, in bytes, with and without
/// exponent base-delta compression.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Traffic {
    /// Bytes read for the serial operand.
    pub a_bytes: u64,
    /// Bytes read for the parallel operand.
    pub b_bytes: u64,
    /// Bytes written for the output.
    pub out_bytes: u64,
}

impl Traffic {
    /// Total bytes moved.
    pub fn total(&self) -> u64 {
        self.a_bytes + self.b_bytes + self.out_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_bandwidth_is_about_43_bytes_per_cycle() {
        let m = DramModel::paper();
        assert!((m.bytes_per_cycle - 42.67).abs() < 0.1);
    }

    #[test]
    fn cycles_round_up() {
        let m = DramModel {
            bytes_per_cycle: 32.0,
        };
        assert_eq!(m.cycles_for(0), 0);
        assert_eq!(m.cycles_for(32), 1);
        assert_eq!(m.cycles_for(33), 2);
    }

    #[test]
    fn traffic_totals() {
        let t = Traffic {
            a_bytes: 10,
            b_bytes: 20,
            out_bytes: 5,
        };
        assert_eq!(t.total(), 35);
    }
}
