//! Exponent base-delta compression (BDC).
//!
//! Section IV-D: consecutive training values are spatially correlated, so
//! their exponents are similar. Values are blocked into groups of 32; each
//! group stores one 8-bit base exponent plus a per-value exponent *delta*
//! whose bit-width δ is chosen per group (the minimum width that covers the
//! group), recorded in a 3-bit header. Signs and 7-bit mantissas are stored
//! uncompressed (one byte per value, Fig. 9). The codec is used off-chip
//! only: values are compressed when written and decompressed when read.
//!
//! This implementation uses the group's *minimum* biased exponent as the
//! base so deltas are unsigned (the paper uses the first value's exponent
//! and does not specify delta signedness; min-base is the standard
//! base-delta-immediate variant \[70\] and never widens δ).

use fpraker_num::Bf16;

/// Values per compression group.
pub const GROUP: usize = 32;
/// Header bits per group (the δ width field).
pub const HEADER_BITS: usize = 3;
/// Base exponent bits per group.
pub const BASE_BITS: usize = 8;
/// Uncompressed bits per value (bfloat16).
pub const RAW_BITS: usize = 16;
/// Sign + mantissa bits stored uncompressed per value.
pub const MANTISSA_BITS: usize = 8;

/// Size accounting for a compressed stream.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Footprint {
    /// Number of values compressed.
    pub values: usize,
    /// Total compressed bits (headers + bases + deltas + sign/mantissas).
    pub total_bits: usize,
    /// Bits spent on exponent information only (headers + bases + deltas).
    pub exponent_bits: usize,
}

impl Footprint {
    /// Compressed exponent bits over raw exponent bits (Fig. 10's
    /// "normalized exponent footprint").
    pub fn exponent_ratio(&self) -> f64 {
        if self.values == 0 {
            return 1.0;
        }
        self.exponent_bits as f64 / (self.values * 8) as f64
    }

    /// Total compressed bits over raw bfloat16 bits (off-chip traffic
    /// ratio).
    pub fn total_ratio(&self) -> f64 {
        if self.values == 0 {
            return 1.0;
        }
        self.total_bits as f64 / (self.values * RAW_BITS) as f64
    }

    /// Total compressed size in bytes (rounded up).
    pub fn total_bytes(&self) -> usize {
        self.total_bits.div_ceil(8)
    }
}

/// The δ bit-width needed for one group: the smallest width that represents
/// `max(exp) - min(exp)` over the group's biased exponents.
///
/// The 3-bit header can encode widths 0–7 directly; a worst-case group
/// spans the full 8-bit exponent range, so header value 7 denotes an 8-bit
/// delta (true 7-bit groups are promoted to 8 — they are rare and the cost
/// is one bit per value).
pub fn delta_bits(group: &[Bf16]) -> u32 {
    debug_assert!(!group.is_empty());
    let mut lo = u8::MAX;
    let mut hi = u8::MIN;
    for v in group {
        let e = v.biased_exponent();
        lo = lo.min(e);
        hi = hi.max(e);
    }
    let span = (hi - lo) as u32;
    let bits = if span == 0 {
        0
    } else {
        32 - span.leading_zeros()
    };
    if bits >= 7 {
        8
    } else {
        bits
    }
}

/// The 3-bit header encoding of a delta width (7 stands for 8 bits).
fn header_code(delta_bits: u32) -> u32 {
    if delta_bits >= 7 {
        7
    } else {
        delta_bits
    }
}

/// Inverse of [`header_code`].
fn width_from_header(code: u32) -> u32 {
    if code == 7 {
        8
    } else {
        code
    }
}

/// Computes the compressed footprint of a value stream (grouped in order,
/// final partial group padded conceptually with its own values only).
pub fn footprint(values: &[Bf16]) -> Footprint {
    let mut fp = Footprint {
        values: values.len(),
        ..Footprint::default()
    };
    for group in values.chunks(GROUP) {
        let d = delta_bits(group) as usize;
        fp.exponent_bits += HEADER_BITS + BASE_BITS + d * group.len();
        fp.total_bits += HEADER_BITS + BASE_BITS + (d + MANTISSA_BITS) * group.len();
    }
    fp
}

/// A bit-level writer used by the codec.
#[derive(Default)]
struct BitWriter {
    bytes: Vec<u8>,
    bit: u32,
}

impl BitWriter {
    fn push(&mut self, value: u32, bits: u32) {
        for i in (0..bits).rev() {
            let b = (value >> i) & 1;
            if self.bit == 0 {
                self.bytes.push(0);
            }
            let last = self.bytes.last_mut().unwrap();
            *last |= (b as u8) << (7 - self.bit);
            self.bit = (self.bit + 1) % 8;
        }
    }
}

/// A bit-level reader used by the codec.
struct BitReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl BitReader<'_> {
    fn pull(&mut self, bits: u32) -> Option<u32> {
        let mut out = 0u32;
        for _ in 0..bits {
            let byte = self.bytes.get(self.pos / 8)?;
            let b = (byte >> (7 - (self.pos % 8))) & 1;
            out = (out << 1) | b as u32;
            self.pos += 1;
        }
        Some(out)
    }
}

/// Compresses a value stream into the Fig. 9 bitstream layout. Returns the
/// bytes and the exact footprint.
pub fn compress(values: &[Bf16]) -> (Vec<u8>, Footprint) {
    let mut w = BitWriter::default();
    for group in values.chunks(GROUP) {
        let base = group.iter().map(|v| v.biased_exponent()).min().unwrap();
        let d = delta_bits(group);
        w.push(header_code(d), HEADER_BITS as u32);
        w.push(base as u32, BASE_BITS as u32);
        for v in group {
            w.push((v.biased_exponent() - base) as u32, d);
            let sign_mant = ((v.sign() as u32) << 7) | (v.fraction() as u32);
            w.push(sign_mant, MANTISSA_BITS as u32);
        }
    }
    (w.bytes, footprint(values))
}

/// Decompresses a stream produced by [`compress`].
///
/// # Errors
///
/// Returns `Err` if the stream is truncated.
pub fn decompress(bytes: &[u8], num_values: usize) -> Result<Vec<Bf16>, &'static str> {
    let mut r = BitReader { bytes, pos: 0 };
    let mut out = Vec::with_capacity(num_values);
    while out.len() < num_values {
        let group_len = GROUP.min(num_values - out.len());
        let d = width_from_header(r.pull(HEADER_BITS as u32).ok_or("truncated header")?);
        let base = r.pull(BASE_BITS as u32).ok_or("truncated base")?;
        for _ in 0..group_len {
            let delta = r.pull(d).ok_or("truncated delta")?;
            let sm = r.pull(MANTISSA_BITS as u32).ok_or("truncated mantissa")?;
            let exp = base + delta;
            let bits = (((sm >> 7) as u16) << 15) | ((exp as u16) << 7) | (sm as u16 & 0x7F);
            out.push(Bf16::from_bits(bits));
        }
    }
    Ok(out)
}

/// Reorders an `(channels, height, width)` tensor channel-major per pixel
/// — the paper's channel-wise blocking ("we block values channel-wise") —
/// so that each group of 32 spans consecutive channels at the same spatial
/// position.
pub fn channelwise_order(values: &[Bf16], c: usize, h: usize, w: usize) -> Vec<Bf16> {
    assert_eq!(values.len(), c * h * w, "shape mismatch");
    let mut out = Vec::with_capacity(values.len());
    for y in 0..h {
        for x in 0..w {
            for ch in 0..c {
                out.push(values[(ch * h + y) * w + x]);
            }
        }
    }
    out
}

/// Reorders a `(channels, height, width)` tensor along the H dimension
/// (the paper's "spatial" alternative, markers in Fig. 10).
pub fn spatial_order(values: &[Bf16], c: usize, h: usize, w: usize) -> Vec<Bf16> {
    assert_eq!(values.len(), c * h * w, "shape mismatch");
    let mut out = Vec::with_capacity(values.len());
    for ch in 0..c {
        for x in 0..w {
            for y in 0..h {
                out.push(values[(ch * h + y) * w + x]);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpraker_num::reference::SplitMix64;

    #[test]
    fn delta_bits_examples() {
        let same = vec![Bf16::from_f32(1.5); 4];
        assert_eq!(delta_bits(&same), 0);
        let spread = vec![Bf16::from_f32(1.0), Bf16::from_f32(2.0)];
        assert_eq!(delta_bits(&spread), 1);
        let wide = vec![Bf16::from_f32(1.0), Bf16::from_f32(1024.0)];
        assert_eq!(delta_bits(&wide), 4); // span 10 needs 4 bits
        let with_zero = vec![Bf16::ZERO, Bf16::from_f32(1.0)];
        assert_eq!(delta_bits(&with_zero), 8); // span 127 promotes to 8
    }

    #[test]
    fn footprint_of_uniform_exponents_is_small() {
        let values = vec![Bf16::from_f32(1.25); 64];
        let fp = footprint(&values);
        // Two groups, δ = 0: exponent cost is just headers + bases.
        assert_eq!(fp.exponent_bits, 2 * (HEADER_BITS + BASE_BITS));
        assert!(fp.exponent_ratio() < 0.05);
        assert!(fp.total_ratio() < 0.55);
    }

    #[test]
    fn footprint_of_random_exponents_approaches_raw() {
        let mut rng = SplitMix64::new(5);
        let values: Vec<Bf16> = (0..320).map(|_| rng.bf16_in_range(60)).collect();
        let fp = footprint(&values);
        assert!(fp.exponent_ratio() > 0.7, "ratio {}", fp.exponent_ratio());
        // Never worse than raw by more than the header overhead.
        assert!(fp.exponent_ratio() <= 1.1);
    }

    #[test]
    fn compress_round_trips_exactly() {
        let mut rng = SplitMix64::new(77);
        for len in [1usize, 31, 32, 33, 100, 512] {
            let values: Vec<Bf16> = (0..len)
                .map(|i| {
                    if i % 7 == 0 {
                        Bf16::ZERO
                    } else {
                        rng.bf16_in_range(20)
                    }
                })
                .collect();
            let (bytes, fp) = compress(&values);
            assert_eq!(bytes.len(), fp.total_bits.div_ceil(8));
            let back = decompress(&bytes, len).expect("decompress");
            assert_eq!(back, values, "len {len}");
        }
    }

    #[test]
    fn truncated_stream_errors() {
        let values = vec![Bf16::from_f32(3.0); 40];
        let (bytes, _) = compress(&values);
        assert!(decompress(&bytes[..bytes.len() / 2], 40).is_err());
    }

    #[test]
    fn negative_values_round_trip() {
        let values: Vec<Bf16> = (0..32)
            .map(|i| Bf16::from_f32(if i % 2 == 0 { -1.5 } else { 0.75 }))
            .collect();
        let (bytes, _) = compress(&values);
        assert_eq!(decompress(&bytes, 32).unwrap(), values);
    }

    #[test]
    fn channelwise_groups_similar_exponents() {
        // Values vary wildly across H but are uniform across channels:
        // channel-wise grouping compresses much better.
        let (c, h, w) = (32, 8, 4);
        let mut values = Vec::new();
        for ch in 0..c {
            for y in 0..h {
                for x in 0..w {
                    let _ = (ch, x);
                    values.push(Bf16::from_f32(2f32.powi(y as i32 * 4 - 16)));
                }
            }
        }
        let chw = channelwise_order(&values, c, h, w);
        let sp = spatial_order(&values, c, h, w);
        let f_ch = footprint(&chw).exponent_ratio();
        let f_sp = footprint(&sp).exponent_ratio();
        assert!(f_ch < f_sp, "channelwise {f_ch} vs spatial {f_sp}");
        assert!(f_ch < 0.1);
    }

    #[test]
    fn reorders_are_permutations() {
        let (c, h, w) = (4, 3, 5);
        let values: Vec<Bf16> = (0..c * h * w).map(|i| Bf16::from_f32(i as f32)).collect();
        for order in [
            channelwise_order(&values, c, h, w),
            spatial_order(&values, c, h, w),
        ] {
            let mut a: Vec<u16> = order.iter().map(|v| v.to_bits()).collect();
            let mut b: Vec<u16> = values.iter().map(|v| v.to_bits()).collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b);
        }
    }
}
