//! On-chip SRAM: the banked global buffer and per-PE scratchpads.
//!
//! Table II: 2 KB scratchpads, a 4 MB × 9-bank global buffer — "an odd
//! number of banks to reduce bank conflicts for layers with a stride
//! greater than one". This module models capacity and bank-conflict
//! behaviour for access-pattern accounting.

/// The banked on-chip global buffer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GlobalBuffer {
    /// Number of banks (the paper uses 9 — odd on purpose).
    pub banks: usize,
    /// Capacity per bank in bytes.
    pub bank_bytes: usize,
    /// Access width in bytes (8 bfloat16 values per access, Section IV-E).
    pub access_bytes: usize,
    accesses: u64,
    conflicts: u64,
}

impl GlobalBuffer {
    /// The paper's configuration: 9 banks of 4 MB, 16-byte accesses.
    pub fn paper() -> Self {
        GlobalBuffer {
            banks: 9,
            bank_bytes: 4 << 20,
            access_bytes: 16,
            accesses: 0,
            conflicts: 0,
        }
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.banks * self.bank_bytes
    }

    /// The bank an address maps to (interleaved at access granularity).
    pub fn bank_of(&self, addr: usize) -> usize {
        (addr / self.access_bytes) % self.banks
    }

    /// Records a group of same-cycle accesses at the given byte addresses;
    /// returns the cycles the group needs (1 plus any serialization from
    /// bank conflicts). Conflict statistics accumulate.
    pub fn access_group(&mut self, addrs: &[usize]) -> u64 {
        let mut per_bank = vec![0u32; self.banks];
        for &a in addrs {
            per_bank[self.bank_of(a)] += 1;
        }
        self.accesses += addrs.len() as u64;
        let worst = per_bank.iter().copied().max().unwrap_or(0) as u64;
        if worst > 1 {
            self.conflicts += worst - 1;
        }
        worst.max(1)
    }

    /// Accesses recorded so far.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Serialization cycles lost to bank conflicts so far.
    pub fn conflicts(&self) -> u64 {
        self.conflicts
    }

    /// Cycles to stream `rows` strided accesses with the given element
    /// stride in bytes — the pattern of a strided convolution reading its
    /// input rows. An odd bank count keeps power-of-two strides spread.
    pub fn strided_stream_cycles(&mut self, rows: usize, stride_bytes: usize) -> u64 {
        let mut cycles = 0;
        for group in (0..rows).collect::<Vec<_>>().chunks(self.banks) {
            let addrs: Vec<usize> = group.iter().map(|&r| r * stride_bytes).collect();
            cycles += self.access_group(&addrs);
        }
        cycles
    }
}

/// A per-PE scratchpad (Table II: 2 KB each) — capacity bookkeeping for
/// the operand working set.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Scratchpad {
    /// Capacity in bytes.
    pub bytes: usize,
}

impl Scratchpad {
    /// The paper's 2 KB scratchpad.
    pub fn paper() -> Self {
        Scratchpad { bytes: 2048 }
    }

    /// How many 8-value bfloat16 operand sets fit.
    pub fn sets_capacity(&self) -> usize {
        self.bytes / 16
    }

    /// `true` if a working set of `sets` operand groups fits.
    pub fn fits(&self, sets: usize) -> bool {
        sets <= self.sets_capacity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_capacity() {
        let gb = GlobalBuffer::paper();
        assert_eq!(gb.capacity(), (9 * 4) << 20);
        assert_eq!(gb.banks % 2, 1, "odd bank count per Table II");
        let sp = Scratchpad::paper();
        assert_eq!(sp.sets_capacity(), 128);
        assert!(sp.fits(64));
        assert!(!sp.fits(1000));
    }

    #[test]
    fn conflict_free_group_takes_one_cycle() {
        let mut gb = GlobalBuffer::paper();
        // 9 consecutive accesses land in 9 distinct banks.
        let addrs: Vec<usize> = (0..9).map(|i| i * 16).collect();
        assert_eq!(gb.access_group(&addrs), 1);
        assert_eq!(gb.conflicts(), 0);
    }

    #[test]
    fn same_bank_group_serializes() {
        let mut gb = GlobalBuffer::paper();
        // All accesses hit bank 0 (stride = banks * access width).
        let addrs: Vec<usize> = (0..4).map(|i| i * 9 * 16).collect();
        assert_eq!(gb.access_group(&addrs), 4);
        assert_eq!(gb.conflicts(), 3);
    }

    #[test]
    fn odd_bank_count_beats_even_on_power_of_two_strides() {
        // A stride-2 conv reads every other row: stride 2 * 16 bytes.
        // With 8 banks the accesses pile onto half the banks; with 9 they
        // spread — the paper's rationale for an odd count.
        let run = |banks: usize| {
            let mut gb = GlobalBuffer {
                banks,
                ..GlobalBuffer::paper()
            };
            gb.strided_stream_cycles(64, 2 * 16)
        };
        let odd = run(9);
        let even = run(8);
        assert!(odd < even, "odd {odd} cycles vs even {even}");
    }

    #[test]
    fn bank_mapping_is_interleaved() {
        let gb = GlobalBuffer::paper();
        assert_eq!(gb.bank_of(0), 0);
        assert_eq!(gb.bank_of(16), 1);
        assert_eq!(gb.bank_of(16 * 9), 0);
        assert_eq!(gb.bank_of(15), 0); // within one access word
    }
}
