//! Memory containers and the transposer unit.
//!
//! Section IV-E: arrays are stored off-chip in "square" containers of
//! 32×32 bfloat16 values — a shape that maps well onto DDR4 row sizes and
//! serves both the forward and (transposed) backward access orders. On
//! chip, a transposer unit reads 8 blocks of 8 values and emits them as
//! columns, transposing 8×8 value groups for the backward pass.

use fpraker_num::Bf16;

/// Side length of a memory container.
pub const CONTAINER_DIM: usize = 32;
/// Values per container.
pub const CONTAINER_LEN: usize = CONTAINER_DIM * CONTAINER_DIM;

/// A 32×32 container of bfloat16 values, stored row-major.
#[derive(Clone, Debug, PartialEq)]
pub struct Container {
    values: Vec<Bf16>,
}

impl Container {
    /// Builds a container from a `(rows, cols)` window of a larger matrix,
    /// zero-padding outside the matrix (Section IV-E: "padding is used as
    /// necessary").
    pub fn from_matrix(
        data: &[Bf16],
        mat_rows: usize,
        mat_cols: usize,
        row0: usize,
        col0: usize,
    ) -> Self {
        let mut values = vec![Bf16::ZERO; CONTAINER_LEN];
        for r in 0..CONTAINER_DIM {
            for c in 0..CONTAINER_DIM {
                let (mr, mc) = (row0 + r, col0 + c);
                if mr < mat_rows && mc < mat_cols {
                    values[r * CONTAINER_DIM + c] = data[mr * mat_cols + mc];
                }
            }
        }
        Container { values }
    }

    /// The container's values, row-major.
    pub fn values(&self) -> &[Bf16] {
        &self.values
    }

    /// Value at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if either coordinate is out of range.
    pub fn at(&self, row: usize, col: usize) -> Bf16 {
        assert!(row < CONTAINER_DIM && col < CONTAINER_DIM, "out of range");
        self.values[row * CONTAINER_DIM + col]
    }

    /// Size of one container in bytes (uncompressed bfloat16).
    pub const fn bytes() -> usize {
        CONTAINER_LEN * 2
    }
}

/// Number of containers needed to tile a `(rows, cols)` matrix.
pub fn containers_for(rows: usize, cols: usize) -> usize {
    rows.div_ceil(CONTAINER_DIM) * cols.div_ceil(CONTAINER_DIM)
}

/// The on-chip transposer: consumes an 8×8 block of values delivered as 8
/// row reads and emits it as 8 column reads (Section IV-E). Functionally,
/// an exact 8×8 transpose.
#[derive(Clone, Debug, Default)]
pub struct Transposer {
    buffer: Vec<Bf16>,
    rows_loaded: usize,
}

/// Block dimension handled by the transposer.
pub const TRANSPOSE_DIM: usize = 8;

impl Transposer {
    /// Creates an empty transposer.
    pub fn new() -> Self {
        Transposer {
            buffer: vec![Bf16::ZERO; TRANSPOSE_DIM * TRANSPOSE_DIM],
            rows_loaded: 0,
        }
    }

    /// Loads one 8-value row into the internal buffer.
    ///
    /// # Panics
    ///
    /// Panics if the row is not 8 values or the buffer is already full.
    pub fn load_row(&mut self, row: &[Bf16]) {
        assert_eq!(row.len(), TRANSPOSE_DIM, "transposer rows are 8 wide");
        assert!(self.rows_loaded < TRANSPOSE_DIM, "transposer full");
        let base = self.rows_loaded * TRANSPOSE_DIM;
        self.buffer[base..base + TRANSPOSE_DIM].copy_from_slice(row);
        self.rows_loaded += 1;
    }

    /// `true` once all 8 rows are loaded.
    pub fn is_full(&self) -> bool {
        self.rows_loaded == TRANSPOSE_DIM
    }

    /// Reads column `col` (the transposed row) and, after the last column,
    /// resets the unit.
    ///
    /// # Panics
    ///
    /// Panics if the buffer is not full or `col` is out of range.
    pub fn read_column(&self, col: usize) -> [Bf16; TRANSPOSE_DIM] {
        assert!(self.is_full(), "transposer not fully loaded");
        assert!(col < TRANSPOSE_DIM, "column out of range");
        let mut out = [Bf16::ZERO; TRANSPOSE_DIM];
        for (r, slot) in out.iter_mut().enumerate() {
            *slot = self.buffer[r * TRANSPOSE_DIM + col];
        }
        out
    }

    /// Clears the buffer for the next block.
    pub fn reset(&mut self) {
        self.rows_loaded = 0;
    }
}

/// Transposes an arbitrary `(rows, cols)` bfloat16 matrix by streaming 8×8
/// blocks through a [`Transposer`] (zero-padding the edges), returning the
/// `(cols, rows)` result. This is the functional model of the on-chip
/// transposition performed for the backward-pass access order.
pub fn transpose_via_unit(data: &[Bf16], rows: usize, cols: usize) -> Vec<Bf16> {
    assert_eq!(data.len(), rows * cols, "shape mismatch");
    let mut out = vec![Bf16::ZERO; rows * cols];
    let mut unit = Transposer::new();
    for br in (0..rows).step_by(TRANSPOSE_DIM) {
        for bc in (0..cols).step_by(TRANSPOSE_DIM) {
            unit.reset();
            for r in 0..TRANSPOSE_DIM {
                let mut row = [Bf16::ZERO; TRANSPOSE_DIM];
                if br + r < rows {
                    for (c, slot) in row.iter_mut().enumerate() {
                        if bc + c < cols {
                            *slot = data[(br + r) * cols + bc + c];
                        }
                    }
                }
                unit.load_row(&row);
            }
            for c in 0..TRANSPOSE_DIM {
                if bc + c >= cols {
                    continue;
                }
                let col = unit.read_column(c);
                for (r, v) in col.iter().enumerate() {
                    if br + r < rows {
                        out[(bc + c) * rows + br + r] = *v;
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpraker_num::reference::SplitMix64;

    #[test]
    fn container_pads_edges_with_zeros() {
        let data = vec![Bf16::ONE; 40 * 40];
        let c = Container::from_matrix(&data, 40, 40, 32, 32);
        assert_eq!(c.at(0, 0), Bf16::ONE); // (32,32) in range
        assert_eq!(c.at(8, 8), Bf16::ZERO); // (40,40) out of range
        assert_eq!(Container::bytes(), 2048);
    }

    #[test]
    fn containers_for_rounds_up() {
        assert_eq!(containers_for(32, 32), 1);
        assert_eq!(containers_for(33, 32), 2);
        assert_eq!(containers_for(100, 70), 4 * 3);
        assert_eq!(containers_for(1, 1), 1);
    }

    #[test]
    fn transposer_transposes_a_block() {
        let mut t = Transposer::new();
        for r in 0..8 {
            let row: Vec<Bf16> = (0..8).map(|c| Bf16::from_f32((r * 8 + c) as f32)).collect();
            t.load_row(&row);
        }
        assert!(t.is_full());
        let col3 = t.read_column(3);
        for (r, v) in col3.iter().enumerate() {
            assert_eq!(v.to_f32(), (r * 8 + 3) as f32);
        }
    }

    #[test]
    #[should_panic(expected = "transposer full")]
    fn overloading_panics() {
        let mut t = Transposer::new();
        for _ in 0..9 {
            t.load_row(&[Bf16::ZERO; 8]);
        }
    }

    #[test]
    fn transpose_via_unit_matches_software_transpose() {
        let mut rng = SplitMix64::new(31);
        for (rows, cols) in [(8, 8), (16, 8), (10, 13), (1, 20), (33, 7)] {
            let data: Vec<Bf16> = (0..rows * cols).map(|_| rng.bf16_in_range(8)).collect();
            let hw = transpose_via_unit(&data, rows, cols);
            for r in 0..rows {
                for c in 0..cols {
                    assert_eq!(
                        hw[c * rows + r],
                        data[r * cols + c],
                        "({r},{c}) in {rows}x{cols}"
                    );
                }
            }
        }
    }

    #[test]
    fn double_transpose_is_identity() {
        let mut rng = SplitMix64::new(8);
        let (rows, cols) = (11, 17);
        let data: Vec<Bf16> = (0..rows * cols).map(|_| rng.bf16_in_range(5)).collect();
        let once = transpose_via_unit(&data, rows, cols);
        let twice = transpose_via_unit(&once, cols, rows);
        assert_eq!(twice, data);
    }
}
