//! Property-based tests of the memory substrate.

use fpraker_mem::bdc;
use fpraker_mem::container::transpose_via_unit;
use fpraker_num::Bf16;
use proptest::prelude::*;

fn arb_bf16() -> impl Strategy<Value = Bf16> {
    prop_oneof![
        1 => Just(Bf16::ZERO),
        6 => (any::<bool>(), -30i32..30, 0u8..128).prop_map(|(s, e, f)| {
            Bf16::from_parts(s, e, 0x80 | f)
        }),
    ]
}

proptest! {
    #[test]
    fn bdc_round_trips_any_stream(values in prop::collection::vec(arb_bf16(), 0..300)) {
        let (bytes, fp) = bdc::compress(&values);
        prop_assert_eq!(bytes.len(), fp.total_bits.div_ceil(8));
        let back = bdc::decompress(&bytes, values.len()).unwrap();
        prop_assert_eq!(back, values);
    }

    #[test]
    fn bdc_footprint_never_exceeds_raw_plus_header(
        values in prop::collection::vec(arb_bf16(), 1..200)
    ) {
        let fp = bdc::footprint(&values);
        // Worst case: 8-bit deltas plus 11 header bits per 32-value group.
        let groups = values.len().div_ceil(32);
        let worst = values.len() * 16 + groups * 11;
        prop_assert!(fp.total_bits <= worst);
    }

    #[test]
    fn transposer_matches_software_transpose(
        rows in 1usize..24, cols in 1usize..24, seed in any::<u64>()
    ) {
        let mut rng = fpraker_num::reference::SplitMix64::new(seed);
        let data: Vec<Bf16> = (0..rows * cols).map(|_| rng.bf16_in_range(6)).collect();
        let t = transpose_via_unit(&data, rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                prop_assert_eq!(t[c * rows + r], data[r * cols + c]);
            }
        }
    }
}
