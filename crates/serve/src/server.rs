//! The trace-simulation server: accept loop, bounded job pool, and the
//! per-connection protocol state machine.
//!
//! Each connection is one job (or one stats query). The handler parses the
//! [`crate::protocol::Submit`] header, resolves the machine spec through
//! the `fpraker_sim` registry, and consults the content-addressed
//! [`ResultCache`]; on a miss it asks the client for the trace and pipes
//! the incoming [`crate::protocol::tag::TRACE_DATA`] frames **straight
//! into** an incremental [`codec::Reader`] driving
//! [`Engine::run_source`] — the upload is simulated as it arrives, under
//! the engine's bounded op window, and is never materialized.
//!
//! Simulations are dispatched across a bounded job pool: a counting
//! semaphore of `jobs` permits, each job running the shared engine with
//! `threads_per_job` workers, so the server's total worker budget is
//! `jobs × threads_per_job` regardless of how many clients connect
//! (`threads_per_job = 0` resolves to one worker per core per job — see
//! [`ServerConfig::threads_per_job`]).
//! Protocol violations are answered with an error frame and close only
//! that connection; the accept loop keeps serving.

use std::io::{self, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use fpraker_energy::EnergyModel;
use fpraker_num::encode::Encoding;
use fpraker_sim::{resolve_machine, Engine};
use fpraker_trace::codec::{self, IndexFooter, MAX_FOOTER_LEN};
use fpraker_trace::digest::Fnv64;
use fpraker_trace::stats::TraceStatistics;
use fpraker_trace::TraceSource;

use crate::cache::{CacheKey, CacheStats, ResultCache};
use crate::protocol::{
    self, read_frame, tag, write_frame, RangeSubmit, ServeError, ServerStats, StatsSubmit, Submit,
    TraceStatsReport, MAX_FRAME_LEN,
};

/// The pseudo machine-spec under which trace-statistics results are
/// cached. Starts with `#` so it can never collide with a registry name.
const STATS_SPEC: &str = "#stats";

/// Server tuning knobs.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Address to bind (use port 0 for an ephemeral port in tests).
    pub addr: String,
    /// Maximum simulations in flight at once (the job pool's permit
    /// count); further jobs queue on the semaphore. Clamped to ≥ 1.
    pub jobs: usize,
    /// Engine workers per job. The server's total worker budget is
    /// `jobs × threads_per_job`. `0` resolves to one worker per core *per
    /// job* — convenient on a mostly-idle box, but with `jobs > 1` it
    /// oversubscribes the cores; set an explicit value to hold a fixed
    /// budget.
    pub threads_per_job: usize,
    /// Streaming window per job (`0` = the engine default of 2× workers).
    pub stream_window: usize,
    /// Result-cache capacity in entries.
    pub cache_entries: usize,
    /// Per-connection socket timeout (`None` = block forever). Bounds how
    /// long a stalled client can pin a connection thread.
    pub io_timeout: Option<Duration>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            jobs: 2,
            threads_per_job: 0,
            stream_window: 0,
            cache_entries: 64,
            io_timeout: Some(Duration::from_secs(60)),
        }
    }
}

/// Counting semaphore bounding concurrent simulations.
struct Semaphore {
    permits: Mutex<usize>,
    cv: Condvar,
}

impl Semaphore {
    fn new(permits: usize) -> Self {
        Semaphore {
            permits: Mutex::new(permits),
            cv: Condvar::new(),
        }
    }

    fn acquire(&self) {
        let mut p = self.permits.lock().unwrap();
        while *p == 0 {
            p = self.cv.wait(p).unwrap();
        }
        *p -= 1;
    }

    fn release(&self) {
        *self.permits.lock().unwrap() += 1;
        self.cv.notify_one();
    }
}

/// Releases a job permit on drop, so every exit path (including errors)
/// returns the slot to the pool.
struct JobPermit<'a>(&'a Semaphore);

impl Drop for JobPermit<'_> {
    fn drop(&mut self) {
        self.0.release();
    }
}

struct Shared {
    cache: ResultCache,
    jobs: Semaphore,
    engine: Engine,
    energy: EnergyModel,
    io_timeout: Option<Duration>,
    shutdown: AtomicBool,
    jobs_completed: AtomicU64,
}

/// A running trace-simulation server.
///
/// [`Server::start`] binds and returns immediately; the accept loop runs
/// on a background thread until [`Server::shutdown`] (or process exit).
///
/// ```
/// use fpraker_serve::{Server, ServerConfig};
///
/// let server = Server::start(ServerConfig::default()).unwrap();
/// let addr = server.local_addr(); // ephemeral port, ready for clients
/// assert_ne!(addr.port(), 0);
/// server.shutdown();
/// ```
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept_thread: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds `config.addr` and starts accepting clients.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure (address in use, permission, …).
    pub fn start(config: ServerConfig) -> io::Result<Server> {
        fpraker_telemetry::init();
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            cache: ResultCache::new(config.cache_entries),
            jobs: Semaphore::new(config.jobs.max(1)),
            engine: Engine::with_threads(config.threads_per_job)
                .stream_window(config.stream_window),
            energy: EnergyModel::paper(),
            io_timeout: config.io_timeout,
            shutdown: AtomicBool::new(false),
            jobs_completed: AtomicU64::new(0),
        });
        let accept_shared = Arc::clone(&shared);
        let accept_thread = std::thread::spawn(move || {
            for stream in listener.incoming() {
                if accept_shared.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else {
                    // Persistent accept failures (e.g. fd exhaustion under
                    // EMFILE) would otherwise busy-spin this loop; back off
                    // briefly and retry.
                    std::thread::sleep(Duration::from_millis(20));
                    continue;
                };
                let conn_shared = Arc::clone(&accept_shared);
                std::thread::spawn(move || {
                    // A failed connection only ever fails itself.
                    let _ = handle_connection(stream, &conn_shared);
                });
            }
        });
        Ok(Server {
            addr,
            shared,
            accept_thread: Some(accept_thread),
        })
    }

    /// The address the server is listening on (with the resolved port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Result-cache effectiveness counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.shared.cache.stats()
    }

    /// The counters a [`tag::STATS`] request reports.
    pub fn stats(&self) -> ServerStats {
        server_stats(&self.shared)
    }

    /// The Prometheus-style text a [`tag::METRICS`] request returns: the
    /// server's own counters followed by the process-global telemetry
    /// registry.
    pub fn metrics_text(&self) -> String {
        render_metrics(&self.shared)
    }

    /// Blocks until the accept loop exits. The loop runs until the
    /// process dies, so daemons use this to park the main thread.
    pub fn join(mut self) {
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }

    /// Stops accepting connections and joins the accept thread. In-flight
    /// connections finish on their own threads. (Dropping the server does
    /// the same.)
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        let Some(t) = self.accept_thread.take() else {
            return;
        };
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        let _ = t.join();
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

fn server_stats(shared: &Shared) -> ServerStats {
    let cache = shared.cache.stats();
    ServerStats {
        jobs_completed: shared.jobs_completed.load(Ordering::SeqCst),
        cache_hits: cache.hits,
        cache_misses: cache.misses,
        cache_entries: cache.entries as u64,
        cache_capacity: cache.capacity as u64,
    }
}

/// Composes the [`tag::METRICS`] response text: the [`ServerStats`]
/// counters rendered as Prometheus lines (these come from the server's
/// own structs, so they are live even when the telemetry crate is
/// compiled out) followed by the full process-global telemetry registry.
fn render_metrics(shared: &Shared) -> String {
    use std::fmt::Write as _;

    let s = server_stats(shared);
    let mut out = String::new();
    for (name, value) in [
        ("serve_jobs_completed_total", s.jobs_completed),
        ("serve_cache_hits_total", s.cache_hits),
        ("serve_cache_misses_total", s.cache_misses),
    ] {
        let _ = writeln!(out, "# TYPE {name} counter");
        let _ = writeln!(out, "{name} {value}");
    }
    for (name, value) in [
        ("serve_cache_entries", s.cache_entries),
        ("serve_cache_capacity", s.cache_capacity),
    ] {
        let _ = writeln!(out, "# TYPE {name} gauge");
        let _ = writeln!(out, "{name} {value}");
    }
    out.push_str(&fpraker_telemetry::render_prometheus());
    out
}

/// The per-request latency histogram for a `(job kind, cache outcome)`
/// pair — a fixed set of label variants so every call site resolves to a
/// `&'static` handle.
fn request_histogram(job: &'static str, cached: bool) -> &'static fpraker_telemetry::Histogram {
    use fpraker_telemetry::histogram;
    match (job, cached) {
        ("sim", false) => histogram!("serve_request_seconds{job=\"sim\",cache=\"cold\"}"),
        ("sim", true) => histogram!("serve_request_seconds{job=\"sim\",cache=\"hit\"}"),
        ("range", false) => histogram!("serve_request_seconds{job=\"range\",cache=\"cold\"}"),
        ("range", true) => histogram!("serve_request_seconds{job=\"range\",cache=\"hit\"}"),
        (_, false) => histogram!("serve_request_seconds{job=\"stats\",cache=\"cold\"}"),
        (_, true) => histogram!("serve_request_seconds{job=\"stats\",cache=\"hit\"}"),
    }
}

/// Sends an error frame (best-effort; the peer may already be gone).
fn send_error(stream: &mut TcpStream, message: &str) {
    let _ = write_frame(stream, tag::ERROR, message.as_bytes());
    let _ = stream.flush();
}

fn handle_connection(mut stream: TcpStream, shared: &Shared) -> Result<(), ServeError> {
    let _active = fpraker_telemetry::gauge!("serve_active_connections").inc_scoped();
    fpraker_telemetry::counter!("serve_requests_total").inc();
    stream.set_read_timeout(shared.io_timeout)?;
    stream.set_write_timeout(shared.io_timeout)?;
    stream.set_nodelay(true).ok();

    let (req_tag, payload) = match read_frame(&mut stream) {
        Ok(frame) => frame,
        Err(e) => {
            send_error(&mut stream, &e.to_string());
            return Err(e);
        }
    };
    match req_tag {
        tag::STATS => {
            if let Err(e) = protocol::decode_stats_request(&payload) {
                send_error(&mut stream, &e.to_string());
                return Err(e);
            }
            write_frame(
                &mut stream,
                tag::STATS_RESULT,
                &server_stats(shared).encode(),
            )?;
            Ok(())
        }
        tag::METRICS => {
            if let Err(e) = protocol::decode_metrics_request(&payload) {
                send_error(&mut stream, &e.to_string());
                return Err(e);
            }
            write_frame(
                &mut stream,
                tag::METRICS_RESULT,
                render_metrics(shared).as_bytes(),
            )?;
            Ok(())
        }
        tag::SUBMIT => {
            let submit = match Submit::decode(&payload) {
                Ok(s) => s,
                Err(e) => {
                    send_error(&mut stream, &e.to_string());
                    return Err(e);
                }
            };
            match handle_job(&mut stream, shared, &submit) {
                Ok(()) => Ok(()),
                Err(e) => {
                    send_error(&mut stream, &e.to_string());
                    Err(e)
                }
            }
        }
        tag::SUBMIT_RANGE => {
            let submit = match RangeSubmit::decode(&payload) {
                Ok(s) => s,
                Err(e) => {
                    send_error(&mut stream, &e.to_string());
                    return Err(e);
                }
            };
            match handle_range_job(&mut stream, shared, &submit) {
                Ok(()) => Ok(()),
                Err(e) => {
                    send_error(&mut stream, &e.to_string());
                    Err(e)
                }
            }
        }
        tag::SUBMIT_STATS => {
            let submit = match StatsSubmit::decode(&payload) {
                Ok(s) => s,
                Err(e) => {
                    send_error(&mut stream, &e.to_string());
                    return Err(e);
                }
            };
            match handle_stats_job(&mut stream, shared, &submit) {
                Ok(()) => Ok(()),
                Err(e) => {
                    send_error(&mut stream, &e.to_string());
                    Err(e)
                }
            }
        }
        other => {
            let e = ServeError::Protocol(format!("unexpected frame tag {other:#04x}"));
            send_error(&mut stream, &e.to_string());
            Err(e)
        }
    }
}

/// Replays a payload as a `{cached, payload}` frame under the given tag
/// ([`tag::RESULT`] for simulations, [`tag::TRACE_STATS_RESULT`] for
/// statistics jobs).
fn send_result(
    stream: &mut TcpStream,
    result_tag: u8,
    cached: bool,
    payload: &[u8],
) -> Result<(), ServeError> {
    let mut framed = Vec::with_capacity(1 + payload.len());
    framed.push(u8::from(cached));
    framed.extend_from_slice(payload);
    write_frame(stream, result_tag, &framed)?;
    stream.flush()?;
    // Frame header (tag + u32 length) plus payload.
    fpraker_telemetry::counter!("serve_bytes_out_total").add(5 + framed.len() as u64);
    Ok(())
}

/// Drains whatever the decoder left unconsumed — legal only when it is
/// exactly one valid index footer (indexed uploads carry one after the
/// ops; the decoder stops at the declared op count and never reads it).
/// The footer bytes are folded into the upload digest so the declared
/// whole-file digest still verifies. Returns `(extra bytes, digest of the
/// whole upload)`.
fn drain_index_footer(body: &mut BodyReader, ops_digest: u64) -> Result<(u64, u64), ServeError> {
    use std::io::Read as _;

    let mut hasher = Fnv64::resume(ops_digest);
    let mut extra = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        let n = body.read(&mut chunk)?;
        if n == 0 {
            break;
        }
        hasher.update(&chunk[..n]);
        extra.extend_from_slice(&chunk[..n]);
        if extra.len() as u64 > MAX_FOOTER_LEN {
            return Err(ServeError::Protocol(format!(
                "more than {MAX_FOOTER_LEN} bytes after the declared ops \
                 cannot be an index footer"
            )));
        }
    }
    if !extra.is_empty() && IndexFooter::parse(&extra).is_none() {
        return Err(ServeError::Protocol(format!(
            "{} bytes after the ops are not a valid index footer",
            extra.len()
        )));
    }
    Ok((extra.len() as u64, hasher.value()))
}

/// Validates that the upload matched its submission header: the declared
/// byte length and whole-upload digest.
fn check_upload(
    consumed: u64,
    digest: u64,
    declared_bytes: u64,
    declared_digest: u64,
) -> Result<(), ServeError> {
    if consumed != declared_bytes {
        return Err(ServeError::Protocol(format!(
            "trace was {consumed} bytes but the submission declared {declared_bytes}"
        )));
    }
    if digest != declared_digest {
        return Err(ServeError::Protocol(format!(
            "trace digest {digest:#018x} does not match the declared {declared_digest:#018x}"
        )));
    }
    Ok(())
}

/// The shared lifecycle of every content-addressed job (simulation or
/// statistics): cache hit → answer; miss → take a job slot, re-check the
/// cache (another job for the same content may have finished while we
/// waited; with `jobs` permits up to `jobs` racing clients can still slip
/// past — a bounded duplication, never a correctness issue since payloads
/// are deterministic), ask for the upload, fold it through `work`, drain
/// and validate any index footer, verify the declared length/digest, and
/// cache + send the deterministic payload.
#[allow(clippy::too_many_arguments)]
fn serve_content_job(
    stream: &mut TcpStream,
    shared: &Shared,
    key: CacheKey,
    result_tag: u8,
    job: &'static str,
    declared_bytes: u64,
    declared_digest: u64,
    work: impl FnOnce(&mut dyn TraceSource) -> Result<Vec<u8>, ServeError>,
) -> Result<(), ServeError> {
    let started = fpraker_telemetry::enabled().then(Instant::now);
    // The latency sample lands *before* the result bytes go out, so a
    // client that reads its response and immediately asks for METRICS
    // sees its own request in the histograms.
    let finish = |cached: bool| {
        if let Some(t) = started {
            request_histogram(job, cached).record_duration(t.elapsed());
        }
    };
    if let Some(hit) = shared.cache.get(&key) {
        finish(true);
        return send_result(stream, result_tag, true, &hit);
    }
    {
        let _wait = fpraker_telemetry::span!("serve_semaphore_wait");
        shared.jobs.acquire();
    }
    let _permit = JobPermit(&shared.jobs);
    if let Some(hit) = shared.cache.recheck(&key) {
        finish(true);
        return send_result(stream, result_tag, true, &hit);
    }
    write_frame(stream, tag::NEED_TRACE, &[])?;
    stream.flush()?;

    // Stream the upload straight through the decoder into the job:
    // frames → BodyReader → codec::Reader (which hashes every byte it
    // consumes) → `work`.
    let mut body = BodyReader::new(stream);
    let mut reader = codec::Reader::new(&mut body)?;
    let payload = work(&mut reader)?;
    let (consumed, ops_digest) = (reader.offset(), reader.digest());
    drop(reader);
    // An indexed upload carries a footer the decoder never reads; drain
    // and validate it, extending the digest over it.
    let (extra, digest) = drain_index_footer(&mut body, ops_digest)?;
    body.finish()?;
    check_upload(consumed + extra, digest, declared_bytes, declared_digest)?;

    let payload = Arc::new(payload);
    shared.cache.insert(key, Arc::clone(&payload));
    shared.jobs_completed.fetch_add(1, Ordering::SeqCst);
    finish(false);
    send_result(stream, result_tag, false, &payload)
}

fn handle_job(stream: &mut TcpStream, shared: &Shared, submit: &Submit) -> Result<(), ServeError> {
    let Some((machine, cfg)) = resolve_machine(&submit.spec) else {
        return Err(ServeError::Protocol(format!(
            "unknown machine spec {:?} (known: {})",
            submit.spec,
            fpraker_sim::machine_names().join(", ")
        )));
    };
    let key = CacheKey::new(submit.digest, &submit.spec);
    let spec = key.spec.clone();
    serve_content_job(
        stream,
        shared,
        key,
        tag::RESULT,
        "sim",
        submit.trace_bytes,
        submit.digest,
        |source| {
            let run = shared.engine.run_source(machine, source, &cfg)?;
            Ok(protocol::encode_result(
                &spec,
                &run.result,
                run.peak_resident_ops as u64,
                &shared.energy,
            ))
        },
    )
}

/// A segment-range job: identical to [`handle_job`] — same cache, same
/// streaming decode, same deterministic payload — except the upload is a
/// self-contained sub-trace of a sharded run, so the server additionally
/// cross-checks that it decodes to exactly the declared op count (a
/// coordinator that mislabels a shard gets an error, not a silently
/// misaligned merge). The range itself stays out of the cache key:
/// identical shard bytes are the same work wherever they sit.
fn handle_range_job(
    stream: &mut TcpStream,
    shared: &Shared,
    submit: &RangeSubmit,
) -> Result<(), ServeError> {
    let Some((machine, cfg)) = resolve_machine(&submit.spec) else {
        return Err(ServeError::Protocol(format!(
            "unknown machine spec {:?} (known: {})",
            submit.spec,
            fpraker_sim::machine_names().join(", ")
        )));
    };
    let key = CacheKey::new(submit.digest, &submit.spec);
    let spec = key.spec.clone();
    let declared_ops = submit.ops;
    serve_content_job(
        stream,
        shared,
        key,
        tag::RESULT,
        "range",
        submit.trace_bytes,
        submit.digest,
        |source| {
            let run = shared.engine.run_source(machine, source, &cfg)?;
            if run.result.ops.len() as u64 != declared_ops {
                return Err(ServeError::Protocol(format!(
                    "range submission declared {declared_ops} ops but the \
                     sub-trace carries {}",
                    run.result.ops.len()
                )));
            }
            Ok(protocol::encode_result(
                &spec,
                &run.result,
                run.peak_resident_ops as u64,
                &shared.energy,
            ))
        },
    )
}

/// A trace-statistics job: the same handshake and cache as a simulation
/// job, but the upload is folded through the single-pass
/// [`TraceStatistics`] collector instead of the engine — the Fig. 1/2/6
/// figures served as infrastructure.
fn handle_stats_job(
    stream: &mut TcpStream,
    shared: &Shared,
    submit: &StatsSubmit,
) -> Result<(), ServeError> {
    serve_content_job(
        stream,
        shared,
        CacheKey::new(submit.digest, STATS_SPEC),
        tag::TRACE_STATS_RESULT,
        "stats",
        submit.trace_bytes,
        submit.digest,
        |source| {
            let stats = TraceStatistics::from_source(source, Encoding::Canonical)?;
            Ok(TraceStatsReport::from_stats(&stats).encode())
        },
    )
}

/// Reassembles `TRACE_DATA` frames into one [`io::Read`] stream (EOF at
/// `TRACE_END`). Digest and length verification of the upload belong to
/// the wrapping [`codec::Reader`], which hashes and counts every byte it
/// consumes — once [`BodyReader::finish`] succeeds, the decoder saw the
/// entire upload.
struct BodyReader<'a> {
    stream: &'a mut TcpStream,
    buf: Vec<u8>,
    pos: usize,
    done: bool,
}

impl<'a> BodyReader<'a> {
    fn new(stream: &'a mut TcpStream) -> Self {
        BodyReader {
            stream,
            buf: Vec::new(),
            pos: 0,
            done: false,
        }
    }

    /// Pulls the next data frame, returning `false` at `TRACE_END`.
    fn next_frame(&mut self) -> io::Result<bool> {
        debug_assert!(self.pos == self.buf.len() && !self.done);
        loop {
            let (frame_tag, payload) = read_frame(self.stream).map_err(|e| match e {
                ServeError::Io(io) => io,
                other => io::Error::new(io::ErrorKind::InvalidData, other.to_string()),
            })?;
            match frame_tag {
                tag::TRACE_DATA => {
                    if payload.is_empty() {
                        continue; // tolerate empty chunks
                    }
                    fpraker_telemetry::counter!("serve_bytes_in_total").add(payload.len() as u64);
                    self.buf = payload;
                    self.pos = 0;
                    return Ok(true);
                }
                tag::TRACE_END => {
                    self.done = true;
                    return Ok(false);
                }
                other => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("unexpected frame tag {other:#04x} inside a trace upload"),
                    ));
                }
            }
        }
    }

    /// Confirms the upload ends exactly where the decoder stopped: any
    /// unconsumed bytes are an immediate protocol error — the rest of a
    /// malformed upload is *not* read (a client streaming surplus data
    /// cannot pin the connection), otherwise the closing `TRACE_END`
    /// frame is consumed.
    fn finish(&mut self) -> Result<(), ServeError> {
        let trailing = |n: usize| {
            Err(ServeError::Protocol(format!(
                "at least {n} bytes after the declared trace"
            )))
        };
        if self.pos < self.buf.len() {
            return trailing(self.buf.len() - self.pos);
        }
        if !self.done && self.next_frame().map_err(ServeError::Io)? {
            return trailing(self.buf.len());
        }
        Ok(())
    }
}

impl io::Read for BodyReader<'_> {
    fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
        if self.pos == self.buf.len() && (self.done || !self.next_frame()?) {
            return Ok(0);
        }
        let n = out.len().min(self.buf.len() - self.pos);
        out[..n].copy_from_slice(&self.buf[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

// MAX_FRAME_LEN is part of this module's contract with clients chunking
// uploads; referenced here so the doc link stays checked.
const _: () = assert!(MAX_FRAME_LEN as usize > protocol::TRACE_CHUNK);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn semaphore_bounds_and_releases() {
        let sem = Semaphore::new(2);
        sem.acquire();
        sem.acquire();
        {
            let p = sem.permits.lock().unwrap();
            assert_eq!(*p, 0);
        }
        sem.release();
        sem.acquire(); // would deadlock if release was lost
        sem.release();
        sem.release();
    }

    #[test]
    fn server_binds_ephemeral_port_and_shuts_down() {
        let server = Server::start(ServerConfig::default()).unwrap();
        assert_ne!(server.local_addr().port(), 0);
        assert_eq!(server.cache_stats().hits, 0);
        server.shutdown();
    }
}
