//! The trace-simulation server: accept loop, bounded job pool, and the
//! per-connection protocol state machine.
//!
//! A connection is a frame loop. Untagged v2 frames keep their serial
//! semantics: the handler parses the [`crate::protocol::Submit`] header,
//! resolves the machine spec through the `fpraker_sim` registry, consults
//! the content-addressed [`ResultCache`], and on a miss pipes the
//! incoming [`crate::protocol::tag::TRACE_DATA`] frames **straight into**
//! an incremental [`codec::Reader`] driving [`Engine::run_source`] — the
//! upload is simulated as it arrives, under the engine's bounded op
//! window, and is never materialized.
//!
//! Tagged v3 frames multiplex: each [`crate::protocol::tag::SUBMIT_JOB`]
//! is dispatched to its own job thread and the connection thread goes
//! straight back to reading, so many jobs ride one connection with
//! out-of-order completion. Responses are serialized through a shared
//! write handle; upload chunks are routed to their job's bounded channel
//! by `job_id`. Queued (not yet running) jobs can be cancelled or expire
//! at their deadline; when the pool is saturated past
//! [`ServerConfig::queue_depth`] waiting jobs, new tagged jobs are
//! refused with an explicit `BUSY { retry_after_ms }` instead of queueing
//! silently.
//!
//! Simulations are dispatched across a bounded job pool: a priority-aware
//! counting semaphore of `jobs` permits, each job running the shared
//! engine with `threads_per_job` workers, so the server's total worker
//! budget is `jobs × threads_per_job` regardless of how many clients
//! connect (`threads_per_job = 0` resolves to one worker per core per
//! job — see [`ServerConfig::threads_per_job`]).
//! Per-job failures are answered with a job-tagged error frame and kill
//! only that job; connection-level protocol violations are answered with
//! an error frame and close only that connection; the accept loop keeps
//! serving.

use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use fpraker_energy::EnergyModel;
use fpraker_num::encode::Encoding;
use fpraker_sim::{resolve_machine, AcceleratorConfig, Engine, Machine};
use fpraker_trace::codec::{self, IndexFooter, MAX_FOOTER_LEN};
use fpraker_trace::digest::Fnv64;
use fpraker_trace::stats::TraceStatistics;
use fpraker_trace::TraceSource;

use crate::cache::{CacheKey, CacheStats, ResultCache};
use crate::protocol::{
    self, job_error, read_frame, tag, write_frame, JobKind, JobSubmit, RangeSubmit, ServeError,
    ServerStats, StatsSubmit, Submit, TraceStatsReport, MAX_FRAME_LEN,
};

/// The pseudo machine-spec under which trace-statistics results are
/// cached. Starts with `#` so it can never collide with a registry name.
const STATS_SPEC: &str = "#stats";

/// Priority assumed for untagged v2 jobs (the middle of the u8 range, so
/// tagged jobs can explicitly rank above or below legacy traffic).
pub const DEFAULT_PRIORITY: u8 = 100;

/// Bounded upload channel per tagged job, in frames. Full channels push
/// back on the connection's read loop, which pushes back on TCP — the
/// same flow control a v2 upload gets from the socket itself.
const UPLOAD_CHANNEL_FRAMES: usize = 32;

/// Server tuning knobs.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Address to bind (use port 0 for an ephemeral port in tests).
    pub addr: String,
    /// Maximum simulations in flight at once (the job pool's permit
    /// count); further jobs queue on the semaphore. Clamped to ≥ 1.
    pub jobs: usize,
    /// Engine workers per job. The server's total worker budget is
    /// `jobs × threads_per_job`. `0` resolves to one worker per core *per
    /// job* — convenient on a mostly-idle box, but with `jobs > 1` it
    /// oversubscribes the cores; set an explicit value to hold a fixed
    /// budget.
    pub threads_per_job: usize,
    /// Streaming window per job (`0` = the engine default of 2× workers).
    pub stream_window: usize,
    /// Result-cache capacity in entries.
    pub cache_entries: usize,
    /// Resident-byte ceiling for the in-memory result cache (0 = bounded
    /// by entry count alone).
    pub cache_bytes: u64,
    /// Disk tier for the result cache: one digest-verified file per
    /// (digest, spec) entry, written atomically, so a restarted server
    /// answers previously-computed digests warm. `None` keeps the cache
    /// memory-only.
    pub cache_dir: Option<PathBuf>,
    /// Tagged jobs waiting in the queue beyond which new tagged
    /// submissions are refused with `BUSY { retry_after_ms }` instead of
    /// queueing. Untagged v2 jobs always queue (their protocol has no
    /// `BUSY` frame).
    pub queue_depth: usize,
    /// The retry hint carried by `BUSY` responses, in milliseconds.
    pub busy_retry_ms: u32,
    /// Per-connection socket timeout (`None` = block forever). Bounds how
    /// long a stalled client can pin a connection thread. A connection
    /// that has spoken v3 may idle indefinitely *between* frames (a
    /// pipelined connection is persistent); the timeout still bounds
    /// stalls inside a frame.
    pub io_timeout: Option<Duration>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            jobs: 2,
            threads_per_job: 0,
            stream_window: 0,
            cache_entries: 64,
            cache_bytes: 0,
            cache_dir: None,
            queue_depth: 64,
            busy_retry_ms: 100,
            io_timeout: Some(Duration::from_secs(60)),
        }
    }
}

/// How one call to [`JobQueue::acquire`] ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Acquire {
    /// A permit was taken; the caller must release it (via [`JobPermit`]).
    Acquired,
    /// The job's cancel flag was set while it waited.
    Cancelled,
    /// The job's deadline lapsed while it waited.
    DeadlineExpired,
}

/// Priority-aware counting semaphore bounding concurrent simulations.
///
/// Waiters are ordered by `(priority desc, arrival seq asc)`; a freed
/// permit always goes to the best waiter. A waiter can leave the queue
/// early when its cancel flag is set (a [`tag::CANCEL`] frame) or its
/// deadline lapses — both only ever apply to *queued* jobs, by
/// construction: once `acquire` returns [`Acquire::Acquired`] the job is
/// running and neither is consulted again.
struct JobQueue {
    state: Mutex<QueueState>,
    cv: Condvar,
}

struct QueueState {
    permits: usize,
    next_seq: u64,
    /// `(priority, seq)` of every waiting job. Small (bounded by the
    /// configured queue depth plus v2 traffic), so a linear scan beats
    /// heap bookkeeping.
    waiting: Vec<(u8, u64)>,
}

impl JobQueue {
    fn new(permits: usize) -> Self {
        JobQueue {
            state: Mutex::new(QueueState {
                permits,
                next_seq: 0,
                waiting: Vec::new(),
            }),
            cv: Condvar::new(),
        }
    }

    fn acquire(&self, priority: u8, deadline: Option<Instant>, cancel: &AtomicBool) -> Acquire {
        let _wait = fpraker_telemetry::span!("serve_semaphore_wait");
        let mut s = self.state.lock().unwrap();
        let seq = s.next_seq;
        s.next_seq += 1;
        s.waiting.push((priority, seq));
        loop {
            if cancel.load(Ordering::SeqCst) {
                return self.leave(s, seq, Acquire::Cancelled);
            }
            let is_front = !s
                .waiting
                .iter()
                .any(|&(p, q)| p > priority || (p == priority && q < seq));
            if s.permits > 0 && is_front {
                s.permits -= 1;
                s.waiting.retain(|&(_, q)| q != seq);
                // More permits may remain for the next-best waiter.
                self.cv.notify_all();
                return Acquire::Acquired;
            }
            s = match deadline {
                None => self.cv.wait(s).unwrap(),
                Some(d) => {
                    let now = Instant::now();
                    if now >= d {
                        return self.leave(s, seq, Acquire::DeadlineExpired);
                    }
                    self.cv.wait_timeout(s, d - now).unwrap().0
                }
            };
        }
    }

    /// Removes a waiter without taking a permit, waking the rest (the
    /// departing waiter may have been blocking the front of the queue).
    fn leave(
        &self,
        mut s: std::sync::MutexGuard<'_, QueueState>,
        seq: u64,
        outcome: Acquire,
    ) -> Acquire {
        s.waiting.retain(|&(_, q)| q != seq);
        drop(s);
        self.cv.notify_all();
        outcome
    }

    fn release(&self) {
        self.state.lock().unwrap().permits += 1;
        self.cv.notify_all();
    }

    /// Wakes all waiters so freshly-set cancel flags are observed.
    fn poke(&self) {
        self.cv.notify_all();
    }

    fn queued(&self) -> usize {
        self.state.lock().unwrap().waiting.len()
    }

    /// Whether a new tagged job would be refused with `BUSY`: no permit
    /// free and the waiting line already at the configured depth.
    fn saturated(&self, depth: usize) -> bool {
        let s = self.state.lock().unwrap();
        s.permits == 0 && s.waiting.len() >= depth
    }
}

/// Releases a job permit (and the in-flight count) on drop, so every exit
/// path — including errors — returns the slot to the pool.
struct JobPermit<'a>(&'a Shared);

impl<'a> JobPermit<'a> {
    /// Wraps a permit that [`JobQueue::acquire`] already granted.
    fn held(shared: &'a Shared) -> Self {
        shared.jobs_in_flight.fetch_add(1, Ordering::SeqCst);
        JobPermit(shared)
    }
}

impl Drop for JobPermit<'_> {
    fn drop(&mut self) {
        self.0.jobs_in_flight.fetch_sub(1, Ordering::SeqCst);
        self.0.queue.release();
    }
}

struct Shared {
    cache: ResultCache,
    queue: JobQueue,
    engine: Engine,
    energy: EnergyModel,
    io_timeout: Option<Duration>,
    queue_depth: usize,
    busy_retry_ms: u32,
    shutdown: AtomicBool,
    jobs_completed: AtomicU64,
    jobs_in_flight: AtomicU64,
    busy_rejections: AtomicU64,
    jobs_cancelled: AtomicU64,
    jobs_deadline_expired: AtomicU64,
}

/// A running trace-simulation server.
///
/// [`Server::start`] binds and returns immediately; the accept loop runs
/// on a background thread until [`Server::shutdown`] (or process exit).
///
/// ```
/// use fpraker_serve::{Server, ServerConfig};
///
/// let server = Server::start(ServerConfig::default()).unwrap();
/// let addr = server.local_addr(); // ephemeral port, ready for clients
/// assert_ne!(addr.port(), 0);
/// server.shutdown();
/// ```
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept_thread: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds `config.addr` and starts accepting clients.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure (address in use, permission, …).
    pub fn start(config: ServerConfig) -> io::Result<Server> {
        fpraker_telemetry::init();
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            cache: ResultCache::with_options(
                config.cache_entries,
                config.cache_bytes,
                config.cache_dir.clone(),
            ),
            queue: JobQueue::new(config.jobs.max(1)),
            engine: Engine::with_threads(config.threads_per_job)
                .stream_window(config.stream_window),
            energy: EnergyModel::paper(),
            io_timeout: config.io_timeout,
            queue_depth: config.queue_depth,
            busy_retry_ms: config.busy_retry_ms,
            shutdown: AtomicBool::new(false),
            jobs_completed: AtomicU64::new(0),
            jobs_in_flight: AtomicU64::new(0),
            busy_rejections: AtomicU64::new(0),
            jobs_cancelled: AtomicU64::new(0),
            jobs_deadline_expired: AtomicU64::new(0),
        });
        let accept_shared = Arc::clone(&shared);
        let accept_thread = std::thread::spawn(move || {
            for stream in listener.incoming() {
                if accept_shared.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else {
                    // Persistent accept failures (e.g. fd exhaustion under
                    // EMFILE) would otherwise busy-spin this loop; back off
                    // briefly and retry.
                    std::thread::sleep(Duration::from_millis(20));
                    continue;
                };
                let conn_shared = Arc::clone(&accept_shared);
                std::thread::spawn(move || {
                    // A failed connection only ever fails itself.
                    let _ = handle_connection(stream, &conn_shared);
                });
            }
        });
        Ok(Server {
            addr,
            shared,
            accept_thread: Some(accept_thread),
        })
    }

    /// The address the server is listening on (with the resolved port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Result-cache effectiveness counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.shared.cache.stats()
    }

    /// The counters a [`tag::STATS`] request reports.
    pub fn stats(&self) -> ServerStats {
        server_stats(&self.shared)
    }

    /// The Prometheus-style text a [`tag::METRICS`] request returns: the
    /// server's own counters followed by the process-global telemetry
    /// registry.
    pub fn metrics_text(&self) -> String {
        render_metrics(&self.shared)
    }

    /// Blocks until the accept loop exits. The loop runs until the
    /// process dies, so daemons use this to park the main thread.
    pub fn join(mut self) {
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }

    /// Stops accepting connections and joins the accept thread. In-flight
    /// connections finish on their own threads. (Dropping the server does
    /// the same.)
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        let Some(t) = self.accept_thread.take() else {
            return;
        };
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        let _ = t.join();
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

fn server_stats(shared: &Shared) -> ServerStats {
    let cache = shared.cache.stats();
    ServerStats {
        jobs_completed: shared.jobs_completed.load(Ordering::SeqCst),
        cache_hits: cache.hits,
        cache_misses: cache.misses,
        cache_entries: cache.entries as u64,
        cache_capacity: cache.capacity as u64,
        cache_evictions: cache.evictions,
        cache_resident_bytes: cache.resident_bytes,
        cache_capacity_bytes: cache.capacity_bytes,
        jobs_in_flight: shared.jobs_in_flight.load(Ordering::SeqCst),
        jobs_queued: shared.queue.queued() as u64,
        busy_rejections: shared.busy_rejections.load(Ordering::SeqCst),
        jobs_cancelled: shared.jobs_cancelled.load(Ordering::SeqCst),
        jobs_deadline_expired: shared.jobs_deadline_expired.load(Ordering::SeqCst),
    }
}

/// Composes the [`tag::METRICS`] response text: the [`ServerStats`]
/// counters rendered as Prometheus lines (these come from the server's
/// own structs, so they are live even when the telemetry crate is
/// compiled out) followed by the full process-global telemetry registry.
fn render_metrics(shared: &Shared) -> String {
    use std::fmt::Write as _;

    let s = server_stats(shared);
    let mut out = String::new();
    for (name, value) in [
        ("serve_jobs_completed_total", s.jobs_completed),
        ("serve_cache_hits_total", s.cache_hits),
        ("serve_cache_misses_total", s.cache_misses),
        ("serve_cache_evictions_total", s.cache_evictions),
        ("serve_busy_rejections_total", s.busy_rejections),
        ("serve_jobs_cancelled_total", s.jobs_cancelled),
        ("serve_jobs_deadline_expired_total", s.jobs_deadline_expired),
    ] {
        let _ = writeln!(out, "# TYPE {name} counter");
        let _ = writeln!(out, "{name} {value}");
    }
    for (name, value) in [
        ("serve_cache_entries", s.cache_entries),
        ("serve_cache_capacity", s.cache_capacity),
        ("serve_cache_resident_bytes", s.cache_resident_bytes),
        ("serve_cache_capacity_bytes", s.cache_capacity_bytes),
        ("serve_jobs_in_flight", s.jobs_in_flight),
        ("serve_jobs_queued", s.jobs_queued),
    ] {
        let _ = writeln!(out, "# TYPE {name} gauge");
        let _ = writeln!(out, "{name} {value}");
    }
    out.push_str(&fpraker_telemetry::render_prometheus());
    out
}

/// The per-request latency histogram for a `(job kind, cache outcome)`
/// pair — a fixed set of label variants so every call site resolves to a
/// `&'static` handle.
fn request_histogram(job: &'static str, cached: bool) -> &'static fpraker_telemetry::Histogram {
    use fpraker_telemetry::histogram;
    match (job, cached) {
        ("sim", false) => histogram!("serve_request_seconds{job=\"sim\",cache=\"cold\"}"),
        ("sim", true) => histogram!("serve_request_seconds{job=\"sim\",cache=\"hit\"}"),
        ("range", false) => histogram!("serve_request_seconds{job=\"range\",cache=\"cold\"}"),
        ("range", true) => histogram!("serve_request_seconds{job=\"range\",cache=\"hit\"}"),
        (_, false) => histogram!("serve_request_seconds{job=\"stats\",cache=\"cold\"}"),
        (_, true) => histogram!("serve_request_seconds{job=\"stats\",cache=\"hit\"}"),
    }
}

/// The serialized write half of one connection. Job threads and the read
/// loop interleave whole frames through this mutex; nothing writes to the
/// socket outside it.
type ConnWriter = Arc<Mutex<TcpStream>>;

/// Sends an error frame (best-effort; the peer may already be gone).
fn send_error(writer: &ConnWriter, message: &str) {
    let mut w = writer.lock().unwrap();
    let _ = write_frame(&mut *w, tag::ERROR, message.as_bytes());
    let _ = w.flush();
}

/// One tagged job's connection-side state while it is in flight: the
/// upload channel the read loop feeds and the cancel flag a
/// [`tag::CANCEL`] frame sets.
struct PendingJob {
    data: mpsc::SyncSender<UploadMsg>,
    cancel: Arc<AtomicBool>,
}

enum UploadMsg {
    Data(Vec<u8>),
    End,
}

type PendingMap = Arc<Mutex<HashMap<u64, PendingJob>>>;

fn handle_connection(stream: TcpStream, shared: &Arc<Shared>) -> Result<(), ServeError> {
    let _active = fpraker_telemetry::gauge!("serve_active_connections").inc_scoped();
    stream.set_read_timeout(shared.io_timeout)?;
    stream.set_write_timeout(shared.io_timeout)?;
    stream.set_nodelay(true).ok();
    let writer: ConnWriter = Arc::new(Mutex::new(stream.try_clone()?));
    let mut reader = stream;
    let pending: PendingMap = Arc::default();

    let result = connection_loop(&mut reader, &writer, &pending, shared);
    // The connection is gone: flag every still-pending job as cancelled
    // (frees queue slots a dead client would otherwise hold) and drop the
    // upload senders so running jobs see EOF instead of an io-timeout.
    let mut map = pending.lock().unwrap();
    for job in map.values() {
        job.cancel.store(true, Ordering::SeqCst);
    }
    map.clear();
    drop(map);
    shared.queue.poke();
    result
}

/// Reads one tag byte. Returns `None` on clean EOF. On a read timeout:
/// a connection that has spoken v3 is persistent and may legitimately
/// idle between frames, so the read retries; a v2 connection keeps the
/// old behavior (a silent client is an error). A timeout can only split
/// a *multi*-byte read, so retrying a 1-byte read never desynchronizes
/// the frame stream.
fn read_tag(reader: &mut TcpStream, pipelined: bool) -> Result<Option<u8>, ServeError> {
    let mut byte = [0u8; 1];
    loop {
        match reader.read(&mut byte) {
            Ok(0) => return Ok(None),
            Ok(_) => return Ok(Some(byte[0])),
            Err(e)
                if pipelined
                    && matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) =>
            {
                continue;
            }
            Err(e) => return Err(ServeError::Io(e)),
        }
    }
}

/// Reads the length + payload that follow an already-consumed tag byte.
fn read_rest_of_frame(reader: &mut TcpStream) -> Result<Vec<u8>, ServeError> {
    let mut len_bytes = [0u8; 4];
    reader.read_exact(&mut len_bytes)?;
    let len = u32::from_le_bytes(len_bytes);
    if len > MAX_FRAME_LEN {
        return Err(ServeError::Protocol(format!(
            "length prefix {len} exceeds the {MAX_FRAME_LEN}-byte frame cap"
        )));
    }
    let mut payload = vec![0u8; len as usize];
    reader.read_exact(&mut payload)?;
    Ok(payload)
}

fn connection_loop(
    reader: &mut TcpStream,
    writer: &ConnWriter,
    pending: &PendingMap,
    shared: &Arc<Shared>,
) -> Result<(), ServeError> {
    // Whether this connection has spoken the v3 dialect yet (governs the
    // idle-tolerance of `read_tag`).
    let mut pipelined = false;
    loop {
        let Some(frame_tag) = read_tag(reader, pipelined)? else {
            return Ok(()); // clean EOF: the client is done
        };
        let payload = match read_rest_of_frame(reader) {
            Ok(p) => p,
            Err(e) => {
                send_error(writer, &e.to_string());
                return Err(e);
            }
        };
        if !matches!(frame_tag, tag::JOB_DATA | tag::JOB_DATA_END) {
            fpraker_telemetry::counter!("serve_requests_total").inc();
        }
        match frame_tag {
            tag::STATS => {
                if let Err(e) = protocol::decode_stats_request(&payload) {
                    send_error(writer, &e.to_string());
                    return Err(e);
                }
                let mut w = writer.lock().unwrap();
                write_frame(&mut *w, tag::STATS_RESULT, &server_stats(shared).encode())?;
                w.flush()?;
            }
            tag::METRICS => {
                if let Err(e) = protocol::decode_metrics_request(&payload) {
                    send_error(writer, &e.to_string());
                    return Err(e);
                }
                let mut w = writer.lock().unwrap();
                write_frame(
                    &mut *w,
                    tag::METRICS_RESULT,
                    render_metrics(shared).as_bytes(),
                )?;
                w.flush()?;
            }
            tag::SUBMIT => {
                let submit = match Submit::decode(&payload) {
                    Ok(s) => s,
                    Err(e) => {
                        send_error(writer, &e.to_string());
                        return Err(e);
                    }
                };
                if let Err(e) = handle_job(reader, writer, shared, &submit) {
                    send_error(writer, &e.to_string());
                    return Err(e);
                }
            }
            tag::SUBMIT_RANGE => {
                let submit = match RangeSubmit::decode(&payload) {
                    Ok(s) => s,
                    Err(e) => {
                        send_error(writer, &e.to_string());
                        return Err(e);
                    }
                };
                if let Err(e) = handle_range_job(reader, writer, shared, &submit) {
                    send_error(writer, &e.to_string());
                    return Err(e);
                }
            }
            tag::SUBMIT_STATS => {
                let submit = match StatsSubmit::decode(&payload) {
                    Ok(s) => s,
                    Err(e) => {
                        send_error(writer, &e.to_string());
                        return Err(e);
                    }
                };
                if let Err(e) = handle_stats_job(reader, writer, shared, &submit) {
                    send_error(writer, &e.to_string());
                    return Err(e);
                }
            }
            tag::SUBMIT_JOB => {
                pipelined = true;
                dispatch_tagged_job(writer, pending, shared, &payload)?;
            }
            tag::JOB_DATA | tag::JOB_DATA_END => {
                // Undecodable routing info is a connection-level error;
                // chunks for an id with no pending job (it already failed
                // or finished) are stale and silently discarded.
                let (job_id, chunk) = match protocol::split_job_payload(&payload) {
                    Ok(split) => split,
                    Err(e) => {
                        send_error(writer, &e.to_string());
                        return Err(e);
                    }
                };
                let sender = pending
                    .lock()
                    .unwrap()
                    .get(&job_id)
                    .map(|job| job.data.clone());
                if let Some(sender) = sender {
                    fpraker_telemetry::counter!("serve_bytes_in_total").add(chunk.len() as u64);
                    let msg = if frame_tag == tag::JOB_DATA {
                        UploadMsg::Data(chunk.to_vec())
                    } else {
                        UploadMsg::End
                    };
                    // A dropped receiver means the job already died; its
                    // remaining upload is discarded frame by frame.
                    let _ = sender.send(msg);
                }
            }
            tag::CANCEL => {
                pipelined = true;
                let job_id = match protocol::decode_cancel(&payload) {
                    Ok(id) => id,
                    Err(e) => {
                        send_error(writer, &e.to_string());
                        return Err(e);
                    }
                };
                // Queued jobs observe the flag inside `acquire` and die
                // with CANCELLED; running (or unknown) jobs are a no-op.
                if let Some(job) = pending.lock().unwrap().get(&job_id) {
                    job.cancel.store(true, Ordering::SeqCst);
                }
                shared.queue.poke();
            }
            other => {
                let e = ServeError::Protocol(format!("unexpected frame tag {other:#04x}"));
                send_error(writer, &e.to_string());
                return Err(e);
            }
        }
    }
}

/// What a tagged job will do once it holds a permit — the spec-resolution
/// half of dispatch, done on the read loop so an unknown spec fails fast.
enum TaggedWork {
    Sim {
        machine: Machine,
        cfg: AcceleratorConfig,
        spec: String,
    },
    Range {
        machine: Machine,
        cfg: AcceleratorConfig,
        spec: String,
        declared_ops: u64,
    },
    Stats,
}

impl TaggedWork {
    fn label(&self) -> &'static str {
        match self {
            TaggedWork::Sim { .. } => "sim",
            TaggedWork::Range { .. } => "range",
            TaggedWork::Stats => "stats",
        }
    }

    fn result_tag(&self) -> u8 {
        match self {
            TaggedWork::Stats => tag::JOB_STATS_RESULT,
            _ => tag::JOB_RESULT,
        }
    }
}

/// Sends a `{job_id, cached, payload}` response frame for a tagged job.
fn send_tagged_result(
    writer: &ConnWriter,
    result_tag: u8,
    job_id: u64,
    cached: bool,
    payload: &[u8],
) -> Result<(), ServeError> {
    let mut framed = Vec::with_capacity(9 + payload.len());
    framed.extend_from_slice(&job_id.to_le_bytes());
    framed.push(u8::from(cached));
    framed.extend_from_slice(payload);
    let mut w = writer.lock().unwrap();
    write_frame(&mut *w, result_tag, &framed)?;
    w.flush()?;
    fpraker_telemetry::counter!("serve_bytes_out_total").add(5 + framed.len() as u64);
    Ok(())
}

/// Sends a job-tagged error frame (best-effort): only the job dies, the
/// connection lives on.
fn send_job_error(writer: &ConnWriter, job_id: u64, code: u8, message: &str) {
    let mut w = writer.lock().unwrap();
    let _ = write_frame(
        &mut *w,
        tag::JOB_ERROR,
        &protocol::encode_job_error(job_id, code, message),
    );
    let _ = w.flush();
}

/// Handles one [`tag::SUBMIT_JOB`] frame on the read loop: parse, resolve
/// the spec, answer cache hits inline, refuse with `BUSY` when saturated,
/// otherwise register the job and hand it to its own thread. Never
/// returns an error for job-level failures — those become [`tag::JOB_ERROR`]
/// frames — only for a dead socket.
fn dispatch_tagged_job(
    writer: &ConnWriter,
    pending: &PendingMap,
    shared: &Arc<Shared>,
    payload: &[u8],
) -> Result<(), ServeError> {
    let submit = match JobSubmit::decode(payload) {
        Ok(s) => s,
        Err(e) => {
            // Attribute the failure to its job when the id is readable
            // (magic intact, payload long enough), so one malformed
            // submission cannot kill the other jobs on the wire. The id
            // sits right after the 5-byte preamble.
            if payload.len() >= 13 && payload[..4] == *protocol::PROTOCOL_MAGIC {
                let job_id = u64::from_le_bytes(payload[5..13].try_into().unwrap());
                send_job_error(writer, job_id, job_error::GENERIC, &e.to_string());
                return Ok(());
            }
            send_error(writer, &e.to_string());
            return Err(e);
        }
    };
    let job_id = submit.job_id;
    let (key, work) = match &submit.kind {
        JobKind::Sim { spec } | JobKind::Range { spec, .. } => {
            let Some((machine, cfg)) = resolve_machine(spec) else {
                send_job_error(
                    writer,
                    job_id,
                    job_error::GENERIC,
                    &format!(
                        "unknown machine spec {:?} (known: {})",
                        spec,
                        fpraker_sim::machine_names().join(", ")
                    ),
                );
                return Ok(());
            };
            let key = CacheKey::new(submit.digest, spec);
            let spec = key.spec.clone();
            let work = match &submit.kind {
                JobKind::Range { ops, .. } => TaggedWork::Range {
                    machine,
                    cfg,
                    spec,
                    declared_ops: *ops,
                },
                _ => TaggedWork::Sim { machine, cfg, spec },
            };
            (key, work)
        }
        JobKind::Stats => (CacheKey::new(submit.digest, STATS_SPEC), TaggedWork::Stats),
    };

    // Warm answers never touch the pool: reply straight from the read
    // loop and move on to the next frame.
    if let Some(hit) = shared.cache.get(&key) {
        request_histogram(work.label(), true).record(0);
        return send_tagged_result(writer, work.result_tag(), job_id, true, &hit);
    }

    // Explicit backpressure: a saturated pool refuses instead of queueing
    // silently. The client sees BUSY and retries after the hint.
    if shared.queue.saturated(shared.queue_depth) {
        shared.busy_rejections.fetch_add(1, Ordering::SeqCst);
        fpraker_telemetry::counter!("serve_busy_rejections_total").inc();
        let mut w = writer.lock().unwrap();
        write_frame(
            &mut *w,
            tag::BUSY,
            &protocol::encode_busy(job_id, shared.busy_retry_ms),
        )?;
        w.flush()?;
        return Ok(());
    }

    let cancel = Arc::new(AtomicBool::new(false));
    let (data_tx, data_rx) = mpsc::sync_channel(UPLOAD_CHANNEL_FRAMES);
    {
        let mut map = pending.lock().unwrap();
        if map.contains_key(&job_id) {
            drop(map);
            send_job_error(
                writer,
                job_id,
                job_error::GENERIC,
                &format!("job id {job_id} is already in flight on this connection"),
            );
            return Ok(());
        }
        map.insert(
            job_id,
            PendingJob {
                data: data_tx,
                cancel: Arc::clone(&cancel),
            },
        );
    }

    let writer = Arc::clone(writer);
    let pending = Arc::clone(pending);
    let shared = Arc::clone(shared);
    std::thread::spawn(move || {
        run_tagged_job(&writer, &shared, &submit, key, work, data_rx, &cancel);
        pending.lock().unwrap().remove(&submit.job_id);
    });
    Ok(())
}

/// The job-thread half of a tagged job: queue (with priority, deadline
/// and cancellation), re-check the cache, pull the upload through its
/// channel, simulate, cache and answer. All failures are job-scoped.
fn run_tagged_job(
    writer: &ConnWriter,
    shared: &Shared,
    submit: &JobSubmit,
    key: CacheKey,
    work: TaggedWork,
    data_rx: mpsc::Receiver<UploadMsg>,
    cancel: &AtomicBool,
) {
    let started = Instant::now();
    let deadline = (submit.deadline_ms > 0)
        .then(|| started + Duration::from_millis(u64::from(submit.deadline_ms)));
    match shared.queue.acquire(submit.priority, deadline, cancel) {
        Acquire::Cancelled => {
            shared.jobs_cancelled.fetch_add(1, Ordering::SeqCst);
            fpraker_telemetry::counter!("serve_jobs_cancelled_total").inc();
            send_job_error(writer, submit.job_id, job_error::CANCELLED, "cancelled");
            return;
        }
        Acquire::DeadlineExpired => {
            shared.jobs_deadline_expired.fetch_add(1, Ordering::SeqCst);
            fpraker_telemetry::counter!("serve_jobs_deadline_expired_total").inc();
            send_job_error(
                writer,
                submit.job_id,
                job_error::DEADLINE,
                &format!("deadline of {} ms expired while queued", submit.deadline_ms),
            );
            return;
        }
        Acquire::Acquired => {}
    }
    let permit = JobPermit::held(shared);
    if let Some(hit) = shared.cache.recheck(&key) {
        drop(permit);
        request_histogram(work.label(), true).record_duration(started.elapsed());
        let _ = send_tagged_result(writer, work.result_tag(), submit.job_id, true, &hit);
        return;
    }
    let outcome = (|| -> Result<Vec<u8>, ServeError> {
        {
            let mut w = writer.lock().unwrap();
            write_frame(&mut *w, tag::JOB_NEED_TRACE, &submit.job_id.to_le_bytes())?;
            w.flush()?;
        }
        let mut body = ChannelBody::new(data_rx, shared.io_timeout);
        run_upload(
            &mut body,
            submit.trace_bytes,
            submit.digest,
            |source| match &work {
                TaggedWork::Sim { machine, cfg, spec } => {
                    let run = shared.engine.run_source(*machine, source, cfg)?;
                    Ok(protocol::encode_result(
                        spec,
                        &run.result,
                        run.peak_resident_ops as u64,
                        &shared.energy,
                    ))
                }
                TaggedWork::Range {
                    machine,
                    cfg,
                    spec,
                    declared_ops,
                } => {
                    let run = shared.engine.run_source(*machine, source, cfg)?;
                    if run.result.ops.len() as u64 != *declared_ops {
                        return Err(ServeError::Protocol(format!(
                            "range submission declared {declared_ops} ops but the \
                             sub-trace carries {}",
                            run.result.ops.len()
                        )));
                    }
                    Ok(protocol::encode_result(
                        spec,
                        &run.result,
                        run.peak_resident_ops as u64,
                        &shared.energy,
                    ))
                }
                TaggedWork::Stats => {
                    let stats = TraceStatistics::from_source(source, Encoding::Canonical)?;
                    Ok(TraceStatsReport::from_stats(&stats).encode())
                }
            },
        )
    })();
    // Cache-insert while the permit is still held (the next waiter's
    // re-check is what makes racing duplicates exactly-once), but send
    // after release, so a client holding its result never observes the
    // job still in flight.
    let outcome = outcome.map(|payload| {
        let payload = Arc::new(payload);
        shared.cache.insert(key, Arc::clone(&payload));
        shared.jobs_completed.fetch_add(1, Ordering::SeqCst);
        payload
    });
    drop(permit);
    match outcome {
        Ok(payload) => {
            request_histogram(work.label(), false).record_duration(started.elapsed());
            let _ = send_tagged_result(writer, work.result_tag(), submit.job_id, false, &payload);
        }
        Err(e) => {
            send_job_error(writer, submit.job_id, job_error::GENERIC, &e.to_string());
        }
    }
}

/// Streams one upload through the codec into `work` and verifies it
/// against the declared length/digest: frames → body → [`codec::Reader`]
/// (which hashes every byte it consumes) → `work`, then drain and
/// validate any index footer.
fn run_upload<B: UploadBody>(
    body: &mut B,
    declared_bytes: u64,
    declared_digest: u64,
    work: impl FnOnce(&mut dyn TraceSource) -> Result<Vec<u8>, ServeError>,
) -> Result<Vec<u8>, ServeError> {
    let mut reader = codec::Reader::new(&mut *body)?;
    let payload = work(&mut reader)?;
    let (consumed, ops_digest) = (reader.offset(), reader.digest());
    drop(reader);
    // An indexed upload carries a footer the decoder never reads; drain
    // and validate it, extending the digest over it.
    let (extra, digest) = drain_index_footer(body, ops_digest)?;
    body.finish()?;
    check_upload(consumed + extra, digest, declared_bytes, declared_digest)?;
    Ok(payload)
}

/// Drains whatever the decoder left unconsumed — legal only when it is
/// exactly one valid index footer (indexed uploads carry one after the
/// ops; the decoder stops at the declared op count and never reads it).
/// The footer bytes are folded into the upload digest so the declared
/// whole-file digest still verifies. Returns `(extra bytes, digest of the
/// whole upload)`.
fn drain_index_footer(body: &mut impl Read, ops_digest: u64) -> Result<(u64, u64), ServeError> {
    let mut hasher = Fnv64::resume(ops_digest);
    let mut extra = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        let n = body.read(&mut chunk)?;
        if n == 0 {
            break;
        }
        hasher.update(&chunk[..n]);
        extra.extend_from_slice(&chunk[..n]);
        if extra.len() as u64 > MAX_FOOTER_LEN {
            return Err(ServeError::Protocol(format!(
                "more than {MAX_FOOTER_LEN} bytes after the declared ops \
                 cannot be an index footer"
            )));
        }
    }
    if !extra.is_empty() && IndexFooter::parse(&extra).is_none() {
        return Err(ServeError::Protocol(format!(
            "{} bytes after the ops are not a valid index footer",
            extra.len()
        )));
    }
    Ok((extra.len() as u64, hasher.value()))
}

/// Validates that the upload matched its submission header: the declared
/// byte length and whole-upload digest.
fn check_upload(
    consumed: u64,
    digest: u64,
    declared_bytes: u64,
    declared_digest: u64,
) -> Result<(), ServeError> {
    if consumed != declared_bytes {
        return Err(ServeError::Protocol(format!(
            "trace was {consumed} bytes but the submission declared {declared_bytes}"
        )));
    }
    if digest != declared_digest {
        return Err(ServeError::Protocol(format!(
            "trace digest {digest:#018x} does not match the declared {declared_digest:#018x}"
        )));
    }
    Ok(())
}

/// Replays a payload as a `{cached, payload}` frame under the given tag
/// ([`tag::RESULT`] for simulations, [`tag::TRACE_STATS_RESULT`] for
/// statistics jobs).
fn send_result(
    writer: &ConnWriter,
    result_tag: u8,
    cached: bool,
    payload: &[u8],
) -> Result<(), ServeError> {
    let mut framed = Vec::with_capacity(1 + payload.len());
    framed.push(u8::from(cached));
    framed.extend_from_slice(payload);
    let mut w = writer.lock().unwrap();
    write_frame(&mut *w, result_tag, &framed)?;
    w.flush()?;
    // Frame header (tag + u32 length) plus payload.
    fpraker_telemetry::counter!("serve_bytes_out_total").add(5 + framed.len() as u64);
    Ok(())
}

/// The shared lifecycle of every untagged (v2) content-addressed job
/// (simulation or statistics): cache hit → answer; miss → take a job
/// slot, re-check the cache (another job for the same content may have
/// finished while we waited; with `jobs` permits up to `jobs` racing
/// clients can still slip past — a bounded duplication, never a
/// correctness issue since payloads are deterministic), ask for the
/// upload, fold it through `work`, drain and validate any index footer,
/// verify the declared length/digest, and cache + send the deterministic
/// payload. Serial semantics: the connection thread carries the job end
/// to end, exactly the v2 contract.
#[allow(clippy::too_many_arguments)]
fn serve_content_job(
    reader: &mut TcpStream,
    writer: &ConnWriter,
    shared: &Shared,
    key: CacheKey,
    result_tag: u8,
    job: &'static str,
    declared_bytes: u64,
    declared_digest: u64,
    work: impl FnOnce(&mut dyn TraceSource) -> Result<Vec<u8>, ServeError>,
) -> Result<(), ServeError> {
    let started = fpraker_telemetry::enabled().then(Instant::now);
    // The latency sample lands *before* the result bytes go out, so a
    // client that reads its response and immediately asks for METRICS
    // sees its own request in the histograms.
    let finish = |cached: bool| {
        if let Some(t) = started {
            request_histogram(job, cached).record_duration(t.elapsed());
        }
    };
    if let Some(hit) = shared.cache.get(&key) {
        finish(true);
        return send_result(writer, result_tag, true, &hit);
    }
    let never_cancelled = AtomicBool::new(false);
    match shared
        .queue
        .acquire(DEFAULT_PRIORITY, None, &never_cancelled)
    {
        Acquire::Acquired => {}
        // No deadline and no cancel flag: the queue cannot refuse.
        other => unreachable!("untagged acquire ended {other:?}"),
    }
    let permit = JobPermit::held(shared);
    if let Some(hit) = shared.cache.recheck(&key) {
        drop(permit);
        finish(true);
        return send_result(writer, result_tag, true, &hit);
    }
    {
        let mut w = writer.lock().unwrap();
        write_frame(&mut *w, tag::NEED_TRACE, &[])?;
        w.flush()?;
    }

    let mut body = BodyReader::new(reader);
    let payload = run_upload(&mut body, declared_bytes, declared_digest, work)?;
    let payload = Arc::new(payload);
    // The insert must land while the permit is still held — the next
    // waiter's post-permit re-check is what makes racing duplicates
    // exactly-once. The *send* happens after release, so a client holding
    // its result never observes the job still in flight.
    shared.cache.insert(key, Arc::clone(&payload));
    shared.jobs_completed.fetch_add(1, Ordering::SeqCst);
    drop(permit);
    finish(false);
    send_result(writer, result_tag, false, &payload)
}

fn handle_job(
    reader: &mut TcpStream,
    writer: &ConnWriter,
    shared: &Shared,
    submit: &Submit,
) -> Result<(), ServeError> {
    let Some((machine, cfg)) = resolve_machine(&submit.spec) else {
        return Err(ServeError::Protocol(format!(
            "unknown machine spec {:?} (known: {})",
            submit.spec,
            fpraker_sim::machine_names().join(", ")
        )));
    };
    let key = CacheKey::new(submit.digest, &submit.spec);
    let spec = key.spec.clone();
    serve_content_job(
        reader,
        writer,
        shared,
        key,
        tag::RESULT,
        "sim",
        submit.trace_bytes,
        submit.digest,
        |source| {
            let run = shared.engine.run_source(machine, source, &cfg)?;
            Ok(protocol::encode_result(
                &spec,
                &run.result,
                run.peak_resident_ops as u64,
                &shared.energy,
            ))
        },
    )
}

/// A segment-range job: identical to [`handle_job`] — same cache, same
/// streaming decode, same deterministic payload — except the upload is a
/// self-contained sub-trace of a sharded run, so the server additionally
/// cross-checks that it decodes to exactly the declared op count (a
/// coordinator that mislabels a shard gets an error, not a silently
/// misaligned merge). The range itself stays out of the cache key:
/// identical shard bytes are the same work wherever they sit.
fn handle_range_job(
    reader: &mut TcpStream,
    writer: &ConnWriter,
    shared: &Shared,
    submit: &RangeSubmit,
) -> Result<(), ServeError> {
    let Some((machine, cfg)) = resolve_machine(&submit.spec) else {
        return Err(ServeError::Protocol(format!(
            "unknown machine spec {:?} (known: {})",
            submit.spec,
            fpraker_sim::machine_names().join(", ")
        )));
    };
    let key = CacheKey::new(submit.digest, &submit.spec);
    let spec = key.spec.clone();
    let declared_ops = submit.ops;
    serve_content_job(
        reader,
        writer,
        shared,
        key,
        tag::RESULT,
        "range",
        submit.trace_bytes,
        submit.digest,
        |source| {
            let run = shared.engine.run_source(machine, source, &cfg)?;
            if run.result.ops.len() as u64 != declared_ops {
                return Err(ServeError::Protocol(format!(
                    "range submission declared {declared_ops} ops but the \
                     sub-trace carries {}",
                    run.result.ops.len()
                )));
            }
            Ok(protocol::encode_result(
                &spec,
                &run.result,
                run.peak_resident_ops as u64,
                &shared.energy,
            ))
        },
    )
}

/// A trace-statistics job: the same handshake and cache as a simulation
/// job, but the upload is folded through the single-pass
/// [`TraceStatistics`] collector instead of the engine — the Fig. 1/2/6
/// figures served as infrastructure.
fn handle_stats_job(
    reader: &mut TcpStream,
    writer: &ConnWriter,
    shared: &Shared,
    submit: &StatsSubmit,
) -> Result<(), ServeError> {
    serve_content_job(
        reader,
        writer,
        shared,
        CacheKey::new(submit.digest, STATS_SPEC),
        tag::TRACE_STATS_RESULT,
        "stats",
        submit.trace_bytes,
        submit.digest,
        |source| {
            let stats = TraceStatistics::from_source(source, Encoding::Canonical)?;
            Ok(TraceStatsReport::from_stats(&stats).encode())
        },
    )
}

/// An upload byte stream the codec can decode incrementally, with a
/// trailing-bytes check once the decoder is done. Implemented by the v2
/// [`BodyReader`] (frames read straight off the socket) and the v3
/// [`ChannelBody`] (frames routed from the connection's read loop).
trait UploadBody: Read {
    /// Confirms the upload ends exactly where the decoder stopped: any
    /// unconsumed bytes are an immediate protocol error.
    fn finish(&mut self) -> Result<(), ServeError>;
}

/// Reassembles `TRACE_DATA` frames into one [`io::Read`] stream (EOF at
/// `TRACE_END`). Digest and length verification of the upload belong to
/// the wrapping [`codec::Reader`], which hashes and counts every byte it
/// consumes — once [`UploadBody::finish`] succeeds, the decoder saw the
/// entire upload.
struct BodyReader<'a> {
    stream: &'a mut TcpStream,
    buf: Vec<u8>,
    pos: usize,
    done: bool,
}

impl<'a> BodyReader<'a> {
    fn new(stream: &'a mut TcpStream) -> Self {
        BodyReader {
            stream,
            buf: Vec::new(),
            pos: 0,
            done: false,
        }
    }

    /// Pulls the next data frame, returning `false` at `TRACE_END`.
    fn next_frame(&mut self) -> io::Result<bool> {
        debug_assert!(self.pos == self.buf.len() && !self.done);
        loop {
            let (frame_tag, payload) = read_frame(self.stream).map_err(|e| match e {
                ServeError::Io(io) => io,
                other => io::Error::new(io::ErrorKind::InvalidData, other.to_string()),
            })?;
            match frame_tag {
                tag::TRACE_DATA => {
                    if payload.is_empty() {
                        continue; // tolerate empty chunks
                    }
                    fpraker_telemetry::counter!("serve_bytes_in_total").add(payload.len() as u64);
                    self.buf = payload;
                    self.pos = 0;
                    return Ok(true);
                }
                tag::TRACE_END => {
                    self.done = true;
                    return Ok(false);
                }
                other => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("unexpected frame tag {other:#04x} inside a trace upload"),
                    ));
                }
            }
        }
    }
}

impl UploadBody for BodyReader<'_> {
    /// The rest of a malformed upload is *not* read (a client streaming
    /// surplus data cannot pin the connection); otherwise the closing
    /// `TRACE_END` frame is consumed.
    fn finish(&mut self) -> Result<(), ServeError> {
        let trailing = |n: usize| {
            Err(ServeError::Protocol(format!(
                "at least {n} bytes after the declared trace"
            )))
        };
        if self.pos < self.buf.len() {
            return trailing(self.buf.len() - self.pos);
        }
        if !self.done && self.next_frame().map_err(ServeError::Io)? {
            return trailing(self.buf.len());
        }
        Ok(())
    }
}

impl Read for BodyReader<'_> {
    fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
        if self.pos == self.buf.len() && (self.done || !self.next_frame()?) {
            return Ok(0);
        }
        let n = out.len().min(self.buf.len() - self.pos);
        out[..n].copy_from_slice(&self.buf[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

/// The v3 counterpart of [`BodyReader`]: upload chunks arrive through a
/// bounded channel fed by the connection's read loop (routed by job id)
/// instead of straight off the socket. EOF at the routed `JOB_DATA_END`;
/// a dropped sender (the connection died) reads as a broken pipe.
struct ChannelBody {
    rx: mpsc::Receiver<UploadMsg>,
    buf: Vec<u8>,
    pos: usize,
    done: bool,
    timeout: Option<Duration>,
}

impl ChannelBody {
    fn new(rx: mpsc::Receiver<UploadMsg>, timeout: Option<Duration>) -> Self {
        ChannelBody {
            rx,
            buf: Vec::new(),
            pos: 0,
            done: false,
            timeout,
        }
    }

    /// Pulls the next routed chunk, returning `false` at `JOB_DATA_END`.
    fn next_chunk(&mut self) -> io::Result<bool> {
        debug_assert!(self.pos == self.buf.len() && !self.done);
        loop {
            let msg = match self.timeout {
                Some(t) => self.rx.recv_timeout(t).map_err(|e| match e {
                    mpsc::RecvTimeoutError::Timeout => io::Error::new(
                        io::ErrorKind::TimedOut,
                        "timed out waiting for upload frames",
                    ),
                    mpsc::RecvTimeoutError::Disconnected => {
                        io::Error::new(io::ErrorKind::BrokenPipe, "connection closed mid-upload")
                    }
                })?,
                None => self.rx.recv().map_err(|_| {
                    io::Error::new(io::ErrorKind::BrokenPipe, "connection closed mid-upload")
                })?,
            };
            match msg {
                UploadMsg::Data(chunk) => {
                    if chunk.is_empty() {
                        continue; // tolerate empty chunks
                    }
                    self.buf = chunk;
                    self.pos = 0;
                    return Ok(true);
                }
                UploadMsg::End => {
                    self.done = true;
                    return Ok(false);
                }
            }
        }
    }
}

impl UploadBody for ChannelBody {
    fn finish(&mut self) -> Result<(), ServeError> {
        let trailing = |n: usize| {
            Err(ServeError::Protocol(format!(
                "at least {n} bytes after the declared trace"
            )))
        };
        if self.pos < self.buf.len() {
            return trailing(self.buf.len() - self.pos);
        }
        if !self.done && self.next_chunk().map_err(ServeError::Io)? {
            return trailing(self.buf.len());
        }
        Ok(())
    }
}

impl Read for ChannelBody {
    fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
        if self.pos == self.buf.len() && (self.done || !self.next_chunk()?) {
            return Ok(0);
        }
        let n = out.len().min(self.buf.len() - self.pos);
        out[..n].copy_from_slice(&self.buf[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

// MAX_FRAME_LEN is part of this module's contract with clients chunking
// uploads; referenced here so the doc link stays checked.
const _: () = assert!(MAX_FRAME_LEN as usize > protocol::TRACE_CHUNK);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_bounds_and_releases() {
        let q = JobQueue::new(2);
        let never = AtomicBool::new(false);
        assert_eq!(q.acquire(0, None, &never), Acquire::Acquired);
        assert_eq!(q.acquire(0, None, &never), Acquire::Acquired);
        {
            let s = q.state.lock().unwrap();
            assert_eq!(s.permits, 0);
        }
        q.release();
        // Would deadlock if the release was lost.
        assert_eq!(q.acquire(0, None, &never), Acquire::Acquired);
        q.release();
        q.release();
    }

    #[test]
    fn queue_respects_priority_then_arrival_order() {
        let q = Arc::new(JobQueue::new(1));
        let never = AtomicBool::new(false);
        assert_eq!(q.acquire(0, None, &never), Acquire::Acquired);
        let order = Arc::new(Mutex::new(Vec::new()));
        let mut handles = Vec::new();
        // Low-priority waiter arrives first, high-priority second; the
        // permit must go to the high-priority one.
        for (delay_ms, priority, name) in [(0u64, 1u8, "low"), (50, 9, "high")] {
            let q = Arc::clone(&q);
            let order = Arc::clone(&order);
            handles.push(std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(delay_ms));
                let never = AtomicBool::new(false);
                assert_eq!(q.acquire(priority, None, &never), Acquire::Acquired);
                order.lock().unwrap().push(name);
                std::thread::sleep(Duration::from_millis(20));
                q.release();
            }));
        }
        // Let both enqueue before freeing the permit.
        std::thread::sleep(Duration::from_millis(150));
        q.release();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*order.lock().unwrap(), vec!["high", "low"]);
    }

    #[test]
    fn queue_cancellation_and_deadline_release_waiters() {
        let q = JobQueue::new(1);
        let never = AtomicBool::new(false);
        assert_eq!(q.acquire(0, None, &never), Acquire::Acquired);
        // Pre-set cancel flag: observed before waiting.
        let cancelled = AtomicBool::new(true);
        assert_eq!(q.acquire(0, None, &cancelled), Acquire::Cancelled);
        // Deadline in the past: expires immediately.
        let past = Instant::now() - Duration::from_millis(1);
        assert_eq!(q.acquire(0, Some(past), &never), Acquire::DeadlineExpired);
        // Neither leaked a waiting entry or a permit.
        assert_eq!(q.queued(), 0);
        q.release();
        assert_eq!(q.acquire(0, None, &never), Acquire::Acquired);
        q.release();
    }

    #[test]
    fn saturation_counts_waiters_only_when_out_of_permits() {
        let q = JobQueue::new(1);
        assert!(!q.saturated(0), "free permit is never saturated");
        let never = AtomicBool::new(false);
        assert_eq!(q.acquire(0, None, &never), Acquire::Acquired);
        assert!(q.saturated(0), "no permit + depth 0 refuses immediately");
        assert!(!q.saturated(1), "depth 1 admits one waiter");
        q.release();
    }

    #[test]
    fn server_binds_ephemeral_port_and_shuts_down() {
        let server = Server::start(ServerConfig::default()).unwrap();
        assert_ne!(server.local_addr().port(), 0);
        assert_eq!(server.cache_stats().hits, 0);
        server.shutdown();
    }
}
