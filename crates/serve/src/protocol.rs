//! The length-framed wire protocol between `fpraker-serve` clients and
//! the server.
//!
//! Every message is one **frame**: a tag byte, a `u32` little-endian
//! payload length, then the payload. Frames are capped at
//! [`MAX_FRAME_LEN`] bytes so a corrupt or hostile length prefix cannot
//! force a huge allocation; trace uploads of any size are split across
//! many [`tag::TRACE_DATA`] frames instead. The trace payload itself is
//! the unmodified [`fpraker_trace::codec`] byte stream — the server feeds
//! the reassembled frames straight into an incremental
//! [`fpraker_trace::codec::Reader`], so there is exactly one trace codec
//! end to end.
//!
//! A job is one half-duplex exchange on a fresh connection:
//!
//! ```text
//! client                                server
//!   ── SUBMIT {spec, digest, len} ──▶
//!                                     (cache hit)
//!   ◀── RESULT {cached=1, payload} ──
//!                                     (cache miss)
//!   ◀── NEED_TRACE ─────────────────
//!   ── TRACE_DATA × n ──────────────▶  (streamed into the simulator)
//!   ── TRACE_END ───────────────────▶
//!   ◀── RESULT {cached=0, payload} ──
//! ```
//!
//! A [`tag::STATS`] request (instead of `SUBMIT`) returns server counters.
//! Any violation is answered with a [`tag::ERROR`] frame carrying a UTF-8
//! message, after which the server closes the connection — but keeps
//! accepting new ones.
//!
//! # Protocol v3: tagged frames and pipelining
//!
//! Version 3 multiplexes many jobs over one connection. A
//! [`tag::SUBMIT_JOB`] frame carries a client-chosen `job_id` plus a
//! priority and an optional deadline; every server response for that job
//! ([`tag::JOB_NEED_TRACE`], [`tag::JOB_RESULT`], [`tag::JOB_ERROR`],
//! [`tag::BUSY`]) echoes the id back, so responses may arrive in any
//! order and a reader thread on the client demuxes them into per-job
//! channels:
//!
//! ```text
//! client                                      server
//!   ── SUBMIT_JOB {id=1, …} ───────▶
//!   ── SUBMIT_JOB {id=2, …} ───────▶
//!   ◀── JOB_RESULT {id=2, cached=1} ──        (id 2 was warm)
//!   ◀── JOB_NEED_TRACE {id=1} ──────
//!   ── JOB_DATA {id=1} × n ────────▶
//!   ── JOB_DATA_END {id=1} ────────▶
//!   ── SUBMIT_JOB {id=3, …} ───────▶          (pipelined behind the upload)
//!   ◀── BUSY {id=3, retry_after_ms} ──        (pool saturated past the queue depth)
//!   ◀── JOB_RESULT {id=1, cached=0} ──
//! ```
//!
//! Upload chunks are tagged too ([`tag::JOB_DATA`]/[`tag::JOB_DATA_END`]
//! carry the `job_id`), so uploads for different jobs may interleave.
//! [`tag::CANCEL`] drops a *queued* job (answered with a
//! [`tag::JOB_ERROR`] carrying [`job_error::CANCELLED`]) and is a no-op
//! for a running or unknown one. A job whose deadline lapses while
//! queued is answered with [`job_error::DEADLINE`]. Untagged v2 frames
//! remain valid on the same port and are served with the old serial
//! semantics (conceptually `job_id 0`), so v2 clients keep working.

use std::error::Error;
use std::fmt;
use std::io;
use std::io::{Read, Write};

use fpraker_energy::{EnergyModel, EventCounts};
use fpraker_sim::{Machine, RunResult};
use fpraker_trace::{DecodeError, Phase};

/// Magic bytes opening every [`tag::SUBMIT`]/[`tag::STATS`] payload, so
/// the server can reject non-protocol traffic with a clear error.
pub const PROTOCOL_MAGIC: &[u8; 4] = b"FPRS";
/// Wire protocol version. Version 2 added the segment-range submit
/// ([`tag::SUBMIT_RANGE`]) and per-op [`EventCounts`] in result payloads
/// (what lets a shard coordinator re-derive total energy from integer
/// sums instead of adding per-shard floats). Version 3 added tagged
/// frames: job ids, priorities, deadlines, cancellation and explicit
/// `BUSY` backpressure, so one connection can carry many jobs in flight.
pub const PROTOCOL_VERSION: u8 = 3;
/// The oldest protocol version the server still accepts. Untagged v2
/// frames are served with serial semantics, and the v2-dialect encoders
/// below keep stamping this version so their requests stay valid against
/// v2 servers too.
pub const LEGACY_PROTOCOL_VERSION: u8 = 2;
/// Hard cap on a single frame's payload (4 MiB). Larger uploads are
/// chunked; a length prefix above this is a protocol error, mirroring the
/// trace codec's bounded-allocation discipline.
pub const MAX_FRAME_LEN: u32 = 4 << 20;
/// Chunk size clients use when streaming trace bytes (64 KiB).
pub const TRACE_CHUNK: usize = 64 << 10;

/// Frame tags. Client→server tags have the high bit clear, server→client
/// tags have it set.
pub mod tag {
    /// Client→server: job submission header (spec, digest, byte length).
    pub const SUBMIT: u8 = 0x01;
    /// Client→server: a chunk of the trace's codec byte stream.
    pub const TRACE_DATA: u8 = 0x02;
    /// Client→server: end of the trace byte stream (empty payload).
    pub const TRACE_END: u8 = 0x03;
    /// Client→server: server-counters request (empty payload after magic).
    pub const STATS: u8 = 0x04;
    /// Client→server: trace-statistics job submission (digest, byte
    /// length) — the upload handshake of [`SUBMIT`] — but
    /// the server folds `fpraker_trace::stats::TraceStatistics` over the
    /// stream instead of simulating it.
    pub const SUBMIT_STATS: u8 = 0x05;
    /// Client→server: segment-range job submission — the upload handshake
    /// of [`SUBMIT`], but the payload the client streams is a
    /// self-contained **sub-trace** (a fresh header plus a raw byte-range
    /// of ops extracted from an indexed trace), and the header declares
    /// which global op range it covers so the server can cross-check the
    /// decoded op count. Cache-keyed by content digest exactly like
    /// [`SUBMIT`], so a retried shard is a warm cache hit.
    pub const SUBMIT_RANGE: u8 = 0x06;
    /// Client→server: telemetry-metrics request (empty payload after
    /// magic). Answered with [`METRICS_RESULT`].
    pub const METRICS: u8 = 0x07;
    /// Server→client: cache miss — stream the trace now (empty payload).
    pub const NEED_TRACE: u8 = 0x81;
    /// Server→client: the job's result payload, prefixed by a cached flag.
    pub const RESULT: u8 = 0x82;
    /// Server→client: UTF-8 error message; the connection closes after.
    pub const ERROR: u8 = 0x83;
    /// Server→client: server counters.
    pub const STATS_RESULT: u8 = 0x84;
    /// Server→client: a trace-statistics job's result payload, prefixed
    /// by a cached flag.
    pub const TRACE_STATS_RESULT: u8 = 0x85;
    /// Server→client: Prometheus-style UTF-8 metrics text (the server's
    /// runtime telemetry plus its [`super::ServerStats`] counters).
    pub const METRICS_RESULT: u8 = 0x86;
    /// Client→server (v3): tagged job submission — a client-chosen
    /// `job_id`, a priority, an optional deadline and the job kind
    /// (simulate / segment-range / trace-statistics). Decoded by
    /// [`super::JobSubmit::decode`].
    pub const SUBMIT_JOB: u8 = 0x10;
    /// Client→server (v3): a chunk of one job's trace byte stream,
    /// prefixed by the `job_id` it belongs to.
    pub const JOB_DATA: u8 = 0x12;
    /// Client→server (v3): end of one job's trace byte stream (payload is
    /// the `job_id` alone).
    pub const JOB_DATA_END: u8 = 0x13;
    /// Client→server (v3): cancel a queued job. Drops it from the queue
    /// (the job answers with [`super::job_error::CANCELLED`]); a no-op
    /// for running or unknown jobs.
    pub const CANCEL: u8 = 0x14;
    /// Server→client (v3): one job's result payload — `job_id`, cached
    /// flag, then the same result payload as [`RESULT`].
    pub const JOB_RESULT: u8 = 0x90;
    /// Server→client (v3): one trace-statistics job's result payload —
    /// `job_id`, cached flag, then the same payload as
    /// [`TRACE_STATS_RESULT`].
    pub const JOB_STATS_RESULT: u8 = 0x91;
    /// Server→client (v3): cache miss for one job — stream its trace now
    /// (payload is the `job_id`).
    pub const JOB_NEED_TRACE: u8 = 0x92;
    /// Server→client (v3): one job failed — `job_id`, a
    /// [`super::job_error`] code byte, then a UTF-8 message. Only that
    /// job dies; the connection and its other in-flight jobs are
    /// unaffected.
    pub const JOB_ERROR: u8 = 0x93;
    /// Server→client (v3): explicit backpressure — the job pool is
    /// saturated past the configured queue depth, retry after the carried
    /// hint (`job_id` + `retry_after_ms`). The job was not queued.
    pub const BUSY: u8 = 0x94;
}

/// Error codes carried by a [`tag::JOB_ERROR`] frame, so clients can
/// distinguish *why* a job died without parsing the message text.
pub mod job_error {
    /// The job itself failed (bad spec, digest mismatch, corrupt trace…).
    pub const GENERIC: u8 = 0;
    /// The job was cancelled by a [`super::tag::CANCEL`] frame while
    /// still queued.
    pub const CANCELLED: u8 = 1;
    /// The job's deadline lapsed before it reached the front of the
    /// queue.
    pub const DEADLINE: u8 = 2;
}

/// Everything that can go wrong on either side of the protocol.
#[derive(Debug)]
pub enum ServeError {
    /// Socket-level failure (includes mid-upload disconnects).
    Io(io::Error),
    /// The peer violated the protocol (bad tag, oversized frame, …).
    Protocol(String),
    /// The server answered with an [`tag::ERROR`] frame.
    Remote(String),
    /// The uploaded trace failed to decode.
    Trace(DecodeError),
    /// The server answered [`tag::BUSY`]: the job pool is saturated past
    /// its queue depth. Retry after the carried hint.
    Busy {
        /// Server's suggested wait before retrying, in milliseconds.
        retry_after_ms: u32,
    },
    /// The job was cancelled while queued ([`job_error::CANCELLED`]).
    Cancelled,
    /// The job's deadline lapsed before it ran ([`job_error::DEADLINE`]).
    DeadlineExpired,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "i/o error: {e}"),
            ServeError::Protocol(m) => write!(f, "protocol error: {m}"),
            ServeError::Remote(m) => write!(f, "server error: {m}"),
            ServeError::Trace(e) => write!(f, "trace error: {e}"),
            ServeError::Busy { retry_after_ms } => {
                write!(f, "server busy: retry after {retry_after_ms} ms")
            }
            ServeError::Cancelled => write!(f, "job cancelled while queued"),
            ServeError::DeadlineExpired => write!(f, "job deadline expired while queued"),
        }
    }
}

impl Error for ServeError {}

impl From<io::Error> for ServeError {
    fn from(e: io::Error) -> Self {
        ServeError::Io(e)
    }
}

impl From<DecodeError> for ServeError {
    fn from(e: DecodeError) -> Self {
        ServeError::Trace(e)
    }
}

/// Writes one frame: tag, `u32` length, payload.
///
/// # Errors
///
/// Rejects payloads above [`MAX_FRAME_LEN`] (callers chunk instead);
/// otherwise propagates I/O errors.
pub fn write_frame<W: Write>(w: &mut W, tag: u8, payload: &[u8]) -> Result<(), ServeError> {
    let len = u32::try_from(payload.len())
        .ok()
        .filter(|&l| l <= MAX_FRAME_LEN)
        .ok_or_else(|| ServeError::Protocol(format!("frame of {} bytes", payload.len())))?;
    w.write_all(&[tag])?;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(payload)?;
    Ok(())
}

/// Reads one frame, enforcing [`MAX_FRAME_LEN`] *before* allocating.
///
/// # Errors
///
/// `Protocol` on an oversized length prefix, `Io` on socket failures
/// (including a peer that disconnected mid-frame).
pub fn read_frame<R: Read>(r: &mut R) -> Result<(u8, Vec<u8>), ServeError> {
    let mut head = [0u8; 5];
    r.read_exact(&mut head)?;
    let tag = head[0];
    let len = u32::from_le_bytes([head[1], head[2], head[3], head[4]]);
    if len > MAX_FRAME_LEN {
        return Err(ServeError::Protocol(format!(
            "length prefix {len} exceeds the {MAX_FRAME_LEN}-byte frame cap"
        )));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok((tag, payload))
}

/// A parsed [`tag::SUBMIT`] payload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Submit {
    /// Machine spec name, resolved through `fpraker_sim::resolve_machine`.
    pub spec: String,
    /// FNV-1a content digest of the trace's encoded bytes
    /// ([`fpraker_trace::digest`]).
    pub digest: u64,
    /// Exact length of the encoded trace in bytes.
    pub trace_bytes: u64,
}

impl Submit {
    /// Serializes the submission header.
    ///
    /// # Panics
    ///
    /// Panics if the spec name exceeds the u16 length prefix (65535
    /// bytes) — silently wrapping the length would corrupt the payload.
    /// [`crate::Client`] validates spec names before encoding, so library
    /// users never hit this.
    pub fn encode(&self) -> Vec<u8> {
        u16::try_from(self.spec.len()).expect("spec name exceeds the u16 length prefix");
        let mut out = Vec::with_capacity(4 + 1 + 8 + 8 + 2 + self.spec.len());
        out.extend_from_slice(PROTOCOL_MAGIC);
        out.push(LEGACY_PROTOCOL_VERSION);
        out.extend_from_slice(&self.digest.to_le_bytes());
        out.extend_from_slice(&self.trace_bytes.to_le_bytes());
        out.extend_from_slice(&(self.spec.len() as u16).to_le_bytes());
        out.extend_from_slice(self.spec.as_bytes());
        out
    }

    /// Parses a submission header, validating magic and version.
    ///
    /// # Errors
    ///
    /// `Protocol` on bad magic, unsupported version, or a malformed
    /// payload.
    pub fn decode(payload: &[u8]) -> Result<Self, ServeError> {
        let mut c = Cursor::new(payload);
        check_preamble(&mut c)?;
        let digest = c.u64()?;
        let trace_bytes = c.u64()?;
        let spec = c.string()?;
        c.finish()?;
        Ok(Submit {
            spec,
            digest,
            trace_bytes,
        })
    }
}

/// A parsed [`tag::SUBMIT_RANGE`] payload: a [`Submit`] plus the global
/// op range the uploaded sub-trace covers. The range does not enter the
/// cache key (content digest + spec already identify the work — identical
/// shard bytes share a cache entry wherever they sit in a trace); it lets
/// the server cross-check that the sub-trace really carries `ops` ops and
/// lets the coordinator label the partial result for the ordered merge.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RangeSubmit {
    /// Machine spec name, resolved through `fpraker_sim::resolve_machine`.
    pub spec: String,
    /// FNV-1a content digest of the **sub-trace's** encoded bytes.
    pub digest: u64,
    /// Exact length of the encoded sub-trace in bytes.
    pub trace_bytes: u64,
    /// Global index of the first op in the range.
    pub first_op: u64,
    /// Number of ops in the range.
    pub ops: u64,
}

impl RangeSubmit {
    /// Serializes the submission header.
    ///
    /// # Panics
    ///
    /// Panics if the spec name exceeds the u16 length prefix, like
    /// [`Submit::encode`].
    pub fn encode(&self) -> Vec<u8> {
        u16::try_from(self.spec.len()).expect("spec name exceeds the u16 length prefix");
        let mut out = Vec::with_capacity(4 + 1 + 8 + 8 + 8 + 8 + 2 + self.spec.len());
        out.extend_from_slice(PROTOCOL_MAGIC);
        out.push(LEGACY_PROTOCOL_VERSION);
        out.extend_from_slice(&self.digest.to_le_bytes());
        out.extend_from_slice(&self.trace_bytes.to_le_bytes());
        out.extend_from_slice(&self.first_op.to_le_bytes());
        out.extend_from_slice(&self.ops.to_le_bytes());
        out.extend_from_slice(&(self.spec.len() as u16).to_le_bytes());
        out.extend_from_slice(self.spec.as_bytes());
        out
    }

    /// Parses a submission header, validating magic and version.
    ///
    /// # Errors
    ///
    /// `Protocol` on bad magic, unsupported version, or a malformed
    /// payload.
    pub fn decode(payload: &[u8]) -> Result<Self, ServeError> {
        let mut c = Cursor::new(payload);
        check_preamble(&mut c)?;
        let digest = c.u64()?;
        let trace_bytes = c.u64()?;
        let first_op = c.u64()?;
        let ops = c.u64()?;
        let spec = c.string()?;
        c.finish()?;
        Ok(RangeSubmit {
            spec,
            digest,
            trace_bytes,
            first_op,
            ops,
        })
    }
}

/// A parsed [`tag::SUBMIT_STATS`] payload: a job identified by content
/// alone (no machine spec — statistics are a property of the trace).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StatsSubmit {
    /// FNV-1a content digest of the trace's encoded bytes.
    pub digest: u64,
    /// Exact length of the encoded trace in bytes.
    pub trace_bytes: u64,
}

impl StatsSubmit {
    /// Serializes the submission header.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(4 + 1 + 8 + 8);
        out.extend_from_slice(PROTOCOL_MAGIC);
        out.push(LEGACY_PROTOCOL_VERSION);
        out.extend_from_slice(&self.digest.to_le_bytes());
        out.extend_from_slice(&self.trace_bytes.to_le_bytes());
        out
    }

    /// Parses a submission header, validating magic and version.
    ///
    /// # Errors
    ///
    /// `Protocol` on bad magic, unsupported version, or a malformed
    /// payload.
    pub fn decode(payload: &[u8]) -> Result<Self, ServeError> {
        let mut c = Cursor::new(payload);
        check_preamble(&mut c)?;
        let digest = c.u64()?;
        let trace_bytes = c.u64()?;
        c.finish()?;
        Ok(StatsSubmit {
            digest,
            trace_bytes,
        })
    }
}

/// What a v3 tagged job asks the server to do. The three kinds mirror the
/// untagged [`Submit`]/[`RangeSubmit`]/[`StatsSubmit`] headers — same
/// fields, same cache keys — so a tagged job and its untagged twin share
/// a cache entry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JobKind {
    /// Full-trace simulation (the tagged [`Submit`]).
    Sim {
        /// Machine spec name, resolved through
        /// `fpraker_sim::resolve_machine`.
        spec: String,
    },
    /// Segment-range simulation (the tagged [`RangeSubmit`]).
    Range {
        /// Machine spec name.
        spec: String,
        /// Global index of the first op in the range.
        first_op: u64,
        /// Number of ops in the range.
        ops: u64,
    },
    /// Trace statistics (the tagged [`StatsSubmit`]).
    Stats,
}

impl JobKind {
    fn tag(&self) -> u8 {
        match self {
            JobKind::Sim { .. } => 0,
            JobKind::Range { .. } => 1,
            JobKind::Stats => 2,
        }
    }
}

/// A parsed [`tag::SUBMIT_JOB`] payload: the v3 tagged job header.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JobSubmit {
    /// Client-chosen job id, echoed back in every response frame for the
    /// job. Must not collide with another job in flight on the same
    /// connection.
    pub job_id: u64,
    /// Scheduling priority (higher runs sooner; ties run in submission
    /// order).
    pub priority: u8,
    /// Queueing deadline in milliseconds from receipt; `0` means none. A
    /// job still queued when it lapses dies with [`job_error::DEADLINE`].
    pub deadline_ms: u32,
    /// FNV-1a content digest of the trace's encoded bytes.
    pub digest: u64,
    /// Exact length of the encoded trace in bytes.
    pub trace_bytes: u64,
    /// What to do with the trace.
    pub kind: JobKind,
}

impl JobSubmit {
    /// Serializes the tagged job header (always stamps version 3).
    ///
    /// # Panics
    ///
    /// Panics if the spec name exceeds the u16 length prefix, like
    /// [`Submit::encode`].
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(4 + 1 + 8 + 1 + 4 + 1 + 8 + 8 + 32);
        out.extend_from_slice(PROTOCOL_MAGIC);
        out.push(PROTOCOL_VERSION);
        out.extend_from_slice(&self.job_id.to_le_bytes());
        out.push(self.priority);
        out.extend_from_slice(&self.deadline_ms.to_le_bytes());
        out.push(self.kind.tag());
        out.extend_from_slice(&self.digest.to_le_bytes());
        out.extend_from_slice(&self.trace_bytes.to_le_bytes());
        match &self.kind {
            JobKind::Sim { spec } => {
                u16::try_from(spec.len()).expect("spec name exceeds the u16 length prefix");
                out.extend_from_slice(&(spec.len() as u16).to_le_bytes());
                out.extend_from_slice(spec.as_bytes());
            }
            JobKind::Range {
                spec,
                first_op,
                ops,
            } => {
                u16::try_from(spec.len()).expect("spec name exceeds the u16 length prefix");
                out.extend_from_slice(&first_op.to_le_bytes());
                out.extend_from_slice(&ops.to_le_bytes());
                out.extend_from_slice(&(spec.len() as u16).to_le_bytes());
                out.extend_from_slice(spec.as_bytes());
            }
            JobKind::Stats => {}
        }
        out
    }

    /// Parses a tagged job header, validating magic and (exact) version.
    ///
    /// # Errors
    ///
    /// `Protocol` on bad magic, a non-v3 version byte, an unknown kind
    /// tag, or a malformed payload.
    pub fn decode(payload: &[u8]) -> Result<Self, ServeError> {
        let mut c = Cursor::new(payload);
        check_v3_preamble(&mut c)?;
        let job_id = c.u64()?;
        let priority = c.u8()?;
        let deadline_ms = c.u32()?;
        let kind_tag = c.u8()?;
        let digest = c.u64()?;
        let trace_bytes = c.u64()?;
        let kind = match kind_tag {
            0 => JobKind::Sim { spec: c.string()? },
            1 => {
                let first_op = c.u64()?;
                let ops = c.u64()?;
                JobKind::Range {
                    spec: c.string()?,
                    first_op,
                    ops,
                }
            }
            2 => JobKind::Stats,
            other => return Err(ServeError::Protocol(format!("bad job kind tag {other}"))),
        };
        c.finish()?;
        Ok(JobSubmit {
            job_id,
            priority,
            deadline_ms,
            digest,
            trace_bytes,
            kind,
        })
    }
}

/// Encodes a [`tag::CANCEL`] payload.
pub fn encode_cancel(job_id: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + 1 + 8);
    out.extend_from_slice(PROTOCOL_MAGIC);
    out.push(PROTOCOL_VERSION);
    out.extend_from_slice(&job_id.to_le_bytes());
    out
}

/// Parses a [`tag::CANCEL`] payload into the job id to cancel.
///
/// # Errors
///
/// `Protocol` on bad magic/version or a malformed payload.
pub fn decode_cancel(payload: &[u8]) -> Result<u64, ServeError> {
    let mut c = Cursor::new(payload);
    check_v3_preamble(&mut c)?;
    let job_id = c.u64()?;
    c.finish()?;
    Ok(job_id)
}

/// Prefixes a v3 per-job payload with its `job_id` (the layout of
/// [`tag::JOB_DATA`]/[`tag::JOB_DATA_END`]/[`tag::JOB_NEED_TRACE`] and
/// the header of every tagged response).
pub fn encode_job_payload(job_id: u64, body: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + body.len());
    out.extend_from_slice(&job_id.to_le_bytes());
    out.extend_from_slice(body);
    out
}

/// Splits a v3 per-job payload into its `job_id` prefix and the rest.
///
/// # Errors
///
/// `Protocol` if the payload is shorter than the 8-byte id.
pub fn split_job_payload(payload: &[u8]) -> Result<(u64, &[u8]), ServeError> {
    if payload.len() < 8 {
        return Err(ServeError::Protocol("truncated job payload".into()));
    }
    let (id, rest) = payload.split_at(8);
    Ok((u64::from_le_bytes(id.try_into().unwrap()), rest))
}

/// Encodes a [`tag::BUSY`] payload.
pub fn encode_busy(job_id: u64, retry_after_ms: u32) -> Vec<u8> {
    let mut out = Vec::with_capacity(12);
    out.extend_from_slice(&job_id.to_le_bytes());
    out.extend_from_slice(&retry_after_ms.to_le_bytes());
    out
}

/// Parses a [`tag::BUSY`] payload into `(job_id, retry_after_ms)`.
///
/// # Errors
///
/// `Protocol` on a malformed payload.
pub fn decode_busy(payload: &[u8]) -> Result<(u64, u32), ServeError> {
    let mut c = Cursor::new(payload);
    let job_id = c.u64()?;
    let retry_after_ms = c.u32()?;
    c.finish()?;
    Ok((job_id, retry_after_ms))
}

/// Encodes a [`tag::JOB_ERROR`] payload.
pub fn encode_job_error(job_id: u64, code: u8, message: &str) -> Vec<u8> {
    let mut out = Vec::with_capacity(9 + message.len());
    out.extend_from_slice(&job_id.to_le_bytes());
    out.push(code);
    out.extend_from_slice(message.as_bytes());
    out
}

/// Parses a [`tag::JOB_ERROR`] payload into `(job_id, code, message)`.
///
/// # Errors
///
/// `Protocol` on a malformed payload or invalid UTF-8 in the message.
pub fn decode_job_error(payload: &[u8]) -> Result<(u64, u8, String), ServeError> {
    if payload.len() < 9 {
        return Err(ServeError::Protocol("truncated job error payload".into()));
    }
    let job_id = u64::from_le_bytes(payload[..8].try_into().unwrap());
    let code = payload[8];
    let message = String::from_utf8(payload[9..].to_vec())
        .map_err(|_| ServeError::Protocol("invalid utf-8 in job error".into()))?;
    Ok((job_id, code, message))
}

/// Maps a [`tag::JOB_ERROR`] frame to the [`ServeError`] a client should
/// surface: the cancel / deadline codes become their typed variants,
/// everything else is a [`ServeError::Remote`].
pub fn job_error_to_serve_error(code: u8, message: String) -> ServeError {
    match code {
        job_error::CANCELLED => ServeError::Cancelled,
        job_error::DEADLINE => ServeError::DeadlineExpired,
        _ => ServeError::Remote(message),
    }
}

/// Validates the `FPRS` magic + version preamble of a request payload and
/// returns the negotiated version. Versions [`LEGACY_PROTOCOL_VERSION`]
/// through [`PROTOCOL_VERSION`] are accepted on the untagged v2 frames —
/// that range *is* the version negotiation: a v2 client's preamble parses
/// on a v3 server, and anything newer (or older) is rejected with a clear
/// error.
fn check_preamble(c: &mut Cursor<'_>) -> Result<u8, ServeError> {
    let magic = c.bytes(4)?;
    if magic != PROTOCOL_MAGIC {
        return Err(ServeError::Protocol("bad protocol magic".into()));
    }
    let version = c.u8()?;
    if !(LEGACY_PROTOCOL_VERSION..=PROTOCOL_VERSION).contains(&version) {
        return Err(ServeError::Protocol(format!(
            "unsupported protocol version {version} (supported: \
             {LEGACY_PROTOCOL_VERSION}..={PROTOCOL_VERSION})"
        )));
    }
    Ok(version)
}

/// Validates the preamble of a v3-only payload: the version must be
/// exactly [`PROTOCOL_VERSION`] — tagged frames did not exist before v3,
/// so a v2 version byte inside one is a contradiction worth rejecting.
fn check_v3_preamble(c: &mut Cursor<'_>) -> Result<(), ServeError> {
    let magic = c.bytes(4)?;
    if magic != PROTOCOL_MAGIC {
        return Err(ServeError::Protocol("bad protocol magic".into()));
    }
    let version = c.u8()?;
    if version != PROTOCOL_VERSION {
        return Err(ServeError::Protocol(format!(
            "tagged frames require protocol version {PROTOCOL_VERSION}, got {version}"
        )));
    }
    Ok(())
}

/// Encodes a [`tag::STATS`] request payload (magic + version only).
pub fn encode_stats_request() -> Vec<u8> {
    let mut out = Vec::with_capacity(5);
    out.extend_from_slice(PROTOCOL_MAGIC);
    out.push(LEGACY_PROTOCOL_VERSION);
    out
}

/// Parses a [`tag::STATS`] request payload.
///
/// # Errors
///
/// `Protocol` on bad magic/version or trailing bytes.
pub fn decode_stats_request(payload: &[u8]) -> Result<(), ServeError> {
    let mut c = Cursor::new(payload);
    check_preamble(&mut c)?;
    c.finish()
}

/// Encodes a [`tag::METRICS`] request payload (magic + version only).
pub fn encode_metrics_request() -> Vec<u8> {
    let mut out = Vec::with_capacity(5);
    out.extend_from_slice(PROTOCOL_MAGIC);
    out.push(LEGACY_PROTOCOL_VERSION);
    out
}

/// Parses a [`tag::METRICS`] request payload.
///
/// # Errors
///
/// `Protocol` on bad magic/version or trailing bytes.
pub fn decode_metrics_request(payload: &[u8]) -> Result<(), ServeError> {
    let mut c = Cursor::new(payload);
    check_preamble(&mut c)?;
    c.finish()
}

/// Server counters returned by a [`tag::STATS`] request.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Simulations actually run (cache misses carried to completion).
    pub jobs_completed: u64,
    /// Result-cache hits.
    pub cache_hits: u64,
    /// Result-cache misses.
    pub cache_misses: u64,
    /// Entries currently cached.
    pub cache_entries: u64,
    /// Cache capacity in entries.
    pub cache_capacity: u64,
    /// Entries evicted from the in-memory cache (LRU pressure). Counted
    /// in [`super::CacheStats`] itself so evictions racing a post-wait
    /// re-check are visible here too.
    pub cache_evictions: u64,
    /// Result-payload bytes currently resident in the in-memory cache.
    pub cache_resident_bytes: u64,
    /// Resident-byte ceiling of the in-memory cache (0 = unbounded).
    pub cache_capacity_bytes: u64,
    /// Jobs holding a pool permit right now (acquired, not yet finished).
    pub jobs_in_flight: u64,
    /// Jobs waiting in the priority queue right now.
    pub jobs_queued: u64,
    /// Jobs refused with [`tag::BUSY`] because the queue was saturated.
    pub busy_rejections: u64,
    /// Queued jobs dropped by a [`tag::CANCEL`] frame.
    pub jobs_cancelled: u64,
    /// Queued jobs whose deadline lapsed before they ran.
    pub jobs_deadline_expired: u64,
}

impl ServerStats {
    /// Serializes the counters.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(13 * 8);
        for v in [
            self.jobs_completed,
            self.cache_hits,
            self.cache_misses,
            self.cache_entries,
            self.cache_capacity,
            self.cache_evictions,
            self.cache_resident_bytes,
            self.cache_capacity_bytes,
            self.jobs_in_flight,
            self.jobs_queued,
            self.busy_rejections,
            self.jobs_cancelled,
            self.jobs_deadline_expired,
        ] {
            out.extend_from_slice(&v.to_le_bytes());
        }
        out
    }

    /// Parses the counters. Accepts the v2 40-byte payload too (a v3
    /// client talking to a v2 server sees zeros for the newer counters).
    ///
    /// # Errors
    ///
    /// `Protocol` on a malformed payload.
    pub fn decode(payload: &[u8]) -> Result<Self, ServeError> {
        let mut c = Cursor::new(payload);
        let mut stats = ServerStats {
            jobs_completed: c.u64()?,
            cache_hits: c.u64()?,
            cache_misses: c.u64()?,
            cache_entries: c.u64()?,
            cache_capacity: c.u64()?,
            ..ServerStats::default()
        };
        if payload.len() > 40 {
            stats.cache_evictions = c.u64()?;
            stats.cache_resident_bytes = c.u64()?;
            stats.cache_capacity_bytes = c.u64()?;
            stats.jobs_in_flight = c.u64()?;
            stats.jobs_queued = c.u64()?;
            stats.busy_rejections = c.u64()?;
            stats.jobs_cancelled = c.u64()?;
            stats.jobs_deadline_expired = c.u64()?;
        }
        c.finish()?;
        Ok(stats)
    }
}

/// Per-tensor-kind statistics of a served trace-statistics job: the raw
/// integer counts behind the paper's Fig. 1 (value/term sparsity) and
/// Fig. 6 (exponent histogram) for one tensor kind. Integers end to end,
/// so cached replays are bit-identical by construction.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct KindStats {
    /// Weighted values observed.
    pub values: u64,
    /// Weighted zero values.
    pub zeros: u64,
    /// Weighted significand digit slots (8 per value).
    pub slots: u64,
    /// Weighted non-zero terms after canonical encoding.
    pub terms: u64,
    /// Unweighted values in the exponent histogram.
    pub exp_total: u64,
    /// Unweighted zero values (no exponent).
    pub exp_zeros: u64,
    /// `(unbiased exponent, count)` pairs, ascending.
    pub exponents: Vec<(i32, u64)>,
}

impl KindStats {
    /// Fraction of values that are zero (Fig. 1a).
    pub fn value_sparsity(&self) -> f64 {
        if self.values == 0 {
            0.0
        } else {
            self.zeros as f64 / self.values as f64
        }
    }

    /// Fraction of digit slots carrying no term (Fig. 1b).
    pub fn term_sparsity(&self) -> f64 {
        if self.slots == 0 {
            0.0
        } else {
            1.0 - self.terms as f64 / self.slots as f64
        }
    }
}

/// Per-phase ideal-speedup counts of a served trace-statistics job
/// (Fig. 2 / Eq. 4).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PhaseStats {
    /// Phase name (`AxW`, `AxG`, `GxW`).
    pub phase: String,
    /// Weighted digit slots of the serial operands.
    pub slots: u64,
    /// Weighted non-zero terms.
    pub terms: u64,
    /// MACs in the phase.
    pub macs: u64,
}

impl PhaseStats {
    /// Eq. 4: `#MACs / (term_occupancy × #MACs)`.
    pub fn potential_speedup(&self) -> f64 {
        let occupancy = if self.slots == 0 {
            1.0
        } else {
            self.terms as f64 / self.slots as f64
        };
        if occupancy <= 0.0 {
            f64::INFINITY
        } else {
            1.0 / occupancy
        }
    }
}

/// A trace-statistics job's result: everything
/// `fpraker_trace::stats::TraceStatistics` computes, flattened to exact
/// integer counts for the wire. Built with [`TraceStatsReport::from_stats`]
/// on the server; compare a served report against a local
/// `TraceStatistics` the same way.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TraceStatsReport {
    /// Activation statistics.
    pub activation: KindStats,
    /// Weight statistics.
    pub weight: KindStats,
    /// Gradient statistics.
    pub gradient: KindStats,
    /// Per-phase potential, in phase-name order.
    pub phases: Vec<PhaseStats>,
}

impl TraceStatsReport {
    /// Flattens a computed `TraceStatistics` into the wire report.
    pub fn from_stats(stats: &fpraker_trace::stats::TraceStatistics) -> Self {
        use fpraker_trace::TensorKind;

        let kind = |k: TensorKind| {
            let s = stats.sparsity.kind(k);
            let (_, hist) = stats
                .exponents
                .iter()
                .find(|(hk, _)| *hk == k)
                .expect("all three kinds present");
            KindStats {
                values: s.values,
                zeros: s.zeros,
                slots: s.slots,
                terms: s.terms,
                exp_total: hist.total,
                exp_zeros: hist.zeros,
                exponents: hist.counts().collect(),
            }
        };
        TraceStatsReport {
            activation: kind(TensorKind::Activation),
            weight: kind(TensorKind::Weight),
            gradient: kind(TensorKind::Gradient),
            phases: stats
                .potential
                .iter()
                .map(|(name, p)| PhaseStats {
                    phase: (*name).to_string(),
                    slots: p.slots,
                    terms: p.terms,
                    macs: p.macs,
                })
                .collect(),
        }
    }

    /// Serializes the report. Deterministic: the same statistics always
    /// encode to the same bytes (the cache-replay invariant).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(256);
        for k in [&self.activation, &self.weight, &self.gradient] {
            for v in [
                k.values,
                k.zeros,
                k.slots,
                k.terms,
                k.exp_total,
                k.exp_zeros,
            ] {
                out.extend_from_slice(&v.to_le_bytes());
            }
            out.extend_from_slice(&(k.exponents.len() as u32).to_le_bytes());
            for &(e, c) in &k.exponents {
                out.extend_from_slice(&e.to_le_bytes());
                out.extend_from_slice(&c.to_le_bytes());
            }
        }
        out.extend_from_slice(&(self.phases.len() as u32).to_le_bytes());
        for p in &self.phases {
            out.extend_from_slice(&(p.phase.len() as u16).to_le_bytes());
            out.extend_from_slice(p.phase.as_bytes());
            for v in [p.slots, p.terms, p.macs] {
                out.extend_from_slice(&v.to_le_bytes());
            }
        }
        out
    }

    /// Parses a report payload.
    ///
    /// # Errors
    ///
    /// `Protocol` on any malformed field or trailing bytes.
    pub fn decode(payload: &[u8]) -> Result<Self, ServeError> {
        let mut c = Cursor::new(payload);
        let mut kinds = [
            KindStats::default(),
            KindStats::default(),
            KindStats::default(),
        ];
        for k in &mut kinds {
            k.values = c.u64()?;
            k.zeros = c.u64()?;
            k.slots = c.u64()?;
            k.terms = c.u64()?;
            k.exp_total = c.u64()?;
            k.exp_zeros = c.u64()?;
            let n = c.u32()? as usize;
            let mut exps = Vec::with_capacity(n.min(1 << 12));
            for _ in 0..n {
                let e = i32::from_le_bytes(c.bytes(4)?.try_into().unwrap());
                exps.push((e, c.u64()?));
            }
            k.exponents = exps;
        }
        let n = c.u32()? as usize;
        let mut phases = Vec::with_capacity(n.min(16));
        for _ in 0..n {
            phases.push(PhaseStats {
                phase: c.string()?,
                slots: c.u64()?,
                terms: c.u64()?,
                macs: c.u64()?,
            });
        }
        c.finish()?;
        let [activation, weight, gradient] = kinds;
        Ok(TraceStatsReport {
            activation,
            weight,
            gradient,
            phases,
        })
    }
}

/// One op's simulated outcome as reported to clients.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OpReport {
    /// Training phase tag (`None` for untagged ops).
    pub phase: Option<Phase>,
    /// Op latency in cycles (`max(compute, memory)`).
    pub cycles: u64,
    /// Compute-only cycles.
    pub compute_cycles: u64,
    /// MAC count.
    pub macs: u64,
    /// Energy of the op in picojoules under the paper's Table III model.
    pub energy_pj: f64,
    /// Golden-check failures in the op (0 when checking is off).
    pub golden_failures: u64,
    /// Raw integer event counts of the op. Carrying these on the wire is
    /// what makes partial results mergeable bit-exactly: a coordinator
    /// sums them (integer addition is associative, f64 addition is not)
    /// and applies the energy model once, reproducing the single-machine
    /// total to the last mantissa bit.
    pub counts: EventCounts,
}

/// A whole job's result as reported to clients: run summary plus per-op
/// cycle/energy reports, in trace order.
#[derive(Clone, Debug, PartialEq)]
pub struct JobResult {
    /// The *canonical* machine spec the job ran on: the registry name,
    /// lowercased and trimmed. May differ in case from what was submitted
    /// (`FPRaker` → `fpraker`) — canonicalizing here is what lets a
    /// cached payload replay bit-identically to every client, however
    /// they spelled the spec.
    pub spec: String,
    /// Total cycles (ops execute back to back).
    pub cycles: u64,
    /// Total compute-only cycles.
    pub compute_cycles: u64,
    /// Total MACs.
    pub macs: u64,
    /// Golden-check failures (0 when checking is off).
    pub golden_failures: u64,
    /// Total energy in picojoules under the paper's Table III model.
    pub energy_pj: f64,
    /// Most ops simultaneously resident while the server streamed the
    /// trace through the simulator (the bounded-window evidence).
    pub peak_resident_ops: u64,
    /// Per-op reports, in trace order.
    pub ops: Vec<OpReport>,
}

fn phase_to_tag(phase: Option<Phase>) -> u8 {
    match phase {
        Some(Phase::AxW) => 0,
        Some(Phase::AxG) => 1,
        Some(Phase::GxW) => 2,
        None => 0xFF,
    }
}

fn phase_from_tag(tag: u8) -> Result<Option<Phase>, ServeError> {
    match tag {
        0 => Ok(Some(Phase::AxW)),
        1 => Ok(Some(Phase::AxG)),
        2 => Ok(Some(Phase::GxW)),
        0xFF => Ok(None),
        other => Err(ServeError::Protocol(format!("bad phase tag {other}"))),
    }
}

/// Builds the result payload for a completed run. Deterministic: the same
/// [`RunResult`] always serializes to the same bytes, which is what lets
/// the cache replay a stored payload bit-identically to every client.
pub fn encode_result(
    spec: &str,
    run: &RunResult,
    peak_resident_ops: u64,
    model: &EnergyModel,
) -> Vec<u8> {
    let energy = |counts| match run.machine {
        Machine::FpRaker => model.fpraker_energy(counts).total_pj(),
        Machine::Baseline => model.baseline_energy(counts).total_pj(),
    };
    let mut out = Vec::with_capacity(64 + run.ops.len() * 105);
    out.extend_from_slice(&(spec.len() as u16).to_le_bytes());
    out.extend_from_slice(spec.as_bytes());
    out.extend_from_slice(&run.cycles().to_le_bytes());
    out.extend_from_slice(&run.compute_cycles().to_le_bytes());
    out.extend_from_slice(&run.macs().to_le_bytes());
    out.extend_from_slice(&run.golden_failures().to_le_bytes());
    let total_counts = run.counts();
    out.extend_from_slice(&energy(&total_counts).to_bits().to_le_bytes());
    out.extend_from_slice(&peak_resident_ops.to_le_bytes());
    out.extend_from_slice(&(run.ops.len() as u32).to_le_bytes());
    for op in &run.ops {
        out.push(phase_to_tag(op.phase));
        out.extend_from_slice(&op.cycles.to_le_bytes());
        out.extend_from_slice(&op.compute_cycles.to_le_bytes());
        out.extend_from_slice(&op.macs.to_le_bytes());
        out.extend_from_slice(&energy(&op.counts).to_bits().to_le_bytes());
        out.extend_from_slice(&op.golden_failures.to_le_bytes());
        for v in [
            op.counts.terms,
            op.counts.pe_active_cycles,
            op.counts.pe_stall_cycles,
            op.counts.sets,
            op.counts.a_values_encoded,
            op.counts.baseline_pe_cycles,
            op.counts.sram_bytes,
            op.counts.dram_bytes,
        ] {
            out.extend_from_slice(&v.to_le_bytes());
        }
    }
    out
}

/// Parses a result payload.
///
/// # Errors
///
/// `Protocol` on any malformed field or trailing bytes.
pub fn decode_result(payload: &[u8]) -> Result<JobResult, ServeError> {
    let mut c = Cursor::new(payload);
    let spec = c.string()?;
    let cycles = c.u64()?;
    let compute_cycles = c.u64()?;
    let macs = c.u64()?;
    let golden_failures = c.u64()?;
    let energy_pj = f64::from_bits(c.u64()?);
    let peak_resident_ops = c.u64()?;
    let op_count = c.u32()? as usize;
    let mut ops = Vec::with_capacity(op_count.min(1 << 16));
    for _ in 0..op_count {
        ops.push(OpReport {
            phase: phase_from_tag(c.u8()?)?,
            cycles: c.u64()?,
            compute_cycles: c.u64()?,
            macs: c.u64()?,
            energy_pj: f64::from_bits(c.u64()?),
            golden_failures: c.u64()?,
            counts: EventCounts {
                terms: c.u64()?,
                pe_active_cycles: c.u64()?,
                pe_stall_cycles: c.u64()?,
                sets: c.u64()?,
                a_values_encoded: c.u64()?,
                baseline_pe_cycles: c.u64()?,
                sram_bytes: c.u64()?,
                dram_bytes: c.u64()?,
            },
        });
    }
    c.finish()?;
    Ok(JobResult {
        spec,
        cycles,
        compute_cycles,
        macs,
        golden_failures,
        energy_pj,
        peak_resident_ops,
        ops,
    })
}

/// Bounds-checked little-endian payload reader.
struct Cursor<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, at: 0 }
    }

    fn bytes(&mut self, n: usize) -> Result<&'a [u8], ServeError> {
        let end = self
            .at
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| ServeError::Protocol("truncated payload".into()))?;
        let s = &self.buf[self.at..end];
        self.at = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, ServeError> {
        Ok(self.bytes(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, ServeError> {
        Ok(u32::from_le_bytes(self.bytes(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, ServeError> {
        Ok(u64::from_le_bytes(self.bytes(8)?.try_into().unwrap()))
    }

    fn string(&mut self) -> Result<String, ServeError> {
        let len = u16::from_le_bytes(self.bytes(2)?.try_into().unwrap()) as usize;
        let bytes = self.bytes(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| ServeError::Protocol("invalid utf-8 in payload".into()))
    }

    fn finish(&mut self) -> Result<(), ServeError> {
        if self.at != self.buf.len() {
            return Err(ServeError::Protocol(format!(
                "{} trailing payload bytes",
                self.buf.len() - self.at
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, tag::SUBMIT, b"hello").unwrap();
        write_frame(&mut buf, tag::TRACE_END, b"").unwrap();
        let mut r = &buf[..];
        assert_eq!(
            read_frame(&mut r).unwrap(),
            (tag::SUBMIT, b"hello".to_vec())
        );
        assert_eq!(read_frame(&mut r).unwrap(), (tag::TRACE_END, Vec::new()));
        assert!(r.is_empty());
    }

    #[test]
    fn oversized_length_prefix_is_rejected_before_allocating() {
        let mut buf = vec![tag::TRACE_DATA];
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        match read_frame(&mut &buf[..]) {
            Err(ServeError::Protocol(m)) => assert!(m.contains("length prefix"), "{m}"),
            other => panic!("expected protocol error, got {other:?}"),
        }
    }

    #[test]
    fn submit_round_trips_and_rejects_corruption() {
        let s = Submit {
            spec: "fpraker".into(),
            digest: 0xDEAD_BEEF_CAFE_F00D,
            trace_bytes: 12345,
        };
        let mut enc = s.encode();
        assert_eq!(Submit::decode(&enc).unwrap(), s);
        enc[0] = b'X';
        assert!(Submit::decode(&enc).is_err());
        assert!(Submit::decode(&s.encode()[..5]).is_err());
    }

    #[test]
    fn range_submit_round_trips_and_rejects_corruption() {
        let s = RangeSubmit {
            spec: "fpraker".into(),
            digest: 0x1234_5678_9ABC_DEF0,
            trace_bytes: 4096,
            first_op: 17,
            ops: 5,
        };
        let mut enc = s.encode();
        assert_eq!(RangeSubmit::decode(&enc).unwrap(), s);
        enc[0] = b'X';
        assert!(RangeSubmit::decode(&enc).is_err());
        assert!(RangeSubmit::decode(&s.encode()[..20]).is_err());
        // A plain Submit payload is shorter and must not parse as a range.
        let plain = Submit {
            spec: "fpraker".into(),
            digest: 1,
            trace_bytes: 2,
        };
        assert!(RangeSubmit::decode(&plain.encode()).is_err());
    }

    #[test]
    fn result_payload_carries_per_op_event_counts() {
        use fpraker_num::Bf16;
        use fpraker_sim::{AcceleratorConfig, Engine, Machine};
        use fpraker_trace::{TensorKind, Trace, TraceOp};

        let mut tr = Trace::new("m", 0);
        tr.ops.push(TraceOp {
            layer: "l0".into(),
            phase: Phase::AxW,
            m: 4,
            n: 4,
            k: 8,
            a: (0..32).map(|i| Bf16::from_f32(i as f32 * 0.5)).collect(),
            b: (0..32)
                .map(|i| Bf16::from_f32(1.0 / (i + 1) as f32))
                .collect(),
            a_kind: TensorKind::Activation,
            b_kind: TensorKind::Weight,
            a_dup: 1.0,
            b_dup: 1.0,
            out_dup: 1.0,
        });
        let run =
            Engine::with_threads(1).run(Machine::FpRaker, &tr, &AcceleratorConfig::fpraker_paper());
        let payload = encode_result("fpraker", &run, 1, &EnergyModel::paper());
        let parsed = decode_result(&payload).unwrap();
        assert_eq!(parsed.ops.len(), 1);
        assert_eq!(parsed.ops[0].counts, run.ops[0].counts);
        assert_eq!(parsed.ops[0].golden_failures, run.ops[0].golden_failures);
        assert!(parsed.ops[0].counts.terms > 0, "non-trivial op has terms");
    }

    #[test]
    fn stats_round_trip() {
        let s = ServerStats {
            jobs_completed: 3,
            cache_hits: 2,
            cache_misses: 1,
            cache_entries: 1,
            cache_capacity: 64,
            cache_evictions: 9,
            cache_resident_bytes: 4096,
            cache_capacity_bytes: 1 << 20,
            jobs_in_flight: 2,
            jobs_queued: 5,
            busy_rejections: 7,
            jobs_cancelled: 1,
            jobs_deadline_expired: 4,
        };
        assert_eq!(ServerStats::decode(&s.encode()).unwrap(), s);
        assert!(ServerStats::decode(&s.encode()[..7]).is_err());
        decode_stats_request(&encode_stats_request()).unwrap();
        assert!(decode_stats_request(b"junk!").is_err());
        // A v2 server's 40-byte payload still parses; new counters zero.
        let legacy = &s.encode()[..40];
        let parsed = ServerStats::decode(legacy).unwrap();
        assert_eq!(parsed.jobs_completed, 3);
        assert_eq!(parsed.cache_capacity, 64);
        assert_eq!(parsed.cache_evictions, 0);
        assert_eq!(parsed.jobs_queued, 0);
    }

    #[test]
    fn job_submit_round_trips_all_kinds_and_rejects_v2_version_byte() {
        for kind in [
            JobKind::Sim {
                spec: "fpraker".into(),
            },
            JobKind::Range {
                spec: "baseline".into(),
                first_op: 3,
                ops: 9,
            },
            JobKind::Stats,
        ] {
            let j = JobSubmit {
                job_id: 0x0123_4567_89AB_CDEF,
                priority: 7,
                deadline_ms: 1500,
                digest: 0xDEAD_BEEF,
                trace_bytes: 4096,
                kind,
            };
            let mut enc = j.encode();
            assert_eq!(JobSubmit::decode(&enc).unwrap(), j);
            // Tagged frames are v3-only: a v2 version byte is rejected
            // even though the untagged preamble would accept it.
            enc[4] = LEGACY_PROTOCOL_VERSION;
            match JobSubmit::decode(&enc) {
                Err(ServeError::Protocol(m)) => assert!(m.contains("version"), "{m}"),
                other => panic!("expected version rejection, got {other:?}"),
            }
            // And an unknown future version is rejected too.
            enc[4] = PROTOCOL_VERSION + 1;
            assert!(JobSubmit::decode(&enc).is_err());
        }
    }

    #[test]
    fn legacy_preamble_accepts_both_negotiated_versions() {
        let s = Submit {
            spec: "fpraker".into(),
            digest: 1,
            trace_bytes: 2,
        };
        let mut enc = s.encode();
        assert_eq!(enc[4], LEGACY_PROTOCOL_VERSION);
        assert_eq!(Submit::decode(&enc).unwrap(), s);
        // The same untagged frame with a v3 version byte also parses…
        enc[4] = PROTOCOL_VERSION;
        assert_eq!(Submit::decode(&enc).unwrap(), s);
        // …but versions outside the negotiated range are rejected.
        enc[4] = PROTOCOL_VERSION + 1;
        assert!(Submit::decode(&enc).is_err());
        enc[4] = LEGACY_PROTOCOL_VERSION - 1;
        assert!(Submit::decode(&enc).is_err());
    }

    #[test]
    fn cancel_busy_and_job_error_round_trip() {
        assert_eq!(decode_cancel(&encode_cancel(42)).unwrap(), 42);
        assert!(decode_cancel(b"junk").is_err());
        assert_eq!(decode_busy(&encode_busy(7, 250)).unwrap(), (7, 250));
        assert!(decode_busy(&encode_busy(7, 250)[..10]).is_err());
        let (id, code, msg) =
            decode_job_error(&encode_job_error(9, job_error::DEADLINE, "late")).unwrap();
        assert_eq!((id, code, msg.as_str()), (9, job_error::DEADLINE, "late"));
        assert!(matches!(
            job_error_to_serve_error(job_error::CANCELLED, String::new()),
            ServeError::Cancelled
        ));
        assert!(matches!(
            job_error_to_serve_error(job_error::DEADLINE, String::new()),
            ServeError::DeadlineExpired
        ));
        assert!(matches!(
            job_error_to_serve_error(job_error::GENERIC, "boom".into()),
            ServeError::Remote(m) if m == "boom"
        ));
    }

    #[test]
    fn job_payload_prefix_round_trips() {
        let p = encode_job_payload(0xAABB, b"chunk");
        let (id, rest) = split_job_payload(&p).unwrap();
        assert_eq!(id, 0xAABB);
        assert_eq!(rest, b"chunk");
        assert!(split_job_payload(&p[..7]).is_err());
    }

    #[test]
    fn metrics_request_round_trips() {
        decode_metrics_request(&encode_metrics_request()).unwrap();
        assert!(decode_metrics_request(b"junk!").is_err());
        assert!(decode_metrics_request(&encode_metrics_request()[..4]).is_err());
    }

    #[test]
    fn stats_submit_and_report_round_trip() {
        use fpraker_num::encode::Encoding;
        use fpraker_trace::stats::TraceStatistics;
        use fpraker_trace::Trace;

        let s = StatsSubmit {
            digest: 0xABCD_EF01_2345_6789,
            trace_bytes: 777,
        };
        assert_eq!(StatsSubmit::decode(&s.encode()).unwrap(), s);
        assert!(StatsSubmit::decode(&s.encode()[..8]).is_err());

        let stats = TraceStatistics::from_trace(&Trace::new("m", 0), Encoding::Canonical);
        let report = TraceStatsReport::from_stats(&stats);
        let payload = report.encode();
        assert_eq!(TraceStatsReport::decode(&payload).unwrap(), report);
        // Determinism: encoding twice yields identical bytes.
        assert_eq!(payload, report.encode());
        assert!(TraceStatsReport::decode(&payload[..payload.len() - 1]).is_err());
    }

    #[test]
    fn result_payload_round_trips() {
        use fpraker_sim::{AcceleratorConfig, Engine, Machine};
        use fpraker_trace::Trace;

        let run = Engine::with_threads(1).run(
            Machine::FpRaker,
            &Trace::new("empty", 0),
            &AcceleratorConfig::fpraker_paper(),
        );
        let payload = encode_result("fpraker", &run, 0, &EnergyModel::paper());
        let parsed = decode_result(&payload).unwrap();
        assert_eq!(parsed.spec, "fpraker");
        assert_eq!(parsed.cycles, 0);
        assert_eq!(parsed.ops.len(), 0);
        // Determinism: encoding twice yields identical bytes.
        assert_eq!(
            payload,
            encode_result("fpraker", &run, 0, &EnergyModel::paper())
        );
        assert!(decode_result(&payload[..payload.len() - 1]).is_err());
    }
}
