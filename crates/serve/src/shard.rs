//! The distributed shard coordinator: fan one indexed trace across many
//! `fpraker-serve` workers and fold the partial results back into a
//! whole-trace [`JobResult`] **bit-identically** to a single-machine
//! `Engine::run`.
//!
//! The pipeline is partition → submit → retry → ordered merge:
//!
//! ```text
//!            ┌──────────── indexed trace ────────────┐
//! partition  │ seg seg seg │ seg seg │ seg seg seg   │  group_segments
//!            └─────┬───────┴────┬────┴──────┬────────┘
//!                  ▼            ▼           ▼
//! submit      worker A      worker B     worker C       SUBMIT_RANGE
//!                  │            ✗ dies      │
//! retry            │        worker C ◀──────┤           next worker,
//!                  │            │           │           backoff, warm
//!                  ▼            ▼           ▼           cache on re-try
//! merge       ┌ partial ┬─ partial ─┬─ partial ┐
//!             └─────────┴─ ordered by first_op ┘  →  JobResult
//! ```
//!
//! * **Partition.** [`ShardPlan`] reuses the exact contiguous segment
//!   grouping the parallel decoder uses ([`fpraker_trace::group_segments`])
//!   and re-frames each group as a self-contained sub-trace: a fresh
//!   header plus a raw byte-range copy of the ops
//!   ([`IndexedReader::extract_range`]) — no op is ever re-encoded. An
//!   unindexed trace degrades to one shard carrying the original bytes.
//! * **Submit.** Each shard goes to a distinct worker via the
//!   [`crate::protocol::tag::SUBMIT_RANGE`] handshake. Shards are
//!   content-addressed like any job, so a retried (or duplicated) shard
//!   is a warm cache hit — the simulation runs at most once per shard
//!   content per worker.
//! * **Retry.** A failed or disconnected worker fails only its shard: the
//!   coordinator re-assigns the shard to the next worker round-robin,
//!   with bounded doubling backoff, up to a per-shard attempt budget.
//! * **Merge.** Partials are ordered by `first_op`, checked for exact
//!   tiling, and folded: integer aggregates are summed, per-op reports
//!   concatenated, and **total energy is recomputed once from the summed
//!   integer [`EventCounts`]** — never by adding per-shard floats (f64
//!   addition is not associative; integer addition is). This is what
//!   makes the merged result bit-identical to the unsharded run.
//!
//! The determinism invariant, end to end: per-op simulation is
//! independent, result payloads are deterministic byte-for-byte, and
//! every merged field is either an integer sum, a concatenation in
//! global op order, or a function applied once to such a sum. Shard
//! count, worker count, completion order, retries and cache hits can
//! therefore never change a single bit of the merged result.

use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use fpraker_energy::{EnergyModel, EventCounts};
use fpraker_sim::{resolve_machine, Machine};
use fpraker_trace::codec::IndexedReader;
use fpraker_trace::{group_segments, DecodeError};

use crate::client::{JobOptions, PipelinedConnection};
use crate::protocol::{JobResult, ServeError};

/// Where the trace bytes live; shards are extracted on demand, so the
/// coordinator never holds more than one in-flight shard per thread.
#[derive(Clone, Debug)]
enum Store {
    File(PathBuf),
    Bytes(Arc<[u8]>),
}

/// One shard's contiguous global op range.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardRange {
    /// Global index of the shard's first op.
    pub first_op: u32,
    /// Ops in the shard.
    pub ops: u32,
}

/// The partition of one trace into contiguous shard ranges, plus the
/// means to extract any shard as a self-contained sub-trace.
#[derive(Clone, Debug)]
pub struct ShardPlan {
    store: Store,
    total_ops: u32,
    indexed: bool,
    ranges: Vec<ShardRange>,
}

impl ShardPlan {
    /// Plans up to `max_shards` shards over a trace file.
    ///
    /// With a usable index the file's segments are grouped exactly like
    /// parallel decode groups them; without one (or with `max_shards <=
    /// 1`) the plan degrades to a single shard carrying the original
    /// bytes — the sequential fallback, never an error.
    ///
    /// # Errors
    ///
    /// [`DecodeError`] if the file cannot be opened or its header is
    /// invalid.
    pub fn from_file(path: impl Into<PathBuf>, max_shards: usize) -> Result<Self, DecodeError> {
        let path = path.into();
        let file = std::fs::File::open(&path)
            .map_err(|e| DecodeError::at(0, format!("cannot open {}: {e}", path.display())))?;
        let reader = IndexedReader::new(std::io::BufReader::new(file))?;
        Ok(Self::plan(Store::File(path), &reader, max_shards))
    }

    /// Plans up to `max_shards` shards over an in-memory encoded trace
    /// (the exact `fpraker_trace::codec` byte stream, indexed or not).
    ///
    /// # Errors
    ///
    /// [`DecodeError`] if the header is invalid.
    pub fn from_bytes(bytes: impl Into<Arc<[u8]>>, max_shards: usize) -> Result<Self, DecodeError> {
        let bytes = bytes.into();
        let reader = IndexedReader::new(std::io::Cursor::new(bytes.to_vec()))?;
        Ok(Self::plan(Store::Bytes(bytes), &reader, max_shards))
    }

    fn plan<R: std::io::Read + std::io::Seek>(
        store: Store,
        reader: &IndexedReader<R>,
        max_shards: usize,
    ) -> Self {
        let total_ops = reader.total_ops();
        let indexed = reader.has_index();
        let ranges = if indexed && max_shards > 1 && total_ops > 0 {
            group_segments(&reader.segments(), max_shards)
                .into_iter()
                .map(|g| ShardRange {
                    first_op: g.first_op,
                    ops: g.ops,
                })
                .collect()
        } else {
            vec![ShardRange {
                first_op: 0,
                ops: total_ops,
            }]
        };
        ShardPlan {
            store,
            total_ops,
            indexed,
            ranges,
        }
    }

    /// The planned shard ranges, ascending and tiling `0..total_ops`.
    pub fn ranges(&self) -> &[ShardRange] {
        &self.ranges
    }

    /// Total ops in the trace.
    pub fn total_ops(&self) -> u32 {
        self.total_ops
    }

    /// Whether the trace carried a usable index. Without one the plan is
    /// a single whole-trace shard (the sequential fallback).
    pub fn is_indexed(&self) -> bool {
        self.indexed
    }

    /// Extracts shard `i` as a self-contained encoded sub-trace.
    ///
    /// A single whole-trace shard is the original bytes verbatim (footer
    /// included), so its digest — and therefore its cache entry — is
    /// shared with plain [`crate::Client::submit_encoded`] submissions of the
    /// same trace. A proper sub-range is re-framed with a fresh header
    /// via [`IndexedReader::extract_range`].
    ///
    /// # Errors
    ///
    /// [`DecodeError`] on I/O failures or a trace that no longer matches
    /// the plan.
    pub fn extract(&self, i: usize) -> Result<Vec<u8>, DecodeError> {
        let range = self.ranges[i];
        let whole = range.first_op == 0 && range.ops == self.total_ops;
        match (&self.store, whole) {
            (Store::File(path), true) => std::fs::read(path)
                .map_err(|e| DecodeError::at(0, format!("cannot read {}: {e}", path.display()))),
            (Store::Bytes(bytes), true) => Ok(bytes.to_vec()),
            (Store::File(path), false) => {
                let file = std::fs::File::open(path).map_err(|e| {
                    DecodeError::at(0, format!("cannot open {}: {e}", path.display()))
                })?;
                let mut reader = IndexedReader::new(std::io::BufReader::new(file))?;
                let mut out = Vec::new();
                reader.extract_range(range.first_op, range.ops, &mut out)?;
                Ok(out)
            }
            (Store::Bytes(bytes), false) => {
                let mut reader = IndexedReader::new(std::io::Cursor::new(bytes.to_vec()))?;
                let mut out = Vec::new();
                reader.extract_range(range.first_op, range.ops, &mut out)?;
                Ok(out)
            }
        }
    }
}

/// Everything that can fail a sharded run.
#[derive(Debug)]
pub enum ShardError {
    /// The coordinator was given no workers.
    NoWorkers,
    /// The trace could not be planned or a shard could not be extracted.
    Trace(DecodeError),
    /// One shard exhausted its attempt budget; the last error is kept.
    Exhausted {
        /// Index of the failed shard in the plan.
        shard: usize,
        /// Attempts made.
        attempts: usize,
        /// The last attempt's error.
        last: String,
    },
    /// The partial results cannot be folded (spec mismatch, gap/overlap,
    /// unknown spec) — a coordinator bug or a byzantine worker that
    /// slipped past per-shard validation.
    Merge(String),
}

impl std::fmt::Display for ShardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardError::NoWorkers => write!(f, "no workers to shard across"),
            ShardError::Trace(e) => write!(f, "trace error: {e}"),
            ShardError::Exhausted {
                shard,
                attempts,
                last,
            } => write!(f, "shard {shard} failed after {attempts} attempts: {last}"),
            ShardError::Merge(m) => write!(f, "merge error: {m}"),
        }
    }
}

impl std::error::Error for ShardError {}

impl From<DecodeError> for ShardError {
    fn from(e: DecodeError) -> Self {
        ShardError::Trace(e)
    }
}

/// How one shard fared.
#[derive(Clone, Debug)]
pub struct ShardOutcome {
    /// Index of the shard in the plan.
    pub shard: usize,
    /// The shard's global op range.
    pub range: ShardRange,
    /// Index (into the worker list) of the worker that answered.
    pub worker: usize,
    /// Attempts made (1 = first try succeeded).
    pub attempts: usize,
    /// Whether the answering worker served the result from its cache.
    pub cached: bool,
}

/// A completed sharded run: the merged whole-trace result plus per-shard
/// provenance.
#[derive(Clone, Debug)]
pub struct ShardedRun {
    /// The merged result, bit-identical to an unsharded run of the same
    /// trace on the same spec — except `peak_resident_ops`, which is the
    /// max over shards (residency is a per-worker property).
    pub result: JobResult,
    /// Per-shard provenance, in plan order.
    pub shards: Vec<ShardOutcome>,
}

/// One persistent pipelined connection per worker, shared by every
/// shard submission (and every clone of the coordinator). Connections
/// are opened lazily on first use and invalidated on transport-level
/// failures, so a worker that dies and comes back is transparently
/// re-dialed on the next attempt.
#[derive(Debug, Default)]
struct WorkerPool {
    conns: Vec<Mutex<Option<Arc<PipelinedConnection>>>>,
}

impl WorkerPool {
    fn new(workers: usize) -> Self {
        WorkerPool {
            conns: (0..workers).map(|_| Mutex::new(None)).collect(),
        }
    }

    /// The worker's shared connection, dialing it if absent. The slot
    /// lock is held across the dial, so concurrent shards for the same
    /// worker wait for one connection instead of racing N dials.
    fn get_or_connect(
        &self,
        worker: usize,
        addr: &str,
        io_timeout: Option<Duration>,
    ) -> Result<Arc<PipelinedConnection>, ServeError> {
        let mut slot = self.conns[worker].lock().unwrap();
        if let Some(conn) = slot.as_ref() {
            return Ok(Arc::clone(conn));
        }
        let conn = Arc::new(PipelinedConnection::connect_with_timeout(addr, io_timeout)?);
        *slot = Some(Arc::clone(&conn));
        Ok(conn)
    }

    /// Drops a worker's pooled connection *if it is still the one that
    /// failed* — a concurrent re-dial by another shard is left alone.
    fn invalidate(&self, worker: usize, failed: &Arc<PipelinedConnection>) {
        let mut slot = self.conns[worker].lock().unwrap();
        if slot.as_ref().is_some_and(|cur| Arc::ptr_eq(cur, failed)) {
            *slot = None;
        }
    }
}

/// Fans shards of one trace across `fpraker-serve` workers and merges
/// the partial results in global op order. All shards bound for the
/// same worker ride one pipelined connection (many jobs in flight,
/// demultiplexed by job id) instead of a connection per shard.
///
/// ```no_run
/// use fpraker_serve::shard::{ShardCoordinator, ShardPlan};
///
/// let plan = ShardPlan::from_file("trace.bin", 4).unwrap();
/// let coord = ShardCoordinator::new(vec![
///     "127.0.0.1:4270".into(),
///     "127.0.0.1:4271".into(),
/// ]);
/// let run = coord.run(&plan, "fpraker").unwrap();
/// println!("cycles: {}", run.result.cycles);
/// ```
#[derive(Clone, Debug)]
pub struct ShardCoordinator {
    workers: Vec<String>,
    max_attempts: usize,
    backoff: Duration,
    io_timeout: Option<Duration>,
    pool: Arc<WorkerPool>,
}

impl ShardCoordinator {
    /// A coordinator over the given worker addresses, with the default
    /// budget of 4 attempts per shard and a 50 ms initial backoff.
    pub fn new(workers: Vec<String>) -> Self {
        let pool = Arc::new(WorkerPool::new(workers.len()));
        ShardCoordinator {
            workers,
            max_attempts: 4,
            backoff: Duration::from_millis(50),
            io_timeout: Some(Duration::from_secs(600)),
            pool,
        }
    }

    /// Overrides the per-shard attempt budget (clamped to ≥ 1).
    pub fn max_attempts(mut self, attempts: usize) -> Self {
        self.max_attempts = attempts.max(1);
        self
    }

    /// Overrides the initial retry backoff; it doubles per failed
    /// attempt (bounded by the attempt budget).
    pub fn backoff(mut self, backoff: Duration) -> Self {
        self.backoff = backoff;
        self
    }

    /// Overrides the per-request socket timeout (`None` blocks forever).
    pub fn io_timeout(mut self, timeout: Option<Duration>) -> Self {
        self.io_timeout = timeout;
        self
    }

    /// Runs the plan: one submission thread per shard, retries with
    /// round-robin re-assignment and doubling backoff, ordered merge.
    ///
    /// # Errors
    ///
    /// [`ShardError`] if there are no workers, a shard exhausts its
    /// attempt budget, or the partials cannot be folded.
    pub fn run(&self, plan: &ShardPlan, spec: &str) -> Result<ShardedRun, ShardError> {
        if self.workers.is_empty() {
            return Err(ShardError::NoWorkers);
        }
        let results: Vec<Result<(ShardOutcome, JobResult), ShardError>> =
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..plan.ranges().len())
                    .map(|i| scope.spawn(move || self.run_shard(plan, spec, i)))
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            });
        let mut shards = Vec::with_capacity(results.len());
        let mut partials = Vec::with_capacity(results.len());
        for r in results {
            let (outcome, result) = r?;
            partials.push((u64::from(outcome.range.first_op), result));
            shards.push(outcome);
        }
        shards.sort_by_key(|o| o.shard);
        let result = merge_job_results(partials).map_err(ShardError::Merge)?;
        Ok(ShardedRun { result, shards })
    }

    /// One shard's attempt loop: extract once, then submit to workers
    /// round-robin (starting at `shard % workers`, so a full-width plan
    /// puts one shard on each worker) until one answers or the budget is
    /// spent.
    fn run_shard(
        &self,
        plan: &ShardPlan,
        spec: &str,
        shard: usize,
    ) -> Result<(ShardOutcome, JobResult), ShardError> {
        let range = plan.ranges()[shard];
        let bytes = plan.extract(shard)?;
        let mut last = String::new();
        for attempt in 0..self.max_attempts {
            if attempt > 0 {
                fpraker_telemetry::counter!("shard_retries_total").inc();
                fpraker_telemetry::counter!("shard_backoff_sleeps_total").inc();
                std::thread::sleep(self.backoff * (1 << (attempt - 1).min(8)));
            }
            let worker = (shard + attempt) % self.workers.len();
            if worker != shard % self.workers.len() {
                fpraker_telemetry::counter!("shard_reassignments_total").inc();
            }
            match self.try_worker(worker, &bytes, spec, range) {
                Ok((cached, result)) => {
                    return Ok((
                        ShardOutcome {
                            shard,
                            range,
                            worker,
                            attempts: attempt + 1,
                            cached,
                        },
                        result,
                    ));
                }
                Err(e) => last = e,
            }
        }
        Err(ShardError::Exhausted {
            shard,
            attempts: self.max_attempts,
            last,
        })
    }

    /// One submission attempt over the worker's shared pipelined
    /// connection, with the response validated hard enough that a
    /// corrupted-but-decodable partial is retried, not merged: the op
    /// count must match the shard and every total must equal the fold of
    /// the per-op reports it claims to summarize.
    fn try_worker(
        &self,
        worker: usize,
        bytes: &[u8],
        spec: &str,
        range: ShardRange,
    ) -> Result<(bool, JobResult), String> {
        let _submit = fpraker_telemetry::span!("shard_submit");
        let addr = &self.workers[worker];
        let conn = self
            .pool
            .get_or_connect(worker, addr, self.io_timeout)
            .map_err(|e| format!("{addr}: {e}"))?;
        let response = conn.submit_range_encoded(
            bytes,
            spec,
            u64::from(range.first_op),
            u64::from(range.ops),
            JobOptions::default(),
        );
        let response = match response {
            Ok(r) => r,
            Err(e) => {
                // Job-scoped outcomes (a remote error, backpressure, …)
                // leave the connection healthy; anything transport-level
                // poisons it, so the retry dials fresh.
                if !matches!(
                    e,
                    ServeError::Remote(_)
                        | ServeError::Busy { .. }
                        | ServeError::Cancelled
                        | ServeError::DeadlineExpired
                ) {
                    self.pool.invalidate(worker, &conn);
                }
                return Err(format!("{addr}: {e}"));
            }
        };
        validate_partial(&response.result, range).map_err(|e| format!("{addr}: {e}"))?;
        Ok((response.cached, response.result))
    }
}

/// Rejects a partial result that is internally inconsistent or does not
/// match its shard — the coordinator-side defense against a worker that
/// returns a corrupted (yet decodable) payload.
fn validate_partial(result: &JobResult, range: ShardRange) -> Result<(), String> {
    if result.ops.len() as u64 != u64::from(range.ops) {
        return Err(format!(
            "partial carries {} ops, shard covers {}",
            result.ops.len(),
            range.ops
        ));
    }
    let cycles: u64 = result.ops.iter().map(|o| o.cycles).sum();
    let compute: u64 = result.ops.iter().map(|o| o.compute_cycles).sum();
    let macs: u64 = result.ops.iter().map(|o| o.macs).sum();
    let golden: u64 = result.ops.iter().map(|o| o.golden_failures).sum();
    if cycles != result.cycles
        || compute != result.compute_cycles
        || macs != result.macs
        || golden != result.golden_failures
    {
        return Err("partial totals do not fold from its per-op reports".into());
    }
    Ok(())
}

/// Folds partial [`JobResult`]s of disjoint contiguous op ranges into the
/// whole-trace result — the wire-level mirror of
/// `fpraker_sim::RunResult::merge_partials`, and the merge the
/// coordinator performs.
///
/// Partials may be given in any order; they are sorted by `first_op` and
/// must tile `0..total` exactly. Integer aggregates are summed; per-op
/// reports are concatenated in global order; **total energy is
/// recomputed once** from the summed per-op [`EventCounts`] under the
/// paper's energy model, reproducing the server's own
/// `encode_result` energy bit-for-bit. `peak_resident_ops` is the max
/// over partials (residency is per-worker, not additive).
///
/// # Errors
///
/// A message if the partials are empty, mix specs, mislabel their op
/// counts, overlap, or name an unknown spec.
pub fn merge_job_results(
    partials: impl IntoIterator<Item = (u64, JobResult)>,
) -> Result<JobResult, String> {
    let _merge = fpraker_telemetry::span!("shard_merge");
    let mut parts: Vec<(u64, JobResult)> = partials.into_iter().collect();
    parts.sort_by_key(|(first, _)| *first);
    let (_, head) = parts.first().ok_or("no partial results to merge")?;
    let spec = head.spec.clone();
    let Some((machine, _)) = resolve_machine(&spec) else {
        return Err(format!("unknown machine spec {spec:?} in partial results"));
    };

    let mut merged = JobResult {
        spec: spec.clone(),
        cycles: 0,
        compute_cycles: 0,
        macs: 0,
        golden_failures: 0,
        energy_pj: 0.0,
        peak_resident_ops: 0,
        ops: Vec::with_capacity(parts.iter().map(|(_, p)| p.ops.len()).sum()),
    };
    let mut counts = EventCounts::default();
    let mut next = 0u64;
    for (first, part) in parts {
        if part.spec != spec {
            return Err(format!(
                "partials mix machine specs {spec:?} and {:?}",
                part.spec
            ));
        }
        if first != next {
            return Err(format!(
                "partials are not contiguous: expected one starting at op \
                 {next}, found op {first} (overlap or gap)"
            ));
        }
        next += part.ops.len() as u64;
        merged.cycles += part.cycles;
        merged.compute_cycles += part.compute_cycles;
        merged.macs += part.macs;
        merged.golden_failures += part.golden_failures;
        merged.peak_resident_ops = merged.peak_resident_ops.max(part.peak_resident_ops);
        for op in &part.ops {
            counts.terms += op.counts.terms;
            counts.pe_active_cycles += op.counts.pe_active_cycles;
            counts.pe_stall_cycles += op.counts.pe_stall_cycles;
            counts.sets += op.counts.sets;
            counts.a_values_encoded += op.counts.a_values_encoded;
            counts.baseline_pe_cycles += op.counts.baseline_pe_cycles;
            counts.sram_bytes += op.counts.sram_bytes;
            counts.dram_bytes += op.counts.dram_bytes;
        }
        merged.ops.extend(part.ops);
    }
    // The one float in the result, derived exactly as the server derives
    // it: the energy model applied once to the integer count totals.
    let model = EnergyModel::paper();
    merged.energy_pj = match machine {
        Machine::FpRaker => model.fpraker_energy(&counts).total_pj(),
        Machine::Baseline => model.baseline_energy(&counts).total_pj(),
    };
    Ok(merged)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpraker_trace::{codec, Trace};

    fn tiny_trace(ops: usize) -> Trace {
        use fpraker_num::Bf16;
        use fpraker_trace::{Phase, TensorKind, TraceOp};
        let mut tr = Trace::new("shard-plan", 10);
        for i in 0..ops {
            tr.ops.push(TraceOp {
                layer: format!("l{i}"),
                phase: [Phase::AxW, Phase::GxW, Phase::AxG][i % 3],
                m: 4,
                n: 4,
                k: 8,
                a: vec![Bf16::from_f32(0.5); 32],
                b: vec![Bf16::from_f32(2.0); 32],
                a_kind: TensorKind::Activation,
                b_kind: TensorKind::Weight,
                a_dup: 1.0,
                b_dup: 1.0,
                out_dup: 1.0,
            });
        }
        tr
    }

    fn encode_indexed(tr: &Trace, stride: u32) -> Vec<u8> {
        let mut out = Vec::new();
        let mut w =
            codec::Writer::new(&mut out, &tr.model, tr.progress_pct, tr.ops.len() as u32).unwrap();
        for op in &tr.ops {
            w.write_op(op).unwrap();
        }
        w.finish_indexed(stride).unwrap();
        out
    }

    #[test]
    fn plan_tiles_the_trace_and_respects_the_shard_cap() {
        let tr = tiny_trace(10);
        let plan = ShardPlan::from_bytes(encode_indexed(&tr, 2), 3).unwrap();
        assert!(plan.is_indexed());
        assert!(plan.ranges().len() <= 3 && plan.ranges().len() > 1);
        let mut next = 0u32;
        for r in plan.ranges() {
            assert_eq!(r.first_op, next);
            next += r.ops;
        }
        assert_eq!(next, 10);
    }

    #[test]
    fn more_shards_than_segments_yields_one_shard_per_segment() {
        let tr = tiny_trace(4);
        // Stride 4 → a single segment; asking for 8 shards yields 1.
        let plan = ShardPlan::from_bytes(encode_indexed(&tr, 4), 8).unwrap();
        assert_eq!(plan.ranges().len(), 1);
        assert_eq!(
            plan.ranges()[0],
            ShardRange {
                first_op: 0,
                ops: 4
            }
        );
    }

    #[test]
    fn unindexed_trace_falls_back_to_a_single_whole_shard() {
        let tr = tiny_trace(6);
        let bytes = codec::encode(&tr).to_vec();
        let plan = ShardPlan::from_bytes(bytes.clone(), 4).unwrap();
        assert!(!plan.is_indexed());
        assert_eq!(plan.ranges().len(), 1);
        // The single shard is the original bytes verbatim, so it shares
        // its digest (and cache entry) with a plain submission.
        assert_eq!(plan.extract(0).unwrap(), bytes);
    }

    #[test]
    fn whole_file_single_shard_keeps_the_footer() {
        let tr = tiny_trace(5);
        let bytes = encode_indexed(&tr, 3);
        let plan = ShardPlan::from_bytes(bytes.clone(), 1).unwrap();
        assert_eq!(plan.ranges().len(), 1);
        assert_eq!(plan.extract(0).unwrap(), bytes);
    }

    #[test]
    fn extracted_shards_decode_to_their_op_ranges() {
        let tr = tiny_trace(9);
        let plan = ShardPlan::from_bytes(encode_indexed(&tr, 2), 4).unwrap();
        for (i, r) in plan.ranges().iter().enumerate() {
            let sub = codec::decode(&plan.extract(i).unwrap()).unwrap();
            assert_eq!(sub.model, tr.model);
            assert_eq!(
                sub.ops,
                tr.ops[r.first_op as usize..(r.first_op + r.ops) as usize]
            );
        }
    }

    #[test]
    fn coordinator_without_workers_is_an_error() {
        let tr = tiny_trace(3);
        let plan = ShardPlan::from_bytes(codec::encode(&tr).to_vec(), 2).unwrap();
        let coord = ShardCoordinator::new(Vec::new());
        assert!(matches!(
            coord.run(&plan, "fpraker"),
            Err(ShardError::NoWorkers)
        ));
    }

    #[test]
    fn merge_rejects_gaps_overlaps_and_spec_mixes() {
        let part = |first: u64, ops: usize, spec: &str| {
            (
                first,
                JobResult {
                    spec: spec.into(),
                    cycles: 0,
                    compute_cycles: 0,
                    macs: 0,
                    golden_failures: 0,
                    energy_pj: 0.0,
                    peak_resident_ops: 0,
                    ops: vec![
                        crate::protocol::OpReport {
                            phase: None,
                            cycles: 0,
                            compute_cycles: 0,
                            macs: 0,
                            energy_pj: 0.0,
                            golden_failures: 0,
                            counts: EventCounts::default(),
                        };
                        ops
                    ],
                },
            )
        };
        assert!(merge_job_results(Vec::new()).is_err());
        let gap = vec![part(0, 2, "fpraker"), part(3, 1, "fpraker")];
        assert!(merge_job_results(gap).unwrap_err().contains("contiguous"));
        let overlap = vec![part(0, 3, "fpraker"), part(2, 1, "fpraker")];
        assert!(merge_job_results(overlap)
            .unwrap_err()
            .contains("contiguous"));
        let mixed = vec![part(0, 1, "fpraker"), part(1, 1, "baseline")];
        assert!(merge_job_results(mixed).unwrap_err().contains("mix"));
        let unknown = vec![part(0, 1, "martian")];
        assert!(merge_job_results(unknown).unwrap_err().contains("unknown"));
        let ok = vec![part(1, 1, "fpraker"), part(0, 1, "fpraker")];
        assert_eq!(merge_job_results(ok).unwrap().ops.len(), 2);
    }
}
