//! Client library for the trace-simulation service.
//!
//! A [`Client`] is an address; every submission opens one connection,
//! performs one half-duplex job exchange (see [`crate::protocol`]), and
//! closes. Submissions identify their trace by content digest up front, so
//! a server-side cache hit is answered **without uploading the trace at
//! all** — resubmitting a large trace costs one small header frame.
//!
//! Traces can be submitted from memory ([`Client::submit_trace`] /
//! [`Client::submit_encoded`]) or streamed from disk
//! ([`Client::submit_file`], two passes: one to digest, one to upload in
//! bounded chunks — the trace is never loaded whole).

use std::fs::File;
use std::io::{BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::path::Path;
use std::time::Duration;

use fpraker_trace::digest::Fnv64;
use fpraker_trace::{codec, Trace};

use crate::protocol::{
    self, read_frame, tag, write_frame, JobResult, RangeSubmit, ServeError, ServerStats,
    StatsSubmit, Submit, TraceStatsReport, TRACE_CHUNK,
};

/// A server response: the job's result plus whether it was served from the
/// content-addressed cache.
#[derive(Clone, Debug, PartialEq)]
pub struct JobResponse {
    /// `true` when the server replayed a cached result (no simulation, and
    /// — when detected at submission time — no upload either).
    pub cached: bool,
    /// The simulated (or replayed) result.
    pub result: JobResult,
}

/// A trace-statistics job's response: the report plus whether it came
/// from the content-addressed cache.
#[derive(Clone, Debug, PartialEq)]
pub struct StatsResponse {
    /// `true` when the server replayed a cached report.
    pub cached: bool,
    /// The computed (or replayed) statistics.
    pub report: TraceStatsReport,
}

/// A handle on a `fpraker-serve` server.
///
/// ```no_run
/// use fpraker_serve::Client;
/// use fpraker_trace::Trace;
///
/// let client = Client::connect("127.0.0.1:4270").unwrap();
/// let response = client.submit_trace(&Trace::new("m", 0), "fpraker").unwrap();
/// println!("cycles: {}", response.result.cycles);
/// ```
#[derive(Clone, Debug)]
pub struct Client {
    addr: SocketAddr,
    io_timeout: Option<Duration>,
}

impl Client {
    /// Resolves the server address. No connection is made yet — each
    /// request opens its own.
    ///
    /// # Errors
    ///
    /// Fails if `addr` does not resolve to any socket address.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<Client, ServeError> {
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| ServeError::Protocol("address resolved to nothing".into()))?;
        Ok(Client {
            addr,
            io_timeout: Some(Duration::from_secs(600)),
        })
    }

    /// Overrides the per-request socket timeout (`None` blocks forever).
    /// The default is 600 s — long enough for a cold simulation of a large
    /// trace, short enough that a dead server fails the call.
    pub fn io_timeout(mut self, timeout: Option<Duration>) -> Client {
        self.io_timeout = timeout;
        self
    }

    fn open(&self) -> Result<TcpStream, ServeError> {
        let stream = TcpStream::connect(self.addr)?;
        stream.set_read_timeout(self.io_timeout)?;
        stream.set_write_timeout(self.io_timeout)?;
        stream.set_nodelay(true).ok();
        Ok(stream)
    }

    /// Submits an in-memory trace for simulation on the named machine
    /// spec (see `fpraker_sim::machine_names`).
    ///
    /// # Errors
    ///
    /// I/O failures, protocol violations, or a server-side error (unknown
    /// spec, undecodable trace, …) reported as [`ServeError::Remote`].
    pub fn submit_trace(&self, trace: &Trace, spec: &str) -> Result<JobResponse, ServeError> {
        let bytes = codec::encode(trace);
        self.submit_encoded(&bytes, spec)
    }

    /// Submits an already-encoded trace (the exact
    /// [`fpraker_trace::codec`] byte stream).
    ///
    /// # Errors
    ///
    /// As [`Client::submit_trace`].
    pub fn submit_encoded(&self, bytes: &[u8], spec: &str) -> Result<JobResponse, ServeError> {
        self.submit_stream(
            Fnv64::digest_of(bytes),
            bytes.len() as u64,
            spec,
            &mut &bytes[..],
        )
    }

    /// Streams a trace file to the server without loading it: pass one
    /// computes the digest and length, pass two uploads in
    /// [`TRACE_CHUNK`]-byte frames (and only if the server does not
    /// already hold the result).
    ///
    /// # Errors
    ///
    /// As [`Client::submit_trace`], plus file-open/read failures.
    pub fn submit_file<P: AsRef<Path>>(
        &self,
        path: P,
        spec: &str,
    ) -> Result<JobResponse, ServeError> {
        let path = path.as_ref();
        let (digest, len) = digest_file(path)?;
        let mut upload = BufReader::new(File::open(path)?);
        self.submit_stream(digest, len, spec, &mut upload)
    }

    /// The shared submission path: header first, upload only on demand.
    fn submit_stream<R: Read>(
        &self,
        digest: u64,
        trace_bytes: u64,
        spec: &str,
        trace: &mut R,
    ) -> Result<JobResponse, ServeError> {
        if u16::try_from(spec.len()).is_err() {
            return Err(ServeError::Protocol(format!(
                "machine spec of {} bytes exceeds the u16 length prefix",
                spec.len()
            )));
        }
        let mut stream = self.open()?;
        let submit = Submit {
            spec: spec.to_string(),
            digest,
            trace_bytes,
        };
        write_frame(&mut stream, tag::SUBMIT, &submit.encode())?;
        stream.flush()?;
        match self.read_response(&mut stream)? {
            Response::Result(r) => Ok(r),
            Response::NeedTrace => {
                if let Err(e) = self.upload(&mut stream, trace) {
                    // The server may have rejected the upload mid-stream;
                    // prefer its verdict over our broken pipe.
                    return match self.read_response(&mut stream) {
                        Ok(Response::Result(r)) => Ok(r),
                        Err(remote @ ServeError::Remote(_)) => Err(remote),
                        _ => Err(e),
                    };
                }
                match self.read_response(&mut stream)? {
                    Response::Result(r) => Ok(r),
                    Response::NeedTrace => Err(ServeError::Protocol(
                        "server asked for the trace twice".into(),
                    )),
                }
            }
        }
    }

    fn upload<R: Read>(&self, stream: &mut TcpStream, trace: &mut R) -> Result<(), ServeError> {
        let mut chunk = vec![0u8; TRACE_CHUNK];
        loop {
            let n = trace.read(&mut chunk)?;
            if n == 0 {
                break;
            }
            write_frame(stream, tag::TRACE_DATA, &chunk[..n])?;
        }
        write_frame(stream, tag::TRACE_END, &[])?;
        stream.flush()?;
        Ok(())
    }

    fn read_response(&self, stream: &mut TcpStream) -> Result<Response, ServeError> {
        let (frame_tag, payload) = read_frame(stream)?;
        match frame_tag {
            tag::NEED_TRACE => Ok(Response::NeedTrace),
            tag::RESULT => {
                let (&cached, result_payload) = payload
                    .split_first()
                    .ok_or_else(|| ServeError::Protocol("empty result frame".into()))?;
                Ok(Response::Result(JobResponse {
                    cached: cached != 0,
                    result: protocol::decode_result(result_payload)?,
                }))
            }
            other => Err(failure_response(other, payload)),
        }
    }

    /// Submits a **segment-range job**: `bytes` is a self-contained
    /// sub-trace (a fresh header plus a raw op byte-range, as produced by
    /// `fpraker_trace::codec::IndexedReader::extract_range`) covering the
    /// global ops `first_op .. first_op + ops` of a sharded run. The
    /// server re-checks the op count against the declaration; the result
    /// is cached by content digest exactly like [`Client::submit_encoded`],
    /// so re-submitting the same shard — a retry after a worker failure,
    /// or a racing duplicate — is a warm cache hit.
    ///
    /// # Errors
    ///
    /// As [`Client::submit_trace`].
    pub fn submit_range_encoded(
        &self,
        bytes: &[u8],
        spec: &str,
        first_op: u64,
        ops: u64,
    ) -> Result<JobResponse, ServeError> {
        if u16::try_from(spec.len()).is_err() {
            return Err(ServeError::Protocol(format!(
                "machine spec of {} bytes exceeds the u16 length prefix",
                spec.len()
            )));
        }
        let mut stream = self.open()?;
        let submit = RangeSubmit {
            spec: spec.to_string(),
            digest: Fnv64::digest_of(bytes),
            trace_bytes: bytes.len() as u64,
            first_op,
            ops,
        };
        write_frame(&mut stream, tag::SUBMIT_RANGE, &submit.encode())?;
        stream.flush()?;
        match self.read_response(&mut stream)? {
            Response::Result(r) => Ok(r),
            Response::NeedTrace => {
                if let Err(e) = self.upload(&mut stream, &mut &bytes[..]) {
                    return match self.read_response(&mut stream) {
                        Ok(Response::Result(r)) => Ok(r),
                        Err(remote @ ServeError::Remote(_)) => Err(remote),
                        _ => Err(e),
                    };
                }
                match self.read_response(&mut stream)? {
                    Response::Result(r) => Ok(r),
                    Response::NeedTrace => Err(ServeError::Protocol(
                        "server asked for the trace twice".into(),
                    )),
                }
            }
        }
    }

    /// Submits a **trace-statistics job** over an already-encoded trace:
    /// the server folds the single-pass `TraceStatistics` collector over
    /// the streamed upload and returns the Fig. 1/2/6 counts. Results are
    /// content-cached like simulations — resubmitting the same bytes is
    /// answered without uploading.
    ///
    /// # Errors
    ///
    /// As [`Client::submit_trace`].
    pub fn submit_stats_encoded(&self, bytes: &[u8]) -> Result<StatsResponse, ServeError> {
        self.stats_stream(Fnv64::digest_of(bytes), bytes.len() as u64, &mut &bytes[..])
    }

    /// [`Client::submit_stats_encoded`] for a trace file, streamed in two
    /// passes like [`Client::submit_file`].
    ///
    /// # Errors
    ///
    /// As [`Client::submit_file`].
    pub fn submit_stats_file<P: AsRef<Path>>(&self, path: P) -> Result<StatsResponse, ServeError> {
        let (digest, len) = digest_file(path.as_ref())?;
        let mut upload = BufReader::new(File::open(path.as_ref())?);
        self.stats_stream(digest, len, &mut upload)
    }

    fn stats_stream<R: Read>(
        &self,
        digest: u64,
        trace_bytes: u64,
        trace: &mut R,
    ) -> Result<StatsResponse, ServeError> {
        let mut stream = self.open()?;
        let submit = StatsSubmit {
            digest,
            trace_bytes,
        };
        write_frame(&mut stream, tag::SUBMIT_STATS, &submit.encode())?;
        stream.flush()?;
        match self.read_stats_response(&mut stream)? {
            StatsReply::Result(r) => Ok(*r),
            StatsReply::NeedTrace => {
                self.upload(&mut stream, trace)?;
                match self.read_stats_response(&mut stream)? {
                    StatsReply::Result(r) => Ok(*r),
                    StatsReply::NeedTrace => Err(ServeError::Protocol(
                        "server asked for the trace twice".into(),
                    )),
                }
            }
        }
    }

    fn read_stats_response(&self, stream: &mut TcpStream) -> Result<StatsReply, ServeError> {
        let (frame_tag, payload) = read_frame(stream)?;
        match frame_tag {
            tag::NEED_TRACE => Ok(StatsReply::NeedTrace),
            tag::TRACE_STATS_RESULT => {
                let (&cached, report_payload) = payload
                    .split_first()
                    .ok_or_else(|| ServeError::Protocol("empty stats result frame".into()))?;
                Ok(StatsReply::Result(Box::new(StatsResponse {
                    cached: cached != 0,
                    report: TraceStatsReport::decode(report_payload)?,
                })))
            }
            other => Err(failure_response(other, payload)),
        }
    }

    /// Fetches the server's job and cache counters.
    ///
    /// # Errors
    ///
    /// I/O failures or protocol violations.
    pub fn stats(&self) -> Result<ServerStats, ServeError> {
        let mut stream = self.open()?;
        write_frame(&mut stream, tag::STATS, &protocol::encode_stats_request())?;
        stream.flush()?;
        let (frame_tag, payload) = read_frame(&mut stream)?;
        match frame_tag {
            tag::STATS_RESULT => ServerStats::decode(&payload),
            other => Err(failure_response(other, payload)),
        }
    }

    /// Fetches the server's runtime telemetry as Prometheus-style
    /// exposition text: the [`ServerStats`] counters plus every metric
    /// the server process has registered (request latency histograms,
    /// queue gauges, stage timings, ...).
    ///
    /// # Errors
    ///
    /// I/O failures, protocol violations, or a non-UTF-8 body.
    pub fn metrics(&self) -> Result<String, ServeError> {
        let mut stream = self.open()?;
        write_frame(
            &mut stream,
            tag::METRICS,
            &protocol::encode_metrics_request(),
        )?;
        stream.flush()?;
        let (frame_tag, payload) = read_frame(&mut stream)?;
        match frame_tag {
            tag::METRICS_RESULT => String::from_utf8(payload)
                .map_err(|_| ServeError::Protocol("metrics body is not UTF-8".into())),
            other => Err(failure_response(other, payload)),
        }
    }
}

/// Turns a non-success response frame into the matching error: a server
/// `ERROR` frame becomes [`ServeError::Remote`], anything else is a
/// protocol violation.
fn failure_response(frame_tag: u8, payload: Vec<u8>) -> ServeError {
    if frame_tag == tag::ERROR {
        ServeError::Remote(String::from_utf8_lossy(&payload).into_owned())
    } else {
        ServeError::Protocol(format!("unexpected response tag {frame_tag:#04x}"))
    }
}

enum Response {
    NeedTrace,
    Result(JobResponse),
}

enum StatsReply {
    NeedTrace,
    Result(Box<StatsResponse>),
}

/// One digesting pass over a file: `(digest, length)`.
fn digest_file(path: &Path) -> Result<(u64, u64), ServeError> {
    let mut digest = Fnv64::new();
    let mut len: u64 = 0;
    let mut reader = BufReader::new(File::open(path)?);
    let mut chunk = vec![0u8; TRACE_CHUNK];
    loop {
        let n = reader.read(&mut chunk)?;
        if n == 0 {
            break;
        }
        digest.update(&chunk[..n]);
        len += n as u64;
    }
    Ok((digest.value(), len))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn connect_resolves_and_sets_timeout() {
        let client = Client::connect("127.0.0.1:1").unwrap().io_timeout(None);
        assert_eq!(client.addr.port(), 1);
        assert!(client.io_timeout.is_none());
    }

    #[test]
    fn connect_rejects_unresolvable() {
        // An empty iterator of addresses.
        let empty: &[SocketAddr] = &[];
        assert!(Client::connect(empty).is_err());
    }
}
