//! Client library for the trace-simulation service.
//!
//! A [`Client`] is an address; every submission opens one connection,
//! performs one half-duplex job exchange (see [`crate::protocol`]), and
//! closes. Submissions identify their trace by content digest up front, so
//! a server-side cache hit is answered **without uploading the trace at
//! all** — resubmitting a large trace costs one small header frame.
//!
//! Traces can be submitted from memory ([`Client::submit_trace`] /
//! [`Client::submit_encoded`]) or streamed from disk
//! ([`Client::submit_file`], two passes: one to digest, one to upload in
//! bounded chunks — the trace is never loaded whole).
//!
//! A [`PipelinedConnection`] is the v3 counterpart: one persistent
//! connection carrying many tagged jobs at once. Submissions return a
//! [`PendingJob`] immediately; a background reader thread demultiplexes
//! response frames by `job_id` into per-job channels, so jobs complete
//! out of order and the connection never idles waiting for the slowest
//! job. Jobs carry priorities and deadlines, can be cancelled while
//! queued, and surface the server's explicit backpressure as
//! [`ServeError::Busy`].

use std::collections::HashMap;
use std::fs::File;
use std::io::{BufReader, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream, ToSocketAddrs};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use fpraker_trace::digest::Fnv64;
use fpraker_trace::{codec, Trace};

use crate::protocol::{
    self, read_frame, tag, write_frame, JobKind, JobResult, JobSubmit, RangeSubmit, ServeError,
    ServerStats, StatsSubmit, Submit, TraceStatsReport, TRACE_CHUNK,
};

/// A server response: the job's result plus whether it was served from the
/// content-addressed cache.
#[derive(Clone, Debug, PartialEq)]
pub struct JobResponse {
    /// `true` when the server replayed a cached result (no simulation, and
    /// — when detected at submission time — no upload either).
    pub cached: bool,
    /// The simulated (or replayed) result.
    pub result: JobResult,
}

/// A trace-statistics job's response: the report plus whether it came
/// from the content-addressed cache.
#[derive(Clone, Debug, PartialEq)]
pub struct StatsResponse {
    /// `true` when the server replayed a cached report.
    pub cached: bool,
    /// The computed (or replayed) statistics.
    pub report: TraceStatsReport,
}

/// A handle on a `fpraker-serve` server.
///
/// ```no_run
/// use fpraker_serve::Client;
/// use fpraker_trace::Trace;
///
/// let client = Client::connect("127.0.0.1:4270").unwrap();
/// let response = client.submit_trace(&Trace::new("m", 0), "fpraker").unwrap();
/// println!("cycles: {}", response.result.cycles);
/// ```
#[derive(Clone, Debug)]
pub struct Client {
    addr: SocketAddr,
    io_timeout: Option<Duration>,
}

impl Client {
    /// Resolves the server address. No connection is made yet — each
    /// request opens its own.
    ///
    /// # Errors
    ///
    /// Fails if `addr` does not resolve to any socket address.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<Client, ServeError> {
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| ServeError::Protocol("address resolved to nothing".into()))?;
        Ok(Client {
            addr,
            io_timeout: Some(Duration::from_secs(600)),
        })
    }

    /// Overrides the per-request socket timeout (`None` blocks forever).
    /// The default is 600 s — long enough for a cold simulation of a large
    /// trace, short enough that a dead server fails the call.
    pub fn io_timeout(mut self, timeout: Option<Duration>) -> Client {
        self.io_timeout = timeout;
        self
    }

    fn open(&self) -> Result<TcpStream, ServeError> {
        let stream = TcpStream::connect(self.addr)?;
        stream.set_read_timeout(self.io_timeout)?;
        stream.set_write_timeout(self.io_timeout)?;
        stream.set_nodelay(true).ok();
        Ok(stream)
    }

    /// Submits an in-memory trace for simulation on the named machine
    /// spec (see `fpraker_sim::machine_names`).
    ///
    /// # Errors
    ///
    /// I/O failures, protocol violations, or a server-side error (unknown
    /// spec, undecodable trace, …) reported as [`ServeError::Remote`].
    pub fn submit_trace(&self, trace: &Trace, spec: &str) -> Result<JobResponse, ServeError> {
        let bytes = codec::encode(trace);
        self.submit_encoded(&bytes, spec)
    }

    /// Submits an already-encoded trace (the exact
    /// [`fpraker_trace::codec`] byte stream).
    ///
    /// # Errors
    ///
    /// As [`Client::submit_trace`].
    pub fn submit_encoded(&self, bytes: &[u8], spec: &str) -> Result<JobResponse, ServeError> {
        self.submit_stream(
            Fnv64::digest_of(bytes),
            bytes.len() as u64,
            spec,
            &mut &bytes[..],
        )
    }

    /// Streams a trace file to the server without loading it: pass one
    /// computes the digest and length, pass two uploads in
    /// [`TRACE_CHUNK`]-byte frames (and only if the server does not
    /// already hold the result).
    ///
    /// # Errors
    ///
    /// As [`Client::submit_trace`], plus file-open/read failures.
    pub fn submit_file<P: AsRef<Path>>(
        &self,
        path: P,
        spec: &str,
    ) -> Result<JobResponse, ServeError> {
        let path = path.as_ref();
        let (digest, len) = digest_file(path)?;
        let mut upload = BufReader::new(File::open(path)?);
        self.submit_stream(digest, len, spec, &mut upload)
    }

    /// The shared submission path: header first, upload only on demand.
    fn submit_stream<R: Read>(
        &self,
        digest: u64,
        trace_bytes: u64,
        spec: &str,
        trace: &mut R,
    ) -> Result<JobResponse, ServeError> {
        if u16::try_from(spec.len()).is_err() {
            return Err(ServeError::Protocol(format!(
                "machine spec of {} bytes exceeds the u16 length prefix",
                spec.len()
            )));
        }
        let mut stream = self.open()?;
        let submit = Submit {
            spec: spec.to_string(),
            digest,
            trace_bytes,
        };
        write_frame(&mut stream, tag::SUBMIT, &submit.encode())?;
        stream.flush()?;
        match self.read_response(&mut stream)? {
            Response::Result(r) => Ok(r),
            Response::NeedTrace => {
                if let Err(e) = self.upload(&mut stream, trace) {
                    // The server may have rejected the upload mid-stream;
                    // prefer its verdict over our broken pipe.
                    return match self.read_response(&mut stream) {
                        Ok(Response::Result(r)) => Ok(r),
                        Err(remote @ ServeError::Remote(_)) => Err(remote),
                        _ => Err(e),
                    };
                }
                match self.read_response(&mut stream)? {
                    Response::Result(r) => Ok(r),
                    Response::NeedTrace => Err(ServeError::Protocol(
                        "server asked for the trace twice".into(),
                    )),
                }
            }
        }
    }

    fn upload<R: Read>(&self, stream: &mut TcpStream, trace: &mut R) -> Result<(), ServeError> {
        let mut chunk = vec![0u8; TRACE_CHUNK];
        loop {
            let n = trace.read(&mut chunk)?;
            if n == 0 {
                break;
            }
            write_frame(stream, tag::TRACE_DATA, &chunk[..n])?;
        }
        write_frame(stream, tag::TRACE_END, &[])?;
        stream.flush()?;
        Ok(())
    }

    fn read_response(&self, stream: &mut TcpStream) -> Result<Response, ServeError> {
        let (frame_tag, payload) = read_frame(stream)?;
        match frame_tag {
            tag::NEED_TRACE => Ok(Response::NeedTrace),
            tag::RESULT => {
                let (&cached, result_payload) = payload
                    .split_first()
                    .ok_or_else(|| ServeError::Protocol("empty result frame".into()))?;
                Ok(Response::Result(JobResponse {
                    cached: cached != 0,
                    result: protocol::decode_result(result_payload)?,
                }))
            }
            other => Err(failure_response(other, payload)),
        }
    }

    /// Submits a **segment-range job**: `bytes` is a self-contained
    /// sub-trace (a fresh header plus a raw op byte-range, as produced by
    /// `fpraker_trace::codec::IndexedReader::extract_range`) covering the
    /// global ops `first_op .. first_op + ops` of a sharded run. The
    /// server re-checks the op count against the declaration; the result
    /// is cached by content digest exactly like [`Client::submit_encoded`],
    /// so re-submitting the same shard — a retry after a worker failure,
    /// or a racing duplicate — is a warm cache hit.
    ///
    /// # Errors
    ///
    /// As [`Client::submit_trace`].
    pub fn submit_range_encoded(
        &self,
        bytes: &[u8],
        spec: &str,
        first_op: u64,
        ops: u64,
    ) -> Result<JobResponse, ServeError> {
        if u16::try_from(spec.len()).is_err() {
            return Err(ServeError::Protocol(format!(
                "machine spec of {} bytes exceeds the u16 length prefix",
                spec.len()
            )));
        }
        let mut stream = self.open()?;
        let submit = RangeSubmit {
            spec: spec.to_string(),
            digest: Fnv64::digest_of(bytes),
            trace_bytes: bytes.len() as u64,
            first_op,
            ops,
        };
        write_frame(&mut stream, tag::SUBMIT_RANGE, &submit.encode())?;
        stream.flush()?;
        match self.read_response(&mut stream)? {
            Response::Result(r) => Ok(r),
            Response::NeedTrace => {
                if let Err(e) = self.upload(&mut stream, &mut &bytes[..]) {
                    return match self.read_response(&mut stream) {
                        Ok(Response::Result(r)) => Ok(r),
                        Err(remote @ ServeError::Remote(_)) => Err(remote),
                        _ => Err(e),
                    };
                }
                match self.read_response(&mut stream)? {
                    Response::Result(r) => Ok(r),
                    Response::NeedTrace => Err(ServeError::Protocol(
                        "server asked for the trace twice".into(),
                    )),
                }
            }
        }
    }

    /// Submits a **trace-statistics job** over an already-encoded trace:
    /// the server folds the single-pass `TraceStatistics` collector over
    /// the streamed upload and returns the Fig. 1/2/6 counts. Results are
    /// content-cached like simulations — resubmitting the same bytes is
    /// answered without uploading.
    ///
    /// # Errors
    ///
    /// As [`Client::submit_trace`].
    pub fn submit_stats_encoded(&self, bytes: &[u8]) -> Result<StatsResponse, ServeError> {
        self.stats_stream(Fnv64::digest_of(bytes), bytes.len() as u64, &mut &bytes[..])
    }

    /// [`Client::submit_stats_encoded`] for a trace file, streamed in two
    /// passes like [`Client::submit_file`].
    ///
    /// # Errors
    ///
    /// As [`Client::submit_file`].
    pub fn submit_stats_file<P: AsRef<Path>>(&self, path: P) -> Result<StatsResponse, ServeError> {
        let (digest, len) = digest_file(path.as_ref())?;
        let mut upload = BufReader::new(File::open(path.as_ref())?);
        self.stats_stream(digest, len, &mut upload)
    }

    fn stats_stream<R: Read>(
        &self,
        digest: u64,
        trace_bytes: u64,
        trace: &mut R,
    ) -> Result<StatsResponse, ServeError> {
        let mut stream = self.open()?;
        let submit = StatsSubmit {
            digest,
            trace_bytes,
        };
        write_frame(&mut stream, tag::SUBMIT_STATS, &submit.encode())?;
        stream.flush()?;
        match self.read_stats_response(&mut stream)? {
            StatsReply::Result(r) => Ok(*r),
            StatsReply::NeedTrace => {
                self.upload(&mut stream, trace)?;
                match self.read_stats_response(&mut stream)? {
                    StatsReply::Result(r) => Ok(*r),
                    StatsReply::NeedTrace => Err(ServeError::Protocol(
                        "server asked for the trace twice".into(),
                    )),
                }
            }
        }
    }

    fn read_stats_response(&self, stream: &mut TcpStream) -> Result<StatsReply, ServeError> {
        let (frame_tag, payload) = read_frame(stream)?;
        match frame_tag {
            tag::NEED_TRACE => Ok(StatsReply::NeedTrace),
            tag::TRACE_STATS_RESULT => {
                let (&cached, report_payload) = payload
                    .split_first()
                    .ok_or_else(|| ServeError::Protocol("empty stats result frame".into()))?;
                Ok(StatsReply::Result(Box::new(StatsResponse {
                    cached: cached != 0,
                    report: TraceStatsReport::decode(report_payload)?,
                })))
            }
            other => Err(failure_response(other, payload)),
        }
    }

    /// Fetches the server's job and cache counters.
    ///
    /// # Errors
    ///
    /// I/O failures or protocol violations.
    pub fn stats(&self) -> Result<ServerStats, ServeError> {
        let mut stream = self.open()?;
        write_frame(&mut stream, tag::STATS, &protocol::encode_stats_request())?;
        stream.flush()?;
        let (frame_tag, payload) = read_frame(&mut stream)?;
        match frame_tag {
            tag::STATS_RESULT => ServerStats::decode(&payload),
            other => Err(failure_response(other, payload)),
        }
    }

    /// Fetches the server's runtime telemetry as Prometheus-style
    /// exposition text: the [`ServerStats`] counters plus every metric
    /// the server process has registered (request latency histograms,
    /// queue gauges, stage timings, ...).
    ///
    /// # Errors
    ///
    /// I/O failures, protocol violations, or a non-UTF-8 body.
    pub fn metrics(&self) -> Result<String, ServeError> {
        let mut stream = self.open()?;
        write_frame(
            &mut stream,
            tag::METRICS,
            &protocol::encode_metrics_request(),
        )?;
        stream.flush()?;
        let (frame_tag, payload) = read_frame(&mut stream)?;
        match frame_tag {
            tag::METRICS_RESULT => String::from_utf8(payload)
                .map_err(|_| ServeError::Protocol("metrics body is not UTF-8".into())),
            other => Err(failure_response(other, payload)),
        }
    }
}

/// Turns a non-success response frame into the matching error: a server
/// `ERROR` frame becomes [`ServeError::Remote`], anything else is a
/// protocol violation.
fn failure_response(frame_tag: u8, payload: Vec<u8>) -> ServeError {
    if frame_tag == tag::ERROR {
        ServeError::Remote(String::from_utf8_lossy(&payload).into_owned())
    } else {
        ServeError::Protocol(format!("unexpected response tag {frame_tag:#04x}"))
    }
}

enum Response {
    NeedTrace,
    Result(JobResponse),
}

enum StatsReply {
    NeedTrace,
    Result(Box<StatsResponse>),
}

/// Per-job scheduling options for tagged (v3) submissions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct JobOptions {
    /// Scheduling priority: higher runs sooner, ties run in submission
    /// order. The default (100) matches what the server assumes for
    /// untagged v2 jobs, so tagged and legacy traffic interleave fairly
    /// unless a job opts to jump (or yield) the line.
    pub priority: u8,
    /// Queueing deadline in milliseconds from server receipt; `0` means
    /// none. A job still *queued* when it lapses fails with
    /// [`ServeError::DeadlineExpired`]; a running job always finishes.
    pub deadline_ms: u32,
}

impl Default for JobOptions {
    fn default() -> Self {
        JobOptions {
            priority: crate::server::DEFAULT_PRIORITY,
            deadline_ms: 0,
        }
    }
}

/// A demultiplexed response event for one job, routed by the reader
/// thread.
enum JobEvent {
    NeedTrace,
    Result { cached: bool, payload: Vec<u8> },
    StatsResult { cached: bool, payload: Vec<u8> },
    Busy(u32),
    Failed { code: u8, message: String },
    Disconnected(String),
}

/// Routing table between the reader thread and in-flight jobs.
struct JobTable {
    map: HashMap<u64, mpsc::Sender<JobEvent>>,
    /// Once set, the connection is unusable and every new submission
    /// fails fast with this message.
    dead: Option<String>,
}

struct ConnShared {
    writer: Mutex<TcpStream>,
    jobs: Mutex<JobTable>,
    next_id: AtomicU64,
}

impl ConnShared {
    /// Routes one event to its job (events for finished jobs are stale
    /// and dropped).
    fn route(&self, job_id: u64, event: JobEvent) {
        let sender = self.jobs.lock().unwrap().map.get(&job_id).cloned();
        if let Some(sender) = sender {
            let _ = sender.send(event);
        }
    }

    /// Marks the connection dead and tells every in-flight job.
    fn poison(&self, message: String) {
        let mut jobs = self.jobs.lock().unwrap();
        jobs.dead.get_or_insert_with(|| message.clone());
        for sender in jobs.map.values() {
            let _ = sender.send(JobEvent::Disconnected(message.clone()));
        }
        jobs.map.clear();
    }
}

/// One persistent v3 connection multiplexing many jobs.
///
/// Submissions ([`PipelinedConnection::start_encoded`] and friends)
/// write the tagged header and return a [`PendingJob`] immediately;
/// [`PendingJob::wait`] drives the upload (if the server asks) and
/// blocks for that job's own result while other jobs on the same
/// connection proceed. The blocking convenience wrappers
/// ([`PipelinedConnection::submit_encoded`], …) are start + wait.
///
/// The connection is `Sync`: submissions and waits may happen from many
/// threads at once, frames are serialized internally.
pub struct PipelinedConnection {
    shared: Arc<ConnShared>,
    /// The reader half, kept to force a shutdown on drop.
    stream: TcpStream,
    reader: Option<JoinHandle<()>>,
}

impl PipelinedConnection {
    /// Opens the connection and starts the demultiplexing reader thread.
    ///
    /// # Errors
    ///
    /// Address resolution or connection failures.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<PipelinedConnection, ServeError> {
        Self::connect_with_timeout(addr, Some(Duration::from_secs(600)))
    }

    /// [`PipelinedConnection::connect`] with an explicit socket timeout
    /// (`None` blocks forever). The timeout bounds individual socket
    /// operations, not job lifetimes: the reader thread tolerates idle
    /// timeouts between frames because a pipelined connection is
    /// legitimately quiet while all jobs are queued server-side.
    ///
    /// # Errors
    ///
    /// As [`PipelinedConnection::connect`].
    pub fn connect_with_timeout<A: ToSocketAddrs>(
        addr: A,
        io_timeout: Option<Duration>,
    ) -> Result<PipelinedConnection, ServeError> {
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| ServeError::Protocol("address resolved to nothing".into()))?;
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(io_timeout)?;
        stream.set_write_timeout(io_timeout)?;
        stream.set_nodelay(true).ok();
        let shared = Arc::new(ConnShared {
            writer: Mutex::new(stream.try_clone()?),
            jobs: Mutex::new(JobTable {
                map: HashMap::new(),
                dead: None,
            }),
            next_id: AtomicU64::new(1),
        });
        let reader_stream = stream.try_clone()?;
        let reader_shared = Arc::clone(&shared);
        let reader = std::thread::spawn(move || reader_loop(reader_stream, &reader_shared));
        Ok(PipelinedConnection {
            shared,
            stream,
            reader: Some(reader),
        })
    }

    /// Starts a tagged simulation job over already-encoded trace bytes.
    /// Returns as soon as the header frame is written; pair with
    /// [`PendingJob::wait`].
    ///
    /// # Errors
    ///
    /// I/O failures or a dead connection.
    pub fn start_encoded<'a>(
        &self,
        bytes: &'a [u8],
        spec: &str,
        options: JobOptions,
    ) -> Result<PendingJob<'a>, ServeError> {
        self.start_job(
            bytes,
            JobKind::Sim {
                spec: spec.to_string(),
            },
            options,
        )
    }

    /// Starts a tagged segment-range job (see
    /// [`Client::submit_range_encoded`] for range semantics).
    ///
    /// # Errors
    ///
    /// As [`PipelinedConnection::start_encoded`].
    pub fn start_range_encoded<'a>(
        &self,
        bytes: &'a [u8],
        spec: &str,
        first_op: u64,
        ops: u64,
        options: JobOptions,
    ) -> Result<PendingJob<'a>, ServeError> {
        self.start_job(
            bytes,
            JobKind::Range {
                spec: spec.to_string(),
                first_op,
                ops,
            },
            options,
        )
    }

    /// Starts a tagged trace-statistics job.
    ///
    /// # Errors
    ///
    /// As [`PipelinedConnection::start_encoded`].
    pub fn start_stats_encoded<'a>(
        &self,
        bytes: &'a [u8],
        options: JobOptions,
    ) -> Result<PendingJob<'a>, ServeError> {
        self.start_job(bytes, JobKind::Stats, options)
    }

    /// Blocking tagged simulation: start + wait.
    ///
    /// # Errors
    ///
    /// As [`Client::submit_encoded`], plus [`ServeError::Busy`] under
    /// server backpressure.
    pub fn submit_encoded(
        &self,
        bytes: &[u8],
        spec: &str,
        options: JobOptions,
    ) -> Result<JobResponse, ServeError> {
        self.start_encoded(bytes, spec, options)?.wait()
    }

    /// Blocking tagged range submission: start + wait.
    ///
    /// # Errors
    ///
    /// As [`PipelinedConnection::submit_encoded`].
    pub fn submit_range_encoded(
        &self,
        bytes: &[u8],
        spec: &str,
        first_op: u64,
        ops: u64,
        options: JobOptions,
    ) -> Result<JobResponse, ServeError> {
        self.start_range_encoded(bytes, spec, first_op, ops, options)?
            .wait()
    }

    /// Blocking tagged statistics submission: start + wait.
    ///
    /// # Errors
    ///
    /// As [`PipelinedConnection::submit_encoded`].
    pub fn submit_stats_encoded(&self, bytes: &[u8]) -> Result<StatsResponse, ServeError> {
        self.start_stats_encoded(bytes, JobOptions::default())?
            .wait_stats()
    }

    fn start_job<'a>(
        &self,
        bytes: &'a [u8],
        kind: JobKind,
        options: JobOptions,
    ) -> Result<PendingJob<'a>, ServeError> {
        if let JobKind::Sim { spec } | JobKind::Range { spec, .. } = &kind {
            if u16::try_from(spec.len()).is_err() {
                return Err(ServeError::Protocol(format!(
                    "machine spec of {} bytes exceeds the u16 length prefix",
                    spec.len()
                )));
            }
        }
        let is_stats = matches!(kind, JobKind::Stats);
        let job_id = self.shared.next_id.fetch_add(1, Ordering::Relaxed);
        let submit = JobSubmit {
            job_id,
            priority: options.priority,
            deadline_ms: options.deadline_ms,
            digest: Fnv64::digest_of(bytes),
            trace_bytes: bytes.len() as u64,
            kind,
        };
        let (tx, rx) = mpsc::channel();
        {
            let mut jobs = self.shared.jobs.lock().unwrap();
            if let Some(reason) = &jobs.dead {
                return Err(ServeError::Protocol(format!("connection lost: {reason}")));
            }
            jobs.map.insert(job_id, tx);
        }
        // Register-then-write: a response can race back before this
        // thread resumes, and the reader must already know the id.
        let written = (|| -> Result<(), ServeError> {
            let mut w = self.shared.writer.lock().unwrap();
            write_frame(&mut *w, tag::SUBMIT_JOB, &submit.encode())?;
            w.flush()?;
            Ok(())
        })();
        if let Err(e) = written {
            self.shared.jobs.lock().unwrap().map.remove(&job_id);
            return Err(e);
        }
        Ok(PendingJob {
            shared: Arc::clone(&self.shared),
            job_id,
            rx,
            bytes,
            is_stats,
        })
    }

    /// Requests cancellation of a job by id (see [`PendingJob::id`]).
    /// Queued jobs die with [`ServeError::Cancelled`]; jobs already
    /// running (or finished) are unaffected — cancellation is advisory,
    /// the caller still waits for the job's actual outcome.
    ///
    /// # Errors
    ///
    /// I/O failures writing the frame.
    pub fn cancel(&self, job_id: u64) -> Result<(), ServeError> {
        let mut w = self.shared.writer.lock().unwrap();
        write_frame(&mut *w, tag::CANCEL, &protocol::encode_cancel(job_id))?;
        w.flush()?;
        Ok(())
    }
}

impl Drop for PipelinedConnection {
    fn drop(&mut self) {
        // Unblock and join the reader; it poisons any stragglers.
        let _ = self.stream.shutdown(Shutdown::Both);
        if let Some(t) = self.reader.take() {
            let _ = t.join();
        }
    }
}

impl std::fmt::Debug for PipelinedConnection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PipelinedConnection")
            .field("peer", &self.stream.peer_addr().ok())
            .finish_non_exhaustive()
    }
}

/// The demultiplexer: reads response frames off the shared connection
/// and routes each to its job's channel by the `job_id` prefix.
fn reader_loop(mut stream: TcpStream, shared: &ConnShared) {
    loop {
        let (frame_tag, payload) = match read_frame(&mut stream) {
            Ok(frame) => frame,
            Err(ServeError::Io(e))
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                // Idle between frames: all jobs are queued or running
                // server-side. Keep listening.
                continue;
            }
            Err(e) => {
                shared.poison(e.to_string());
                return;
            }
        };
        let routed = (|| -> Result<(), ServeError> {
            match frame_tag {
                tag::JOB_NEED_TRACE => {
                    let (job_id, _) = protocol::split_job_payload(&payload)?;
                    shared.route(job_id, JobEvent::NeedTrace);
                }
                tag::JOB_RESULT | tag::JOB_STATS_RESULT => {
                    let (job_id, rest) = protocol::split_job_payload(&payload)?;
                    let (&cached, result_payload) = rest
                        .split_first()
                        .ok_or_else(|| ServeError::Protocol("empty tagged result".into()))?;
                    let event = if frame_tag == tag::JOB_RESULT {
                        JobEvent::Result {
                            cached: cached != 0,
                            payload: result_payload.to_vec(),
                        }
                    } else {
                        JobEvent::StatsResult {
                            cached: cached != 0,
                            payload: result_payload.to_vec(),
                        }
                    };
                    shared.route(job_id, event);
                }
                tag::BUSY => {
                    let (job_id, retry_after_ms) = protocol::decode_busy(&payload)?;
                    shared.route(job_id, JobEvent::Busy(retry_after_ms));
                }
                tag::JOB_ERROR => {
                    let (job_id, code, message) = protocol::decode_job_error(&payload)?;
                    shared.route(job_id, JobEvent::Failed { code, message });
                }
                tag::ERROR => {
                    // Connection-level failure: the server closes after
                    // this, so every job dies with it.
                    return Err(ServeError::Remote(
                        String::from_utf8_lossy(&payload).into_owned(),
                    ));
                }
                other => {
                    return Err(ServeError::Protocol(format!(
                        "unexpected response tag {other:#04x} on a pipelined connection"
                    )));
                }
            }
            Ok(())
        })();
        if let Err(e) = routed {
            shared.poison(e.to_string());
            return;
        }
    }
}

/// A tagged job in flight on a [`PipelinedConnection`]. Waiting on one
/// job never blocks the others; dropping the handle abandons the job
/// (any late response frames are discarded).
pub struct PendingJob<'a> {
    shared: Arc<ConnShared>,
    job_id: u64,
    rx: mpsc::Receiver<JobEvent>,
    bytes: &'a [u8],
    is_stats: bool,
}

impl PendingJob<'_> {
    /// The job's wire id (for [`PipelinedConnection::cancel`]).
    pub fn id(&self) -> u64 {
        self.job_id
    }

    /// Requests cancellation of this job (advisory — see
    /// [`PipelinedConnection::cancel`]).
    ///
    /// # Errors
    ///
    /// I/O failures writing the frame.
    pub fn cancel(&self) -> Result<(), ServeError> {
        let mut w = self.shared.writer.lock().unwrap();
        write_frame(&mut *w, tag::CANCEL, &protocol::encode_cancel(self.job_id))?;
        w.flush()?;
        Ok(())
    }

    /// Blocks for a simulation or range job's result, uploading the trace
    /// if the server asks for it.
    ///
    /// # Errors
    ///
    /// As [`Client::submit_encoded`], plus [`ServeError::Busy`] /
    /// [`ServeError::Cancelled`] / [`ServeError::DeadlineExpired`] for
    /// the tagged-job outcomes.
    pub fn wait(self) -> Result<JobResponse, ServeError> {
        let (cached, payload) = self.wait_raw()?;
        Ok(JobResponse {
            cached,
            result: protocol::decode_result(&payload)?,
        })
    }

    /// Blocks for a statistics job's report.
    ///
    /// # Errors
    ///
    /// As [`PendingJob::wait`].
    pub fn wait_stats(self) -> Result<StatsResponse, ServeError> {
        let (cached, payload) = self.wait_raw()?;
        Ok(StatsResponse {
            cached,
            report: TraceStatsReport::decode(&payload)?,
        })
    }

    fn wait_raw(&self) -> Result<(bool, Vec<u8>), ServeError> {
        loop {
            let event = self.rx.recv().map_err(|_| {
                let reason = self
                    .shared
                    .jobs
                    .lock()
                    .unwrap()
                    .dead
                    .clone()
                    .unwrap_or_else(|| "reader thread exited".into());
                ServeError::Protocol(format!("connection lost: {reason}"))
            })?;
            match event {
                JobEvent::NeedTrace => self.upload()?,
                JobEvent::Result { cached, payload } => {
                    if self.is_stats {
                        return Err(ServeError::Protocol(
                            "simulation result for a statistics job".into(),
                        ));
                    }
                    return Ok((cached, payload));
                }
                JobEvent::StatsResult { cached, payload } => {
                    if !self.is_stats {
                        return Err(ServeError::Protocol(
                            "statistics result for a simulation job".into(),
                        ));
                    }
                    return Ok((cached, payload));
                }
                JobEvent::Busy(retry_after_ms) => {
                    return Err(ServeError::Busy { retry_after_ms });
                }
                JobEvent::Failed { code, message } => {
                    return Err(protocol::job_error_to_serve_error(code, message));
                }
                JobEvent::Disconnected(reason) => {
                    return Err(ServeError::Protocol(format!("connection lost: {reason}")));
                }
            }
        }
    }

    /// Uploads the trace as id-prefixed `JOB_DATA` frames. The writer
    /// lock is taken per frame, not for the whole upload, so concurrent
    /// jobs' frames interleave on the wire — the server reassembles each
    /// job's stream by id.
    fn upload(&self) -> Result<(), ServeError> {
        for chunk in self.bytes.chunks(TRACE_CHUNK) {
            let mut w = self.shared.writer.lock().unwrap();
            write_frame(
                &mut *w,
                tag::JOB_DATA,
                &protocol::encode_job_payload(self.job_id, chunk),
            )?;
        }
        let mut w = self.shared.writer.lock().unwrap();
        write_frame(
            &mut *w,
            tag::JOB_DATA_END,
            &protocol::encode_job_payload(self.job_id, &[]),
        )?;
        w.flush()?;
        Ok(())
    }
}

impl Drop for PendingJob<'_> {
    fn drop(&mut self) {
        self.shared.jobs.lock().unwrap().map.remove(&self.job_id);
    }
}

/// Start-plus-wait with bounded retries under server backpressure: on
/// [`ServeError::Busy`] the submission sleeps for the server's
/// `retry_after_ms` hint and tries again, up to `max_retries` times.
///
/// # Errors
///
/// As [`PipelinedConnection::submit_encoded`]; the final
/// [`ServeError::Busy`] is returned when retries are exhausted.
pub fn submit_with_retry(
    conn: &PipelinedConnection,
    bytes: &[u8],
    spec: &str,
    options: JobOptions,
    max_retries: u32,
) -> Result<JobResponse, ServeError> {
    let mut attempt = 0;
    loop {
        match conn.submit_encoded(bytes, spec, options) {
            Err(ServeError::Busy { retry_after_ms }) if attempt < max_retries => {
                attempt += 1;
                std::thread::sleep(Duration::from_millis(u64::from(retry_after_ms)));
            }
            other => return other,
        }
    }
}

/// One digesting pass over a file: `(digest, length)`.
fn digest_file(path: &Path) -> Result<(u64, u64), ServeError> {
    let mut digest = Fnv64::new();
    let mut len: u64 = 0;
    let mut reader = BufReader::new(File::open(path)?);
    let mut chunk = vec![0u8; TRACE_CHUNK];
    loop {
        let n = reader.read(&mut chunk)?;
        if n == 0 {
            break;
        }
        digest.update(&chunk[..n]);
        len += n as u64;
    }
    Ok((digest.value(), len))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn connect_resolves_and_sets_timeout() {
        let client = Client::connect("127.0.0.1:1").unwrap().io_timeout(None);
        assert_eq!(client.addr.port(), 1);
        assert!(client.io_timeout.is_none());
    }

    #[test]
    fn connect_rejects_unresolvable() {
        // An empty iterator of addresses.
        let empty: &[SocketAddr] = &[];
        assert!(Client::connect(empty).is_err());
    }
}
