//! `fpraker-submit` — submits a trace file to a running `fpraker-served`
//! and prints the result summary.
//!
//! ```text
//! fpraker-submit --trace FILE [--addr HOST:PORT] [--machine NAME]
//!                [--verify] [--expect-cached] [--per-op]
//! fpraker-submit --metrics [--addr HOST:PORT]
//! fpraker-submit --list-machines
//! ```
//!
//! `--verify` also decodes the trace locally (indexed files included —
//! the footer is skipped), simulates it with
//! [`fpraker_sim::Engine::run`], and exits non-zero unless the server's
//! per-op results are identical — the end-to-end determinism check CI
//! runs. `--expect-cached` exits non-zero unless the server answered from
//! its content-addressed cache. `--metrics` fetches the server's
//! Prometheus-style telemetry text and prints it verbatim.
//! `--list-machines` prints every machine spec the registry resolves and
//! exits.

use std::process::exit;

use fpraker_serve::Client;
use fpraker_sim::{resolve_machine, Engine, MACHINE_SPECS};
use fpraker_trace::codec;

fn usage() -> ! {
    eprintln!(
        "usage: fpraker-submit --trace FILE [--addr HOST:PORT] [--machine NAME] \
         [--verify] [--expect-cached] [--per-op]\n       \
         fpraker-submit --metrics [--addr HOST:PORT]\n       \
         fpraker-submit --list-machines"
    );
    exit(2);
}

fn list_machines() -> ! {
    for spec in MACHINE_SPECS {
        println!("{:<10} {}", spec.name, spec.summary);
    }
    exit(0);
}

fn main() {
    let mut addr = "127.0.0.1:4270".to_string();
    let mut trace_path: Option<String> = None;
    let mut machine = "fpraker".to_string();
    let mut verify = false;
    let mut expect_cached = false;
    let mut per_op = false;
    let mut metrics = false;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--addr" => addr = args.next().unwrap_or_else(|| usage()),
            "--trace" => trace_path = Some(args.next().unwrap_or_else(|| usage())),
            "--machine" => machine = args.next().unwrap_or_else(|| usage()),
            "--verify" => verify = true,
            "--expect-cached" => expect_cached = true,
            "--per-op" => per_op = true,
            "--metrics" => metrics = true,
            "--list-machines" => list_machines(),
            _ => usage(),
        }
    }
    if metrics {
        let client = Client::connect(&addr).unwrap_or_else(|e| {
            eprintln!("cannot resolve {addr}: {e}");
            exit(1);
        });
        let text = client.metrics().unwrap_or_else(|e| {
            eprintln!("metrics request failed: {e}");
            exit(1);
        });
        print!("{text}");
        exit(0);
    }
    let Some(trace_path) = trace_path else {
        usage()
    };

    let client = Client::connect(&addr).unwrap_or_else(|e| {
        eprintln!("cannot resolve {addr}: {e}");
        exit(1);
    });
    let response = client
        .submit_file(&trace_path, &machine)
        .unwrap_or_else(|e| {
            eprintln!("submission failed: {e}");
            exit(1);
        });
    let r = &response.result;
    println!(
        "{} on {}: {} ops, {} cycles ({} compute), {} MACs, {:.1} pJ, peak {} resident ops{}",
        trace_path,
        r.spec,
        r.ops.len(),
        r.cycles,
        r.compute_cycles,
        r.macs,
        r.energy_pj,
        r.peak_resident_ops,
        if response.cached { " [cached]" } else { "" }
    );
    if per_op {
        for (i, op) in r.ops.iter().enumerate() {
            println!(
                "  op {i}: {:?} {} cycles ({} compute), {} MACs, {:.1} pJ",
                op.phase, op.cycles, op.compute_cycles, op.macs, op.energy_pj
            );
        }
    }

    if expect_cached && !response.cached {
        eprintln!("expected a cache hit but the server simulated the job");
        exit(1);
    }

    if verify {
        let bytes = std::fs::read(&trace_path).unwrap_or_else(|e| {
            eprintln!("cannot read {trace_path}: {e}");
            exit(1);
        });
        let trace = codec::decode(&bytes).unwrap_or_else(|e| {
            eprintln!("cannot decode {trace_path}: {e}");
            exit(1);
        });
        let Some((label, cfg)) = resolve_machine(&machine) else {
            eprintln!("unknown machine {machine:?}");
            exit(1);
        };
        let local = Engine::new().run(label, &trace, &cfg);
        let mut mismatches = 0u32;
        if local.ops.len() != r.ops.len() {
            eprintln!(
                "verify: server returned {} ops, local run has {}",
                r.ops.len(),
                local.ops.len()
            );
            mismatches += 1;
        }
        for (i, (ours, theirs)) in local.ops.iter().zip(&r.ops).enumerate() {
            if ours.cycles != theirs.cycles
                || ours.compute_cycles != theirs.compute_cycles
                || ours.macs != theirs.macs
            {
                eprintln!(
                    "verify: op {i} differs (local {}/{}/{} vs served {}/{}/{})",
                    ours.cycles,
                    ours.compute_cycles,
                    ours.macs,
                    theirs.cycles,
                    theirs.compute_cycles,
                    theirs.macs
                );
                mismatches += 1;
            }
        }
        if local.cycles() != r.cycles || local.macs() != r.macs {
            eprintln!("verify: run summary differs");
            mismatches += 1;
        }
        if mismatches > 0 {
            eprintln!("verify FAILED: {mismatches} mismatch(es)");
            exit(1);
        }
        println!("verify OK: served results identical to a local Engine::run");
    }
}
