//! `fpraker-submit` — submits a trace file to a running `fpraker-served`
//! and prints the result summary.
//!
//! ```text
//! fpraker-submit --trace FILE [--addr HOST:PORT] [--machine NAME]
//!                [--verify] [--expect-cached] [--per-op]
//!                [--jobs N] [--concurrency C] [--distinct]
//!                [--priority P] [--deadline-ms D]
//! fpraker-submit --metrics [--addr HOST:PORT]
//! fpraker-submit --list-machines
//! ```
//!
//! `--verify` also decodes the trace locally (indexed files included —
//! the footer is skipped), simulates it with
//! [`fpraker_sim::Engine::run`], and exits non-zero unless the server's
//! per-op results are identical — the end-to-end determinism check CI
//! runs. `--expect-cached` exits non-zero unless the server answered from
//! its content-addressed cache. `--metrics` fetches the server's
//! Prometheus-style telemetry text and prints it verbatim.
//! `--list-machines` prints every machine spec the registry resolves and
//! exits.
//!
//! With `--jobs N` (and optionally `--concurrency C`, default 1) the
//! tool becomes a load generator: the trace is submitted `N` times over
//! `C` pipelined v3 connections — several jobs in flight per connection,
//! completions demultiplexed out of order — and aggregate throughput
//! (jobs/s) plus nearest-rank latency percentiles are printed. With
//! `--distinct` every job gets a unique variant of the trace (the model
//! name is suffixed, changing the content digest) so every job is a cold
//! simulation; without it, job 1 is cold and the rest are cache hits —
//! the mixed warm/cold regime a fleet actually serves. `BUSY`
//! backpressure is retried after the server's hint. `--verify` and
//! `--expect-cached` apply to every job.

use std::process::exit;

use fpraker_serve::Client;
use fpraker_sim::{resolve_machine, Engine, MACHINE_SPECS};
use fpraker_trace::codec;

fn usage() -> ! {
    eprintln!(
        "usage: fpraker-submit --trace FILE [--addr HOST:PORT] [--machine NAME] \
         [--verify] [--expect-cached] [--per-op] [--jobs N] [--concurrency C] \
         [--distinct] [--priority P] [--deadline-ms D]\n       \
         fpraker-submit --metrics [--addr HOST:PORT]\n       \
         fpraker-submit --list-machines"
    );
    exit(2);
}

fn list_machines() -> ! {
    for spec in MACHINE_SPECS {
        println!("{:<10} {}", spec.name, spec.summary);
    }
    exit(0);
}

fn parse<T: std::str::FromStr>(flag: &str, value: Option<String>) -> T {
    let Some(v) = value else {
        eprintln!("{flag} needs a value");
        usage();
    };
    v.parse().unwrap_or_else(|_| {
        eprintln!("{flag}: cannot parse {v:?}");
        usage();
    })
}

fn main() {
    let mut addr = "127.0.0.1:4270".to_string();
    let mut trace_path: Option<String> = None;
    let mut machine = "fpraker".to_string();
    let mut verify = false;
    let mut expect_cached = false;
    let mut per_op = false;
    let mut metrics = false;
    let mut jobs: usize = 1;
    let mut concurrency: usize = 1;
    let mut distinct = false;
    let mut options = fpraker_serve::JobOptions::default();
    let mut load_gen = false;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--addr" => addr = args.next().unwrap_or_else(|| usage()),
            "--trace" => trace_path = Some(args.next().unwrap_or_else(|| usage())),
            "--machine" => machine = args.next().unwrap_or_else(|| usage()),
            "--verify" => verify = true,
            "--expect-cached" => expect_cached = true,
            "--per-op" => per_op = true,
            "--metrics" => metrics = true,
            "--jobs" => {
                jobs = parse(&flag, args.next());
                load_gen = true;
            }
            "--concurrency" => {
                concurrency = parse(&flag, args.next());
                load_gen = true;
            }
            "--distinct" => {
                distinct = true;
                load_gen = true;
            }
            "--priority" => options.priority = parse(&flag, args.next()),
            "--deadline-ms" => options.deadline_ms = parse(&flag, args.next()),
            "--list-machines" => list_machines(),
            _ => usage(),
        }
    }
    if metrics {
        let client = Client::connect(&addr).unwrap_or_else(|e| {
            eprintln!("cannot resolve {addr}: {e}");
            exit(1);
        });
        let text = client.metrics().unwrap_or_else(|e| {
            eprintln!("metrics request failed: {e}");
            exit(1);
        });
        print!("{text}");
        exit(0);
    }
    let Some(trace_path) = trace_path else {
        usage()
    };
    if load_gen {
        run_load_gen(&LoadGen {
            addr,
            trace_path,
            machine,
            jobs: jobs.max(1),
            concurrency: concurrency.max(1),
            distinct,
            options,
            verify,
            expect_cached,
        });
    }

    let client = Client::connect(&addr).unwrap_or_else(|e| {
        eprintln!("cannot resolve {addr}: {e}");
        exit(1);
    });
    let response = client
        .submit_file(&trace_path, &machine)
        .unwrap_or_else(|e| {
            eprintln!("submission failed: {e}");
            exit(1);
        });
    let r = &response.result;
    println!(
        "{} on {}: {} ops, {} cycles ({} compute), {} MACs, {:.1} pJ, peak {} resident ops{}",
        trace_path,
        r.spec,
        r.ops.len(),
        r.cycles,
        r.compute_cycles,
        r.macs,
        r.energy_pj,
        r.peak_resident_ops,
        if response.cached { " [cached]" } else { "" }
    );
    if per_op {
        for (i, op) in r.ops.iter().enumerate() {
            println!(
                "  op {i}: {:?} {} cycles ({} compute), {} MACs, {:.1} pJ",
                op.phase, op.cycles, op.compute_cycles, op.macs, op.energy_pj
            );
        }
    }

    if expect_cached && !response.cached {
        eprintln!("expected a cache hit but the server simulated the job");
        exit(1);
    }

    if verify {
        let bytes = std::fs::read(&trace_path).unwrap_or_else(|e| {
            eprintln!("cannot read {trace_path}: {e}");
            exit(1);
        });
        let trace = codec::decode(&bytes).unwrap_or_else(|e| {
            eprintln!("cannot decode {trace_path}: {e}");
            exit(1);
        });
        let Some((label, cfg)) = resolve_machine(&machine) else {
            eprintln!("unknown machine {machine:?}");
            exit(1);
        };
        let local = Engine::new().run(label, &trace, &cfg);
        let mut mismatches = 0u32;
        if local.ops.len() != r.ops.len() {
            eprintln!(
                "verify: server returned {} ops, local run has {}",
                r.ops.len(),
                local.ops.len()
            );
            mismatches += 1;
        }
        for (i, (ours, theirs)) in local.ops.iter().zip(&r.ops).enumerate() {
            if ours.cycles != theirs.cycles
                || ours.compute_cycles != theirs.compute_cycles
                || ours.macs != theirs.macs
            {
                eprintln!(
                    "verify: op {i} differs (local {}/{}/{} vs served {}/{}/{})",
                    ours.cycles,
                    ours.compute_cycles,
                    ours.macs,
                    theirs.cycles,
                    theirs.compute_cycles,
                    theirs.macs
                );
                mismatches += 1;
            }
        }
        if local.cycles() != r.cycles || local.macs() != r.macs {
            eprintln!("verify: run summary differs");
            mismatches += 1;
        }
        if mismatches > 0 {
            eprintln!("verify FAILED: {mismatches} mismatch(es)");
            exit(1);
        }
        println!("verify OK: served results identical to a local Engine::run");
    }
}

struct LoadGen {
    addr: String,
    trace_path: String,
    machine: String,
    jobs: usize,
    concurrency: usize,
    distinct: bool,
    options: fpraker_serve::JobOptions,
    verify: bool,
    expect_cached: bool,
}

/// How many jobs each connection keeps in flight at once. Deep enough to
/// overlap upload, queueing and simulation; shallow enough that latency
/// percentiles still mean something.
const INFLIGHT_PER_CONNECTION: usize = 4;

/// How often a `BUSY` job is retried before the run gives up on it.
const MAX_BUSY_RETRIES: u32 = 1000;

/// The load-generation mode: `jobs` submissions of the trace (all the
/// same content, or one distinct variant per job) spread over
/// `concurrency` pipelined connections, with a bounded in-flight window
/// per connection, aggregate throughput, and nearest-rank latency
/// percentiles. Exits the process.
fn run_load_gen(cfg: &LoadGen) -> ! {
    use fpraker_serve::{PipelinedConnection, ServeError};
    use std::time::Instant;

    let bytes = std::fs::read(&cfg.trace_path).unwrap_or_else(|e| {
        eprintln!("cannot read {}: {e}", cfg.trace_path);
        exit(1);
    });
    // Distinct mode re-frames the trace once per job with a suffixed
    // model name: different bytes → different content digest → every job
    // is a cold simulation. Payload index i belongs to job i; in shared
    // mode every job submits payload 0.
    let payloads: Vec<Vec<u8>> = if cfg.distinct {
        let trace = codec::decode(&bytes).unwrap_or_else(|e| {
            eprintln!("cannot decode {}: {e}", cfg.trace_path);
            exit(1);
        });
        (0..cfg.jobs)
            .map(|i| {
                let mut variant = trace.clone();
                variant.model = format!("{}#{i}", trace.model);
                codec::encode(&variant).to_vec()
            })
            .collect()
    } else {
        vec![bytes]
    };
    let payload_of = |job: usize| &payloads[if cfg.distinct { job } else { 0 }];

    struct JobRecord {
        job: usize,
        latency: std::time::Duration,
        cached: bool,
        result: Option<fpraker_serve::JobResult>,
    }

    let started = Instant::now();
    let records: Vec<JobRecord> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..cfg.concurrency)
            .map(|t| {
                let payloads = &payloads;
                scope.spawn(move || -> Result<Vec<JobRecord>, String> {
                    let conn = PipelinedConnection::connect(&cfg.addr)
                        .map_err(|e| format!("cannot connect to {}: {e}", cfg.addr))?;
                    let my_jobs: Vec<usize> = (t..cfg.jobs).step_by(cfg.concurrency).collect();
                    let mut records = Vec::with_capacity(my_jobs.len());
                    let mut window: std::collections::VecDeque<(
                        usize,
                        Instant,
                        fpraker_serve::PendingJob<'_>,
                    )> = std::collections::VecDeque::new();
                    let complete =
                        |(job, t0, pending): (usize, Instant, fpraker_serve::PendingJob<'_>),
                         records: &mut Vec<JobRecord>|
                         -> Result<(), String> {
                            // Busy jobs are retried in place after the
                            // server's hint; the retry restarts the clock on
                            // the wire but not on the recorded latency —
                            // backpressure waits are part of what a client
                            // experiences.
                            let mut pending = pending;
                            let mut retries = 0u32;
                            let response = loop {
                                match pending.wait() {
                                    Err(ServeError::Busy { retry_after_ms })
                                        if retries < MAX_BUSY_RETRIES =>
                                    {
                                        retries += 1;
                                        std::thread::sleep(std::time::Duration::from_millis(
                                            u64::from(retry_after_ms),
                                        ));
                                        let bytes = &payloads[if cfg.distinct { job } else { 0 }];
                                        pending = conn
                                            .start_encoded(bytes, &cfg.machine, cfg.options)
                                            .map_err(|e| format!("job {job}: {e}"))?;
                                    }
                                    Err(e) => return Err(format!("job {job}: {e}")),
                                    Ok(r) => break r,
                                }
                            };
                            records.push(JobRecord {
                                job,
                                latency: t0.elapsed(),
                                cached: response.cached,
                                result: (cfg.verify || cfg.distinct).then_some(response.result),
                            });
                            Ok(())
                        };
                    for job in my_jobs {
                        if window.len() >= INFLIGHT_PER_CONNECTION {
                            let oldest = window.pop_front().expect("window is non-empty");
                            complete(oldest, &mut records)?;
                        }
                        let t0 = Instant::now();
                        let pending = conn
                            .start_encoded(payload_of(job), &cfg.machine, cfg.options)
                            .map_err(|e| format!("job {job}: {e}"))?;
                        window.push_back((job, t0, pending));
                    }
                    for entry in window {
                        complete(entry, &mut records)?;
                    }
                    Ok(records)
                })
            })
            .collect();
        let mut all = Vec::with_capacity(cfg.jobs);
        let mut failed = false;
        for h in handles {
            match h.join().expect("load-gen thread panicked") {
                Ok(mut records) => all.append(&mut records),
                Err(e) => {
                    eprintln!("{e}");
                    failed = true;
                }
            }
        }
        if failed {
            exit(1);
        }
        all
    });
    let wall = started.elapsed();

    let cached = records.iter().filter(|r| r.cached).count();
    let mut latencies: Vec<std::time::Duration> = records.iter().map(|r| r.latency).collect();
    latencies.sort_unstable();
    // Nearest-rank percentile over the sorted latencies.
    let pct = |p: usize| {
        latencies[(p * latencies.len())
            .div_ceil(100)
            .clamp(1, latencies.len())
            - 1]
    };
    println!(
        "{}: {} jobs over {} connections in {:.3} s -> {:.1} jobs/s ({} cached, {} cold)",
        cfg.trace_path,
        cfg.jobs,
        cfg.concurrency,
        wall.as_secs_f64(),
        cfg.jobs as f64 / wall.as_secs_f64(),
        cached,
        cfg.jobs - cached,
    );
    println!(
        "latency p50 {:.1} ms, p90 {:.1} ms, p99 {:.1} ms",
        pct(50).as_secs_f64() * 1e3,
        pct(90).as_secs_f64() * 1e3,
        pct(99).as_secs_f64() * 1e3,
    );

    if cfg.expect_cached && cached != cfg.jobs {
        eprintln!(
            "expected every job cached but {} were simulated",
            cfg.jobs - cached
        );
        exit(1);
    }

    if cfg.verify {
        let Some((label, engine_cfg)) = resolve_machine(&cfg.machine) else {
            eprintln!("unknown machine {:?}", cfg.machine);
            exit(1);
        };
        let engine = Engine::new();
        let mut mismatches = 0u32;
        // One local reference run per distinct payload; every served
        // result must match it bit-for-bit.
        let distinct_payloads = if cfg.distinct { cfg.jobs } else { 1 };
        let locals: Vec<_> = (0..distinct_payloads)
            .map(|i| {
                let trace = codec::decode(&payloads[i]).unwrap_or_else(|e| {
                    eprintln!("cannot decode payload {i}: {e}");
                    exit(1);
                });
                engine.run(label, &trace, &engine_cfg)
            })
            .collect();
        for record in &records {
            let local = &locals[if cfg.distinct { record.job } else { 0 }];
            let served = record.result.as_ref().expect("verify keeps results");
            let ops_match = local.ops.len() == served.ops.len()
                && local.ops.iter().zip(&served.ops).all(|(ours, theirs)| {
                    ours.cycles == theirs.cycles
                        && ours.compute_cycles == theirs.compute_cycles
                        && ours.macs == theirs.macs
                });
            if !ops_match || local.cycles() != served.cycles || local.macs() != served.macs {
                eprintln!("verify: job {} differs from the local run", record.job);
                mismatches += 1;
            }
        }
        if mismatches > 0 {
            eprintln!("verify FAILED: {mismatches} mismatch(es)");
            exit(1);
        }
        println!(
            "verify OK: all {} served results identical to local Engine::run",
            records.len()
        );
    }
    exit(0);
}
