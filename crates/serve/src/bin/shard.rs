//! `fpraker-shard` — fans an indexed trace file across a list of
//! `fpraker-served` workers and prints the merged result.
//!
//! ```text
//! fpraker-shard --trace FILE --workers ADDR[,ADDR...] [--machine NAME]
//!               [--shards N] [--attempts N] [--backoff-ms N] [--verify]
//! ```
//!
//! The trace is partitioned into at most `--shards` contiguous
//! segment-range jobs (default: one per worker), each submitted to a
//! distinct worker; failed workers are retried round-robin with doubling
//! backoff. The partial results are merged in global op order.
//! `--verify` also simulates the trace locally with
//! [`fpraker_sim::Engine::run`] and exits non-zero unless the merged
//! result is bit-identical — energy compared to the last mantissa bit —
//! which is the distributed determinism check CI runs. An unindexed
//! trace degrades to a single whole-trace shard on the first worker.

use std::process::exit;

use fpraker_energy::EnergyModel;
use fpraker_serve::shard::{ShardCoordinator, ShardPlan};
use fpraker_sim::{resolve_machine, Engine};
use fpraker_trace::codec;

fn usage() -> ! {
    eprintln!(
        "usage: fpraker-shard --trace FILE --workers ADDR[,ADDR...] \
         [--machine NAME] [--shards N] [--attempts N] [--backoff-ms N] [--verify]"
    );
    exit(2);
}

fn main() {
    let mut trace_path: Option<String> = None;
    let mut workers: Vec<String> = Vec::new();
    let mut machine = "fpraker".to_string();
    let mut shards: Option<usize> = None;
    let mut attempts = 4usize;
    let mut backoff_ms = 50u64;
    let mut verify = false;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--trace" => trace_path = Some(args.next().unwrap_or_else(|| usage())),
            "--workers" => {
                workers = args
                    .next()
                    .unwrap_or_else(|| usage())
                    .split(',')
                    .map(|s| s.trim().to_string())
                    .filter(|s| !s.is_empty())
                    .collect();
            }
            "--machine" => machine = args.next().unwrap_or_else(|| usage()),
            "--shards" => {
                shards = args.next().and_then(|v| v.parse().ok());
                if shards.is_none() {
                    usage();
                }
            }
            "--attempts" => {
                attempts = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--backoff-ms" => {
                backoff_ms = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--verify" => verify = true,
            _ => usage(),
        }
    }
    let Some(trace_path) = trace_path else {
        usage()
    };
    if workers.is_empty() {
        usage();
    }

    let max_shards = shards.unwrap_or(workers.len()).max(1);
    let plan = ShardPlan::from_file(&trace_path, max_shards).unwrap_or_else(|e| {
        eprintln!("cannot plan {trace_path}: {e}");
        exit(1);
    });
    if !plan.is_indexed() && max_shards > 1 {
        eprintln!(
            "note: {trace_path} carries no usable index; running as a single \
             whole-trace shard (re-encode with --index to shard it)"
        );
    }
    let coord = ShardCoordinator::new(workers.clone())
        .max_attempts(attempts)
        .backoff(std::time::Duration::from_millis(backoff_ms));
    let run = coord.run(&plan, &machine).unwrap_or_else(|e| {
        eprintln!("sharded run failed: {e}");
        exit(1);
    });

    let r = &run.result;
    println!(
        "{} on {} across {} worker(s), {} shard(s): {} ops, {} cycles \
         ({} compute), {} MACs, {:.1} pJ",
        trace_path,
        r.spec,
        workers.len(),
        run.shards.len(),
        r.ops.len(),
        r.cycles,
        r.compute_cycles,
        r.macs,
        r.energy_pj,
    );
    for o in &run.shards {
        println!(
            "  shard {}: ops {}..{} on worker {} ({} attempt(s){})",
            o.shard,
            o.range.first_op,
            o.range.first_op + o.range.ops,
            workers[o.worker],
            o.attempts,
            if o.cached { ", cached" } else { "" }
        );
    }

    if verify {
        let bytes = std::fs::read(&trace_path).unwrap_or_else(|e| {
            eprintln!("cannot read {trace_path}: {e}");
            exit(1);
        });
        let trace = codec::decode(&bytes).unwrap_or_else(|e| {
            eprintln!("cannot decode {trace_path}: {e}");
            exit(1);
        });
        let Some((label, cfg)) = resolve_machine(&machine) else {
            eprintln!("unknown machine {machine:?}");
            exit(1);
        };
        let local = Engine::new().run(label, &trace, &cfg);
        let model = EnergyModel::paper();
        let local_energy = match label {
            fpraker_sim::Machine::FpRaker => model.fpraker_energy(&local.counts()).total_pj(),
            fpraker_sim::Machine::Baseline => model.baseline_energy(&local.counts()).total_pj(),
        };
        let mut mismatches = 0u32;
        if local.ops.len() != r.ops.len() {
            eprintln!(
                "verify: merged result has {} ops, local run has {}",
                r.ops.len(),
                local.ops.len()
            );
            mismatches += 1;
        }
        for (i, (ours, theirs)) in local.ops.iter().zip(&r.ops).enumerate() {
            if ours.cycles != theirs.cycles
                || ours.compute_cycles != theirs.compute_cycles
                || ours.macs != theirs.macs
                || ours.counts != theirs.counts
            {
                eprintln!("verify: op {i} differs between local and merged runs");
                mismatches += 1;
            }
        }
        if local.cycles() != r.cycles
            || local.compute_cycles() != r.compute_cycles
            || local.macs() != r.macs
            || local.golden_failures() != r.golden_failures
        {
            eprintln!("verify: run summary differs");
            mismatches += 1;
        }
        if local_energy.to_bits() != r.energy_pj.to_bits() {
            eprintln!(
                "verify: energy differs in the bits (local {local_energy} vs merged {})",
                r.energy_pj
            );
            mismatches += 1;
        }
        if mismatches > 0 {
            eprintln!("verify FAILED: {mismatches} mismatch(es)");
            exit(1);
        }
        println!("verify OK: merged result bit-identical to a local Engine::run");
    }
}
