//! `fpraker-served` — the trace-simulation daemon.
//!
//! Hosts a [`fpraker_serve::Server`] until killed. Usage:
//!
//! ```text
//! fpraker-served [--addr HOST:PORT] [--jobs N] [--threads N] \
//!                [--window N] [--cache N] [--cache-bytes N] \
//!                [--cache-dir PATH] [--queue-depth N] \
//!                [--busy-retry-ms N]
//! ```
//!
//! Defaults: `--addr 127.0.0.1:4270`, 2 concurrent jobs, engine workers
//! auto (one per core per job), auto stream window, 64 cached results,
//! no byte ceiling, memory-only cache, 64 queued tagged jobs before
//! `BUSY`, 100 ms retry hint. With `--cache-dir` the result cache is
//! persisted to disk (one digest-verified file per entry, written
//! atomically), so a restarted daemon answers previously-computed
//! digests without re-simulating.

use std::process::exit;

use fpraker_serve::{Server, ServerConfig};

fn usage() -> ! {
    eprintln!(
        "usage: fpraker-served [--addr HOST:PORT] [--jobs N] [--threads N] \
         [--window N] [--cache N] [--cache-bytes N] [--cache-dir PATH] \
         [--queue-depth N] [--busy-retry-ms N]"
    );
    exit(2);
}

fn parse<T: std::str::FromStr>(flag: &str, value: Option<String>) -> T {
    let Some(v) = value else {
        eprintln!("{flag} needs a value");
        usage();
    };
    v.parse().unwrap_or_else(|_| {
        eprintln!("{flag}: cannot parse {v:?}");
        usage();
    })
}

fn main() {
    let mut config = ServerConfig {
        addr: "127.0.0.1:4270".into(),
        ..ServerConfig::default()
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--addr" => config.addr = parse(&flag, args.next()),
            "--jobs" => config.jobs = parse(&flag, args.next()),
            "--threads" => config.threads_per_job = parse(&flag, args.next()),
            "--window" => config.stream_window = parse(&flag, args.next()),
            "--cache" => config.cache_entries = parse(&flag, args.next()),
            "--cache-bytes" => config.cache_bytes = parse(&flag, args.next()),
            "--cache-dir" => {
                config.cache_dir = Some(parse::<std::path::PathBuf>(&flag, args.next()));
            }
            "--queue-depth" => config.queue_depth = parse(&flag, args.next()),
            "--busy-retry-ms" => config.busy_retry_ms = parse(&flag, args.next()),
            _ => usage(),
        }
    }
    let jobs = config.jobs.max(1);
    let cache_dir = config.cache_dir.clone();
    let server = Server::start(config).unwrap_or_else(|e| {
        eprintln!("cannot start server: {e}");
        exit(1);
    });
    println!(
        "fpraker-served listening on {} ({jobs} concurrent jobs; machines: {}{})",
        server.local_addr(),
        fpraker_sim::machine_names().join(", "),
        match &cache_dir {
            Some(dir) => format!("; disk cache: {}", dir.display()),
            None => String::new(),
        }
    );
    server.join();
}
