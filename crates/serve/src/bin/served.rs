//! `fpraker-served` — the trace-simulation daemon.
//!
//! Hosts a [`fpraker_serve::Server`] until killed. Usage:
//!
//! ```text
//! fpraker-served [--addr HOST:PORT] [--jobs N] [--threads N] \
//!                [--window N] [--cache N]
//! ```
//!
//! Defaults: `--addr 127.0.0.1:4270`, 2 concurrent jobs, engine workers
//! auto (one per core per job), auto stream window, 64 cached results.

use std::process::exit;

use fpraker_serve::{Server, ServerConfig};

fn usage() -> ! {
    eprintln!(
        "usage: fpraker-served [--addr HOST:PORT] [--jobs N] [--threads N] \
         [--window N] [--cache N]"
    );
    exit(2);
}

fn parse<T: std::str::FromStr>(flag: &str, value: Option<String>) -> T {
    let Some(v) = value else {
        eprintln!("{flag} needs a value");
        usage();
    };
    v.parse().unwrap_or_else(|_| {
        eprintln!("{flag}: cannot parse {v:?}");
        usage();
    })
}

fn main() {
    let mut config = ServerConfig {
        addr: "127.0.0.1:4270".into(),
        ..ServerConfig::default()
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--addr" => config.addr = parse(&flag, args.next()),
            "--jobs" => config.jobs = parse(&flag, args.next()),
            "--threads" => config.threads_per_job = parse(&flag, args.next()),
            "--window" => config.stream_window = parse(&flag, args.next()),
            "--cache" => config.cache_entries = parse(&flag, args.next()),
            _ => usage(),
        }
    }
    let jobs = config.jobs.max(1);
    let server = Server::start(config).unwrap_or_else(|e| {
        eprintln!("cannot start server: {e}");
        exit(1);
    });
    println!(
        "fpraker-served listening on {} ({jobs} concurrent jobs; machines: {})",
        server.local_addr(),
        fpraker_sim::machine_names().join(", ")
    );
    server.join();
}
