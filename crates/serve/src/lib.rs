//! `fpraker-serve` — the service layer of the FPRaker reproduction: a
//! concurrent trace-simulation server with content-addressed result
//! caching.
//!
//! The papers frame PEs like FPRaker as *shared infrastructure* that many
//! workloads dispatch onto. This crate turns the one-shot simulator into
//! exactly that: a long-lived multi-client TCP service (std::net only)
//! that accepts simulation jobs over a length-framed wire protocol,
//! streams each uploaded trace **straight into**
//! [`fpraker_sim::Engine::run_source`] without materializing it, and
//! returns per-op cycle/energy reports plus a run summary.
//!
//! * [`protocol`] — the wire format: framed messages whose trace payload
//!   is the unmodified [`fpraker_trace::codec`] byte stream, so there is
//!   one trace codec end to end.
//! * [`cache`] — the content-addressed LRU result cache, keyed by
//!   (trace digest, machine spec): repeated submissions of the same trace
//!   are answered bit-identically without re-simulating — and, because
//!   clients declare the digest up front, without re-uploading.
//! * [`server`] — the accept loop and the bounded job pool: at most
//!   `jobs` simulations in flight, each with `threads_per_job` engine
//!   workers, whatever the client count.
//! * [`client`] — the client library the `fpraker-submit` binary (and the
//!   benches and tests) are built on.
//! * [`shard`] — the distributed shard coordinator: partition an indexed
//!   trace into segment-range jobs, fan them across many workers with
//!   retry and re-assignment, and merge the partial results in global op
//!   order bit-identically to a single-machine run.
//!
//! Machine specs are names (`"fpraker"`, `"baseline"`, `"pragmatic"`)
//! resolved through the [`fpraker_sim::resolve_machine`] registry, so the
//! service simulates anything the registry knows.
//!
//! # In-process round trip
//!
//! ```
//! use fpraker_serve::{Client, Server, ServerConfig};
//! use fpraker_trace::Trace;
//!
//! let server = Server::start(ServerConfig::default()).unwrap();
//! let client = Client::connect(server.local_addr()).unwrap();
//!
//! let trace = Trace::new("quickstart", 0);
//! let cold = client.submit_trace(&trace, "fpraker").unwrap();
//! let warm = client.submit_trace(&trace, "fpraker").unwrap();
//! assert!(!cold.cached);
//! assert!(warm.cached);
//! assert_eq!(cold.result, warm.result);
//! server.shutdown();
//! ```
//!
//! The binaries are the same pieces as a daemon/CLI trio: `fpraker-served`
//! hosts a [`Server`]; `fpraker-submit` drives a [`Client`] at a trace
//! file, optionally verifying the response against a local
//! [`fpraker_sim::Engine::run`]; `fpraker-shard` drives a
//! [`ShardCoordinator`] at an indexed trace and a worker list.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod cache;
pub mod client;
pub mod protocol;
pub mod server;
pub mod shard;

pub use cache::{CacheKey, CacheStats, ResultCache};
pub use client::{
    submit_with_retry, Client, JobOptions, JobResponse, PendingJob, PipelinedConnection,
    StatsResponse,
};
pub use protocol::{
    JobKind, JobResult, JobSubmit, KindStats, OpReport, PhaseStats, ServeError, ServerStats,
    TraceStatsReport,
};
pub use server::{Server, ServerConfig, DEFAULT_PRIORITY};
pub use shard::{ShardCoordinator, ShardError, ShardOutcome, ShardPlan, ShardRange, ShardedRun};
