//! Content-addressed LRU cache of completed simulation results, with an
//! optional disk tier that survives restarts.
//!
//! A job is identified by what it computes, not by who submitted it: the
//! key is the pair (trace content digest, machine spec name). The value is
//! the job's serialized result payload ([`crate::protocol::encode_result`]
//! output), stored behind an [`Arc`] so replaying a hit to a client is a
//! pointer clone — repeated submissions of the same trace are served
//! without re-simulating and bit-identically to the first run.
//!
//! The in-memory tier is bounded by entry count (and optionally by
//! resident payload bytes) and evicts least-recently-*used* (hits refresh
//! recency). All memory operations take one mutex; entries are immutable
//! once inserted.
//!
//! # Disk tier
//!
//! With a cache directory configured ([`ResultCache::with_options`]),
//! every insert is also written through to one file per (digest, spec)
//! pair, named `{digest:016x}-{fnv(spec):016x}.res`. Writes are atomic —
//! the payload lands in a temp file in the same directory which is then
//! renamed over the final name — so a crash mid-write never leaves a
//! half-written entry, and a `kill -9` after the rename is durable. A
//! memory miss falls through to the disk tier; a loaded file is verified
//! (magic, key match, trailing FNV digest of the payload) before being
//! promoted back into memory, so a corrupt or truncated file is treated
//! as a miss and re-simulated rather than replayed. Memory eviction never
//! deletes disk files: the disk tier is the durable superset that lets a
//! restarted server answer warm.

use std::collections::{BTreeMap, HashMap};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use fpraker_trace::digest::Fnv64;

/// Magic + version opening every disk-cache file.
const DISK_MAGIC: &[u8; 4] = b"FPRC";
const DISK_VERSION: u8 = 1;

/// Uniquifies temp-file names within the process so concurrent inserts
/// never write through each other's temp files.
static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// The content address of a job: what was simulated, on which machine.
#[derive(Clone, Debug, Hash, PartialEq, Eq)]
pub struct CacheKey {
    /// FNV-1a digest of the trace's encoded bytes
    /// ([`fpraker_trace::digest`]).
    pub digest: u64,
    /// Machine spec name (registry-resolved, stored lowercased so
    /// `FPRaker` and `fpraker` address the same entry).
    pub spec: String,
}

impl CacheKey {
    /// Builds a key, normalizing the spec name.
    pub fn new(digest: u64, spec: &str) -> Self {
        CacheKey {
            digest,
            spec: spec.trim().to_ascii_lowercase(),
        }
    }

    /// The key's disk-tier file name: digest plus an FNV of the
    /// normalized spec, both fixed-width hex so names sort stably.
    fn file_name(&self) -> String {
        format!(
            "{:016x}-{:016x}.res",
            self.digest,
            Fnv64::digest_of(self.spec.as_bytes())
        )
    }
}

/// Counters describing cache effectiveness.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found an entry (in memory or on disk).
    pub hits: u64,
    /// Lookups that did not.
    pub misses: u64,
    /// Hits served by promoting a disk-tier file back into memory
    /// (already included in `hits`).
    pub disk_hits: u64,
    /// Entries currently held in memory.
    pub entries: usize,
    /// Maximum entries held in memory at once.
    pub capacity: usize,
    /// Entries evicted from memory under LRU pressure. Counted here (not
    /// just in telemetry) so evictions racing a post-wait re-check are
    /// visible to `ServerStats` too.
    pub evictions: u64,
    /// Result-payload bytes currently resident in memory.
    pub resident_bytes: u64,
    /// Resident-byte ceiling (0 = bounded by entry count alone).
    pub capacity_bytes: u64,
}

struct Inner {
    map: HashMap<CacheKey, Entry>,
    /// Recency index: stamp → key, mirrored with each entry's `stamp`.
    /// Stamps come from the monotonic `clock` (unique per operation), so
    /// the first entry is always the least recently used — eviction and
    /// recency refresh are O(log n), never a map scan.
    by_stamp: BTreeMap<u64, CacheKey>,
    clock: u64,
    hits: u64,
    misses: u64,
    disk_hits: u64,
    evictions: u64,
    resident_bytes: u64,
}

struct Entry {
    payload: Arc<Vec<u8>>,
    stamp: u64,
}

/// A bounded, thread-safe, content-addressed LRU result cache with an
/// optional write-through disk tier.
pub struct ResultCache {
    inner: Mutex<Inner>,
    capacity: usize,
    /// Resident-byte ceiling for the memory tier (0 = none).
    capacity_bytes: u64,
    /// Disk-tier directory; `None` keeps the cache memory-only.
    disk: Option<PathBuf>,
}

impl ResultCache {
    /// A memory-only cache holding at most `capacity` results (clamped to
    /// ≥ 1).
    pub fn new(capacity: usize) -> Self {
        Self::with_options(capacity, 0, None)
    }

    /// A cache bounded by `capacity` entries and (if non-zero)
    /// `capacity_bytes` resident payload bytes, optionally backed by a
    /// disk tier under `disk`. The directory is created eagerly so the
    /// first insert cannot fail on a missing path.
    pub fn with_options(capacity: usize, capacity_bytes: u64, disk: Option<PathBuf>) -> Self {
        if let Some(dir) = &disk {
            // Best-effort: an unusable directory degrades to memory-only
            // behavior at write time rather than failing job submission.
            let _ = std::fs::create_dir_all(dir);
        }
        ResultCache {
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                by_stamp: BTreeMap::new(),
                clock: 0,
                hits: 0,
                misses: 0,
                disk_hits: 0,
                evictions: 0,
                resident_bytes: 0,
            }),
            capacity: capacity.max(1),
            capacity_bytes,
            disk,
        }
    }

    /// The disk-tier directory, if one is configured.
    pub fn disk_dir(&self) -> Option<&Path> {
        self.disk.as_deref()
    }

    /// Looks up a result, counting a hit (and refreshing recency) or a
    /// miss.
    pub fn get(&self, key: &CacheKey) -> Option<Arc<Vec<u8>>> {
        self.lookup(key, true)
    }

    /// Re-checks a key whose miss was already counted (the server's
    /// post-permit double-check): a find still counts as a hit — the job
    /// ends up served from the cache — but absence is not counted again,
    /// so each job records at most one miss.
    pub fn recheck(&self, key: &CacheKey) -> Option<Arc<Vec<u8>>> {
        self.lookup(key, false)
    }

    fn lookup(&self, key: &CacheKey, count_miss: bool) -> Option<Arc<Vec<u8>>> {
        if let Some(payload) = self.memory_lookup(key) {
            return Some(payload);
        }
        // Fall through to the disk tier: a verified load is promoted back
        // into memory and counts as a (disk) hit, so a restarted server
        // answers warm without re-simulating.
        if let Some(payload) = self.load_from_disk(key) {
            self.insert_memory(key.clone(), Arc::clone(&payload));
            let mut inner = self.inner.lock().unwrap();
            inner.hits += 1;
            inner.disk_hits += 1;
            fpraker_telemetry::counter!("serve_cache_disk_hits_total").inc();
            return Some(payload);
        }
        if count_miss {
            self.inner.lock().unwrap().misses += 1;
        }
        None
    }

    fn memory_lookup(&self, key: &CacheKey) -> Option<Arc<Vec<u8>>> {
        let mut inner = self.inner.lock().unwrap();
        inner.clock += 1;
        let clock = inner.clock;
        match inner.map.get_mut(key) {
            Some(entry) => {
                let old_stamp = std::mem::replace(&mut entry.stamp, clock);
                let payload = Arc::clone(&entry.payload);
                inner.by_stamp.remove(&old_stamp);
                inner.by_stamp.insert(clock, key.clone());
                inner.hits += 1;
                Some(payload)
            }
            None => None,
        }
    }

    /// Inserts (or refreshes) a result, evicting least recently used
    /// entries while the cache is over its entry or byte budget, and
    /// writing through to the disk tier when one is configured.
    /// Concurrent inserts of the same key are benign: payloads for a key
    /// are deterministic, so last-write-wins replaces equal bytes.
    pub fn insert(&self, key: CacheKey, payload: Arc<Vec<u8>>) {
        // Disk write happens outside the memory lock: file I/O must not
        // serialize concurrent lookups.
        self.write_to_disk(&key, &payload);
        self.insert_memory(key, payload);
    }

    fn insert_memory(&self, key: CacheKey, payload: Arc<Vec<u8>>) {
        let mut inner = self.inner.lock().unwrap();
        inner.clock += 1;
        let stamp = inner.clock;
        inner.resident_bytes += payload.len() as u64;
        if let Some(old) = inner.map.insert(key.clone(), Entry { payload, stamp }) {
            inner.by_stamp.remove(&old.stamp);
            inner.resident_bytes -= old.payload.len() as u64;
        }
        inner.by_stamp.insert(stamp, key);
        // The byte budget stops evicting at one entry: a single payload
        // larger than the ceiling is still cached (a cache of one beats a
        // cache of none).
        while inner.map.len() > self.capacity
            || (self.capacity_bytes > 0
                && inner.resident_bytes > self.capacity_bytes
                && inner.map.len() > 1)
        {
            let (_, oldest) = inner
                .by_stamp
                .pop_first()
                .expect("over-capacity cache has a least recent entry");
            let evicted = inner
                .map
                .remove(&oldest)
                .expect("recency index mirrors the map");
            inner.resident_bytes -= evicted.payload.len() as u64;
            inner.evictions += 1;
        }
    }

    /// Writes one entry's disk file atomically: temp file in the same
    /// directory, then rename. Best-effort — a failed write leaves the
    /// memory tier authoritative and the previous file (if any) intact.
    fn write_to_disk(&self, key: &CacheKey, payload: &[u8]) {
        let Some(dir) = &self.disk else { return };
        let final_path = dir.join(key.file_name());
        let tmp_path = dir.join(format!(
            ".{}.{}-{}.tmp",
            key.file_name(),
            std::process::id(),
            TMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let written = (|| -> std::io::Result<()> {
            let mut f = std::fs::File::create(&tmp_path)?;
            f.write_all(&encode_disk_entry(key, payload))?;
            f.sync_all()?;
            std::fs::rename(&tmp_path, &final_path)
        })();
        if written.is_err() {
            let _ = std::fs::remove_file(&tmp_path);
            fpraker_telemetry::counter!("serve_cache_disk_write_errors_total").inc();
        }
    }

    /// Loads and verifies one entry from the disk tier. Any mismatch —
    /// missing file, bad magic, wrong key, corrupt payload digest — is a
    /// miss, never an error: the server simply re-simulates.
    fn load_from_disk(&self, key: &CacheKey) -> Option<Arc<Vec<u8>>> {
        let dir = self.disk.as_ref()?;
        let bytes = std::fs::read(dir.join(key.file_name())).ok()?;
        decode_disk_entry(key, &bytes).map(Arc::new)
    }

    /// Current effectiveness counters.
    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.lock().unwrap();
        CacheStats {
            hits: inner.hits,
            misses: inner.misses,
            disk_hits: inner.disk_hits,
            entries: inner.map.len(),
            capacity: self.capacity,
            evictions: inner.evictions,
            resident_bytes: inner.resident_bytes,
            capacity_bytes: self.capacity_bytes,
        }
    }
}

/// Disk file layout: magic, version, trace digest, spec, payload length,
/// payload, then an FNV-1a digest of the payload bytes. The trailing
/// digest (not the file length) is what detects torn or bit-rotted
/// payloads on load.
fn encode_disk_entry(key: &CacheKey, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + 1 + 8 + 2 + key.spec.len() + 8 + payload.len() + 8);
    out.extend_from_slice(DISK_MAGIC);
    out.push(DISK_VERSION);
    out.extend_from_slice(&key.digest.to_le_bytes());
    out.extend_from_slice(&(key.spec.len() as u16).to_le_bytes());
    out.extend_from_slice(key.spec.as_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(payload);
    out.extend_from_slice(&Fnv64::digest_of(payload).to_le_bytes());
    out
}

/// Parses and verifies a disk file against the key it should hold.
fn decode_disk_entry(key: &CacheKey, bytes: &[u8]) -> Option<Vec<u8>> {
    let rest = bytes.strip_prefix(DISK_MAGIC.as_slice())?;
    let (&version, rest) = rest.split_first()?;
    if version != DISK_VERSION {
        return None;
    }
    if rest.len() < 8 + 2 {
        return None;
    }
    let (digest, rest) = rest.split_at(8);
    if u64::from_le_bytes(digest.try_into().unwrap()) != key.digest {
        return None;
    }
    let (spec_len, rest) = rest.split_at(2);
    let spec_len = u16::from_le_bytes(spec_len.try_into().unwrap()) as usize;
    if rest.len() < spec_len + 8 {
        return None;
    }
    let (spec, rest) = rest.split_at(spec_len);
    if spec != key.spec.as_bytes() {
        return None;
    }
    let (payload_len, rest) = rest.split_at(8);
    let payload_len = usize::try_from(u64::from_le_bytes(payload_len.try_into().unwrap())).ok()?;
    if rest.len() != payload_len + 8 {
        return None;
    }
    let (payload, digest) = rest.split_at(payload_len);
    if u64::from_le_bytes(digest.try_into().unwrap()) != Fnv64::digest_of(payload) {
        return None;
    }
    Some(payload.to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payload(b: u8) -> Arc<Vec<u8>> {
        Arc::new(vec![b; 4])
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "fpraker_cache_test_{tag}_{}_{}",
            std::process::id(),
            TMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn hit_after_insert_and_stats_count() {
        let cache = ResultCache::new(4);
        let key = CacheKey::new(7, "fpraker");
        assert!(cache.get(&key).is_none());
        cache.insert(key.clone(), payload(1));
        assert_eq!(cache.get(&key).unwrap().as_slice(), &[1, 1, 1, 1]);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
        assert_eq!(stats.resident_bytes, 4);
    }

    #[test]
    fn recheck_counts_hits_but_never_misses() {
        let cache = ResultCache::new(4);
        let key = CacheKey::new(3, "m");
        assert!(cache.get(&key).is_none()); // 1 miss
        assert!(cache.recheck(&key).is_none()); // not another miss
        cache.insert(key.clone(), payload(2));
        assert!(cache.recheck(&key).is_some()); // 1 hit
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
    }

    #[test]
    fn spec_name_is_normalized_and_digest_distinguishes() {
        let cache = ResultCache::new(4);
        cache.insert(CacheKey::new(1, " FPRaker "), payload(9));
        assert!(cache.get(&CacheKey::new(1, "fpraker")).is_some());
        assert!(cache.get(&CacheKey::new(2, "fpraker")).is_none());
        assert!(cache.get(&CacheKey::new(1, "baseline")).is_none());
    }

    #[test]
    fn eviction_is_least_recently_used_and_counted() {
        let cache = ResultCache::new(2);
        let (a, b, c) = (
            CacheKey::new(1, "m"),
            CacheKey::new(2, "m"),
            CacheKey::new(3, "m"),
        );
        cache.insert(a.clone(), payload(1));
        cache.insert(b.clone(), payload(2));
        // Touch `a`, making `b` the LRU entry, then overflow.
        assert!(cache.get(&a).is_some());
        cache.insert(c.clone(), payload(3));
        assert!(cache.get(&a).is_some(), "recently used entry survives");
        assert!(cache.get(&b).is_none(), "LRU entry was evicted");
        assert!(cache.get(&c).is_some());
        let stats = cache.stats();
        assert_eq!(stats.entries, 2);
        assert_eq!(stats.evictions, 1, "eviction shows up in CacheStats");
        assert_eq!(stats.resident_bytes, 8);
    }

    #[test]
    fn reinsert_refreshes_recency_and_keeps_the_index_consistent() {
        let cache = ResultCache::new(2);
        let (a, b, c) = (
            CacheKey::new(1, "m"),
            CacheKey::new(2, "m"),
            CacheKey::new(3, "m"),
        );
        cache.insert(a.clone(), payload(1));
        cache.insert(b.clone(), payload(2));
        // Re-inserting `a` replaces its payload and makes `b` the LRU.
        cache.insert(a.clone(), payload(7));
        cache.insert(c.clone(), payload(3));
        assert_eq!(cache.get(&a).unwrap().as_slice(), &[7, 7, 7, 7]);
        assert!(cache.get(&b).is_none(), "stale entry was evicted");
        assert!(cache.get(&c).is_some());
        assert_eq!(cache.stats().entries, 2);
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let cache = ResultCache::new(0);
        let key = CacheKey::new(5, "m");
        cache.insert(key.clone(), payload(5));
        assert!(cache.get(&key).is_some());
        assert_eq!(cache.stats().capacity, 1);
    }

    #[test]
    fn byte_budget_evicts_but_never_below_one_entry() {
        let cache = ResultCache::with_options(100, 10, None);
        let (a, b) = (CacheKey::new(1, "m"), CacheKey::new(2, "m"));
        cache.insert(a.clone(), Arc::new(vec![1; 8]));
        cache.insert(b.clone(), Arc::new(vec![2; 8]));
        // 16 resident bytes > 10: the LRU entry goes.
        assert!(cache.get(&a).is_none());
        assert!(cache.get(&b).is_some());
        assert_eq!(cache.stats().resident_bytes, 8);
        // One oversized payload stays resident despite busting the budget.
        let big = CacheKey::new(3, "m");
        cache.insert(big.clone(), Arc::new(vec![3; 64]));
        assert!(cache.get(&big).is_some());
        assert_eq!(cache.stats().entries, 1);
    }

    #[test]
    fn disk_tier_round_trips_and_survives_a_fresh_cache() {
        let dir = temp_dir("roundtrip");
        let key = CacheKey::new(0xABCD, "fpraker");
        {
            let cache = ResultCache::with_options(4, 0, Some(dir.clone()));
            cache.insert(key.clone(), Arc::new(vec![7; 32]));
        }
        // A brand-new cache (fresh process, conceptually) answers warm.
        let cache = ResultCache::with_options(4, 0, Some(dir.clone()));
        assert_eq!(cache.get(&key).unwrap().as_slice(), &[7; 32]);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.disk_hits, stats.misses), (1, 1, 0));
        // The promoted entry now hits in memory (disk_hits stays put).
        assert!(cache.get(&key).is_some());
        assert_eq!(cache.stats().disk_hits, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_or_mismatched_disk_files_are_misses() {
        let dir = temp_dir("corrupt");
        let key = CacheKey::new(0x1234, "fpraker");
        let cache = ResultCache::with_options(4, 0, Some(dir.clone()));
        cache.insert(key.clone(), Arc::new(vec![9; 16]));
        let path = dir.join(key.file_name());
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip a payload bit: the trailing FNV digest no longer matches.
        let len = bytes.len();
        bytes[len - 12] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        let fresh = ResultCache::with_options(4, 0, Some(dir.clone()));
        assert!(fresh.get(&key).is_none(), "corrupt file must not replay");
        assert_eq!(fresh.stats().misses, 1);
        // A different key never reads another key's file.
        assert!(fresh.get(&CacheKey::new(0x9999, "fpraker")).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn memory_eviction_keeps_the_disk_tier() {
        let dir = temp_dir("evict");
        let cache = ResultCache::with_options(1, 0, Some(dir.clone()));
        let (a, b) = (CacheKey::new(1, "m"), CacheKey::new(2, "m"));
        cache.insert(a.clone(), payload(1));
        cache.insert(b.clone(), payload(2)); // evicts `a` from memory
        assert_eq!(cache.stats().evictions, 1);
        // …but `a` comes back from disk (evicting `b` in turn).
        assert_eq!(cache.get(&a).unwrap().as_slice(), &[1, 1, 1, 1]);
        assert_eq!(cache.stats().disk_hits, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
