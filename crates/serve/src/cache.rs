//! Content-addressed LRU cache of completed simulation results.
//!
//! A job is identified by what it computes, not by who submitted it: the
//! key is the pair (trace content digest, machine spec name). The value is
//! the job's serialized result payload ([`crate::protocol::encode_result`]
//! output), stored behind an [`Arc`] so replaying a hit to a client is a
//! pointer clone — repeated submissions of the same trace are served
//! without re-simulating and bit-identically to the first run.
//!
//! The cache is bounded by entry count and evicts least-recently-*used*
//! (hits refresh recency). All operations take one mutex; entries are
//! immutable once inserted.

use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, Mutex};

/// The content address of a job: what was simulated, on which machine.
#[derive(Clone, Debug, Hash, PartialEq, Eq)]
pub struct CacheKey {
    /// FNV-1a digest of the trace's encoded bytes
    /// ([`fpraker_trace::digest`]).
    pub digest: u64,
    /// Machine spec name (registry-resolved, stored lowercased so
    /// `FPRaker` and `fpraker` address the same entry).
    pub spec: String,
}

impl CacheKey {
    /// Builds a key, normalizing the spec name.
    pub fn new(digest: u64, spec: &str) -> Self {
        CacheKey {
            digest,
            spec: spec.trim().to_ascii_lowercase(),
        }
    }
}

/// Counters describing cache effectiveness.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found an entry.
    pub hits: u64,
    /// Lookups that did not.
    pub misses: u64,
    /// Entries currently held.
    pub entries: usize,
    /// Maximum entries held at once.
    pub capacity: usize,
}

struct Inner {
    map: HashMap<CacheKey, Entry>,
    /// Recency index: stamp → key, mirrored with each entry's `stamp`.
    /// Stamps come from the monotonic `clock` (unique per operation), so
    /// the first entry is always the least recently used — eviction and
    /// recency refresh are O(log n), never a map scan.
    by_stamp: BTreeMap<u64, CacheKey>,
    clock: u64,
    hits: u64,
    misses: u64,
}

struct Entry {
    payload: Arc<Vec<u8>>,
    stamp: u64,
}

/// A bounded, thread-safe, content-addressed LRU result cache.
pub struct ResultCache {
    inner: Mutex<Inner>,
    capacity: usize,
}

impl ResultCache {
    /// A cache holding at most `capacity` results (clamped to ≥ 1).
    pub fn new(capacity: usize) -> Self {
        ResultCache {
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                by_stamp: BTreeMap::new(),
                clock: 0,
                hits: 0,
                misses: 0,
            }),
            capacity: capacity.max(1),
        }
    }

    /// Looks up a result, counting a hit (and refreshing recency) or a
    /// miss.
    pub fn get(&self, key: &CacheKey) -> Option<Arc<Vec<u8>>> {
        self.lookup(key, true)
    }

    /// Re-checks a key whose miss was already counted (the server's
    /// post-permit double-check): a find still counts as a hit — the job
    /// ends up served from the cache — but absence is not counted again,
    /// so each job records at most one miss.
    pub fn recheck(&self, key: &CacheKey) -> Option<Arc<Vec<u8>>> {
        self.lookup(key, false)
    }

    fn lookup(&self, key: &CacheKey, count_miss: bool) -> Option<Arc<Vec<u8>>> {
        let mut inner = self.inner.lock().unwrap();
        inner.clock += 1;
        let clock = inner.clock;
        match inner.map.get_mut(key) {
            Some(entry) => {
                let old_stamp = std::mem::replace(&mut entry.stamp, clock);
                let payload = Arc::clone(&entry.payload);
                inner.by_stamp.remove(&old_stamp);
                inner.by_stamp.insert(clock, key.clone());
                inner.hits += 1;
                Some(payload)
            }
            None => {
                if count_miss {
                    inner.misses += 1;
                }
                None
            }
        }
    }

    /// Inserts (or refreshes) a result, evicting the least recently used
    /// entry if the cache is full. Concurrent inserts of the same key are
    /// benign: payloads for a key are deterministic, so last-write-wins
    /// replaces equal bytes.
    pub fn insert(&self, key: CacheKey, payload: Arc<Vec<u8>>) {
        let mut inner = self.inner.lock().unwrap();
        inner.clock += 1;
        let stamp = inner.clock;
        if let Some(old) = inner.map.insert(key.clone(), Entry { payload, stamp }) {
            inner.by_stamp.remove(&old.stamp);
        }
        inner.by_stamp.insert(stamp, key);
        while inner.map.len() > self.capacity {
            let (_, oldest) = inner
                .by_stamp
                .pop_first()
                .expect("over-capacity cache has a least recent entry");
            inner.map.remove(&oldest);
            fpraker_telemetry::counter!("serve_cache_evictions_total").inc();
        }
    }

    /// Current effectiveness counters.
    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.lock().unwrap();
        CacheStats {
            hits: inner.hits,
            misses: inner.misses,
            entries: inner.map.len(),
            capacity: self.capacity,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payload(b: u8) -> Arc<Vec<u8>> {
        Arc::new(vec![b; 4])
    }

    #[test]
    fn hit_after_insert_and_stats_count() {
        let cache = ResultCache::new(4);
        let key = CacheKey::new(7, "fpraker");
        assert!(cache.get(&key).is_none());
        cache.insert(key.clone(), payload(1));
        assert_eq!(cache.get(&key).unwrap().as_slice(), &[1, 1, 1, 1]);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
    }

    #[test]
    fn recheck_counts_hits_but_never_misses() {
        let cache = ResultCache::new(4);
        let key = CacheKey::new(3, "m");
        assert!(cache.get(&key).is_none()); // 1 miss
        assert!(cache.recheck(&key).is_none()); // not another miss
        cache.insert(key.clone(), payload(2));
        assert!(cache.recheck(&key).is_some()); // 1 hit
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
    }

    #[test]
    fn spec_name_is_normalized_and_digest_distinguishes() {
        let cache = ResultCache::new(4);
        cache.insert(CacheKey::new(1, " FPRaker "), payload(9));
        assert!(cache.get(&CacheKey::new(1, "fpraker")).is_some());
        assert!(cache.get(&CacheKey::new(2, "fpraker")).is_none());
        assert!(cache.get(&CacheKey::new(1, "baseline")).is_none());
    }

    #[test]
    fn eviction_is_least_recently_used() {
        let cache = ResultCache::new(2);
        let (a, b, c) = (
            CacheKey::new(1, "m"),
            CacheKey::new(2, "m"),
            CacheKey::new(3, "m"),
        );
        cache.insert(a.clone(), payload(1));
        cache.insert(b.clone(), payload(2));
        // Touch `a`, making `b` the LRU entry, then overflow.
        assert!(cache.get(&a).is_some());
        cache.insert(c.clone(), payload(3));
        assert!(cache.get(&a).is_some(), "recently used entry survives");
        assert!(cache.get(&b).is_none(), "LRU entry was evicted");
        assert!(cache.get(&c).is_some());
        assert_eq!(cache.stats().entries, 2);
    }

    #[test]
    fn reinsert_refreshes_recency_and_keeps_the_index_consistent() {
        let cache = ResultCache::new(2);
        let (a, b, c) = (
            CacheKey::new(1, "m"),
            CacheKey::new(2, "m"),
            CacheKey::new(3, "m"),
        );
        cache.insert(a.clone(), payload(1));
        cache.insert(b.clone(), payload(2));
        // Re-inserting `a` replaces its payload and makes `b` the LRU.
        cache.insert(a.clone(), payload(7));
        cache.insert(c.clone(), payload(3));
        assert_eq!(cache.get(&a).unwrap().as_slice(), &[7, 7, 7, 7]);
        assert!(cache.get(&b).is_none(), "stale entry was evicted");
        assert!(cache.get(&c).is_some());
        assert_eq!(cache.stats().entries, 2);
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let cache = ResultCache::new(0);
        let key = CacheKey::new(5, "m");
        cache.insert(key.clone(), payload(5));
        assert!(cache.get(&key).is_some());
        assert_eq!(cache.stats().capacity, 1);
    }
}
