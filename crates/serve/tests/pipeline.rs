//! End-to-end tests of the tagged v3 pipeline: many jobs in flight per
//! connection with out-of-order completion, version negotiation with v2
//! clients, cancellation and deadlines, BUSY backpressure, priority
//! ordering, malformed-frame isolation, and the disk-backed cache
//! surviving a daemon restart.

use std::io::Write as _;
use std::net::TcpStream;
use std::time::{Duration, Instant};

use fpraker_num::reference::SplitMix64;
use fpraker_num::Bf16;
use fpraker_serve::protocol::{
    decode_job_error, job_error, read_frame, split_job_payload, tag, write_frame, JobKind,
    JobSubmit, ServerStats, PROTOCOL_MAGIC,
};
use fpraker_serve::{
    Client, JobOptions, PipelinedConnection, ServeError, Server, ServerConfig, ShardPlan,
};
use fpraker_sim::{resolve_machine, Engine, Machine};
use fpraker_trace::digest::Fnv64;
use fpraker_trace::{codec, Phase, TensorKind, Trace, TraceOp};

/// A small deterministic multi-op trace (fast enough to simulate many
/// times in one test run).
fn test_trace(seed: u64, ops: usize) -> Trace {
    let mut rng = SplitMix64::new(seed);
    let mut tr = Trace::new(format!("pipeline-test-{seed}"), 50);
    let phases = [Phase::AxW, Phase::GxW, Phase::AxG];
    for i in 0..ops {
        let (m, n, k) = (8, 8, 16);
        let gen = |rng: &mut SplitMix64, count: usize| -> Vec<Bf16> {
            (0..count)
                .map(|_| {
                    if rng.next_f64() < 0.4 {
                        Bf16::ZERO
                    } else {
                        rng.bf16_in_range(3)
                    }
                })
                .collect()
        };
        tr.ops.push(TraceOp {
            layer: format!("l{i}"),
            phase: phases[i % 3],
            m,
            n,
            k,
            a: gen(&mut rng, m * k),
            b: gen(&mut rng, n * k),
            a_kind: TensorKind::Activation,
            b_kind: TensorKind::Weight,
            a_dup: 1.0,
            b_dup: 1.0,
            out_dup: 1.0,
        });
    }
    tr
}

fn start_server(config: ServerConfig) -> Server {
    Server::start(ServerConfig {
        threads_per_job: 1,
        ..config
    })
    .expect("bind loopback")
}

/// Polls the server's stats until `f` holds (or panics after ~2 s).
fn wait_for_stats(server: &Server, what: &str, f: impl Fn(&ServerStats) -> bool) {
    let deadline = Instant::now() + Duration::from_secs(2);
    loop {
        let stats = server.stats();
        if f(&stats) {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "timed out waiting for {what}; stats: {stats:?}"
        );
        std::thread::sleep(Duration::from_millis(1));
    }
}

#[test]
fn pipelined_jobs_complete_out_of_order_and_match_local_runs() {
    let server = start_server(ServerConfig {
        jobs: 2,
        ..ServerConfig::default()
    });
    let conn = PipelinedConnection::connect(server.local_addr()).unwrap();
    let (_, cfg) = resolve_machine("fpraker").unwrap();

    let traces: Vec<Trace> = (0..6).map(|i| test_trace(900 + i, 3)).collect();
    let encoded: Vec<Vec<u8>> = traces.iter().map(|t| codec::encode(t).to_vec()).collect();

    // Warm one payload, then demonstrate out-of-order completion on one
    // connection: a cold job whose upload we deliberately delay stays
    // pending while a cache hit submitted *after* it comes back first.
    let warm = conn
        .submit_encoded(&encoded[0], "fpraker", JobOptions::default())
        .unwrap();
    assert!(!warm.cached);
    let stalled_cold = conn
        .start_encoded(&encoded[1], "fpraker", JobOptions::default())
        .unwrap();
    let cached = conn
        .start_encoded(&encoded[0], "fpraker", JobOptions::default())
        .unwrap();
    let cached_response = cached.wait().unwrap();
    assert!(
        cached_response.cached,
        "the later job completed first, demuxed by id"
    );
    assert_eq!(cached_response.result, warm.result);
    let stalled_response = stalled_cold.wait().unwrap();
    assert!(!stalled_response.cached);

    // Many cold jobs in flight at once, one waiter thread each: every
    // response is bit-identical to a local run.
    let responses = std::thread::scope(|scope| {
        let handles: Vec<_> = encoded[2..]
            .iter()
            .map(|bytes| {
                let conn = &conn;
                scope.spawn(move || {
                    conn.start_encoded(bytes, "fpraker", JobOptions::default())
                        .unwrap()
                        .wait()
                        .unwrap()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap())
            .collect::<Vec<_>>()
    });
    for (i, (trace, response)) in traces[2..].iter().zip(&responses).enumerate() {
        assert!(!response.cached, "job {i} was cold");
        let local = Engine::with_threads(1).run(Machine::FpRaker, trace, &cfg);
        assert_eq!(response.result.cycles, local.cycles(), "job {i}");
        assert_eq!(response.result.macs, local.macs(), "job {i}");
        for (served, ours) in response.result.ops.iter().zip(&local.ops) {
            assert_eq!(served.cycles, ours.cycles, "job {i}");
            assert_eq!(served.counts, ours.counts, "job {i}");
        }
    }
    let stats = server.stats();
    assert_eq!(stats.jobs_completed, 6);
    assert_eq!(stats.cache_misses, 6);
    assert_eq!(stats.cache_hits, 1);
    server.shutdown();
}

#[test]
fn v2_clients_interoperate_and_unknown_versions_are_rejected() {
    let server = start_server(ServerConfig {
        jobs: 1,
        ..ServerConfig::default()
    });
    let trace = test_trace(41, 2);
    let bytes = codec::encode(&trace).to_vec();

    // A v2 client and a v3 pipelined connection share the server — and
    // the content-addressed cache.
    let client = Client::connect(server.local_addr()).unwrap();
    let cold = client.submit_encoded(&bytes, "fpraker").unwrap();
    assert!(!cold.cached);
    let conn = PipelinedConnection::connect(server.local_addr()).unwrap();
    let warm = conn
        .submit_encoded(&bytes, "fpraker", JobOptions::default())
        .unwrap();
    assert!(warm.cached, "the v3 job hits the cache the v2 job filled");
    assert_eq!(warm.result, cold.result);

    // An untagged submit stamped with an unknown future version is
    // rejected on its connection...
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    let mut payload = Vec::new();
    payload.extend_from_slice(PROTOCOL_MAGIC);
    payload.push(9); // unknown version
    payload.extend_from_slice(&[0u8; 18]);
    write_frame(&mut stream, tag::SUBMIT, &payload).unwrap();
    stream.flush().unwrap();
    let (reply_tag, reply) = read_frame(&mut stream).unwrap();
    assert_eq!(reply_tag, tag::ERROR);
    assert!(
        String::from_utf8_lossy(&reply).contains("version"),
        "the error names the version mismatch: {:?}",
        String::from_utf8_lossy(&reply)
    );

    // ...and a tagged submit stamped v2 fails that job by id (tagged
    // frames are v3-only) without killing the connection.
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    let mut legacy = JobSubmit {
        job_id: 55,
        priority: 100,
        deadline_ms: 0,
        digest: Fnv64::digest_of(&bytes),
        trace_bytes: bytes.len() as u64,
        kind: JobKind::Sim {
            spec: "fpraker".into(),
        },
    }
    .encode();
    legacy[4] = 2; // rewrite the version byte
    write_frame(&mut stream, tag::SUBMIT_JOB, &legacy).unwrap();
    stream.flush().unwrap();
    let (reply_tag, reply) = read_frame(&mut stream).unwrap();
    assert_eq!(reply_tag, tag::JOB_ERROR);
    let (job_id, code, _) = decode_job_error(&reply).unwrap();
    assert_eq!(job_id, 55);
    assert_eq!(code, job_error::GENERIC);
    // The same connection still serves well-formed tagged jobs.
    legacy[4] = 3;
    write_frame(&mut stream, tag::SUBMIT_JOB, &legacy).unwrap();
    stream.flush().unwrap();
    let (reply_tag, reply) = read_frame(&mut stream).unwrap();
    assert_eq!(reply_tag, tag::JOB_RESULT);
    assert_eq!(split_job_payload(&reply).unwrap().0, 55);
    server.shutdown();
}

#[test]
fn malformed_tagged_frame_fails_one_job_and_leaves_the_pipeline_running() {
    let server = start_server(ServerConfig {
        jobs: 1,
        ..ServerConfig::default()
    });
    let trace = test_trace(42, 3);
    let bytes = codec::encode(&trace).to_vec();
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();

    // Job 1: a valid cold submission.
    let header = JobSubmit {
        job_id: 1,
        priority: 100,
        deadline_ms: 0,
        digest: Fnv64::digest_of(&bytes),
        trace_bytes: bytes.len() as u64,
        kind: JobKind::Sim {
            spec: "fpraker".into(),
        },
    };
    write_frame(&mut stream, tag::SUBMIT_JOB, &header.encode()).unwrap();
    // Job 7: a truncated garbage header behind a valid magic + id.
    let mut garbage = Vec::new();
    garbage.extend_from_slice(PROTOCOL_MAGIC);
    garbage.push(3);
    garbage.extend_from_slice(&7u64.to_le_bytes());
    garbage.extend_from_slice(&[0xFF; 3]);
    write_frame(&mut stream, tag::SUBMIT_JOB, &garbage).unwrap();
    stream.flush().unwrap();

    // Job 7 dies with a typed error; job 1 proceeds: trace request,
    // upload, result. The frames for the two jobs may interleave.
    let mut need_trace = false;
    let mut job7_failed = false;
    let mut result = None;
    while result.is_none() || !job7_failed {
        let (reply_tag, reply) = read_frame(&mut stream).unwrap();
        match reply_tag {
            tag::JOB_NEED_TRACE => {
                assert_eq!(split_job_payload(&reply).unwrap().0, 1);
                need_trace = true;
                let mut payload = 1u64.to_le_bytes().to_vec();
                payload.extend_from_slice(&bytes);
                write_frame(&mut stream, tag::JOB_DATA, &payload).unwrap();
                write_frame(&mut stream, tag::JOB_DATA_END, &1u64.to_le_bytes()).unwrap();
                stream.flush().unwrap();
            }
            tag::JOB_ERROR => {
                let (job_id, code, _) = decode_job_error(&reply).unwrap();
                assert_eq!(job_id, 7, "only the malformed job fails");
                assert_eq!(code, job_error::GENERIC);
                job7_failed = true;
            }
            tag::JOB_RESULT => {
                assert!(need_trace, "a cold job uploads before it simulates");
                let (job_id, body) = split_job_payload(&reply).unwrap();
                assert_eq!(job_id, 1);
                assert_eq!(body[0], 0, "cold");
                result = Some(());
            }
            other => panic!("unexpected frame tag {other:#x}"),
        }
    }
    server.shutdown();
}

#[test]
fn cancel_drops_queued_jobs_and_is_a_no_op_for_running_ones() {
    let server = start_server(ServerConfig {
        jobs: 1,
        ..ServerConfig::default()
    });
    let conn = PipelinedConnection::connect(server.local_addr()).unwrap();
    let running_bytes = codec::encode(&test_trace(50, 2)).to_vec();
    let queued_bytes = codec::encode(&test_trace(51, 2)).to_vec();

    // Job A acquires the lone permit, then stalls: its upload is only
    // driven by wait(), which we delay.
    let job_a = conn
        .start_encoded(&running_bytes, "fpraker", JobOptions::default())
        .unwrap();
    wait_for_stats(&server, "job A to start", |s| s.jobs_in_flight == 1);

    // Cancelling the *running* job is a no-op...
    conn.cancel(job_a.id()).unwrap();

    // ...while job B, still queued, dies with the typed cancel error.
    let job_b = conn
        .start_encoded(&queued_bytes, "fpraker", JobOptions::default())
        .unwrap();
    wait_for_stats(&server, "job B to queue", |s| s.jobs_queued == 1);
    job_b.cancel().unwrap();
    match job_b.wait() {
        Err(ServeError::Cancelled) => {}
        other => panic!("queued job survived cancel: {other:?}"),
    }
    wait_for_stats(&server, "the cancel to be counted", |s| {
        s.jobs_cancelled == 1
    });

    // Job A completes normally despite the earlier cancel.
    let response = job_a.wait().unwrap();
    assert!(!response.cached);
    let stats = server.stats();
    assert_eq!(stats.jobs_completed, 1);
    assert_eq!(stats.jobs_cancelled, 1);
    server.shutdown();
}

#[test]
fn queued_jobs_die_with_a_distinct_deadline_error() {
    let server = start_server(ServerConfig {
        jobs: 1,
        ..ServerConfig::default()
    });
    let conn = PipelinedConnection::connect(server.local_addr()).unwrap();
    let running_bytes = codec::encode(&test_trace(60, 2)).to_vec();
    let queued_bytes = codec::encode(&test_trace(61, 2)).to_vec();

    let job_a = conn
        .start_encoded(&running_bytes, "fpraker", JobOptions::default())
        .unwrap();
    wait_for_stats(&server, "job A to start", |s| s.jobs_in_flight == 1);

    let job_b = conn
        .start_encoded(
            &queued_bytes,
            "fpraker",
            JobOptions {
                deadline_ms: 20,
                ..JobOptions::default()
            },
        )
        .unwrap();
    match job_b.wait() {
        Err(ServeError::DeadlineExpired) => {}
        other => panic!("queued job outlived its deadline: {other:?}"),
    }
    wait_for_stats(&server, "the expiry to be counted", |s| {
        s.jobs_deadline_expired == 1
    });

    let response = job_a.wait().unwrap();
    assert!(!response.cached);
    assert_eq!(server.stats().jobs_completed, 1);
    server.shutdown();
}

#[test]
fn saturated_servers_reject_with_busy_and_the_configured_retry_hint() {
    let server = start_server(ServerConfig {
        jobs: 1,
        queue_depth: 0,
        busy_retry_ms: 123,
        ..ServerConfig::default()
    });
    let conn = PipelinedConnection::connect(server.local_addr()).unwrap();
    let running_bytes = codec::encode(&test_trace(70, 2)).to_vec();
    let rejected_bytes = codec::encode(&test_trace(71, 2)).to_vec();

    let job_a = conn
        .start_encoded(&running_bytes, "fpraker", JobOptions::default())
        .unwrap();
    wait_for_stats(&server, "job A to start", |s| s.jobs_in_flight == 1);

    let job_b = conn
        .start_encoded(&rejected_bytes, "fpraker", JobOptions::default())
        .unwrap();
    match job_b.wait() {
        Err(ServeError::Busy { retry_after_ms }) => assert_eq!(retry_after_ms, 123),
        other => panic!("saturated server accepted the job: {other:?}"),
    }
    assert_eq!(server.stats().busy_rejections, 1);

    // Once the running job drains, the same submission goes through.
    assert!(!job_a.wait().unwrap().cached);
    let retried = conn
        .submit_encoded(&rejected_bytes, "fpraker", JobOptions::default())
        .unwrap();
    assert!(!retried.cached);
    server.shutdown();
}

#[test]
fn higher_priority_jobs_jump_the_queue() {
    let server = start_server(ServerConfig {
        jobs: 1,
        ..ServerConfig::default()
    });
    let conn = PipelinedConnection::connect(server.local_addr()).unwrap();
    let blocker_bytes = codec::encode(&test_trace(80, 2)).to_vec();
    let low_bytes = codec::encode(&test_trace(81, 4)).to_vec();
    let high_bytes = codec::encode(&test_trace(82, 4)).to_vec();

    let blocker = conn
        .start_encoded(&blocker_bytes, "fpraker", JobOptions::default())
        .unwrap();
    wait_for_stats(&server, "the blocker to start", |s| s.jobs_in_flight == 1);

    // Low priority arrives first, high priority second; the queue runs
    // the high-priority job as soon as the blocker's permit frees.
    let low = conn
        .start_encoded(
            &low_bytes,
            "fpraker",
            JobOptions {
                priority: 1,
                ..JobOptions::default()
            },
        )
        .unwrap();
    wait_for_stats(&server, "the low-priority job to queue", |s| {
        s.jobs_queued == 1
    });
    let high = conn
        .start_encoded(
            &high_bytes,
            "fpraker",
            JobOptions {
                priority: 200,
                ..JobOptions::default()
            },
        )
        .unwrap();
    wait_for_stats(&server, "the high-priority job to queue", |s| {
        s.jobs_queued == 2
    });

    assert!(!blocker.wait().unwrap().cached);
    let finished = std::thread::scope(|scope| {
        let t_high = scope.spawn(move || {
            high.wait().unwrap();
            Instant::now()
        });
        let t_low = scope.spawn(move || {
            low.wait().unwrap();
            Instant::now()
        });
        (t_high.join().unwrap(), t_low.join().unwrap())
    });
    assert!(
        finished.0 < finished.1,
        "the high-priority job must complete before the low-priority one"
    );
    assert_eq!(server.stats().jobs_completed, 3);
    server.shutdown();
}

#[test]
fn range_and_stats_jobs_ride_the_tagged_pipeline() {
    let server = start_server(ServerConfig {
        jobs: 1,
        ..ServerConfig::default()
    });
    let conn = PipelinedConnection::connect(server.local_addr()).unwrap();
    let client = Client::connect(server.local_addr()).unwrap();
    let trace = test_trace(90, 6);
    let mut indexed = Vec::new();
    {
        let mut w = codec::Writer::new(
            &mut indexed,
            &trace.model,
            trace.progress_pct,
            trace.ops.len() as u32,
        )
        .unwrap();
        for op in &trace.ops {
            w.write_op(op).unwrap();
        }
        w.finish_indexed(2).unwrap();
    }
    let plan = ShardPlan::from_bytes(indexed.clone(), 2).unwrap();
    let range = plan.ranges()[0];
    let sub = plan.extract(0).unwrap();

    // A tagged range job equals the same range submitted over v2.
    let tagged = conn
        .submit_range_encoded(
            &sub,
            "fpraker",
            u64::from(range.first_op),
            u64::from(range.ops),
            JobOptions::default(),
        )
        .unwrap();
    assert!(!tagged.cached);
    let legacy = client
        .submit_range_encoded(
            &sub,
            "fpraker",
            u64::from(range.first_op),
            u64::from(range.ops),
        )
        .unwrap();
    assert!(legacy.cached, "the v2 resubmission hits the cache");
    assert_eq!(tagged.result, legacy.result);

    // A tagged stats job equals the v2 stats submission.
    let plain = codec::encode(&trace).to_vec();
    let tagged_stats = conn.submit_stats_encoded(&plain).unwrap();
    assert!(!tagged_stats.cached);
    let legacy_stats = client.submit_stats_encoded(&plain).unwrap();
    assert!(legacy_stats.cached);
    assert_eq!(tagged_stats.report, legacy_stats.report);
    server.shutdown();
}

#[test]
fn duplicate_in_flight_job_ids_are_rejected_without_killing_the_connection() {
    let server = start_server(ServerConfig {
        jobs: 1,
        ..ServerConfig::default()
    });
    let bytes = codec::encode(&test_trace(95, 2)).to_vec();
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    let header = JobSubmit {
        job_id: 9,
        priority: 100,
        deadline_ms: 0,
        digest: Fnv64::digest_of(&bytes),
        trace_bytes: bytes.len() as u64,
        kind: JobKind::Sim {
            spec: "fpraker".into(),
        },
    }
    .encode();
    write_frame(&mut stream, tag::SUBMIT_JOB, &header).unwrap();
    write_frame(&mut stream, tag::SUBMIT_JOB, &header).unwrap();
    stream.flush().unwrap();

    // The duplicate id fails; the original still wants its trace and
    // completes once uploaded.
    let mut saw_duplicate_error = false;
    let mut saw_result = false;
    while !(saw_duplicate_error && saw_result) {
        let (reply_tag, reply) = read_frame(&mut stream).unwrap();
        match reply_tag {
            tag::JOB_NEED_TRACE => {
                let mut payload = 9u64.to_le_bytes().to_vec();
                payload.extend_from_slice(&bytes);
                write_frame(&mut stream, tag::JOB_DATA, &payload).unwrap();
                write_frame(&mut stream, tag::JOB_DATA_END, &9u64.to_le_bytes()).unwrap();
                stream.flush().unwrap();
            }
            tag::JOB_ERROR => {
                let (job_id, code, message) = decode_job_error(&reply).unwrap();
                assert_eq!(job_id, 9);
                assert_eq!(code, job_error::GENERIC);
                assert!(message.contains("flight"), "{message}");
                saw_duplicate_error = true;
            }
            tag::JOB_RESULT => {
                assert_eq!(split_job_payload(&reply).unwrap().0, 9);
                saw_result = true;
            }
            other => panic!("unexpected frame tag {other:#x}"),
        }
    }
    server.shutdown();
}

#[test]
fn a_restarted_server_answers_from_the_disk_cache_without_resimulating() {
    let dir = std::env::temp_dir().join(format!("fpraker_pipeline_cache_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let trace = test_trace(99, 3);
    let bytes = codec::encode(&trace).to_vec();

    let first = start_server(ServerConfig {
        jobs: 1,
        cache_dir: Some(dir.clone()),
        ..ServerConfig::default()
    });
    let conn = PipelinedConnection::connect(first.local_addr()).unwrap();
    let cold = conn
        .submit_encoded(&bytes, "fpraker", JobOptions::default())
        .unwrap();
    assert!(!cold.cached);
    drop(conn);
    first.shutdown();

    // A brand-new server over the same directory answers warm: no upload
    // beyond the header, no simulation — jobs_completed stays 0.
    let second = start_server(ServerConfig {
        jobs: 1,
        cache_dir: Some(dir.clone()),
        ..ServerConfig::default()
    });
    let conn = PipelinedConnection::connect(second.local_addr()).unwrap();
    let warm = conn
        .submit_encoded(&bytes, "fpraker", JobOptions::default())
        .unwrap();
    assert!(warm.cached, "the restarted server must answer from disk");
    assert_eq!(warm.result, cold.result, "bit-identical across restarts");
    let stats = second.stats();
    assert_eq!(stats.jobs_completed, 0, "nothing was re-simulated");
    assert_eq!(stats.cache_hits, 1);
    drop(conn);
    second.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}
