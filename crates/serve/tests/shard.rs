//! End-to-end tests of the distributed shard coordinator: a trace fanned
//! across real worker servers must merge **bit-identically** to a local
//! `Engine::run` — at 1, 2 and 4 workers, under injected worker failure
//! (connection refused, killed mid-shard, dropped mid-upload, corrupted
//! partial results), through retry and re-assignment, and with retried
//! shards answered from the content-addressed cache.

use std::net::TcpListener;
use std::sync::Arc;
use std::time::Duration;

use fpraker_energy::EnergyModel;
use fpraker_num::reference::SplitMix64;
use fpraker_num::Bf16;
use fpraker_serve::protocol::{decode_result, encode_result, read_frame, tag, write_frame};
use fpraker_serve::shard::{merge_job_results, ShardCoordinator, ShardError, ShardPlan};
use fpraker_serve::{Client, Server, ServerConfig};
use fpraker_sim::{resolve_machine, AcceleratorConfig, Engine, Machine, RunResult};
use fpraker_trace::{codec, Phase, TensorKind, Trace, TraceOp};
use proptest::prelude::*;

/// A small deterministic multi-op trace (fast enough to simulate many
/// times in one test run).
fn test_trace(seed: u64, ops: usize) -> Trace {
    let mut rng = SplitMix64::new(seed);
    let mut tr = Trace::new(format!("shard-test-{seed}"), 50);
    let phases = [Phase::AxW, Phase::GxW, Phase::AxG];
    for i in 0..ops {
        let (m, n, k) = (8, 8, 16);
        let gen = |rng: &mut SplitMix64, count: usize| -> Vec<Bf16> {
            (0..count)
                .map(|_| {
                    if rng.next_f64() < 0.4 {
                        Bf16::ZERO
                    } else {
                        rng.bf16_in_range(3)
                    }
                })
                .collect()
        };
        tr.ops.push(TraceOp {
            layer: format!("l{i}"),
            phase: phases[i % 3],
            m,
            n,
            k,
            a: gen(&mut rng, m * k),
            b: gen(&mut rng, n * k),
            a_kind: TensorKind::Activation,
            b_kind: TensorKind::Weight,
            a_dup: 1.0,
            b_dup: 1.0,
            out_dup: 1.0,
        });
    }
    tr
}

fn start_worker() -> Server {
    Server::start(ServerConfig {
        jobs: 1,
        threads_per_job: 1,
        ..ServerConfig::default()
    })
    .expect("bind loopback")
}

/// Encodes a trace with an index footer appended.
fn encode_indexed(tr: &Trace, stride: u32) -> Vec<u8> {
    let mut out = Vec::new();
    let mut w = codec::Writer::new(&mut out, &tr.model, tr.progress_pct, tr.ops.len() as u32)
        .expect("header");
    for op in &tr.ops {
        w.write_op(op).expect("op");
    }
    w.finish_indexed(stride).expect("footer");
    out
}

/// Asserts the merged result is bit-identical to a local `Engine::run` —
/// totals, energy to the mantissa bit, and every per-op report
/// (`peak_resident_ops` is intentionally excluded: residency is a
/// per-worker property, not a merged invariant).
fn assert_merged_matches_local(result: &fpraker_serve::JobResult, local: &RunResult, spec: &str) {
    assert_eq!(result.spec, spec);
    assert_eq!(result.cycles, local.cycles());
    assert_eq!(result.compute_cycles, local.compute_cycles());
    assert_eq!(result.macs, local.macs());
    assert_eq!(result.golden_failures, local.golden_failures());
    assert_eq!(result.ops.len(), local.ops.len());
    let model = EnergyModel::paper();
    let energy = |counts| match local.machine {
        Machine::FpRaker => model.fpraker_energy(counts).total_pj(),
        Machine::Baseline => model.baseline_energy(counts).total_pj(),
    };
    let total_counts = local.counts();
    assert_eq!(
        result.energy_pj.to_bits(),
        energy(&total_counts).to_bits(),
        "merged energy must match local to the bit"
    );
    for (i, (merged, ours)) in result.ops.iter().zip(&local.ops).enumerate() {
        assert_eq!(merged.phase, ours.phase, "op {i}");
        assert_eq!(merged.cycles, ours.cycles, "op {i}");
        assert_eq!(merged.compute_cycles, ours.compute_cycles, "op {i}");
        assert_eq!(merged.macs, ours.macs, "op {i}");
        assert_eq!(merged.counts, ours.counts, "op {i}");
        assert_eq!(merged.golden_failures, ours.golden_failures, "op {i}");
        assert_eq!(
            merged.energy_pj.to_bits(),
            energy(&ours.counts).to_bits(),
            "op {i}"
        );
    }
}

fn local_run(tr: &Trace, spec: &str) -> RunResult {
    let (machine, cfg) = resolve_machine(spec).unwrap();
    Engine::with_threads(1).run(machine, tr, &cfg)
}

// ---------------------------------------------------------------------
// Fault-injection workers: each is a loopback listener whose every
// connection fails in one scripted way — a stand-in for a worker process
// that is dead, dies mid-shard, or returns corrupted data.
// ---------------------------------------------------------------------

#[derive(Clone, Copy)]
enum Fault {
    /// Accept, then close immediately (worker killed before the job).
    DropOnAccept,
    /// Ask for the trace, read one upload frame, then close (connection
    /// dropped mid-upload).
    DropMidUpload,
    /// Ask for the trace, consume the entire upload, then close without
    /// answering (worker killed mid-shard, after the work was sent).
    DieAfterUpload,
    /// Answer the submission with a RESULT frame of garbage bytes (a
    /// corrupted partial result that fails to decode).
    GarbageResult,
    /// Answer with a *decodable but wrong* result: a valid empty run,
    /// whose op count cannot match any non-empty shard.
    WrongResult,
}

/// Starts a fault worker; the listener thread serves every connection
/// with the same scripted failure until the test process exits.
fn fault_worker(fault: Fault) -> String {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().unwrap().to_string();
    std::thread::spawn(move || {
        for stream in listener.incoming() {
            let Ok(mut stream) = stream else { continue };
            match fault {
                Fault::DropOnAccept => drop(stream),
                Fault::DropMidUpload => {
                    let _ = read_frame(&mut stream); // SUBMIT_RANGE
                    let _ = write_frame(&mut stream, tag::NEED_TRACE, &[]);
                    let _ = read_frame(&mut stream); // first TRACE_DATA
                    drop(stream);
                }
                Fault::DieAfterUpload => {
                    let _ = read_frame(&mut stream);
                    let _ = write_frame(&mut stream, tag::NEED_TRACE, &[]);
                    while let Ok((frame_tag, _)) = read_frame(&mut stream) {
                        if frame_tag == tag::TRACE_END {
                            break;
                        }
                    }
                    drop(stream); // dies without a RESULT
                }
                Fault::GarbageResult => {
                    let _ = read_frame(&mut stream);
                    // cached=0 then bytes that cannot decode as a result.
                    let _ = write_frame(&mut stream, tag::RESULT, &[0, 0xDE, 0xAD, 0xBE]);
                }
                Fault::WrongResult => {
                    let _ = read_frame(&mut stream);
                    let empty = Engine::with_threads(1).run(
                        Machine::FpRaker,
                        &Trace::new("empty", 0),
                        &AcceleratorConfig::fpraker_paper(),
                    );
                    let payload = encode_result("fpraker", &empty, 0, &EnergyModel::paper());
                    let mut framed = vec![0u8];
                    framed.extend_from_slice(&payload);
                    let _ = write_frame(&mut stream, tag::RESULT, &framed);
                }
            }
        }
    });
    addr
}

/// A dead address: bound, resolved, then released — connecting is refused.
fn dead_worker() -> String {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().unwrap().to_string();
    drop(listener);
    addr
}

fn coordinator(workers: Vec<String>) -> ShardCoordinator {
    ShardCoordinator::new(workers)
        .max_attempts(4)
        .backoff(Duration::from_millis(5))
}

// ---------------------------------------------------------------------
// The tentpole: sharded runs bit-equal the local run at 1, 2, 4 workers.
// ---------------------------------------------------------------------

#[test]
fn sharded_runs_merge_bit_identically_at_1_2_and_4_workers() {
    let trace = test_trace(0xFA4, 12);
    let bytes = encode_indexed(&trace, 1);
    let spec = "fpraker";
    let local = local_run(&trace, spec);

    for n in [1usize, 2, 4] {
        let servers: Vec<Server> = (0..n).map(|_| start_worker()).collect();
        let workers: Vec<String> = servers.iter().map(|s| s.local_addr().to_string()).collect();
        let plan = ShardPlan::from_bytes(bytes.clone(), n).unwrap();
        assert!(plan.ranges().len() <= n);
        let run = coordinator(workers).run(&plan, spec).unwrap();
        assert_merged_matches_local(&run.result, &local, spec);
        assert_eq!(run.shards.len(), plan.ranges().len());
        assert!(run.shards.iter().all(|o| o.attempts == 1 && !o.cached));
        // With a full-width plan every shard lands on a distinct worker.
        if plan.ranges().len() == n {
            let mut used: Vec<usize> = run.shards.iter().map(|o| o.worker).collect();
            used.sort_unstable();
            used.dedup();
            assert_eq!(used.len(), n, "one shard per worker");
        }
    }
}

#[test]
fn sharded_run_from_a_file_matches_local_and_both_machines() {
    let trace = test_trace(0xF11E, 9);
    let path = std::env::temp_dir().join(format!("fpraker_shard_e2e_{}.trace", std::process::id()));
    std::fs::write(&path, encode_indexed(&trace, 2)).unwrap();

    let servers = [start_worker(), start_worker()];
    let workers: Vec<String> = servers.iter().map(|s| s.local_addr().to_string()).collect();
    for spec in ["fpraker", "baseline"] {
        let plan = ShardPlan::from_file(&path, 2).unwrap();
        assert!(plan.is_indexed());
        let run = coordinator(workers.clone()).run(&plan, spec).unwrap();
        assert_merged_matches_local(&run.result, &local_run(&trace, spec), spec);
    }
    std::fs::remove_file(&path).ok();
}

// ---------------------------------------------------------------------
// Fault injection: every scripted failure recovers via retry and still
// merges bit-identically.
// ---------------------------------------------------------------------

#[test]
fn injected_worker_faults_recover_via_retry_with_bit_identical_merges() {
    let trace = test_trace(0xBAD, 8);
    let bytes = encode_indexed(&trace, 1);
    let spec = "fpraker";
    let local = local_run(&trace, spec);

    type FaultFactory = fn() -> String;
    let faults: [(&str, FaultFactory); 5] = [
        ("connection refused", dead_worker as FaultFactory),
        ("killed before the job", || {
            fault_worker(Fault::DropOnAccept)
        }),
        ("dropped mid-upload", || fault_worker(Fault::DropMidUpload)),
        ("killed mid-shard", || fault_worker(Fault::DieAfterUpload)),
        ("corrupt result payload", || {
            fault_worker(Fault::GarbageResult)
        }),
    ];
    for (what, make_fault) in faults {
        let healthy = start_worker();
        // The faulty worker is first in the list, so shard 0's first
        // attempt always hits it and must be re-assigned.
        let workers = vec![make_fault(), healthy.local_addr().to_string()];
        let plan = ShardPlan::from_bytes(bytes.clone(), 2).unwrap();
        assert_eq!(plan.ranges().len(), 2, "{what}");
        let run = coordinator(workers).run(&plan, spec).unwrap();
        assert_merged_matches_local(&run.result, &local, spec);
        let shard0 = &run.shards[0];
        assert!(shard0.attempts > 1, "{what}: shard 0 must have retried");
        assert_eq!(shard0.worker, 1, "{what}: shard 0 re-assigned");
    }
}

#[test]
fn decodable_but_mislabeled_partial_is_rejected_and_retried() {
    let trace = test_trace(0x11AB, 6);
    let bytes = encode_indexed(&trace, 1);
    let spec = "fpraker";
    let healthy = start_worker();
    let workers = vec![
        fault_worker(Fault::WrongResult),
        healthy.local_addr().to_string(),
    ];
    let plan = ShardPlan::from_bytes(bytes, 2).unwrap();
    let run = coordinator(workers).run(&plan, spec).unwrap();
    assert_merged_matches_local(&run.result, &local_run(&trace, spec), spec);
    assert!(run.shards[0].attempts > 1);
}

#[test]
fn all_workers_dead_exhausts_the_attempt_budget_with_a_clear_error() {
    let trace = test_trace(3, 4);
    let plan = ShardPlan::from_bytes(encode_indexed(&trace, 1), 2).unwrap();
    let coord = ShardCoordinator::new(vec![dead_worker(), dead_worker()])
        .max_attempts(2)
        .backoff(Duration::from_millis(1));
    match coord.run(&plan, "fpraker") {
        Err(ShardError::Exhausted { attempts, .. }) => assert_eq!(attempts, 2),
        other => panic!("expected exhaustion, got {other:?}"),
    }
}

// ---------------------------------------------------------------------
// Cache behavior: a retried shard is a warm hit; racing duplicates of
// the same shard simulate at most once (the 1-permit pattern).
// ---------------------------------------------------------------------

#[test]
fn a_rerun_sharded_job_is_answered_entirely_from_the_cache() {
    let trace = test_trace(0xCAC4E, 8);
    let bytes = encode_indexed(&trace, 1);
    let spec = "fpraker";
    let server = start_worker();
    let workers = vec![server.local_addr().to_string()];
    let plan = ShardPlan::from_bytes(bytes, 4).unwrap();
    // One worker, several shards: all shards land on it.
    let cold = coordinator(workers.clone()).run(&plan, spec).unwrap();
    assert!(cold.shards.iter().all(|o| !o.cached));
    let simulated = server.stats().jobs_completed;
    assert_eq!(simulated, plan.ranges().len() as u64);

    // Re-running the identical plan — what a coordinator retrying after
    // a partial failure effectively does — must be pure cache hits.
    let warm = coordinator(workers).run(&plan, spec).unwrap();
    assert!(warm.shards.iter().all(|o| o.cached));
    assert_eq!(server.stats().jobs_completed, simulated, "no re-simulation");
    assert_eq!(warm.result, cold.result, "cached merge is bit-identical");
}

#[test]
fn racing_duplicate_shard_submissions_simulate_at_most_once() {
    // Extends the 1-permit exactly-once pattern to range jobs: two
    // clients race the same shard at a jobs=1 server; the second must be
    // answered from the cache re-check, not simulated again.
    let trace = test_trace(0xD0C, 6);
    let plan = ShardPlan::from_bytes(encode_indexed(&trace, 1), 2).unwrap();
    let shard0: Arc<[u8]> = plan.extract(0).unwrap().into();
    let range = plan.ranges()[0];
    let server = start_worker();
    let addr = server.local_addr();

    let results: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let shard0 = Arc::clone(&shard0);
                scope.spawn(move || {
                    Client::connect(addr).unwrap().submit_range_encoded(
                        &shard0,
                        "fpraker",
                        u64::from(range.first_op),
                        u64::from(range.ops),
                    )
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let ok: Vec<_> = results.into_iter().map(|r| r.unwrap()).collect();
    assert_eq!(server.stats().jobs_completed, 1, "exactly one simulation");
    assert!(ok.iter().filter(|r| r.cached).count() >= 3);
    for r in &ok[1..] {
        assert_eq!(r.result, ok[0].result, "replays are bit-identical");
    }
}

#[test]
fn identical_shard_content_shares_one_cache_entry_wherever_it_sits() {
    // Two traces whose op ranges produce byte-identical sub-traces: the
    // shard is simulated once, the second submission is a warm hit even
    // though it arrived under a different global range label.
    let trace = test_trace(0x51B, 4);
    let plan = ShardPlan::from_bytes(encode_indexed(&trace, 1), 4).unwrap();
    let server = start_worker();
    let client = Client::connect(server.local_addr()).unwrap();
    let shard = plan.extract(1).unwrap();
    let r = plan.ranges()[1];
    let cold = client
        .submit_range_encoded(&shard, "fpraker", u64::from(r.first_op), u64::from(r.ops))
        .unwrap();
    assert!(!cold.cached);
    // Same bytes, different claimed position: content-addressed, so it
    // hits — and the op-count check still held at simulation time.
    let warm = client
        .submit_range_encoded(&shard, "fpraker", 40, u64::from(r.ops))
        .unwrap();
    assert!(warm.cached);
    assert_eq!(warm.result, cold.result);
    assert_eq!(server.stats().jobs_completed, 1);
}

#[test]
fn range_submission_with_a_lying_op_count_is_rejected() {
    let trace = test_trace(0x0C7, 5);
    let plan = ShardPlan::from_bytes(encode_indexed(&trace, 1), 2).unwrap();
    let shard = plan.extract(0).unwrap();
    let r = plan.ranges()[0];
    let server = start_worker();
    let client = Client::connect(server.local_addr()).unwrap();
    let err = client
        .submit_range_encoded(&shard, "fpraker", 0, u64::from(r.ops) + 1)
        .unwrap_err();
    assert!(err.to_string().contains("ops"), "{err}");
    // The failed job neither cached nor counted.
    assert_eq!(server.stats().jobs_completed, 0);
    // The server still serves; a truthful submission succeeds.
    let ok = client
        .submit_range_encoded(&shard, "fpraker", 0, u64::from(r.ops))
        .unwrap();
    assert!(!ok.cached);
}

// ---------------------------------------------------------------------
// Degenerate plans through the full coordinator path.
// ---------------------------------------------------------------------

#[test]
fn more_workers_than_segments_leaves_spare_workers_idle() {
    let trace = test_trace(0x1D1E, 2); // stride 1 → 2 segments max
    let bytes = encode_indexed(&trace, 1);
    let servers: Vec<Server> = (0..4).map(|_| start_worker()).collect();
    let workers: Vec<String> = servers.iter().map(|s| s.local_addr().to_string()).collect();
    let plan = ShardPlan::from_bytes(bytes, 4).unwrap();
    assert!(plan.ranges().len() <= 2);
    let run = coordinator(workers).run(&plan, "fpraker").unwrap();
    assert_merged_matches_local(&run.result, &local_run(&trace, "fpraker"), "fpraker");
}

#[test]
fn single_segment_trace_with_many_workers_runs_as_one_shard() {
    let trace = test_trace(0x151, 4);
    let bytes = encode_indexed(&trace, 4); // one index entry → one segment
    let servers = [start_worker(), start_worker(), start_worker()];
    let workers: Vec<String> = servers.iter().map(|s| s.local_addr().to_string()).collect();
    let plan = ShardPlan::from_bytes(bytes, 3).unwrap();
    assert_eq!(plan.ranges().len(), 1);
    let run = coordinator(workers).run(&plan, "fpraker").unwrap();
    assert_eq!(run.shards.len(), 1);
    assert_merged_matches_local(&run.result, &local_run(&trace, "fpraker"), "fpraker");
}

#[test]
fn unindexed_trace_falls_back_to_a_single_whole_trace_shard() {
    let trace = test_trace(0x0F00, 6);
    let plain = codec::encode(&trace).to_vec();
    let servers = [start_worker(), start_worker()];
    let workers: Vec<String> = servers.iter().map(|s| s.local_addr().to_string()).collect();
    let plan = ShardPlan::from_bytes(plain.clone(), 2).unwrap();
    assert!(!plan.is_indexed());
    assert_eq!(plan.ranges().len(), 1);
    let run = coordinator(workers).run(&plan, "fpraker").unwrap();
    assert_merged_matches_local(&run.result, &local_run(&trace, "fpraker"), "fpraker");
    // The whole-trace shard is the original bytes, so a plain submission
    // of the same trace to the same worker is a cache hit.
    let warm = Client::connect(servers[run.shards[0].worker].local_addr())
        .unwrap()
        .submit_encoded(&plain, "fpraker")
        .unwrap();
    assert!(warm.cached);
}

#[test]
fn empty_trace_shards_and_merges() {
    let trace = Trace::new("empty", 0);
    let server = start_worker();
    let plan = ShardPlan::from_bytes(codec::encode(&trace).to_vec(), 2).unwrap();
    assert_eq!(plan.ranges().len(), 1);
    let run = coordinator(vec![server.local_addr().to_string()])
        .run(&plan, "fpraker")
        .unwrap();
    assert_eq!(run.result.ops.len(), 0);
    assert_eq!(run.result.cycles, 0);
}

// ---------------------------------------------------------------------
// Wire-level merge proptest: random traces × random partitions ×
// shuffled completion order, folded through the same encode → decode →
// merge path the coordinator uses — no sockets, so the case count can
// stay high without spinning servers.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn wire_merge_bit_equals_the_unsharded_payload(
        ops in 2usize..10,
        parts in 1usize..5,
        seed in any::<u64>(),
    ) {
        let trace = test_trace(seed, ops);
        let spec = "fpraker";
        let (machine, cfg) = resolve_machine(spec).unwrap();
        let engine = Engine::with_threads(1);
        let whole = engine.run(machine, &trace, &cfg);
        let model = EnergyModel::paper();
        let golden = decode_result(&encode_result(spec, &whole, 0, &model)).unwrap();

        // Random contiguous partition.
        let mut rng = SplitMix64::new(seed ^ 0x5A4D);
        let mut cuts: Vec<usize> = (0..parts - 1)
            .map(|_| 1 + (rng.next_u64() as usize) % (ops - 1))
            .collect();
        cuts.sort_unstable();
        cuts.dedup();
        let mut bounds = vec![0];
        bounds.extend(cuts);
        bounds.push(ops);

        // Each partial goes through the real wire encoding, as served.
        let mut partials: Vec<(u64, fpraker_serve::JobResult)> = bounds
            .windows(2)
            .map(|w| {
                let mut sub = Trace::new(&trace.model, trace.progress_pct);
                sub.ops = trace.ops[w[0]..w[1]].to_vec();
                let run = engine.run(machine, &sub, &cfg);
                let payload = encode_result(spec, &run, 0, &model);
                (w[0] as u64, decode_result(&payload).unwrap())
            })
            .collect();
        for i in (1..partials.len()).rev() {
            let j = (rng.next_u64() as usize) % (i + 1);
            partials.swap(i, j);
        }

        let merged = merge_job_results(partials).unwrap();
        prop_assert_eq!(merged.cycles, golden.cycles);
        prop_assert_eq!(merged.compute_cycles, golden.compute_cycles);
        prop_assert_eq!(merged.macs, golden.macs);
        prop_assert_eq!(merged.golden_failures, golden.golden_failures);
        prop_assert_eq!(
            merged.energy_pj.to_bits(),
            golden.energy_pj.to_bits(),
            "energy must merge bit-exactly"
        );
        prop_assert_eq!(merged.ops.len(), golden.ops.len());
        for (m, g) in merged.ops.iter().zip(&golden.ops) {
            prop_assert_eq!(m.phase, g.phase);
            prop_assert_eq!(m.cycles, g.cycles);
            prop_assert_eq!(m.energy_pj.to_bits(), g.energy_pj.to_bits());
            prop_assert_eq!(&m.counts, &g.counts);
        }
    }
}
