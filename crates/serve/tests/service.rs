//! End-to-end tests of the trace-simulation service: concurrent-client
//! determinism against `Engine::run`, content-addressed cache behavior,
//! and protocol robustness (malformed frames, oversized length prefixes,
//! mid-upload disconnects) — every failure must leave the server
//! accepting new connections.

use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;

use fpraker_energy::EnergyModel;
use fpraker_num::reference::SplitMix64;
use fpraker_num::Bf16;
use fpraker_serve::protocol::{tag, write_frame, Submit};
use fpraker_serve::{Client, ServeError, Server, ServerConfig};
use fpraker_sim::{resolve_machine, Engine, Machine, RunResult};
use fpraker_trace::{codec, Phase, TensorKind, Trace, TraceOp};

/// A small deterministic multi-op trace (fast enough to simulate many
/// times in one test run).
fn test_trace(seed: u64, ops: usize) -> Trace {
    let mut rng = SplitMix64::new(seed);
    let mut tr = Trace::new(format!("serve-test-{seed}"), 50);
    let phases = [Phase::AxW, Phase::GxW, Phase::AxG];
    for i in 0..ops {
        let (m, n, k) = (8, 8, 16);
        let gen = |rng: &mut SplitMix64, count: usize| -> Vec<Bf16> {
            (0..count)
                .map(|_| {
                    if rng.next_f64() < 0.4 {
                        Bf16::ZERO
                    } else {
                        rng.bf16_in_range(3)
                    }
                })
                .collect()
        };
        tr.ops.push(TraceOp {
            layer: format!("l{i}"),
            phase: phases[i % 3],
            m,
            n,
            k,
            a: gen(&mut rng, m * k),
            b: gen(&mut rng, n * k),
            a_kind: TensorKind::Activation,
            b_kind: TensorKind::Weight,
            a_dup: 1.0,
            b_dup: 1.0,
            out_dup: 1.0,
        });
    }
    tr
}

fn start_server(jobs: usize) -> Server {
    Server::start(ServerConfig {
        jobs,
        threads_per_job: 1,
        ..ServerConfig::default()
    })
    .expect("bind loopback")
}

/// Asserts a served result is bit-identical to a local `Engine::run`.
fn assert_matches_local(result: &fpraker_serve::JobResult, local: &RunResult, spec: &str) {
    let (_, _cfg) = resolve_machine(spec).unwrap();
    assert_eq!(result.spec, spec);
    assert_eq!(result.cycles, local.cycles());
    assert_eq!(result.compute_cycles, local.compute_cycles());
    assert_eq!(result.macs, local.macs());
    assert_eq!(result.golden_failures, local.golden_failures());
    assert_eq!(result.ops.len(), local.ops.len());
    let model = EnergyModel::paper();
    let energy = |counts| match local.machine {
        Machine::FpRaker => model.fpraker_energy(counts).total_pj(),
        Machine::Baseline => model.baseline_energy(counts).total_pj(),
    };
    let total_counts = local.counts();
    assert_eq!(result.energy_pj.to_bits(), energy(&total_counts).to_bits());
    for (served, ours) in result.ops.iter().zip(&local.ops) {
        assert_eq!(served.phase, ours.phase);
        assert_eq!(served.cycles, ours.cycles);
        assert_eq!(served.compute_cycles, ours.compute_cycles);
        assert_eq!(served.macs, ours.macs);
        assert_eq!(served.energy_pj.to_bits(), energy(&ours.counts).to_bits());
        assert_eq!(served.golden_failures, ours.golden_failures);
        assert_eq!(served.counts, ours.counts);
    }
}

/// Encodes a trace with an index footer appended.
fn encode_indexed(tr: &Trace, stride: u32) -> Vec<u8> {
    let mut out = Vec::new();
    let mut w = codec::Writer::new(&mut out, &tr.model, tr.progress_pct, tr.ops.len() as u32)
        .expect("header");
    for op in &tr.ops {
        w.write_op(op).expect("op");
    }
    w.finish_indexed(stride).expect("footer");
    out
}

#[test]
fn indexed_payloads_are_accepted_digest_verified_and_bit_identical() {
    let server = start_server(1);
    let client = Client::connect(server.local_addr()).unwrap();
    let trace = test_trace(77, 6);
    let spec = "fpraker";
    let (_, cfg) = resolve_machine(spec).unwrap();
    let local = Engine::with_threads(1).run(Machine::FpRaker, &trace, &cfg);

    // An indexed upload (footer after the ops) simulates like a plain one.
    let indexed = encode_indexed(&trace, 2);
    let response = client.submit_encoded(&indexed, spec).unwrap();
    assert!(!response.cached);
    assert_matches_local(&response.result, &local, spec);

    // Resubmitting the same indexed bytes hits the content cache.
    let again = client.submit_encoded(&indexed, spec).unwrap();
    assert!(again.cached);
    assert_eq!(again.result, response.result);

    // The plain encoding is different content (different digest): it
    // simulates separately — to the identical result.
    let plain = codec::encode(&trace).to_vec();
    let plain_response = client.submit_encoded(&plain, spec).unwrap();
    assert!(!plain_response.cached);
    assert_matches_local(&plain_response.result, &local, spec);

    // A lying digest over indexed bytes is rejected and does not poison
    // the cache; trailing garbage that is not a footer is rejected too.
    let mut tampered = indexed.clone();
    let last = tampered.len() - 1;
    tampered[last] ^= 0xFF; // breaks the footer magic
    match client.submit_encoded(&tampered, spec) {
        Err(ServeError::Remote(m)) => {
            assert!(m.contains("footer") || m.contains("digest"), "{m}")
        }
        other => panic!("tampered footer accepted: {other:?}"),
    }
    // The server is still serving afterwards.
    assert!(client.submit_encoded(&indexed, spec).unwrap().cached);
}

#[test]
fn stats_jobs_compute_single_pass_statistics_over_the_streamed_upload() {
    use fpraker_num::encode::Encoding;
    use fpraker_serve::TraceStatsReport;
    use fpraker_trace::stats::TraceStatistics;

    let server = start_server(1);
    let client = Client::connect(server.local_addr()).unwrap();
    let trace = test_trace(123, 5);
    let bytes = codec::encode(&trace).to_vec();
    let local = TraceStatistics::from_trace(&trace, Encoding::Canonical);
    let expected = TraceStatsReport::from_stats(&local);

    // Cold: the server folds the stream and reports exact counts.
    let response = client.submit_stats_encoded(&bytes).unwrap();
    assert!(!response.cached);
    assert_eq!(response.report, expected);
    // The figures derived from the report match the local collector.
    assert_eq!(
        response.report.activation.value_sparsity(),
        local.sparsity.activation.value_sparsity()
    );
    for p in &response.report.phases {
        let l = &local.potential[p.phase.as_str()];
        assert_eq!(p.macs, l.macs);
        assert_eq!(p.potential_speedup(), l.potential_speedup());
    }

    // Warm: content-cached, bit-identical replay.
    let again = client.submit_stats_encoded(&bytes).unwrap();
    assert!(again.cached);
    assert_eq!(again.report, expected);

    // Indexed upload: accepted (footer drained and digest-verified),
    // different content digest → its own cache entry, same statistics.
    let indexed = encode_indexed(&trace, 2);
    let from_indexed = client.submit_stats_encoded(&indexed).unwrap();
    assert!(!from_indexed.cached);
    assert_eq!(from_indexed.report, expected);

    // Stats and simulation results of the same bytes do not collide in
    // the cache: a simulation of the plain bytes is still a cold miss.
    let sim = client.submit_encoded(&bytes, "fpraker").unwrap();
    assert!(!sim.cached);
}

#[test]
fn concurrent_clients_get_bit_identical_results_with_cache_hits() {
    let server = start_server(2);
    let addr = server.local_addr();
    let trace = Arc::new(test_trace(42, 4));
    let spec = "fpraker";
    let (_, cfg) = resolve_machine(spec).unwrap();
    let local = Engine::with_threads(1).run(Machine::FpRaker, &trace, &cfg);

    // Warm the cache with one submission, then hit it from 4 clients at
    // once.
    let warmup = Client::connect(addr)
        .unwrap()
        .submit_trace(&trace, spec)
        .unwrap();
    assert!(!warmup.cached, "first submission must simulate");
    assert_matches_local(&warmup.result, &local, spec);

    let mut handles = Vec::new();
    for _ in 0..4 {
        let trace = Arc::clone(&trace);
        handles.push(std::thread::spawn(move || {
            Client::connect(addr)
                .unwrap()
                .submit_trace(&trace, spec)
                .unwrap()
        }));
    }
    let responses: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    for response in &responses {
        assert_matches_local(&response.result, &local, spec);
        assert_eq!(
            response.result, warmup.result,
            "every client sees the same result"
        );
    }
    let hits = responses.iter().filter(|r| r.cached).count();
    assert!(hits >= 1, "concurrent resubmissions must hit the cache");
    assert!(server.cache_stats().hits >= 1);
    server.shutdown();
}

#[test]
fn cold_concurrent_clients_simulate_at_most_once_per_content() {
    // All 4 clients race on an empty cache: the job-pool double-check
    // means at most `jobs` simulations happen; the rest are served from
    // the cache — and everyone's results agree with Engine::run.
    let server = start_server(1);
    let addr = server.local_addr();
    let trace = Arc::new(test_trace(7, 3));
    let (_, cfg) = resolve_machine("fpraker").unwrap();
    let local = Engine::with_threads(1).run(Machine::FpRaker, &trace, &cfg);

    let mut handles = Vec::new();
    for _ in 0..4 {
        let trace = Arc::clone(&trace);
        handles.push(std::thread::spawn(move || {
            Client::connect(addr)
                .unwrap()
                .submit_trace(&trace, "fpraker")
                .unwrap()
        }));
    }
    let responses: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    for response in &responses {
        assert_matches_local(&response.result, &local, "fpraker");
    }
    assert_eq!(
        server.stats().jobs_completed,
        1,
        "one job slot + double-check = exactly one simulation"
    );
    server.shutdown();
}

#[test]
fn all_registry_machines_are_servable() {
    let server = start_server(1);
    let client = Client::connect(server.local_addr()).unwrap();
    let trace = test_trace(11, 2);
    for spec in fpraker_sim::machine_names() {
        let (label, cfg) = resolve_machine(spec).unwrap();
        let local = Engine::with_threads(1).run(label, &trace, &cfg);
        let response = client.submit_trace(&trace, spec).unwrap();
        assert!(!response.cached, "distinct specs are distinct cache keys");
        assert_matches_local(&response.result, &local, spec);
    }
    assert_eq!(server.cache_stats().entries, 3);
    server.shutdown();
}

#[test]
fn served_results_match_the_streaming_engine_too() {
    // The server streams uploads through run_source; pin the equivalence
    // against both engine entry points.
    let server = start_server(1);
    let client = Client::connect(server.local_addr()).unwrap();
    let trace = test_trace(13, 3);
    let (_, cfg) = resolve_machine("baseline").unwrap();
    let bytes = codec::encode(&trace);
    let streamed = Engine::with_threads(1)
        .run_source(
            Machine::Baseline,
            codec::Reader::new(&bytes[..]).unwrap(),
            &cfg,
        )
        .unwrap();
    let response = client.submit_encoded(&bytes, "baseline").unwrap();
    assert_matches_local(&response.result, &streamed.result, "baseline");
    assert_eq!(
        response.result.peak_resident_ops as usize,
        streamed.peak_resident_ops
    );
    server.shutdown();
}

#[test]
fn cache_hit_skips_the_upload_entirely() {
    let server = start_server(1);
    let client = Client::connect(server.local_addr()).unwrap();
    let trace = test_trace(17, 2);
    client.submit_trace(&trace, "fpraker").unwrap();
    let before = server.stats().jobs_completed;
    let warm = client.submit_trace(&trace, "fpraker").unwrap();
    assert!(warm.cached);
    assert_eq!(server.stats().jobs_completed, before, "no new simulation");
    server.shutdown();
}

#[test]
fn stats_round_trip_over_the_wire() {
    let server = start_server(1);
    let client = Client::connect(server.local_addr()).unwrap();
    let trace = test_trace(19, 2);
    client.submit_trace(&trace, "fpraker").unwrap();
    client.submit_trace(&trace, "fpraker").unwrap();
    let stats = client.stats().unwrap();
    assert_eq!(stats.jobs_completed, 1);
    // One cold job = exactly one miss (the post-permit re-check does not
    // double-count), one warm job = exactly one hit.
    assert_eq!(stats.cache_misses, 1);
    assert_eq!(stats.cache_hits, 1);
    assert_eq!(stats.cache_entries, 1);
    assert_eq!(stats, server.stats());
    server.shutdown();
}

#[test]
fn metrics_round_trip_over_the_wire() {
    let server = start_server(1);
    let client = Client::connect(server.local_addr()).unwrap();
    let trace = test_trace(23, 2);
    client.submit_trace(&trace, "fpraker").unwrap();
    client.submit_trace(&trace, "fpraker").unwrap();
    let text = client.metrics().unwrap();
    // The ServerStats counters are always present, telemetry on or off.
    assert!(text.contains("# TYPE serve_jobs_completed_total counter"));
    assert!(text.contains("serve_jobs_completed_total 1"));
    assert!(text.contains("serve_cache_hits_total 1"));
    assert!(text.contains("serve_cache_misses_total 1"));
    // The in-process accessor renders the same ServerStats counters
    // (gauges like active connections may legitimately differ between
    // the two render instants, so only the stable lines are compared).
    let local = server.metrics_text();
    assert!(local.contains("serve_jobs_completed_total 1"));
    assert!(local.contains("serve_cache_hits_total 1"));
    // Every line is either a comment or `name[{labels}] value`.
    for line in text.lines() {
        assert!(
            line.starts_with("# ") || line.split_whitespace().count() == 2,
            "unparseable metrics line: {line:?}"
        );
    }
    if fpraker_telemetry::compiled() {
        // The metrics connection itself counts, so ≥ 3 requests total.
        let requests = text
            .lines()
            .find_map(|l| l.strip_prefix("serve_requests_total "))
            .expect("serve_requests_total present")
            .parse::<u64>()
            .unwrap();
        assert!(requests >= 3, "requests_total = {requests}");
        // One cold sim request and one cache hit each landed a latency
        // sample in the labelled request histograms.
        assert!(text.contains("serve_request_seconds_count{job=\"sim\",cache=\"cold\"} 1"));
        assert!(text.contains("serve_request_seconds_count{job=\"sim\",cache=\"hit\"} 1"));
        // The cold simulation exercised the engine's fold stage.
        assert!(text.contains("sim_fold_seconds_count"));
    }
    server.shutdown();
}

#[test]
fn mixed_case_specs_share_one_cache_entry_and_report_the_canonical_name() {
    let server = start_server(1);
    let client = Client::connect(server.local_addr()).unwrap();
    let trace = test_trace(43, 1);
    let cold = client.submit_trace(&trace, "FPRaker").unwrap();
    assert_eq!(cold.result.spec, "fpraker", "spec is canonicalized");
    let warm = client.submit_trace(&trace, " fpraker ").unwrap();
    assert!(warm.cached, "spellings of one spec share one cache entry");
    assert_eq!(warm.result, cold.result);
    server.shutdown();
}

#[test]
fn unknown_machine_spec_is_a_remote_error() {
    let server = start_server(1);
    let client = Client::connect(server.local_addr()).unwrap();
    let err = client
        .submit_trace(&test_trace(23, 1), "tpu-v9")
        .unwrap_err();
    match err {
        ServeError::Remote(m) => assert!(m.contains("unknown machine spec"), "{m}"),
        other => panic!("expected remote error, got {other}"),
    }
    // The connection failure is isolated: the server still serves.
    assert!(
        !Client::connect(server.local_addr())
            .unwrap()
            .submit_trace(&test_trace(23, 1), "fpraker")
            .unwrap()
            .cached
    );
    server.shutdown();
}

/// After `breakage(stream)` ran against a raw connection, the server must
/// still complete a well-formed job on a fresh connection.
fn assert_server_survives(server: &Server, breakage: impl FnOnce(&mut TcpStream)) {
    let mut raw = TcpStream::connect(server.local_addr()).unwrap();
    breakage(&mut raw);
    drop(raw);
    let client = Client::connect(server.local_addr()).unwrap();
    let trace = test_trace(29, 1);
    let (_, cfg) = resolve_machine("fpraker").unwrap();
    let local = Engine::with_threads(1).run(Machine::FpRaker, &trace, &cfg);
    let response = client.submit_trace(&trace, "fpraker").unwrap();
    assert_matches_local(&response.result, &local, "fpraker");
}

#[test]
fn malformed_first_frame_leaves_the_server_accepting() {
    let server = start_server(1);
    assert_server_survives(&server, |raw| {
        raw.write_all(b"this is not a frame at all....").unwrap();
        let _ = raw.flush();
    });
    server.shutdown();
}

#[test]
fn oversized_length_prefix_is_rejected_cleanly() {
    let server = start_server(1);
    assert_server_survives(&server, |raw| {
        // Tag + a 4 GiB length prefix: must be refused before allocation.
        raw.write_all(&[tag::SUBMIT]).unwrap();
        raw.write_all(&u32::MAX.to_le_bytes()).unwrap();
        let _ = raw.flush();
        // The server answers with an ERROR frame rather than hanging.
        let frame = fpraker_serve::protocol::read_frame(raw).unwrap();
        assert_eq!(frame.0, tag::ERROR);
        let msg = String::from_utf8_lossy(&frame.1).into_owned();
        assert!(msg.contains("length prefix"), "{msg}");
    });
    server.shutdown();
}

#[test]
fn mid_upload_disconnect_leaves_the_server_accepting() {
    let server = start_server(1);
    let trace = test_trace(31, 2);
    let bytes = codec::encode(&trace);
    assert_server_survives(&server, |raw| {
        let submit = Submit {
            spec: "fpraker".into(),
            digest: fpraker_trace::Fnv64::digest_of(&bytes),
            trace_bytes: bytes.len() as u64,
        };
        write_frame(raw, tag::SUBMIT, &submit.encode()).unwrap();
        raw.flush().unwrap();
        let (t, _) = fpraker_serve::protocol::read_frame(raw).unwrap();
        assert_eq!(t, tag::NEED_TRACE);
        // Send half the trace, then vanish.
        write_frame(raw, tag::TRACE_DATA, &bytes[..bytes.len() / 2]).unwrap();
        raw.flush().unwrap();
    });
    // The aborted upload must not have been cached.
    let client = Client::connect(server.local_addr()).unwrap();
    let response = client.submit_trace(&trace, "fpraker").unwrap();
    assert!(
        !response.cached,
        "truncated upload must not poison the cache"
    );
    server.shutdown();
}

#[test]
fn corrupt_trace_bytes_are_a_remote_error_and_not_cached() {
    let server = start_server(1);
    let client = Client::connect(server.local_addr()).unwrap();
    let trace = test_trace(37, 2);
    let mut bytes = codec::encode(&trace).to_vec();
    bytes[0] = b'X'; // break the trace codec magic
    let err = client.submit_encoded(&bytes, "fpraker").unwrap_err();
    match err {
        ServeError::Remote(m) => assert!(m.contains("trace"), "{m}"),
        other => panic!("expected remote error, got {other}"),
    }
    // A well-formed resubmission of the same content simulates fresh.
    let good = client
        .submit_encoded(&codec::encode(&trace), "fpraker")
        .unwrap();
    assert!(!good.cached);
    server.shutdown();
}

#[test]
fn digest_mismatch_is_rejected_and_not_cached() {
    let server = start_server(1);
    let trace = test_trace(41, 1);
    let bytes = codec::encode(&trace);
    let mut raw = TcpStream::connect(server.local_addr()).unwrap();
    let submit = Submit {
        spec: "fpraker".into(),
        digest: 0x1234_5678_9ABC_DEF0, // wrong on purpose
        trace_bytes: bytes.len() as u64,
    };
    write_frame(&mut raw, tag::SUBMIT, &submit.encode()).unwrap();
    let (t, _) = fpraker_serve::protocol::read_frame(&mut raw).unwrap();
    assert_eq!(t, tag::NEED_TRACE);
    write_frame(&mut raw, tag::TRACE_DATA, &bytes).unwrap();
    write_frame(&mut raw, tag::TRACE_END, &[]).unwrap();
    raw.flush().unwrap();
    let (t, payload) = fpraker_serve::protocol::read_frame(&mut raw).unwrap();
    assert_eq!(t, tag::ERROR);
    let msg = String::from_utf8_lossy(&payload).into_owned();
    assert!(msg.contains("digest"), "{msg}");
    drop(raw);
    // The lie was not cached under the claimed digest.
    let mut raw = TcpStream::connect(server.local_addr()).unwrap();
    write_frame(&mut raw, tag::SUBMIT, &submit.encode()).unwrap();
    let (t, _) = fpraker_serve::protocol::read_frame(&mut raw).unwrap();
    assert_eq!(t, tag::NEED_TRACE, "claimed digest must still be a miss");
    server.shutdown();
}
