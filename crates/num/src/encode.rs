//! Term encoding: converting a significand into signed powers of two.
//!
//! FPRaker processes the serial operand of each MAC "as a series of signed
//! powers of two hitherto referred to as terms" (Section III). The encoder
//! runs on the fly just before the PE input; values stay bfloat16 in memory.
//!
//! Two encodings are provided:
//!
//! * [`Encoding::Canonical`] — canonical signed-digit (CSD, a variation of
//!   Booth encoding): the minimal-weight representation with no two adjacent
//!   non-zero digits. This is the paper's default; term sparsity (Fig. 1b)
//!   is measured under this encoding.
//! * [`Encoding::RawBits`] — one term per set mantissa bit, used by the
//!   paper's worked example (Fig. 5) and as an ablation.
//!
//! A term is expressed as a *right-shift distance* `t` from the hidden-bit
//! position: the term's value is `±2^(-t)` relative to the significand's
//! `1.xxxxxxx` fixed point. Canonical encoding of a normalized 8-bit
//! significand produces `t ∈ [-1, 7]` (the `-1` arises from patterns like
//! `1.111111x → +2^1 - ...`).

use std::fmt;

/// One signed power-of-two term of a significand.
///
/// The value represented is `sign * 2^(-shift)` where `shift` is the distance
/// below the hidden-bit (units) position.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub struct Term {
    /// Right-shift distance from the hidden-bit position; may be `-1`
    /// (one position *above* the hidden bit).
    pub shift: i8,
    /// `true` if the term is subtracted.
    pub neg: bool,
}

impl Term {
    /// Creates a term.
    pub const fn new(shift: i8, neg: bool) -> Self {
        Term { shift, neg }
    }

    /// The term's numeric value relative to a `1.x` significand.
    pub fn value(self) -> f64 {
        let mag = 2f64.powi(-(self.shift as i32));
        if self.neg {
            -mag
        } else {
            mag
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}2^{}",
            if self.neg { "-" } else { "+" },
            -(self.shift as i32)
        )
    }
}

/// The maximum number of terms a single encoded significand can produce.
///
/// Raw encoding of an 8-bit significand yields at most 8 terms; canonical
/// encoding yields at most 5 (no two adjacent non-zero digits over 9 digit
/// positions).
pub const MAX_TERMS: usize = 8;

/// A fixed-capacity, stack-allocated sequence of terms in MSB-first order
/// (most-significant term first, i.e. ascending `shift`).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct Terms {
    buf: [Term; MAX_TERMS],
    len: u8,
}

impl Terms {
    /// An empty term sequence (the encoding of a zero significand).
    pub const EMPTY: Terms = Terms {
        buf: [Term {
            shift: 0,
            neg: false,
        }; MAX_TERMS],
        len: 0,
    };

    /// Number of terms.
    #[inline]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// `true` if there are no terms (zero value).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The terms as a slice, most-significant first.
    #[inline]
    pub fn as_slice(&self) -> &[Term] {
        &self.buf[..self.len as usize]
    }

    /// Appends a term.
    ///
    /// # Panics
    ///
    /// Panics if the sequence is full ([`MAX_TERMS`]).
    #[inline]
    pub const fn push(&mut self, t: Term) {
        assert!((self.len as usize) < MAX_TERMS, "term sequence overflow");
        self.buf[self.len as usize] = t;
        self.len += 1;
    }

    /// Iterates over the terms, most-significant first.
    pub fn iter(&self) -> std::slice::Iter<'_, Term> {
        self.as_slice().iter()
    }

    /// Reconstructs the numeric value of the encoded significand
    /// (relative to the `1.x` fixed point, so a normalized input gives a
    /// value in `[1, 2)`).
    pub fn value(&self) -> f64 {
        self.iter().map(|t| t.value()).sum()
    }
}

impl<'a> IntoIterator for &'a Terms {
    type Item = &'a Term;
    type IntoIter = std::slice::Iter<'a, Term>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

impl FromIterator<Term> for Terms {
    fn from_iter<I: IntoIterator<Item = Term>>(iter: I) -> Self {
        let mut t = Terms::EMPTY;
        for item in iter {
            t.push(item);
        }
        t
    }
}

/// The significand-to-terms encoding scheme.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum Encoding {
    /// Canonical signed-digit (minimal-weight Booth) encoding — the paper's
    /// default. Example: `1.1110000 → +2^1 − 2^−3` (two terms).
    #[default]
    Canonical,
    /// One term per set bit of the significand, used in the paper's Fig. 5
    /// walkthrough and as an ablation baseline.
    RawBits,
}

/// Encodes an 8-bit significand (hidden bit included, `0` or `[128, 255]`)
/// into terms, most-significant first.
///
/// A zero significand encodes to the empty sequence — this is how FPRaker
/// skips zero *values* entirely (Section V: "skipping zero terms").
///
/// # Example
///
/// ```
/// use fpraker_num::encode::{encode_terms, Encoding};
///
/// // 1.1110000 (= 1.875): CSD finds 2 - 2^-3.
/// let t = encode_terms(0b1111_0000, Encoding::Canonical);
/// assert_eq!(t.len(), 2);
/// assert_eq!(t.value(), 1.875);
/// // Raw bit-serial needs 4 terms.
/// let r = encode_terms(0b1111_0000, Encoding::RawBits);
/// assert_eq!(r.len(), 4);
/// assert_eq!(r.value(), 1.875);
/// ```
pub const fn encode_terms(significand: u8, encoding: Encoding) -> Terms {
    match encoding {
        Encoding::Canonical => encode_csd(significand),
        Encoding::RawBits => encode_raw(significand),
    }
}

/// Raw bit-serial encoding: one positive term per set bit, MSB first.
pub const fn encode_raw(significand: u8) -> Terms {
    let mut out = Terms::EMPTY;
    let mut bit = 8usize;
    while bit > 0 {
        bit -= 1;
        if significand & (1 << bit) != 0 {
            out.push(Term::new(7 - bit as i8, false));
        }
    }
    out
}

/// Canonical signed-digit (non-adjacent form) encoding, MSB first.
///
/// Properties (checked by property tests):
/// * the encoded value equals the input,
/// * no two adjacent digit positions are both non-zero,
/// * the number of terms is minimal over all signed-digit representations,
///   and never exceeds the raw bit count.
pub const fn encode_csd(significand: u8) -> Terms {
    // Standard NAF construction, LSB first, then reversed into MSB order.
    let mut m = significand as i32;
    let mut digits = [0i8; 10];
    let mut pos = 0usize;
    while m != 0 {
        if m & 1 != 0 {
            // d in {-1, +1} chosen so that (m - d) is divisible by 4,
            // guaranteeing the next digit is zero.
            let d = 2 - (m & 3); // m%4 == 1 -> +1; m%4 == 3 -> -1
            digits[pos] = d as i8;
            m -= d;
        }
        m >>= 1;
        pos += 1;
    }
    let mut out = Terms::EMPTY;
    let mut bit = pos;
    while bit > 0 {
        bit -= 1;
        let d = digits[bit];
        if d != 0 {
            // Bit position `bit` corresponds to weight 2^(bit-7) relative to
            // the 1.x fixed point, i.e. shift = 7 - bit.
            out.push(Term::new(7 - bit as i8, d < 0));
        }
    }
    out
}

/// A full 256-entry term table built at compile time from
/// [`encode_terms`].
const fn build_term_table(encoding: Encoding) -> [Terms; 256] {
    let mut table = [Terms::EMPTY; 256];
    let mut m = 0usize;
    while m < 256 {
        table[m] = encode_terms(m as u8, encoding);
        m += 1;
    }
    table
}

/// Precomputed canonical signed-digit encodings of all 256 significands.
static CSD_TERM_TABLE: [Terms; 256] = build_term_table(Encoding::Canonical);

/// Precomputed raw bit-serial encodings of all 256 significands.
static RAW_TERM_TABLE: [Terms; 256] = build_term_table(Encoding::RawBits);

/// The precomputed 256-entry term table for an encoding.
///
/// Both tables are built at compile time by running [`encode_terms`] over
/// every possible 8-bit significand, so `term_table(e)[m as usize]` is
/// guaranteed identical to `encode_terms(m, e)` — an invariant the
/// exhaustive equivalence tests pin. The PE fast path encodes by indexing
/// these tables instead of re-deriving terms per set.
#[inline]
pub fn term_table(encoding: Encoding) -> &'static [Terms; 256] {
    match encoding {
        Encoding::Canonical => &CSD_TERM_TABLE,
        Encoding::RawBits => &RAW_TERM_TABLE,
    }
}

/// Looks up the encoding of one significand in the precomputed table.
///
/// Semantically identical to [`encode_terms`] but O(1): encoding becomes
/// an index into a 256-entry static table.
///
/// # Example
///
/// ```
/// use fpraker_num::encode::{encode_terms, lut_terms, Encoding};
///
/// for m in 0u16..=255 {
///     assert_eq!(*lut_terms(m as u8, Encoding::Canonical),
///                encode_terms(m as u8, Encoding::Canonical));
/// }
/// ```
#[inline]
pub fn lut_terms(significand: u8, encoding: Encoding) -> &'static Terms {
    &term_table(encoding)[significand as usize]
}

/// A packed, SWAR-friendly view of one significand's term encoding.
///
/// All of an encoding's shift distances live in one `u64` — term `j`'s
/// shift occupies byte `j` as an `i8`, most-significant term in the low
/// byte — and the term signs in one `u8` bitmask (bit `j` set when term
/// `j` is subtracted). A consumer streams the encoding with plain integer
/// ops: the current term's shift is the low byte (`shifts as i8`), its
/// sign is bit 0 of `negs`, and advancing to the next term is
/// `shifts >>= 8; negs >>= 1`. No slice indexing, no cursor bookkeeping —
/// this is the per-lane state layout of the PE's SWAR datapath.
///
/// # Example
///
/// ```
/// use fpraker_num::encode::{encode_terms, packed_term_table, Encoding};
///
/// let m = 0b1111_0000; // 1.875 = +2^1 - 2^-3 under CSD
/// let p = packed_term_table(Encoding::Canonical)[m as usize];
/// let t = encode_terms(m, Encoding::Canonical);
/// assert_eq!(p.len as usize, t.len());
/// assert_eq!(p.shifts as i8, -1);         // first term: +2^1
/// assert_eq!((p.shifts >> 8) as i8, 3);   // second term: -2^-3
/// assert_eq!(p.negs, 0b10);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct PackedTerms {
    /// Term shifts, one `i8` per byte, most-significant term in byte 0.
    /// Bytes at and beyond `len` are zero.
    pub shifts: u64,
    /// Bitmask of subtracted terms (bit `j` = term `j` is negative).
    pub negs: u8,
    /// Number of terms (`0..=MAX_TERMS`).
    pub len: u8,
}

impl PackedTerms {
    /// Packs a term sequence into the SWAR layout.
    pub const fn pack(terms: &Terms) -> PackedTerms {
        let mut shifts = 0u64;
        let mut negs = 0u8;
        let mut j = 0usize;
        while j < terms.len as usize {
            let t = terms.buf[j];
            shifts |= ((t.shift as u8) as u64) << (8 * j);
            if t.neg {
                negs |= 1 << j;
            }
            j += 1;
        }
        PackedTerms {
            shifts,
            negs,
            len: terms.len,
        }
    }

    /// Unpacks term `j` (for tests and cross-checking; the PE streams the
    /// packed words directly).
    ///
    /// # Panics
    ///
    /// Panics if `j >= self.len`.
    pub fn term(&self, j: usize) -> Term {
        assert!(j < self.len as usize, "term index out of range");
        Term {
            shift: (self.shifts >> (8 * j)) as i8,
            neg: (self.negs >> j) & 1 != 0,
        }
    }
}

/// A full 256-entry packed term table built at compile time from the
/// [`Terms`] table of the same encoding.
const fn build_packed_table(encoding: Encoding) -> [PackedTerms; 256] {
    let mut table = [PackedTerms {
        shifts: 0,
        negs: 0,
        len: 0,
    }; 256];
    let mut m = 0usize;
    while m < 256 {
        table[m] = PackedTerms::pack(&encode_terms(m as u8, encoding));
        m += 1;
    }
    table
}

/// Precomputed packed canonical signed-digit encodings.
static CSD_PACKED_TABLE: [PackedTerms; 256] = build_packed_table(Encoding::Canonical);

/// Precomputed packed raw bit-serial encodings.
static RAW_PACKED_TABLE: [PackedTerms; 256] = build_packed_table(Encoding::RawBits);

/// The precomputed 256-entry *packed* term table for an encoding — the
/// SWAR counterpart of [`term_table`]. Entry `m` packs exactly the terms
/// of `encode_terms(m, encoding)` (an invariant the exhaustive tests pin),
/// so the two views can never drift.
#[inline]
pub fn packed_term_table(encoding: Encoding) -> &'static [PackedTerms; 256] {
    match encoding {
        Encoding::Canonical => &CSD_PACKED_TABLE,
        Encoding::RawBits => &RAW_PACKED_TABLE,
    }
}

/// Counts the terms a significand encodes to, without materializing them.
///
/// Used by the statistics pipeline when measuring term sparsity (Fig. 1b)
/// over whole tensors.
pub fn term_count(significand: u8, encoding: Encoding) -> u32 {
    match encoding {
        Encoding::RawBits => significand.count_ones(),
        Encoding::Canonical => {
            let mut m = significand as i32;
            let mut n = 0;
            while m != 0 {
                if m & 1 != 0 {
                    m -= 2 - (m & 3);
                    n += 1;
                }
                m >>= 1;
            }
            n
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exhaustive_value_check(encoding: Encoding) {
        for m in 0u16..=255 {
            let t = encode_terms(m as u8, encoding);
            let expect = m as f64 / 128.0;
            assert!(
                (t.value() - expect).abs() < 1e-12,
                "significand {m:#010b} encodes to {:?} = {} (expected {expect})",
                t.as_slice(),
                t.value()
            );
        }
    }

    #[test]
    fn raw_encoding_is_exact_for_all_significands() {
        exhaustive_value_check(Encoding::RawBits);
    }

    #[test]
    fn csd_encoding_is_exact_for_all_significands() {
        exhaustive_value_check(Encoding::Canonical);
    }

    #[test]
    fn csd_is_nonadjacent_and_no_longer_than_raw() {
        for m in 0u16..=255 {
            let t = encode_csd(m as u8);
            let r = encode_raw(m as u8);
            assert!(t.len() <= r.len(), "CSD longer than raw for {m:#b}");
            for w in t.as_slice().windows(2) {
                assert!(
                    (w[0].shift - w[1].shift).abs() >= 2,
                    "adjacent digits in CSD of {m:#b}: {:?}",
                    t.as_slice()
                );
            }
        }
    }

    #[test]
    fn csd_introduction_example() {
        // Paper Section IV-A: A = 1.1110000 encodes as two terms. (The paper
        // prints (+2^+1, −2^−4); correct CSD is (+2^+1, −2^−3) since
        // 2 − 2^−3 = 1.875 = 1.1110000b. We implement the mathematically
        // correct encoding.)
        let t = encode_csd(0b1111_0000);
        assert_eq!(t.as_slice(), &[Term::new(-1, false), Term::new(3, true)]);
    }

    #[test]
    fn fig5_raw_positions() {
        // Fig. 5 processes A0 = 1.1101 with terms at distances 0, 1, 2, 4.
        let t = encode_raw(0b1110_1000);
        let shifts: Vec<i8> = t.iter().map(|t| t.shift).collect();
        assert_eq!(shifts, vec![0, 1, 2, 4]);
    }

    #[test]
    fn zero_encodes_to_empty() {
        assert!(encode_csd(0).is_empty());
        assert!(encode_raw(0).is_empty());
        assert_eq!(term_count(0, Encoding::Canonical), 0);
    }

    #[test]
    fn terms_are_msb_first() {
        for m in 1u16..=255 {
            for enc in [Encoding::Canonical, Encoding::RawBits] {
                let t = encode_terms(m as u8, enc);
                for w in t.as_slice().windows(2) {
                    assert!(w[0].shift < w[1].shift, "not MSB-first for {m:#b}");
                }
            }
        }
    }

    #[test]
    fn term_count_matches_encoding_len() {
        for m in 0u16..=255 {
            for enc in [Encoding::Canonical, Encoding::RawBits] {
                assert_eq!(
                    term_count(m as u8, enc) as usize,
                    encode_terms(m as u8, enc).len()
                );
            }
        }
    }

    #[test]
    fn csd_is_minimal_weight() {
        // Brute-force minimal signed-digit weight over digits -1/0/+1 at
        // positions 0..=8 for every 8-bit value, compare with CSD length.
        fn min_weight(target: i32) -> u32 {
            // BFS over reachable sums with k terms.
            let mut best = u32::MAX;
            // There are 3^9 digit vectors; enumerate cheaply.
            for mask in 0..3i32.pow(9) {
                let mut v = mask;
                let mut sum = 0i32;
                let mut w = 0u32;
                for p in 0..9 {
                    let d = v % 3;
                    v /= 3;
                    match d {
                        1 => {
                            sum += 1 << p;
                            w += 1;
                        }
                        2 => {
                            sum -= 1 << p;
                            w += 1;
                        }
                        _ => {}
                    }
                }
                if sum == target && w < best {
                    best = w;
                }
            }
            best
        }
        for m in [0u8, 1, 85, 170, 255, 0b1111_0000, 0b1011_0111, 127] {
            assert_eq!(
                encode_csd(m).len() as u32,
                min_weight(m as i32),
                "CSD not minimal for {m:#b}"
            );
        }
    }

    #[test]
    fn lut_matches_encode_terms_for_all_significands_and_encodings() {
        // The PE fast path replaces per-set `encode_terms` calls with table
        // indexing; this pins every entry of both tables to the computed
        // encoding, so the two can never drift.
        for m in 0u16..=255 {
            for enc in [Encoding::Canonical, Encoding::RawBits] {
                assert_eq!(
                    *lut_terms(m as u8, enc),
                    encode_terms(m as u8, enc),
                    "LUT entry differs from encode_terms for {m:#010b} under {enc:?}"
                );
                assert_eq!(
                    term_table(enc)[m as usize],
                    encode_terms(m as u8, enc),
                    "table entry differs for {m:#010b} under {enc:?}"
                );
            }
        }
    }

    #[test]
    fn lut_zero_entry_is_empty() {
        assert!(lut_terms(0, Encoding::Canonical).is_empty());
        assert!(lut_terms(0, Encoding::RawBits).is_empty());
    }

    #[test]
    fn packed_table_matches_encode_terms_for_all_significands() {
        // The SWAR datapath streams the packed tables; every entry must
        // unpack to exactly the terms `encode_terms` derives.
        for m in 0u16..=255 {
            for enc in [Encoding::Canonical, Encoding::RawBits] {
                let t = encode_terms(m as u8, enc);
                let p = packed_term_table(enc)[m as usize];
                assert_eq!(p.len as usize, t.len(), "{m:#010b} under {enc:?}");
                for (j, &term) in t.iter().enumerate() {
                    assert_eq!(p.term(j), term, "term {j} of {m:#010b} under {enc:?}");
                }
                // Bytes beyond `len` are zero, so shifting the word right
                // as terms are consumed never exposes stale shifts.
                if t.len() < 8 {
                    assert_eq!(p.shifts >> (8 * t.len()), 0, "{m:#010b}");
                    assert_eq!(p.negs >> t.len(), 0, "{m:#010b}");
                }
            }
        }
    }

    #[test]
    fn packed_streaming_consumes_terms_msb_first() {
        // Advancing the packed view with shifts is equivalent to walking
        // the slice: low byte = current shift, bit 0 = current sign.
        let t = encode_csd(0b1011_0111);
        let mut p = PackedTerms::pack(&t);
        for term in t.iter() {
            assert_eq!(p.shifts as i8, term.shift);
            assert_eq!(p.negs & 1 != 0, term.neg);
            p.shifts >>= 8;
            p.negs >>= 1;
            p.len -= 1;
        }
        assert_eq!(p, PackedTerms::default());
    }

    #[test]
    #[should_panic(expected = "term index out of range")]
    fn packed_term_index_out_of_range_panics() {
        let p = PackedTerms::pack(&encode_csd(0x80));
        let _ = p.term(1);
    }

    #[test]
    fn terms_from_iterator_round_trips() {
        let t = encode_csd(0b1010_1010);
        let u: Terms = t.iter().copied().collect();
        assert_eq!(t, u);
    }

    #[test]
    #[should_panic(expected = "term sequence overflow")]
    fn push_overflow_panics() {
        let mut t = Terms::EMPTY;
        for i in 0..=MAX_TERMS {
            t.push(Term::new(i as i8, false));
        }
    }

    #[test]
    fn display_formats_sign_and_power() {
        assert_eq!(Term::new(3, true).to_string(), "-2^-3");
        assert_eq!(Term::new(-1, false).to_string(), "+2^1");
    }
}
