//! The PE's extended-precision accumulator and chunk-based accumulation.
//!
//! From Section IV-A of the paper: "The accumulator has an extended 13b
//! significand; 1b for the leading 1 (hidden), 9b for extended precision
//! following the chunk-based accumulation scheme as suggested by Sakr et
//! al. with a chunk-size of 64, plus 3b for rounding to nearest even. It has
//! 3 additional integer bits following the hidden bit so that it can fit the
//! worst case carry out from accumulating 8 products. In total the
//! accumulator has 16b, 4 integer, and 12 fractional."
//!
//! [`Accumulator`] models that register as a signed mantissa plus an
//! exponent: `value = mantissa * 2^(exponent - frac_bits)`. Every right shift
//! (operand alignment, accumulator alignment to a larger `emax`, and
//! normalization) applies round-to-nearest-even to the bits shifted out,
//! mirroring the hardware's RNE shifters.
//!
//! The *out-of-bounds threshold* θ decides which term alignments `k` can
//! still affect the register: a term whose aligned position satisfies
//! `k > θ` lies entirely below the fractional window and is skipped
//! (Section IV-A, "skipping out-of-bounds terms"). θ defaults to the
//! fractional width (12) and is configurable per layer, which is how the
//! per-layer accumulator-width study (Fig. 21) is modelled.

use crate::bf16::Bf16;

/// Shifts `v` right by `sh` bits, rounding to nearest even (ties to even),
/// operating on the magnitude so negative values round symmetrically.
///
/// `sh == 0` returns `v` unchanged; `sh >= 63` returns the rounded-to-zero
/// or ±1 result depending on magnitude.
///
/// # Example
///
/// ```
/// use fpraker_num::round_shift_rne;
///
/// assert_eq!(round_shift_rne(0b1011, 2), 0b11);  // 2.75 -> 3
/// assert_eq!(round_shift_rne(0b1010, 2), 0b10);  // 2.5 -> 2 (ties to even)
/// assert_eq!(round_shift_rne(0b1110, 2), 0b100); // 3.5 -> 4 (ties to even)
/// assert_eq!(round_shift_rne(-0b1010, 2), -0b10);
/// ```
#[inline]
pub fn round_shift_rne(v: i64, sh: u32) -> i64 {
    if sh == 0 || v == 0 {
        return v;
    }
    let neg = v < 0;
    let mag = v.unsigned_abs();
    let rounded = if sh >= 64 {
        0
    } else {
        let floor = mag >> sh;
        let rem = mag & ((1u64 << sh) - 1);
        let half = 1u64 << (sh - 1);
        if rem > half || (rem == half && floor & 1 == 1) {
            floor + 1
        } else {
            floor
        }
    };
    if neg {
        -(rounded as i64)
    } else {
        rounded as i64
    }
}

/// Static configuration of an [`Accumulator`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct AccumConfig {
    /// Fractional bits below the hidden-one position (paper: 12).
    pub frac_bits: u32,
    /// Integer bits including the hidden one (paper: 4 = hidden + 3 carry).
    pub int_bits: u32,
    /// Out-of-bounds threshold θ: a term aligned at `k > θ` cannot affect
    /// the register and is skipped. The paper sets θ to the fractional width
    /// (12); smaller values model narrower per-layer accumulators (Fig. 21).
    pub ob_threshold: i32,
}

impl AccumConfig {
    /// The paper's configuration: 4 integer bits, 12 fractional bits,
    /// θ = 12.
    pub const fn paper() -> Self {
        AccumConfig {
            frac_bits: 12,
            int_bits: 4,
            ob_threshold: 12,
        }
    }

    /// The paper's register geometry with a custom out-of-bounds threshold
    /// (the "dynamic bit-width accumulator" of Section IV-A / Fig. 21).
    pub const fn with_threshold(ob_threshold: i32) -> Self {
        AccumConfig {
            ob_threshold,
            ..Self::paper()
        }
    }
}

impl Default for AccumConfig {
    fn default() -> Self {
        Self::paper()
    }
}

/// The extended-precision accumulator register of a PE output lane.
///
/// Represents `mantissa() * 2^(exponent() - frac_bits)`. The mantissa is
/// kept normalized between sets (`2^frac <= |m| < 2^(frac+1)`), with the
/// hidden one at bit `frac_bits`.
///
/// # Example
///
/// ```
/// use fpraker_num::{Accumulator, AccumConfig, Bf16};
///
/// let mut acc = Accumulator::new(AccumConfig::paper());
/// // Accumulate 1.5 * 2^0 expressed as a scaled integer: 3 * 2^-1.
/// acc.add_scaled(false, 3, -1);
/// acc.normalize();
/// assert_eq!(acc.read_bf16(), Bf16::from_f32(1.5));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Accumulator {
    cfg: AccumConfig,
    /// Signed mantissa; LSB weight is `2^(eacc - frac_bits)`.
    mant: i64,
    /// Exponent of the hidden-one position. Meaningless while `mant == 0`.
    eacc: i32,
}

impl Accumulator {
    /// Creates a zeroed accumulator.
    pub fn new(cfg: AccumConfig) -> Self {
        Accumulator {
            cfg,
            mant: 0,
            eacc: i32::MIN / 2,
        }
    }

    /// The configuration this accumulator was built with.
    #[inline]
    pub fn config(&self) -> AccumConfig {
        self.cfg
    }

    /// Clears the register to zero.
    pub fn reset(&mut self) {
        self.mant = 0;
        self.eacc = i32::MIN / 2;
    }

    /// `true` if the register holds zero.
    #[inline]
    pub fn is_zero(&self) -> bool {
        self.mant == 0
    }

    /// The current accumulator exponent (`eacc` in the paper). For a zero
    /// register this is a very small sentinel so that `max` against product
    /// exponents behaves correctly.
    #[inline]
    pub fn exponent(&self) -> i32 {
        self.eacc
    }

    /// The signed mantissa, in units of `2^(exponent() - frac_bits)`.
    #[inline]
    pub fn mantissa(&self) -> i64 {
        self.mant
    }

    /// `true` if a term aligned at distance `k` below the accumulator's
    /// hidden position lies outside the precision window (`k > θ`): the term
    /// and — because terms are processed most-significant first — every
    /// later term of the same operand cannot affect the register.
    #[inline]
    pub fn is_out_of_bounds(&self, k: i32) -> bool {
        k > self.cfg.ob_threshold
    }

    /// Begins a new set of products: computes `emax` (the maximum of the
    /// accumulator exponent and the largest product exponent), aligns the
    /// register to it (right shift with RNE — the `acc_shift` path in
    /// Fig. 3), and returns it.
    #[inline]
    pub fn begin_set(&mut self, max_product_exp: i32) -> i32 {
        if self.mant == 0 {
            self.eacc = max_product_exp;
            return max_product_exp;
        }
        let emax = self.eacc.max(max_product_exp);
        let sh = emax - self.eacc;
        if sh > 0 {
            self.mant = round_shift_rne(self.mant, sh as u32);
            self.eacc = emax;
        }
        emax
    }

    /// Adds `±sig * 2^pow` into the register. Bits of the operand that fall
    /// below the register's least-significant bit are rounded in with RNE,
    /// matching the hardware's per-operand rounding shifters.
    ///
    /// This is the primitive both the term-serial PE (8-bit `Bm` shifted by
    /// `k`) and the bit-parallel baseline (16-bit full product) build on.
    #[inline]
    pub fn add_scaled(&mut self, neg: bool, sig: u64, pow: i32) {
        if sig == 0 {
            return;
        }
        debug_assert!(sig < (1 << 32), "operand significand too wide");
        if self.mant == 0 {
            // Empty register: adopt an exponent that places the operand's
            // MSB at the hidden position.
            let msb = 63 - sig.leading_zeros() as i32;
            self.eacc = pow + msb;
        }
        let lsb_weight = self.eacc - self.cfg.frac_bits as i32;
        let sh = pow - lsb_weight;
        let signed = if neg { -(sig as i64) } else { sig as i64 };
        let contrib = if sh >= 0 {
            debug_assert!(sh < 62, "contribution alignment overflow (sh={sh})");
            signed << sh
        } else {
            round_shift_rne(signed, (-sh) as u32)
        };
        self.mant += contrib;
    }

    /// Commits a batch of pre-aligned contributions in one mantissa update.
    ///
    /// `delta` must be the exact integer sum of contributions that
    /// [`Accumulator::add_scaled`] would have added one by one — each
    /// already aligned (and RNE-rounded) to the register's current LSB
    /// weight — under the guarantee that no individual add would have hit
    /// an empty register with a different adoption exponent (integer
    /// addition is associative, so the fold is then bit-identical to the
    /// sequential adds). The PE's SWAR datapath uses this to retire a whole
    /// cycle's issued lanes with a single register update; it falls back to
    /// per-lane [`Accumulator::add_scaled`] whenever the guarantee cannot
    /// be established.
    #[inline]
    pub fn add_batched(&mut self, delta: i64) {
        self.mant += delta;
    }

    /// Commits a batch whose first contribution landed on an empty
    /// register: the register adopts `exponent` (what the first
    /// [`Accumulator::add_scaled`] of the sequence would have adopted) and
    /// `mant` must be the exact fold of every contribution, each aligned
    /// (and RNE-rounded) against that adopted exponent. The caller owns
    /// the same associativity guarantee as [`Accumulator::add_batched`].
    ///
    /// # Panics
    ///
    /// Debug-asserts that the register is actually empty.
    #[inline]
    pub fn set_batched(&mut self, mant: i64, exponent: i32) {
        debug_assert_eq!(self.mant, 0, "set_batched needs an empty register");
        self.mant = mant;
        self.eacc = exponent;
    }

    /// Adds the contents of another extended register (used when folding a
    /// chunk partial sum into the running total — Sakr et al.'s chunked
    /// accumulation).
    pub fn add_extended(&mut self, mant: i64, exponent: i32) {
        if mant == 0 {
            return;
        }
        let neg = mant < 0;
        let mag = mant.unsigned_abs();
        self.add_scaled(neg, mag, exponent - self.cfg.frac_bits as i32);
    }

    /// Renormalizes so the leading one sits at the hidden position, with RNE
    /// on any right shift (the paper normalizes and rounds the register at
    /// each accumulation step).
    #[inline]
    pub fn normalize(&mut self) {
        if self.mant == 0 {
            self.eacc = i32::MIN / 2;
            return;
        }
        let frac = self.cfg.frac_bits as i32;
        loop {
            let msb = 63 - self.mant.unsigned_abs().leading_zeros() as i32;
            let delta = msb - frac;
            if delta > 0 {
                self.mant = round_shift_rne(self.mant, delta as u32);
                self.eacc += delta;
                // Rounding can carry out (e.g. 0b111...1 -> 0b1000...0);
                // loop to fix up.
                if 63 - self.mant.unsigned_abs().leading_zeros() as i32 == frac {
                    break;
                }
            } else if delta < 0 {
                self.mant <<= -delta;
                self.eacc += delta;
                break;
            } else {
                break;
            }
        }
    }

    /// Reads the register out as bfloat16 (7-bit significand, RNE), the
    /// format written back to memory. Does not modify the register.
    pub fn read_bf16(&self) -> Bf16 {
        let mut tmp = *self;
        tmp.normalize();
        if tmp.mant == 0 {
            return Bf16::ZERO;
        }
        let neg = tmp.mant < 0;
        let frac = tmp.cfg.frac_bits as i32;
        // Normalized: |mant| in [2^frac, 2^(frac+1)); need 8 significand bits.
        let sh = frac - 7;
        let mut sig = round_shift_rne(tmp.mant.abs(), sh.max(0) as u32);
        let mut exp = tmp.eacc;
        if sig == 0x100 {
            sig = 0x80;
            exp += 1;
        }
        debug_assert!((0x80..0x100).contains(&sig));
        Bf16::from_parts(neg, exp, sig as u8)
    }

    /// The register's exact numeric value, for tests and golden checking.
    pub fn value_f64(&self) -> f64 {
        if self.mant == 0 {
            return 0.0;
        }
        self.mant as f64 * 2f64.powi(self.eacc - self.cfg.frac_bits as i32)
    }
}

/// Chunk-based accumulation (Sakr et al. \[69\], chunk size 64): long dot
/// products accumulate into an inner extended register, which is folded into
/// an outer register every `chunk_size` MACs. Both the FPRaker PE and the
/// bit-parallel baseline use this scheme, so their numerics match.
///
/// # Example
///
/// ```
/// use fpraker_num::{AccumConfig, Bf16, ChunkedAccumulator};
///
/// let mut acc = ChunkedAccumulator::new(AccumConfig::paper(), 64);
/// for _ in 0..128 {
///     acc.inner_mut().add_scaled(false, 1, 0); // += 1.0
///     acc.count_macs(1);
/// }
/// assert_eq!(acc.finish(), Bf16::from_f32(128.0));
/// ```
#[derive(Clone, Copy, Debug)]
pub struct ChunkedAccumulator {
    inner: Accumulator,
    outer: Accumulator,
    chunk_size: u32,
    macs_in_chunk: u32,
}

impl ChunkedAccumulator {
    /// Creates a chunked accumulator. `chunk_size` is in MAC operations
    /// (the paper uses 64).
    ///
    /// # Panics
    ///
    /// Panics if `chunk_size` is zero.
    pub fn new(cfg: AccumConfig, chunk_size: u32) -> Self {
        assert!(chunk_size > 0, "chunk size must be positive");
        ChunkedAccumulator {
            inner: Accumulator::new(cfg),
            outer: Accumulator::new(cfg),
            chunk_size,
            macs_in_chunk: 0,
        }
    }

    /// The paper's configuration (12 fractional bits, chunk of 64).
    pub fn paper() -> Self {
        Self::new(AccumConfig::paper(), 64)
    }

    /// Access to the inner (per-chunk) register, where products accumulate.
    #[inline]
    pub fn inner_mut(&mut self) -> &mut Accumulator {
        &mut self.inner
    }

    /// Read-only access to the inner register.
    #[inline]
    pub fn inner(&self) -> &Accumulator {
        &self.inner
    }

    /// Records `n` MAC operations; folds the chunk into the outer register
    /// when the chunk boundary is crossed.
    #[inline]
    pub fn count_macs(&mut self, n: u32) {
        self.macs_in_chunk += n;
        if self.macs_in_chunk >= self.chunk_size {
            self.fold();
        }
    }

    /// Folds the inner register into the outer one and clears it.
    pub fn fold(&mut self) {
        self.inner.normalize();
        self.outer
            .add_extended(self.inner.mantissa(), self.inner.exponent());
        self.outer.normalize();
        self.inner.reset();
        self.macs_in_chunk = 0;
    }

    /// Clears both registers.
    pub fn reset(&mut self) {
        self.inner.reset();
        self.outer.reset();
        self.macs_in_chunk = 0;
    }

    /// Folds any residue and reads the total as bfloat16.
    pub fn finish(&mut self) -> Bf16 {
        self.fold();
        self.outer.read_bf16()
    }

    /// The exact current total, for tests.
    pub fn value_f64(&self) -> f64 {
        self.inner.value_f64() + self.outer.value_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rne_shift_basics() {
        assert_eq!(round_shift_rne(0, 5), 0);
        assert_eq!(round_shift_rne(7, 0), 7);
        assert_eq!(round_shift_rne(1, 64), 0);
        assert_eq!(round_shift_rne(0b101, 1), 0b10); // 2.5 -> 2
        assert_eq!(round_shift_rne(0b111, 1), 0b100); // 3.5 -> 4
        assert_eq!(round_shift_rne(-0b101, 1), -0b10);
        assert_eq!(round_shift_rne(-0b111, 1), -0b100);
    }

    #[test]
    fn single_product_reads_back_exactly() {
        // Any bf16 value accumulated alone must read back exactly.
        for bits in [0x3FC0u16, 0x0080, 0x7F7F, 0xC1A0, 0x3F80] {
            let x = Bf16::from_bits(bits);
            let mut acc = Accumulator::new(AccumConfig::paper());
            acc.add_scaled(x.sign(), x.significand() as u64, x.exponent() - 7);
            acc.normalize();
            assert_eq!(acc.read_bf16(), x, "bits {bits:#06x}");
        }
    }

    #[test]
    fn accumulates_integers_exactly_within_window() {
        let mut acc = Accumulator::new(AccumConfig::paper());
        for _ in 0..100 {
            acc.add_scaled(false, 1, 0);
            acc.normalize();
        }
        assert_eq!(acc.value_f64(), 100.0);
    }

    #[test]
    fn swamping_small_addend_is_rounded_away() {
        // 2^-64 into 2^64 (the paper's introduction example): the small
        // addend falls entirely below the window and must vanish.
        let mut acc = Accumulator::new(AccumConfig::paper());
        acc.add_scaled(false, 1, 64);
        acc.normalize();
        acc.add_scaled(false, 1, -64);
        acc.normalize();
        assert_eq!(acc.value_f64(), 2f64.powi(64));
    }

    #[test]
    fn cancellation_renormalizes_downward() {
        let mut acc = Accumulator::new(AccumConfig::paper());
        acc.add_scaled(false, 0x180, -8); // 1.5
        acc.add_scaled(true, 0x100, -8); // -1.0
        acc.normalize();
        assert_eq!(acc.value_f64(), 0.5);
        assert_eq!(acc.exponent(), -1);
        assert_eq!(acc.read_bf16(), Bf16::from_f32(0.5));
    }

    #[test]
    fn exact_zero_after_cancellation() {
        let mut acc = Accumulator::new(AccumConfig::paper());
        acc.add_scaled(false, 3, 0);
        acc.add_scaled(true, 3, 0);
        acc.normalize();
        assert!(acc.is_zero());
        assert_eq!(acc.read_bf16(), Bf16::ZERO);
    }

    #[test]
    fn begin_set_aligns_register_upward() {
        let mut acc = Accumulator::new(AccumConfig::paper());
        acc.add_scaled(false, 0x80, -7); // 1.0, eacc = 0
        acc.normalize();
        let emax = acc.begin_set(5);
        assert_eq!(emax, 5);
        assert_eq!(acc.exponent(), 5);
        // Value preserved (1.0 still representable in 12 fractional bits
        // below 2^5).
        assert_eq!(acc.value_f64(), 1.0);
    }

    #[test]
    fn begin_set_keeps_larger_accumulator_exponent() {
        let mut acc = Accumulator::new(AccumConfig::paper());
        acc.add_scaled(false, 0x80, 3); // 2^10
        acc.normalize();
        assert_eq!(acc.begin_set(2), 10);
    }

    #[test]
    fn out_of_bounds_threshold() {
        let acc = Accumulator::new(AccumConfig::paper());
        assert!(!acc.is_out_of_bounds(12));
        assert!(acc.is_out_of_bounds(13));
        let narrow = Accumulator::new(AccumConfig::with_threshold(4));
        assert!(narrow.is_out_of_bounds(5));
        assert!(!narrow.is_out_of_bounds(4));
    }

    #[test]
    fn read_bf16_rounds_to_nearest_even() {
        let mut acc = Accumulator::new(AccumConfig::paper());
        // 1 + 2^-8: halfway between bf16 neighbours 1.0 and 1 + 2^-7.
        acc.add_scaled(false, (1 << 8) + 1, -8);
        acc.normalize();
        assert_eq!(acc.read_bf16(), Bf16::ONE);
        // 1 + 3*2^-8 rounds up to 1 + 2^-6 (even significand).
        let mut acc = Accumulator::new(AccumConfig::paper());
        acc.add_scaled(false, (1 << 8) + 3, -8);
        acc.normalize();
        assert_eq!(acc.read_bf16().to_f32(), 1.0 + 2f32.powi(-6));
    }

    #[test]
    fn readout_carry_propagates_to_exponent() {
        // Value just below 2.0 that rounds up to 2.0 at 7 fraction bits.
        let mut acc = Accumulator::new(AccumConfig::paper());
        acc.add_scaled(false, (1 << 13) - 1, -12); // 1.99975...
        acc.normalize();
        assert_eq!(acc.read_bf16(), Bf16::from_f32(2.0));
    }

    #[test]
    fn chunked_matches_flat_for_exact_sums() {
        let mut chunked = ChunkedAccumulator::new(AccumConfig::paper(), 8);
        let mut flat = Accumulator::new(AccumConfig::paper());
        for i in 1..=32u64 {
            chunked.inner_mut().add_scaled(false, i, -2);
            chunked.count_macs(1);
            flat.add_scaled(false, i, -2);
            flat.normalize();
        }
        let total: f64 = (1..=32).map(|i| i as f64 / 4.0).sum();
        assert_eq!(chunked.value_f64(), total);
        assert_eq!(chunked.finish(), flat.read_bf16());
    }

    #[test]
    fn chunking_reduces_swamping_error() {
        // Sum 4096 copies of 1.0 starting from 2^12: flat extended
        // accumulation loses the ones once the register exponent grows;
        // chunked accumulation preserves them chunk by chunk.
        let n = 4096;
        let mut chunked = ChunkedAccumulator::new(AccumConfig::paper(), 64);
        let mut flat = Accumulator::new(AccumConfig::paper());
        flat.add_scaled(false, 0x80, 12 - 7);
        flat.normalize();
        chunked.inner_mut().add_scaled(false, 0x80, 12 - 7);
        chunked.count_macs(1);
        for _ in 0..n {
            flat.begin_set(0);
            flat.add_scaled(false, 0x80, -7);
            flat.normalize();
            chunked.inner_mut().begin_set(0);
            chunked.inner_mut().add_scaled(false, 0x80, -7);
            chunked.inner_mut().normalize();
            chunked.count_macs(1);
        }
        let exact = 2f64.powi(12) + n as f64;
        let err_chunked = (chunked.value_f64() - exact).abs();
        let err_flat = (flat.value_f64() - exact).abs();
        assert!(
            err_chunked <= err_flat,
            "chunked {err_chunked} vs flat {err_flat}"
        );
    }

    #[test]
    #[should_panic(expected = "chunk size must be positive")]
    fn zero_chunk_size_panics() {
        let _ = ChunkedAccumulator::new(AccumConfig::paper(), 0);
    }

    #[test]
    fn add_batched_matches_sequential_adds() {
        // Contributions pre-aligned to the register's LSB weight, summed
        // and committed in one update, must equal the one-by-one adds.
        let mut seq = Accumulator::new(AccumConfig::paper());
        seq.add_scaled(false, 0x90, -7);
        seq.normalize();
        let mut batched = seq;
        let contribs: [i64; 3] = [5 << 3, -(7 << 2), 9];
        for &c in &contribs {
            seq.add_batched(c);
        }
        batched.add_batched(contribs.iter().sum());
        assert_eq!(seq, batched);
    }

    #[test]
    fn add_extended_is_symmetric_with_value() {
        let mut a = Accumulator::new(AccumConfig::paper());
        a.add_scaled(false, 0xAB, -3);
        a.normalize();
        let mut b = Accumulator::new(AccumConfig::paper());
        b.add_extended(a.mantissa(), a.exponent());
        b.normalize();
        assert_eq!(a.value_f64(), b.value_f64());
    }
}
