//! Exact reference arithmetic used for golden-value checking and test
//! error bounds.
//!
//! The paper's simulator "models value transfers and computation in time
//! faithfully and checks the produced values for correctness against the
//! golden values" (Section V-A). Our golden values come from `f64`
//! arithmetic — exact for any realistic dot-product length of bfloat16
//! inputs (8-bit significands leave 45 bits of slack in an `f64`).

use crate::bf16::Bf16;

/// Exact dot product of two bfloat16 slices in `f64`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn dot_f64(a: &[Bf16], b: &[Bf16]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot product length mismatch");
    a.iter()
        .zip(b)
        .map(|(&x, &y)| x.to_f64() * y.to_f64())
        .sum()
}

/// The dot product rounded once to bfloat16 — the "infinitely precise then
/// round" ideal a finite accumulator approximates.
pub fn dot_bf16(a: &[Bf16], b: &[Bf16]) -> Bf16 {
    Bf16::from_f32(dot_f64(a, b) as f32)
}

/// The sum of magnitudes `Σ |a_i * b_i|` — the scale at which a finite
/// accumulator rounds. Error bounds for cancellation-prone dot products
/// must be taken at this scale, not at the (possibly tiny) exact result's.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn dot_magnitude_f64(a: &[Bf16], b: &[Bf16]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot product length mismatch");
    a.iter()
        .zip(b)
        .map(|(&x, &y)| (x.to_f64() * y.to_f64()).abs())
        .sum()
}

/// Absolute error between `measured` and `exact` in units of the bfloat16
/// ULP at the *magnitude* scale `mag` (see [`dot_magnitude_f64`]).
pub fn error_mag_ulps(measured: f64, exact: f64, mag: f64) -> f64 {
    (measured - exact).abs() / ulp_bf16(mag)
}

/// The magnitude of one bfloat16 unit-in-the-last-place at the scale of
/// `x` (for a zero `x`, the smallest positive normal's ULP is returned).
pub fn ulp_bf16(x: f64) -> f64 {
    if x == 0.0 {
        return 2f64.powi(-126 - 7);
    }
    let e = x.abs().log2().floor() as i32;
    2f64.powi(e - 7)
}

/// Absolute error between `measured` and `exact`, in units of the bfloat16
/// ULP at the exact value's scale. Tests use this to bound accumulator
/// error independent of magnitude.
pub fn error_ulps(measured: f64, exact: f64) -> f64 {
    (measured - exact).abs() / ulp_bf16(exact)
}

/// A reproducible xorshift64* pseudo-random generator for tests and
/// deterministic workload generation where pulling in `rand` is not
/// warranted (e.g. doctests and the trace codec's fuzz seeds).
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 {
            state: seed.wrapping_add(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * 2f64.powi(-53)
    }

    /// Uniform `f32` in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f32, hi: f32) -> f32 {
        lo + (hi - lo) * self.next_f64() as f32
    }

    /// Approximately standard-normal `f32` (sum of uniforms).
    pub fn normal(&mut self) -> f32 {
        let mut s = 0.0f64;
        for _ in 0..12 {
            s += self.next_f64();
        }
        (s - 6.0) as f32
    }

    /// A random finite bfloat16 with exponent confined to `[-eexp, eexp]`,
    /// convenient for arithmetic property tests.
    pub fn bf16_in_range(&mut self, eexp: i32) -> Bf16 {
        let sign = self.next_u64() & 1 == 1;
        let exp = (self.next_u64() % (2 * eexp as u64 + 1)) as i32 - eexp;
        let sig = 0x80 | (self.next_u64() & 0x7F) as u8;
        Bf16::from_parts(sign, exp, sig)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_of_ones() {
        let a = vec![Bf16::ONE; 16];
        let b = vec![Bf16::ONE; 16];
        assert_eq!(dot_f64(&a, &b), 16.0);
        assert_eq!(dot_bf16(&a, &b), Bf16::from_f32(16.0));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_length_mismatch_panics() {
        let _ = dot_f64(&[Bf16::ONE], &[]);
    }

    #[test]
    fn ulp_scales_with_exponent() {
        assert_eq!(ulp_bf16(1.0), 2f64.powi(-7));
        assert_eq!(ulp_bf16(2.0), 2f64.powi(-6));
        assert_eq!(ulp_bf16(-4.0), 2f64.powi(-5));
        assert!(ulp_bf16(0.0) > 0.0);
    }

    #[test]
    fn error_ulps_is_zero_for_exact() {
        assert_eq!(error_ulps(3.0, 3.0), 0.0);
        assert_eq!(error_ulps(1.0 + 2f64.powi(-7), 1.0), 1.0);
    }

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let f = a.next_f64();
        assert!((0.0..1.0).contains(&f));
    }

    #[test]
    fn bf16_in_range_respects_bounds() {
        let mut rng = SplitMix64::new(7);
        for _ in 0..100 {
            let x = rng.bf16_in_range(4);
            assert!(!x.is_zero());
            assert!((-4..=4).contains(&x.exponent()));
        }
    }
}
