//! Numerics substrate for the FPRaker reproduction.
//!
//! This crate provides the floating-point machinery that both the FPRaker
//! processing element (`fpraker-core`) and the bit-parallel baseline build
//! on:
//!
//! * [`Bf16`] — a software bfloat16 (1 sign, 8 exponent, 7 fraction bits,
//!   no denormal support, round-to-nearest-even), the storage format used by
//!   the accelerator in the paper (Section IV-A).
//! * [`encode`] — conversion of a normalized significand into a series of
//!   signed powers of two ("terms"), either canonical signed-digit (Booth
//!   style, the paper's default) or raw bit positions.
//! * [`Accumulator`] — the extended-precision accumulator register of the PE:
//!   4 integer + 12 fractional bits, round-to-nearest-even on every shift,
//!   out-of-bounds detection for term skipping.
//! * [`ChunkedAccumulator`] — chunk-based accumulation (Sakr et al., chunk
//!   size 64) used by both FPRaker and the baseline MAC unit.
//! * [`mod@reference`] — exact `f64` reference arithmetic used by tests and the
//!   simulator's golden-value checking.
//!
//! # Example
//!
//! ```
//! use fpraker_num::{Bf16, encode::{encode_terms, Encoding}};
//!
//! let a = Bf16::from_f32(1.875); // significand 1.1110000
//! let terms = encode_terms(a.significand(), Encoding::Canonical);
//! // 1.875 = 2 - 0.125: two terms instead of four bits.
//! assert_eq!(terms.len(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod accum;
mod bf16;
pub mod encode;
pub mod reference;

pub use accum::{round_shift_rne, AccumConfig, Accumulator, ChunkedAccumulator};
pub use bf16::{Bf16, EXP_BIAS, FRAC_BITS};
