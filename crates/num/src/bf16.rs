//! Software bfloat16 ("brain floating point").
//!
//! The paper stores all tensors in memory as bfloat16 (Section IV-A): 1 sign
//! bit, 8 exponent bits (bias 127) and a normalized 7-bit significand with an
//! implied leading one. Denormals are not supported (flushed to zero), as in
//! the bfloat16 hardware the paper cites [53].

use std::fmt;

/// A bfloat16 value: the 16 most-significant bits of an IEEE-754 `f32`.
///
/// Denormal inputs are flushed to zero on construction, matching the paper's
/// assumption that "the MSBs of the activations are guaranteed to be one
/// (given denormals are not supported)".
///
/// # Example
///
/// ```
/// use fpraker_num::Bf16;
///
/// let x = Bf16::from_f32(3.14);
/// assert!((x.to_f32() - 3.14).abs() < 0.02);
/// assert_eq!(Bf16::from_f32(0.0), Bf16::ZERO);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Bf16(u16);

/// Exponent bias of the bfloat16 format.
pub const EXP_BIAS: i32 = 127;
/// Number of explicit fraction bits.
pub const FRAC_BITS: u32 = 7;
/// Biased exponent value reserved for infinities and NaNs.
const EXP_SPECIAL: u16 = 0xFF;

impl Bf16 {
    /// Positive zero.
    pub const ZERO: Bf16 = Bf16(0x0000);
    /// Negative zero.
    pub const NEG_ZERO: Bf16 = Bf16(0x8000);
    /// One.
    pub const ONE: Bf16 = Bf16(0x3F80);
    /// Negative one.
    pub const NEG_ONE: Bf16 = Bf16(0xBF80);
    /// Largest finite value (`(2 - 2^-7) * 2^127`).
    pub const MAX: Bf16 = Bf16(0x7F7F);
    /// Smallest positive normal value (`2^-126`).
    pub const MIN_POSITIVE: Bf16 = Bf16(0x0080);
    /// Positive infinity.
    pub const INFINITY: Bf16 = Bf16(0x7F80);
    /// Negative infinity.
    pub const NEG_INFINITY: Bf16 = Bf16(0xFF80);
    /// A quiet NaN.
    pub const NAN: Bf16 = Bf16(0x7FC0);

    /// Creates a value from its raw bit pattern.
    ///
    /// Denormal bit patterns are preserved by this constructor (it is the
    /// identity on bits); use [`Bf16::from_f32`] for flush-to-zero semantics.
    #[inline]
    pub const fn from_bits(bits: u16) -> Self {
        Bf16(bits)
    }

    /// Returns the raw bit pattern.
    #[inline]
    pub const fn to_bits(self) -> u16 {
        self.0
    }

    /// Converts an `f32` to bfloat16 with round-to-nearest-even.
    ///
    /// Denormal results are flushed to (signed) zero; overflow saturates to
    /// the infinity of the appropriate sign; NaN maps to a quiet NaN.
    pub fn from_f32(x: f32) -> Self {
        let bits = x.to_bits();
        if x.is_nan() {
            return Bf16::NAN;
        }
        // Round to nearest even on the low 16 bits.
        let round_bit = 0x0000_8000u32;
        let lsb = (bits >> 16) & 1;
        let rounded = bits.wrapping_add(0x0000_7FFF + lsb);
        // Detect overflow into the exponent is handled naturally: adding the
        // rounding increment may carry into the exponent field which is the
        // correct IEEE behaviour (e.g. 1.9999999 -> 2.0). Saturation to
        // infinity also falls out, except we must not produce NaN from a
        // finite input; the carry can at most reach the infinity encoding.
        let _ = round_bit;
        let mut hi = (rounded >> 16) as u16;
        // Flush denormals (biased exponent 0 with nonzero fraction) to zero.
        if hi & 0x7F80 == 0 {
            hi &= 0x8000;
        }
        Bf16(hi)
    }

    /// Converts to `f32` exactly (every bfloat16 value is representable).
    #[inline]
    pub fn to_f32(self) -> f32 {
        f32::from_bits((self.0 as u32) << 16)
    }

    /// Converts to `f64` exactly.
    #[inline]
    pub fn to_f64(self) -> f64 {
        self.to_f32() as f64
    }

    /// Returns `true` for +0.0 and -0.0 (and, defensively, denormal bit
    /// patterns, which this library treats as zero).
    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 & 0x7F80 == 0
    }

    /// Returns `true` for NaN bit patterns.
    #[inline]
    pub fn is_nan(self) -> bool {
        self.0 & 0x7F80 == 0x7F80 && self.0 & 0x007F != 0
    }

    /// Returns `true` for positive or negative infinity.
    #[inline]
    pub fn is_infinite(self) -> bool {
        self.0 & 0x7FFF == 0x7F80
    }

    /// Returns `true` for zero or normal values (not infinity, not NaN).
    #[inline]
    pub fn is_finite(self) -> bool {
        self.0 & 0x7F80 != 0x7F80
    }

    /// The sign bit: `true` if negative.
    #[inline]
    pub fn sign(self) -> bool {
        self.0 & 0x8000 != 0
    }

    /// The biased 8-bit exponent field.
    #[inline]
    pub fn biased_exponent(self) -> u8 {
        ((self.0 >> 7) & 0xFF) as u8
    }

    /// The unbiased exponent, i.e. `e` such that the value is
    /// `±1.f * 2^e`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the value is zero, infinite or NaN (those
    /// have no meaningful unbiased exponent).
    #[inline]
    pub fn exponent(self) -> i32 {
        debug_assert!(!self.is_zero() && self.is_finite());
        self.biased_exponent() as i32 - EXP_BIAS
    }

    /// The 8-bit significand including the implied leading one
    /// (`1xxxxxxx`, i.e. value `significand() / 128`), or 0 for zero.
    ///
    /// This is the integer the PE's term encoder consumes.
    #[inline]
    pub fn significand(self) -> u8 {
        if self.is_zero() {
            0
        } else {
            0x80 | (self.0 & 0x7F) as u8
        }
    }

    /// The 7 explicit fraction bits.
    #[inline]
    pub fn fraction(self) -> u8 {
        (self.0 & 0x7F) as u8
    }

    /// Assembles a bfloat16 from sign, unbiased exponent and an 8-bit
    /// significand in `[128, 255]` (or 0 for zero).
    ///
    /// Out-of-range exponents saturate to zero / infinity.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `significand` is in `1..=127` (not
    /// normalized).
    pub fn from_parts(sign: bool, exponent: i32, significand: u8) -> Self {
        debug_assert!(significand == 0 || significand >= 0x80);
        let s = if sign { 0x8000u16 } else { 0 };
        if significand == 0 {
            return Bf16(s);
        }
        let biased = exponent + EXP_BIAS;
        if biased <= 0 {
            return Bf16(s); // flush to zero
        }
        if biased >= EXP_SPECIAL as i32 {
            return Bf16(s | 0x7F80); // saturate to infinity
        }
        Bf16(s | ((biased as u16) << 7) | (significand as u16 & 0x7F))
    }

    /// Negation (flips the sign bit). Also available as the unary `-`
    /// operator.
    #[allow(clippy::should_implement_trait)]
    #[inline]
    pub fn neg(self) -> Self {
        Bf16(self.0 ^ 0x8000)
    }

    /// Absolute value (clears the sign bit).
    #[inline]
    pub fn abs(self) -> Self {
        Bf16(self.0 & 0x7FFF)
    }

    /// Rounds a slice of `f32` values to bfloat16.
    pub fn quantize_slice(values: &[f32]) -> Vec<Bf16> {
        values.iter().map(|&v| Bf16::from_f32(v)).collect()
    }

    /// Converts a slice of bfloat16 values to `f32`.
    pub fn dequantize_slice(values: &[Bf16]) -> Vec<f32> {
        values.iter().map(|v| v.to_f32()).collect()
    }
}

impl std::ops::Neg for Bf16 {
    type Output = Bf16;
    fn neg(self) -> Bf16 {
        Bf16::neg(self)
    }
}

impl From<f32> for Bf16 {
    fn from(x: f32) -> Self {
        Bf16::from_f32(x)
    }
}

impl From<Bf16> for f32 {
    fn from(x: Bf16) -> Self {
        x.to_f32()
    }
}

impl PartialOrd for Bf16 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        self.to_f32().partial_cmp(&other.to_f32())
    }
}

impl fmt::Debug for Bf16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bf16({})", self.to_f32())
    }
}

impl fmt::Display for Bf16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.to_f32(), f)
    }
}

impl fmt::LowerHex for Bf16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl fmt::Binary for Bf16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Binary::fmt(&self.0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_exact_values() {
        for v in [0.0f32, 1.0, -1.0, 0.5, 2.0, 1.875, -3.5, 1024.0] {
            assert_eq!(Bf16::from_f32(v).to_f32(), v, "value {v}");
        }
    }

    #[test]
    fn rne_rounding() {
        // 1.0 + 2^-8 is exactly halfway between 1.0 and the next bf16
        // (1 + 2^-7); round to even keeps 1.0.
        let halfway = f32::from_bits(0x3F80_8000);
        assert_eq!(Bf16::from_f32(halfway), Bf16::ONE);
        // 1 + 2^-8 + ulp rounds up.
        let above = f32::from_bits(0x3F80_8001);
        assert_eq!(Bf16::from_f32(above).to_bits(), 0x3F81);
        // 1 + 3*2^-8 is halfway between odd and even; rounds up to even.
        let halfway_odd = f32::from_bits(0x3F81_8000);
        assert_eq!(Bf16::from_f32(halfway_odd).to_bits(), 0x3F82);
    }

    #[test]
    fn denormals_flush_to_zero() {
        let tiny = f32::from_bits(0x0001_0000); // denormal after truncation
        assert!(Bf16::from_f32(tiny).is_zero());
        assert!(Bf16::from_f32(-1.0e-40).is_zero());
        assert!(Bf16::from_f32(-1.0e-40).sign());
    }

    #[test]
    fn overflow_saturates_to_infinity() {
        assert_eq!(Bf16::from_f32(f32::MAX), Bf16::INFINITY);
        assert_eq!(Bf16::from_f32(f32::MIN), Bf16::NEG_INFINITY);
        // Just above the largest bf16 rounds to infinity.
        // Above the round-to-infinity boundary (2 - 2^-8) * 2^127 ~ 3.396e38.
        let x = 3.3965e38f32;
        assert!(Bf16::from_f32(x).is_infinite());
    }

    #[test]
    fn nan_is_preserved() {
        assert!(Bf16::from_f32(f32::NAN).is_nan());
        assert!(!Bf16::INFINITY.is_nan());
        assert!(Bf16::NAN.is_nan());
    }

    #[test]
    fn significand_includes_hidden_bit() {
        let x = Bf16::from_f32(1.875); // 1.1110000
        assert_eq!(x.significand(), 0b1111_0000);
        assert_eq!(x.exponent(), 0);
        let y = Bf16::from_f32(6.0); // 1.5 * 2^2
        assert_eq!(y.significand(), 0b1100_0000);
        assert_eq!(y.exponent(), 2);
        assert_eq!(Bf16::ZERO.significand(), 0);
    }

    #[test]
    fn from_parts_round_trip() {
        for bits in 0u16..=u16::MAX {
            let x = Bf16::from_bits(bits);
            if x.is_zero() || !x.is_finite() {
                continue;
            }
            let y = Bf16::from_parts(x.sign(), x.exponent(), x.significand());
            assert_eq!(x, y, "bits {bits:#06x}");
        }
    }

    #[test]
    fn from_parts_saturates() {
        assert_eq!(Bf16::from_parts(false, 200, 0x80), Bf16::INFINITY);
        assert!(Bf16::from_parts(false, -150, 0x80).is_zero());
        assert_eq!(Bf16::from_parts(true, 0, 0), Bf16::NEG_ZERO);
    }

    #[test]
    fn ordering_matches_f32() {
        let a = Bf16::from_f32(1.5);
        let b = Bf16::from_f32(2.5);
        assert!(a < b);
        assert!(b > a);
    }
}
