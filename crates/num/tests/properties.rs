//! Property-based tests of the numerics substrate.

use fpraker_num::encode::{
    encode_csd, encode_raw, encode_terms, packed_term_table, Encoding, PackedTerms,
};
use fpraker_num::reference::{dot_f64, dot_magnitude_f64, error_mag_ulps};
use fpraker_num::{round_shift_rne, AccumConfig, Accumulator, Bf16, ChunkedAccumulator};
use proptest::prelude::*;

fn arb_bf16() -> impl Strategy<Value = Bf16> {
    // Finite normal values with moderate exponents plus zero.
    prop_oneof![
        1 => Just(Bf16::ZERO),
        8 => (any::<bool>(), -20i32..20, 0u8..128).prop_map(|(s, e, f)| {
            Bf16::from_parts(s, e, 0x80 | f)
        }),
    ]
}

proptest! {
    #[test]
    fn bf16_f32_round_trip_is_idempotent(bits in 0u16..0x7F80) {
        let x = Bf16::from_bits(bits);
        if x.is_finite() {
            let y = Bf16::from_f32(x.to_f32());
            // Denormal patterns flush to zero; all others round-trip.
            if x.is_zero() || x.biased_exponent() > 0 {
                prop_assert_eq!(if x.biased_exponent() == 0 { Bf16::ZERO } else { x }, y);
            }
        }
    }

    #[test]
    fn rne_shift_is_within_half_ulp(v in -(1i64 << 40)..(1i64 << 40), sh in 0u32..20) {
        let r = round_shift_rne(v, sh);
        let exact = v as f64 / 2f64.powi(sh as i32);
        prop_assert!((r as f64 - exact).abs() <= 0.5);
    }

    #[test]
    fn csd_and_raw_encode_the_same_value(m in 0u8..=255) {
        let c = encode_csd(m);
        let r = encode_raw(m);
        prop_assert!((c.value() - r.value()).abs() < 1e-12);
        prop_assert!(c.len() <= r.len());
    }

    #[test]
    fn csd_is_nonadjacent(m in 0u8..=255) {
        let c = encode_csd(m);
        for w in c.as_slice().windows(2) {
            prop_assert!((w[0].shift - w[1].shift).abs() >= 2);
        }
    }

    /// The packed SWAR view agrees term-for-term with the unpacked table,
    /// both by indexed access and by the low-byte streaming discipline the
    /// PE uses (`shifts >>= 8; negs >>= 1`).
    #[test]
    fn packed_table_streams_the_same_terms(m in 0u8..=255, raw in any::<bool>()) {
        let enc = if raw { Encoding::RawBits } else { Encoding::Canonical };
        let terms = encode_terms(m, enc);
        let p = packed_term_table(enc)[m as usize];
        prop_assert_eq!(p, PackedTerms::pack(&terms));
        prop_assert_eq!(p.len as usize, terms.len());
        let mut stream = p;
        for (j, t) in terms.iter().enumerate() {
            prop_assert_eq!(p.term(j), *t);
            prop_assert_eq!(stream.shifts as i8, t.shift);
            prop_assert_eq!(stream.negs & 1 != 0, t.neg);
            stream.shifts >>= 8;
            stream.negs >>= 1;
        }
        // Shift bytes beyond the term count are zero padding.
        prop_assert_eq!(stream.shifts, 0);
    }

    #[test]
    fn single_value_accumulates_exactly(x in arb_bf16()) {
        prop_assume!(!x.is_zero());
        let mut acc = Accumulator::new(AccumConfig::paper());
        acc.add_scaled(x.sign(), x.significand() as u64, x.exponent() - 7);
        acc.normalize();
        prop_assert_eq!(acc.read_bf16(), x);
    }

    #[test]
    fn chunked_accumulation_is_within_one_magnitude_ulp(
        values in prop::collection::vec((arb_bf16(), arb_bf16()), 1..64)
    ) {
        let (a, b): (Vec<Bf16>, Vec<Bf16>) = values.into_iter().unzip();
        let mut acc = ChunkedAccumulator::paper();
        for (&x, &y) in a.iter().zip(&b) {
            if x.is_zero() || y.is_zero() { continue; }
            let sig = x.significand() as u64 * y.significand() as u64;
            acc.inner_mut().begin_set(x.exponent() + y.exponent());
            acc.inner_mut().add_scaled(x.sign() ^ y.sign(), sig, x.exponent() + y.exponent() - 14);
            acc.inner_mut().normalize();
            acc.count_macs(1);
        }
        let out = acc.finish();
        let exact = dot_f64(&a, &b);
        let mag = dot_magnitude_f64(&a, &b);
        if mag > 0.0 {
            prop_assert!(error_mag_ulps(out.to_f64(), exact, mag) <= 1.0);
        }
    }

    #[test]
    fn term_count_never_exceeds_popcount_budget(m in 0u8..=255, raw in any::<bool>()) {
        let enc = if raw { Encoding::RawBits } else { Encoding::Canonical };
        let t = encode_terms(m, enc);
        prop_assert!(t.len() <= 8);
        prop_assert!((t.value() - m as f64 / 128.0).abs() < 1e-12);
    }
}
