//! A dense row-major `f32` tensor.
//!
//! Training state (master weights, activations, gradients) lives in `f32`;
//! operands are rounded to bfloat16 at operator boundaries, exactly like the
//! mixed-precision training flows the paper targets (bfloat16 storage with
//! higher-precision master copies).

use std::fmt;

use fpraker_num::Bf16;

/// A dense, row-major tensor of `f32` values.
///
/// # Example
///
/// ```
/// use fpraker_tensor::Tensor;
///
/// let t = Tensor::from_vec(vec![2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
/// assert_eq!(t.dims(), &[2, 3]);
/// assert_eq!(t.at(&[1, 2]), 6.0);
/// assert_eq!(t.len(), 6);
/// ```
#[derive(Clone, PartialEq)]
pub struct Tensor {
    dims: Vec<usize>,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a zero-filled tensor.
    pub fn zeros(dims: Vec<usize>) -> Self {
        let len = dims.iter().product();
        Tensor {
            dims,
            data: vec![0.0; len],
        }
    }

    /// Creates a tensor filled with `value`.
    pub fn full(dims: Vec<usize>, value: f32) -> Self {
        let len = dims.iter().product();
        Tensor {
            dims,
            data: vec![value; len],
        }
    }

    /// Wraps existing data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not match the product of `dims`.
    pub fn from_vec(dims: Vec<usize>, data: Vec<f32>) -> Self {
        assert_eq!(
            dims.iter().product::<usize>(),
            data.len(),
            "shape/data mismatch"
        );
        Tensor { dims, data }
    }

    /// The tensor's dimensions.
    #[inline]
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` if the tensor has no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The underlying data, row-major.
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the underlying data.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its data.
    pub fn into_data(self) -> Vec<f32> {
        self.data
    }

    /// Flat offset of a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if the index rank or any coordinate is out of range.
    pub fn offset(&self, idx: &[usize]) -> usize {
        assert_eq!(idx.len(), self.dims.len(), "index rank mismatch");
        let mut off = 0;
        for (i, (&x, &d)) in idx.iter().zip(&self.dims).enumerate() {
            assert!(x < d, "index {x} out of range for dim {i} (size {d})");
            off = off * d + x;
        }
        off
    }

    /// Element at a multi-dimensional index.
    pub fn at(&self, idx: &[usize]) -> f32 {
        self.data[self.offset(idx)]
    }

    /// Mutable element at a multi-dimensional index.
    pub fn at_mut(&mut self, idx: &[usize]) -> &mut f32 {
        let off = self.offset(idx);
        &mut self.data[off]
    }

    /// Reinterprets the tensor with new dimensions of the same total size.
    ///
    /// # Panics
    ///
    /// Panics if the sizes differ.
    pub fn reshape(mut self, dims: Vec<usize>) -> Self {
        assert_eq!(
            dims.iter().product::<usize>(),
            self.data.len(),
            "reshape size mismatch"
        );
        self.dims = dims;
        self
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Returns a new tensor with `f` applied to every element.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            dims: self.dims.clone(),
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Elementwise combination of two same-shaped tensors.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn zip_map(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        assert_eq!(self.dims, other.dims, "shape mismatch");
        Tensor {
            dims: self.dims.clone(),
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// `self += scale * other`, elementwise.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn add_scaled(&mut self, other: &Tensor, scale: f32) {
        assert_eq!(self.dims, other.dims, "shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += scale * b;
        }
    }

    /// Multiplies every element by `scale`.
    pub fn scale(&mut self, scale: f32) {
        for v in &mut self.data {
            *v *= scale;
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0 for an empty tensor).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Fraction of elements that are exactly zero (the paper's value
    /// sparsity metric, Fig. 1a).
    pub fn zero_fraction(&self) -> f64 {
        if self.data.is_empty() {
            return 0.0;
        }
        let zeros = self.data.iter().filter(|&&v| v == 0.0).count();
        zeros as f64 / self.data.len() as f64
    }

    /// Rounds every element to bfloat16 precision in place (the storage
    /// format of the simulated accelerator).
    pub fn quantize_bf16(&mut self) {
        for v in &mut self.data {
            *v = Bf16::from_f32(*v).to_f32();
        }
    }

    /// The tensor's values rounded to bfloat16.
    pub fn to_bf16(&self) -> Vec<Bf16> {
        self.data.iter().map(|&v| Bf16::from_f32(v)).collect()
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor(dims={:?}", self.dims)?;
        if self.data.len() <= 8 {
            write!(f, ", data={:?})", self.data)
        } else {
            write!(f, ", data=[{} values])", self.data.len())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_indexing() {
        let t = Tensor::from_vec(vec![2, 2, 2], (0..8).map(|i| i as f32).collect());
        assert_eq!(t.at(&[0, 0, 0]), 0.0);
        assert_eq!(t.at(&[1, 0, 1]), 5.0);
        assert_eq!(t.at(&[1, 1, 1]), 7.0);
        assert_eq!(t.offset(&[1, 1, 0]), 6);
    }

    #[test]
    #[should_panic(expected = "shape/data mismatch")]
    fn bad_shape_panics() {
        let _ = Tensor::from_vec(vec![2, 3], vec![0.0; 5]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_index_panics() {
        let t = Tensor::zeros(vec![2, 2]);
        let _ = t.at(&[0, 2]);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec(vec![2, 3], (0..6).map(|i| i as f32).collect());
        let r = t.clone().reshape(vec![3, 2]);
        assert_eq!(r.dims(), &[3, 2]);
        assert_eq!(r.data(), t.data());
    }

    #[test]
    fn map_and_zip_map() {
        let a = Tensor::from_vec(vec![3], vec![1.0, -2.0, 3.0]);
        let b = a.map(|x| x.abs());
        assert_eq!(b.data(), &[1.0, 2.0, 3.0]);
        let c = a.zip_map(&b, |x, y| x + y);
        assert_eq!(c.data(), &[2.0, 0.0, 6.0]);
    }

    #[test]
    fn arithmetic_helpers() {
        let mut a = Tensor::full(vec![4], 1.0);
        let b = Tensor::full(vec![4], 2.0);
        a.add_scaled(&b, 0.5);
        assert_eq!(a.data(), &[2.0; 4]);
        a.scale(2.0);
        assert_eq!(a.sum(), 16.0);
        assert_eq!(a.mean(), 4.0);
    }

    #[test]
    fn zero_fraction_counts_exact_zeros() {
        let t = Tensor::from_vec(vec![4], vec![0.0, 1.0, 0.0, -0.0]);
        assert_eq!(t.zero_fraction(), 0.75);
    }

    #[test]
    fn quantize_bf16_rounds() {
        let mut t = Tensor::from_vec(vec![2], vec![1.0, 1.0 + 2f32.powi(-10)]);
        t.quantize_bf16();
        assert_eq!(t.data(), &[1.0, 1.0]);
        let q = t.to_bf16();
        assert_eq!(q[0], Bf16::ONE);
    }
}
