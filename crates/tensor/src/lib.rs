//! Dense tensor substrate for the FPRaker reproduction.
//!
//! Provides the data structures and linear algebra that the mini training
//! framework (`fpraker-dnn`) and workload generators build on:
//!
//! * [`Tensor`] — a dense row-major `f32` tensor with bfloat16 rounding at
//!   operator boundaries;
//! * [`matmul`] / [`matmul_tn`] / [`matmul_nt`] — the three GEMM
//!   orientations of the training operations (paper Eqs. 1–3);
//! * [`im2col`] / [`col2im`] — convolution lowering to GEMM, the
//!   computation structure the FPRaker tile consumes.
//!
//! # Example
//!
//! ```
//! use fpraker_tensor::{matmul, Tensor};
//!
//! let a = Tensor::from_vec(vec![1, 2], vec![1.0, 2.0]);
//! let b = Tensor::from_vec(vec![2, 1], vec![3.0, 4.0]);
//! assert_eq!(matmul(&a, &b).data(), &[11.0]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod conv;
mod linalg;
mod tensor;

pub use conv::{col2im, im2col, ConvGeom};
pub use linalg::{add_bias_rows, argmax_rows, matmul, matmul_nt, matmul_tn, sum_rows, transpose2d};
pub use tensor::Tensor;

/// Random tensor initialisation helpers.
pub mod init {
    use super::Tensor;
    use rand::Rng;

    /// Kaiming/He-style uniform initialisation for a layer with the given
    /// fan-in: values in `±sqrt(6 / fan_in)`.
    pub fn kaiming_uniform<R: Rng>(rng: &mut R, dims: Vec<usize>, fan_in: usize) -> Tensor {
        let bound = (6.0 / fan_in.max(1) as f32).sqrt();
        let len = dims.iter().product();
        let data = (0..len).map(|_| rng.gen_range(-bound..bound)).collect();
        Tensor::from_vec(dims, data)
    }

    /// Standard-normal initialisation scaled by `std`.
    pub fn normal<R: Rng>(rng: &mut R, dims: Vec<usize>, std: f32) -> Tensor {
        let len = dims.iter().product();
        let data = (0..len)
            .map(|_| {
                // Box-Muller transform.
                let u1: f32 = rng.gen_range(1e-7f32..1.0);
                let u2: f32 = rng.gen_range(0.0f32..1.0);
                std * (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
            })
            .collect();
        Tensor::from_vec(dims, data)
    }
}

#[cfg(test)]
mod init_tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn kaiming_respects_bound() {
        let mut rng = StdRng::seed_from_u64(1);
        let t = init::kaiming_uniform(&mut rng, vec![16, 16], 16);
        let bound = (6.0f32 / 16.0).sqrt();
        assert!(t.data().iter().all(|v| v.abs() <= bound));
        assert!(t.data().iter().any(|v| *v != 0.0));
    }

    #[test]
    fn normal_has_roughly_right_spread() {
        let mut rng = StdRng::seed_from_u64(2);
        let t = init::normal(&mut rng, vec![4096], 0.5);
        let mean = t.mean();
        let var: f32 = t
            .data()
            .iter()
            .map(|v| (v - mean) * (v - mean))
            .sum::<f32>()
            / t.len() as f32;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var.sqrt() - 0.5).abs() < 0.05, "std {}", var.sqrt());
    }
}
