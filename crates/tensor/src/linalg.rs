//! Dense linear algebra: GEMM in the variants training needs.
//!
//! The three training operations (paper Eqs. 1–3) are all GEMMs over
//! differently-oriented operands:
//!
//! * forward:       `Z = I · W`            — [`matmul`]
//! * input grads:   `∂E/∂I = ∂E/∂Z · Wᵀ`   — [`matmul_nt`]
//! * weight grads:  `∂E/∂W = Iᵀ · ∂E/∂Z`   — [`matmul_tn`]

use crate::tensor::Tensor;

fn mm_dims(a: &Tensor, b: &Tensor) -> (usize, usize, usize, usize) {
    assert_eq!(a.dims().len(), 2, "matmul operands must be rank 2");
    assert_eq!(b.dims().len(), 2, "matmul operands must be rank 2");
    (a.dims()[0], a.dims()[1], b.dims()[0], b.dims()[1])
}

/// `C = A · B` for `A: (m, k)`, `B: (k, n)`.
///
/// # Panics
///
/// Panics if operands are not rank 2 or the inner dimensions disagree.
///
/// # Example
///
/// ```
/// use fpraker_tensor::{Tensor, matmul};
///
/// let a = Tensor::from_vec(vec![2, 2], vec![1.0, 2.0, 3.0, 4.0]);
/// let b = Tensor::from_vec(vec![2, 2], vec![5.0, 6.0, 7.0, 8.0]);
/// assert_eq!(matmul(&a, &b).data(), &[19.0, 22.0, 43.0, 50.0]);
/// ```
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, ka, kb, n) = mm_dims(a, b);
    assert_eq!(ka, kb, "inner dimension mismatch: {ka} vs {kb}");
    let k = ka;
    let mut out = vec![0.0f32; m * n];
    let ad = a.data();
    let bd = b.data();
    for i in 0..m {
        for p in 0..k {
            let av = ad[i * k + p];
            if av == 0.0 {
                continue;
            }
            let brow = &bd[p * n..(p + 1) * n];
            let orow = &mut out[i * n..(i + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow) {
                *o += av * bv;
            }
        }
    }
    Tensor::from_vec(vec![m, n], out)
}

/// `C = Aᵀ · B` for `A: (k, m)`, `B: (k, n)` (the weight-gradient GEMM).
///
/// # Panics
///
/// Panics if operands are not rank 2 or the shared dimension disagrees.
pub fn matmul_tn(a: &Tensor, b: &Tensor) -> Tensor {
    let (ka, m, kb, n) = mm_dims(a, b);
    assert_eq!(ka, kb, "shared dimension mismatch: {ka} vs {kb}");
    let mut out = vec![0.0f32; m * n];
    let ad = a.data();
    let bd = b.data();
    for p in 0..ka {
        let arow = &ad[p * m..(p + 1) * m];
        let brow = &bd[p * n..(p + 1) * n];
        for (i, &av) in arow.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let orow = &mut out[i * n..(i + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow) {
                *o += av * bv;
            }
        }
    }
    Tensor::from_vec(vec![m, n], out)
}

/// `C = A · Bᵀ` for `A: (m, k)`, `B: (n, k)` (the input-gradient GEMM).
///
/// # Panics
///
/// Panics if operands are not rank 2 or the shared dimension disagrees.
pub fn matmul_nt(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, ka, n, kb) = mm_dims(a, b);
    assert_eq!(ka, kb, "shared dimension mismatch: {ka} vs {kb}");
    let k = ka;
    let mut out = vec![0.0f32; m * n];
    let ad = a.data();
    let bd = b.data();
    for i in 0..m {
        let arow = &ad[i * k..(i + 1) * k];
        for j in 0..n {
            let brow = &bd[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            for (&x, &y) in arow.iter().zip(brow) {
                acc += x * y;
            }
            out[i * n + j] = acc;
        }
    }
    Tensor::from_vec(vec![m, n], out)
}

/// Transposes a rank-2 tensor.
///
/// # Panics
///
/// Panics if the tensor is not rank 2.
pub fn transpose2d(a: &Tensor) -> Tensor {
    assert_eq!(a.dims().len(), 2, "transpose2d needs rank 2");
    let (m, n) = (a.dims()[0], a.dims()[1]);
    let mut out = vec![0.0f32; m * n];
    let ad = a.data();
    for i in 0..m {
        for j in 0..n {
            out[j * m + i] = ad[i * n + j];
        }
    }
    Tensor::from_vec(vec![n, m], out)
}

/// Adds a length-`n` bias row to every row of an `(m, n)` matrix.
///
/// # Panics
///
/// Panics if shapes disagree.
pub fn add_bias_rows(a: &mut Tensor, bias: &Tensor) {
    assert_eq!(a.dims().len(), 2, "bias add needs rank 2");
    let n = a.dims()[1];
    assert_eq!(bias.len(), n, "bias length mismatch");
    let bd = bias.data().to_vec();
    for row in a.data_mut().chunks_mut(n) {
        for (v, &b) in row.iter_mut().zip(&bd) {
            *v += b;
        }
    }
}

/// Sums an `(m, n)` matrix over its rows, producing a length-`n` vector
/// (bias gradients).
///
/// # Panics
///
/// Panics if the tensor is not rank 2.
pub fn sum_rows(a: &Tensor) -> Tensor {
    assert_eq!(a.dims().len(), 2, "sum_rows needs rank 2");
    let (m, n) = (a.dims()[0], a.dims()[1]);
    let mut out = vec![0.0f32; n];
    for i in 0..m {
        for (j, o) in out.iter_mut().enumerate() {
            *o += a.data()[i * n + j];
        }
    }
    Tensor::from_vec(vec![n], out)
}

/// Row-wise argmax of an `(m, n)` matrix (classification predictions).
///
/// # Panics
///
/// Panics if the tensor is not rank 2 or has zero columns.
pub fn argmax_rows(a: &Tensor) -> Vec<usize> {
    assert_eq!(a.dims().len(), 2, "argmax_rows needs rank 2");
    let n = a.dims()[1];
    assert!(n > 0, "argmax of empty rows");
    a.data()
        .chunks(n)
        .map(|row| {
            row.iter()
                .enumerate()
                .max_by(|x, y| x.1.partial_cmp(y.1).unwrap())
                .map(|(i, _)| i)
                .unwrap()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(m: usize, n: usize, v: &[f32]) -> Tensor {
        Tensor::from_vec(vec![m, n], v.to_vec())
    }

    #[test]
    fn matmul_identity() {
        let a = t(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let i = t(2, 2, &[1.0, 0.0, 0.0, 1.0]);
        assert_eq!(matmul(&a, &i), a);
        assert_eq!(matmul(&i, &a), a);
    }

    #[test]
    fn matmul_rectangular() {
        let a = t(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = t(3, 2, &[7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = matmul(&a, &b);
        assert_eq!(c.dims(), &[2, 2]);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn transposed_variants_agree_with_explicit_transpose() {
        let a = t(3, 2, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = t(3, 4, &(0..12).map(|i| i as f32).collect::<Vec<_>>());
        let via_tn = matmul_tn(&a, &b);
        let explicit = matmul(&transpose2d(&a), &b);
        assert_eq!(via_tn, explicit);

        let c = t(2, 3, &[1.0, -1.0, 2.0, 0.0, 3.0, 1.0]);
        let d = t(4, 3, &(0..12).map(|i| i as f32 - 5.0).collect::<Vec<_>>());
        let via_nt = matmul_nt(&c, &d);
        let explicit = matmul(&c, &transpose2d(&d));
        assert_eq!(via_nt, explicit);
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn matmul_dim_mismatch_panics() {
        let _ = matmul(&Tensor::zeros(vec![2, 3]), &Tensor::zeros(vec![4, 2]));
    }

    #[test]
    fn transpose_involution() {
        let a = t(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(transpose2d(&transpose2d(&a)), a);
    }

    #[test]
    fn bias_and_row_sums() {
        let mut a = t(2, 3, &[0.0; 6]);
        let bias = Tensor::from_vec(vec![3], vec![1.0, 2.0, 3.0]);
        add_bias_rows(&mut a, &bias);
        assert_eq!(a.data(), &[1.0, 2.0, 3.0, 1.0, 2.0, 3.0]);
        let s = sum_rows(&a);
        assert_eq!(s.data(), &[2.0, 4.0, 6.0]);
    }

    #[test]
    fn argmax_rows_picks_largest() {
        let a = t(2, 3, &[0.1, 0.9, 0.0, 5.0, -1.0, 2.0]);
        assert_eq!(argmax_rows(&a), vec![1, 0]);
    }

    #[test]
    fn zero_rows_skipped_fast_path_is_correct() {
        // The matmul fast path skips zero A elements; results must be
        // identical to the naive product.
        let a = t(2, 3, &[0.0, 2.0, 0.0, 1.0, 0.0, 3.0]);
        let b = t(3, 2, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let c = matmul(&a, &b);
        assert_eq!(c.data(), &[6.0, 8.0, 16.0, 20.0]);
    }
}
