//! Convolution lowering: im2col / col2im.
//!
//! Convolutional layers are lowered to GEMM, the computation structure the
//! FPRaker tile consumes (8×8 vector-matrix blocks). `im2col` unrolls input
//! windows into rows; the convolution is then `cols · Wᵀ`-style GEMMs, and
//! `col2im` scatters gradients back for the backward pass.

use crate::tensor::Tensor;

/// Geometry of a 2-D convolution.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ConvGeom {
    /// Input channels.
    pub in_channels: usize,
    /// Output channels (filters).
    pub out_channels: usize,
    /// Kernel height and width (square kernels).
    pub kernel: usize,
    /// Stride in both dimensions.
    pub stride: usize,
    /// Zero padding on every border.
    pub pad: usize,
}

impl ConvGeom {
    /// Output spatial size for an input of `h × w`.
    ///
    /// # Panics
    ///
    /// Panics if the geometry does not fit the input (output would be
    /// empty).
    pub fn out_size(&self, h: usize, w: usize) -> (usize, usize) {
        let oh = (h + 2 * self.pad)
            .checked_sub(self.kernel)
            .map(|x| x / self.stride + 1);
        let ow = (w + 2 * self.pad)
            .checked_sub(self.kernel)
            .map(|x| x / self.stride + 1);
        match (oh, ow) {
            (Some(oh), Some(ow)) if oh > 0 && ow > 0 => (oh, ow),
            _ => panic!("convolution geometry does not fit input {h}x{w}"),
        }
    }

    /// Columns of the im2col matrix: `in_channels * kernel * kernel`.
    pub fn patch_len(&self) -> usize {
        self.in_channels * self.kernel * self.kernel
    }
}

/// Unrolls an NCHW input into the im2col matrix of shape
/// `(N*OH*OW, C*KH*KW)`: row `r` holds the input window that produces
/// output pixel `r`.
///
/// # Panics
///
/// Panics if `input` is not rank 4 or its channel count disagrees with the
/// geometry.
pub fn im2col(input: &Tensor, g: &ConvGeom) -> Tensor {
    assert_eq!(input.dims().len(), 4, "im2col input must be NCHW");
    let (n, c, h, w) = (
        input.dims()[0],
        input.dims()[1],
        input.dims()[2],
        input.dims()[3],
    );
    assert_eq!(c, g.in_channels, "channel mismatch");
    let (oh, ow) = g.out_size(h, w);
    let patch = g.patch_len();
    let mut out = vec![0.0f32; n * oh * ow * patch];
    let id = input.data();
    let mut row = 0usize;
    for img in 0..n {
        for oy in 0..oh {
            for ox in 0..ow {
                let base = row * patch;
                let mut col = 0usize;
                for ch in 0..c {
                    for ky in 0..g.kernel {
                        let iy = (oy * g.stride + ky) as isize - g.pad as isize;
                        for kx in 0..g.kernel {
                            let ix = (ox * g.stride + kx) as isize - g.pad as isize;
                            if iy >= 0 && (iy as usize) < h && ix >= 0 && (ix as usize) < w {
                                out[base + col] =
                                    id[((img * c + ch) * h + iy as usize) * w + ix as usize];
                            }
                            col += 1;
                        }
                    }
                }
                row += 1;
            }
        }
    }
    Tensor::from_vec(vec![n * oh * ow, patch], out)
}

/// Scatters an im2col-shaped gradient back to NCHW input space — the
/// adjoint of [`im2col`] (overlapping windows accumulate).
///
/// # Panics
///
/// Panics if `cols` does not have the shape `im2col` would produce for the
/// given input dimensions.
pub fn col2im(cols: &Tensor, g: &ConvGeom, n: usize, h: usize, w: usize) -> Tensor {
    let (oh, ow) = g.out_size(h, w);
    let patch = g.patch_len();
    assert_eq!(cols.dims(), &[n * oh * ow, patch], "col2im shape mismatch");
    let c = g.in_channels;
    let mut out = vec![0.0f32; n * c * h * w];
    let cd = cols.data();
    let mut row = 0usize;
    for img in 0..n {
        for oy in 0..oh {
            for ox in 0..ow {
                let base = row * patch;
                let mut col = 0usize;
                for ch in 0..c {
                    for ky in 0..g.kernel {
                        let iy = (oy * g.stride + ky) as isize - g.pad as isize;
                        for kx in 0..g.kernel {
                            let ix = (ox * g.stride + kx) as isize - g.pad as isize;
                            if iy >= 0 && (iy as usize) < h && ix >= 0 && (ix as usize) < w {
                                out[((img * c + ch) * h + iy as usize) * w + ix as usize] +=
                                    cd[base + col];
                            }
                            col += 1;
                        }
                    }
                }
                row += 1;
            }
        }
    }
    Tensor::from_vec(vec![n, c, h, w], out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linalg::{matmul, matmul_nt};

    fn simple_geom() -> ConvGeom {
        ConvGeom {
            in_channels: 1,
            out_channels: 1,
            kernel: 2,
            stride: 1,
            pad: 0,
        }
    }

    #[test]
    fn out_size_formula() {
        let g = ConvGeom {
            in_channels: 3,
            out_channels: 8,
            kernel: 3,
            stride: 2,
            pad: 1,
        };
        assert_eq!(g.out_size(8, 8), (4, 4));
        assert_eq!(g.patch_len(), 27);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn oversized_kernel_panics() {
        let g = ConvGeom {
            in_channels: 1,
            out_channels: 1,
            kernel: 5,
            stride: 1,
            pad: 0,
        };
        let _ = g.out_size(3, 3);
    }

    #[test]
    fn im2col_extracts_windows() {
        // 1x1x3x3 input, 2x2 kernel: four windows.
        let input = Tensor::from_vec(vec![1, 1, 3, 3], (1..=9).map(|i| i as f32).collect());
        let cols = im2col(&input, &simple_geom());
        assert_eq!(cols.dims(), &[4, 4]);
        assert_eq!(&cols.data()[0..4], &[1.0, 2.0, 4.0, 5.0]);
        assert_eq!(&cols.data()[12..16], &[5.0, 6.0, 8.0, 9.0]);
    }

    #[test]
    fn padding_inserts_zeros() {
        let g = ConvGeom {
            pad: 1,
            ..simple_geom()
        };
        let input = Tensor::from_vec(vec![1, 1, 2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let cols = im2col(&input, &g);
        // 3x3 output positions, first window is all padding except corner.
        assert_eq!(cols.dims(), &[9, 4]);
        assert_eq!(&cols.data()[0..4], &[0.0, 0.0, 0.0, 1.0]);
    }

    #[test]
    fn conv_via_gemm_matches_direct() {
        // Direct convolution vs im2col + GEMM on a small case.
        let g = ConvGeom {
            in_channels: 2,
            out_channels: 3,
            kernel: 2,
            stride: 1,
            pad: 0,
        };
        let input = Tensor::from_vec(
            vec![1, 2, 3, 3],
            (0..18).map(|i| (i as f32) * 0.5 - 3.0).collect(),
        );
        // Weights (out_channels, patch).
        let weights = Tensor::from_vec(
            vec![3, g.patch_len()],
            (0..3 * 8).map(|i| ((i % 5) as f32) - 2.0).collect(),
        );
        let cols = im2col(&input, &g);
        let out = matmul_nt(&cols, &weights); // (OH*OW, out_channels)

        // Direct computation.
        let (oh, ow) = g.out_size(3, 3);
        for oy in 0..oh {
            for ox in 0..ow {
                for f in 0..3 {
                    let mut acc = 0.0f32;
                    for ch in 0..2 {
                        for ky in 0..2 {
                            for kx in 0..2 {
                                let iv = input.at(&[0, ch, oy + ky, ox + kx]);
                                let wv = weights.at(&[f, (ch * 2 + ky) * 2 + kx]);
                                acc += iv * wv;
                            }
                        }
                    }
                    let got = out.at(&[oy * ow + ox, f]);
                    assert!((got - acc).abs() < 1e-5, "({oy},{ox},{f}): {got} vs {acc}");
                }
            }
        }
    }

    #[test]
    fn col2im_is_adjoint_of_im2col() {
        // <im2col(x), y> == <x, col2im(y)> for random-ish x, y — the
        // defining property of the adjoint used by backprop.
        let g = ConvGeom {
            in_channels: 2,
            out_channels: 1,
            kernel: 3,
            stride: 2,
            pad: 1,
        };
        let (n, h, w) = (2, 5, 5);
        let x = Tensor::from_vec(
            vec![n, 2, h, w],
            (0..n * 2 * h * w)
                .map(|i| ((i * 7 % 13) as f32) - 6.0)
                .collect(),
        );
        let cols = im2col(&x, &g);
        let y = Tensor::from_vec(
            cols.dims().to_vec(),
            (0..cols.len())
                .map(|i| ((i * 3 % 11) as f32) - 5.0)
                .collect(),
        );
        let lhs: f32 = cols.data().iter().zip(y.data()).map(|(a, b)| a * b).sum();
        let back = col2im(&y, &g, n, h, w);
        let rhs: f32 = x.data().iter().zip(back.data()).map(|(a, b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-3, "{lhs} vs {rhs}");
    }

    #[test]
    fn identity_kernel_reproduces_input() {
        // 1x1 kernel, stride 1: im2col is the identity layout.
        let g = ConvGeom {
            in_channels: 1,
            out_channels: 1,
            kernel: 1,
            stride: 1,
            pad: 0,
        };
        let input = Tensor::from_vec(vec![1, 1, 2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let cols = im2col(&input, &g);
        assert_eq!(cols.data(), input.data());
        let w = Tensor::from_vec(vec![1, 1], vec![1.0]);
        let out = matmul(&cols, &w);
        assert_eq!(out.data(), input.data());
    }
}
