//! Simulation of a single GEMM (one `TraceOp`) on any [`MachineModel`].
//!
//! The GEMM is tiled into `rows × cols` output blocks (the machine's tile
//! shape); blocks are distributed round-robin over the accelerator's tiles;
//! per-block cycles, statistics and outputs come from the machine's
//! block model (for FPRaker, the cycle-faithful [`fpraker_core::Tile`]).
//! Off-chip traffic (optionally BDC-compressed) is overlapped with compute
//! double-buffered: the op's latency is `max(compute, memory)`.
//!
//! Blocks are mutually independent, so the driver fans them out across
//! worker threads in contiguous index ranges. Every per-block quantity is
//! reduced with unsigned integer addition in a fixed order, so the result
//! is **bit-identical for any thread count** — the determinism tests pin
//! this down.

use std::borrow::Cow;
use std::num::NonZeroUsize;
use std::thread;

use fpraker_core::{ExecStats, MachineModel, Pe, TileConfig};
use fpraker_energy::EventCounts;
use fpraker_mem::{bdc, Traffic};
use fpraker_num::encode::Encoding;
use fpraker_num::reference::{dot_f64, dot_magnitude_f64, ulp_bf16};
use fpraker_num::{AccumConfig, Bf16};
use fpraker_trace::{Phase, TraceOp};

use crate::config::{AcceleratorConfig, SerialPolicy};

/// The simulated outcome of one GEMM.
#[derive(Clone, Debug, Default)]
pub struct OpOutcome {
    /// Layer the op came from.
    pub layer: String,
    /// Training phase.
    pub phase: Option<Phase>,
    /// MAC count (excluding padding).
    pub macs: u64,
    /// Compute cycles (slowest tile).
    pub compute_cycles: u64,
    /// Off-chip transfer cycles.
    pub mem_cycles: u64,
    /// Op latency: `max(compute, memory)`.
    pub cycles: u64,
    /// Tile statistics (zeroed for analytic machines).
    pub stats: ExecStats,
    /// Off-chip traffic.
    pub traffic: Traffic,
    /// On-chip (global buffer) bytes moved.
    pub sram_bytes: u64,
    /// Event counts for the energy model.
    pub counts: EventCounts,
    /// Outputs that failed the golden check (0 when checking is off).
    pub golden_failures: u64,
}

fn padded_sets(k: usize, lanes: usize) -> usize {
    k.div_ceil(lanes)
}

/// Fills `out` with the padded operand stream for logical row `row` of an
/// `rows×k` operand (all-zero beyond the edge), reusing its allocation.
fn fill_stream(
    out: &mut Vec<Bf16>,
    data: &[Bf16],
    rows: usize,
    k: usize,
    row: usize,
    k_padded: usize,
) {
    out.clear();
    if row < rows {
        out.extend_from_slice(&data[row * k..(row + 1) * k]);
    }
    out.resize(k_padded, Bf16::ZERO);
}

fn offchip_bytes(values: &[Bf16], bdc_enabled: bool, dup: f32) -> u64 {
    let raw = if bdc_enabled {
        bdc::footprint(values).total_bytes() as u64
    } else {
        (values.len() * 2) as u64
    };
    // Streams duplicate source-tensor values (im2col); the hardware reads
    // the source once and expands on chip.
    (raw as f64 / dup.max(1.0) as f64).ceil() as u64
}

/// Resolves a thread-count knob: `0` means one worker per available core.
pub(crate) fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1)
    } else {
        threads
    }
}

/// Per-worker reduction state: everything a range of blocks contributes.
/// Every field is an unsigned sum (or a vector of them), so merging
/// partials in a fixed order reproduces the sequential reduction bit for
/// bit.
pub(crate) struct BlockAccum {
    tile_cycles: Vec<u64>,
    stats: ExecStats,
    golden_failures: u64,
}

impl BlockAccum {
    pub(crate) fn new(tiles: usize) -> Self {
        BlockAccum {
            tile_cycles: vec![0; tiles],
            stats: ExecStats::default(),
            golden_failures: 0,
        }
    }

    pub(crate) fn merge(&mut self, other: &BlockAccum) {
        for (t, o) in self.tile_cycles.iter_mut().zip(&other.tile_cycles) {
            *t += o;
        }
        self.stats += other.stats;
        self.golden_failures += other.golden_failures;
    }
}

/// Runs the contiguous block range `[lo, hi)` of the op on a fresh machine
/// instance, accumulating per-tile cycles (round-robin assignment by global
/// block index), statistics and golden-check failures.
#[allow(clippy::too_many_arguments)]
fn run_block_range<M: MachineModel>(
    machine: &mut M,
    op: &TraceOp,
    cfg: &AcceleratorConfig,
    k_padded: usize,
    blocks_n: usize,
    lo: usize,
    hi: usize,
) -> BlockAccum {
    let tile_cfg = *machine.tile_config();
    let (rows, cols) = (tile_cfg.rows, tile_cfg.cols);
    let mut acc = BlockAccum::new(cfg.tiles);
    // Blocks are visited in row-major order, so the A-side work (a function
    // of `bi` alone) is redone only when the block row changes: the A
    // streams are refilled and — for machines with shareable A-side
    // encoding — planned once for all `blocks_n` blocks of the row. The B
    // stream buffers are refilled in place every block, so the whole range
    // reuses one set of allocations.
    let mut a_streams: Vec<Vec<Bf16>> = vec![Vec::new(); cols];
    let mut b_streams: Vec<Vec<Bf16>> = vec![Vec::new(); rows];
    let mut a_plans: Option<fpraker_core::BlockPlans> = None;
    let mut cached_bi = usize::MAX;
    for idx in lo..hi {
        let (bi, bj) = (idx / blocks_n, idx % blocks_n);
        if bi != cached_bi {
            for (c, buf) in a_streams.iter_mut().enumerate() {
                fill_stream(buf, &op.a, op.m, op.k, bi * cols + c, k_padded);
            }
            a_plans = machine.plan_a_block(&a_streams);
            cached_bi = bi;
        }
        for (r, buf) in b_streams.iter_mut().enumerate() {
            fill_stream(buf, &op.b, op.n, op.k, bj * rows + r, k_padded);
        }
        let out = match &a_plans {
            Some(plans) => machine.run_block_planned(&a_streams, plans, &b_streams),
            None => machine.run_block(&a_streams, &b_streams),
        };
        acc.tile_cycles[idx % cfg.tiles] += out.cycles;
        acc.stats += out.stats;
        if cfg.check_golden {
            // A silent skip here would make `golden_failures == 0` vacuous.
            let outputs = out.outputs.as_ref().unwrap_or_else(|| {
                panic!(
                    "{} returned no outputs under golden checking",
                    machine.name()
                )
            });
            for r in 0..rows {
                for c in 0..cols {
                    let exact = dot_f64(&a_streams[c], &b_streams[r]);
                    let mag = dot_magnitude_f64(&a_streams[c], &b_streams[r]);
                    let got = outputs[r * cols + c].to_f64();
                    if (got - exact).abs() > 2.0 * ulp_bf16(mag.max(1e-30)) {
                        acc.golden_failures += 1;
                    }
                }
            }
        }
    }
    acc
}

/// Whether the serial operand ends up being the trace's A side under the
/// configured [`SerialPolicy`].
fn serial_is_a(op: &TraceOp, cfg: &AcceleratorConfig) -> bool {
    match cfg.serial_policy {
        SerialPolicy::AlwaysA => true,
        SerialPolicy::AlwaysB => false,
        SerialPolicy::Sparser => {
            fpraker_trace::stats::preferred_serial_is_a(op, Encoding::Canonical)
        }
    }
}

/// Everything the scheduler needs to know about one GEMM before any block
/// runs: the serial-policy-resolved op, the (θ-overridden) tile geometry,
/// and the block tiling. Machine-independent — the machine type only enters
/// when a work unit executes ([`run_unit`]) or an op is folded
/// ([`finish_op`]).
pub(crate) struct OpPlan<'a> {
    /// The op with the serial operand on the A side (borrowed when the
    /// policy keeps the trace orientation, owned when it swaps).
    pub(crate) op: Cow<'a, TraceOp>,
    pub(crate) tile_cfg: TileConfig,
    pub(crate) ksets: usize,
    pub(crate) k_padded: usize,
    pub(crate) blocks_n: usize,
    /// Total output blocks of this op (`blocks_m * blocks_n`) — the op's
    /// share of the schedulable work.
    pub(crate) blocks: usize,
}

/// Stage 1 of [`simulate_op`]: resolves the serial policy and per-layer θ
/// override, and tiles the GEMM into output blocks.
pub(crate) fn plan_op<'a>(op: &'a TraceOp, cfg: &AcceleratorConfig) -> OpPlan<'a> {
    let _span = fpraker_telemetry::span!("sim_plan");
    let op: Cow<'a, TraceOp> = if serial_is_a(op, cfg) {
        Cow::Borrowed(op)
    } else {
        Cow::Owned(op.swapped())
    };
    plan_resolved(op, cfg)
}

/// [`plan_op`] for an op the caller owns (the streaming path): a serial
/// policy swap moves the operand buffers instead of cloning them, and the
/// resulting plan has no borrow tying it to a trace.
pub(crate) fn plan_owned_op(op: TraceOp, cfg: &AcceleratorConfig) -> OpPlan<'static> {
    let _span = fpraker_telemetry::span!("sim_plan");
    let op = if serial_is_a(&op, cfg) {
        op
    } else {
        op.into_swapped()
    };
    plan_resolved(Cow::Owned(op), cfg)
}

/// The serial-policy-independent tail of planning: θ override + tiling.
fn plan_resolved<'a>(op: Cow<'a, TraceOp>, cfg: &AcceleratorConfig) -> OpPlan<'a> {
    let mut tile_cfg = cfg.tile;
    if let Some(theta) = cfg.theta_for(&op.layer) {
        tile_cfg.pe.accum = AccumConfig {
            ob_threshold: theta,
            ..tile_cfg.pe.accum
        };
    }
    let (rows, cols, lanes) = (tile_cfg.rows, tile_cfg.cols, tile_cfg.pe.lanes);
    let ksets = padded_sets(op.k, lanes);
    let k_padded = ksets * lanes;
    let blocks_m = op.m.div_ceil(cols);
    let blocks_n = op.n.div_ceil(rows);
    OpPlan {
        op,
        tile_cfg,
        ksets,
        k_padded,
        blocks_n,
        blocks: blocks_m * blocks_n,
    }
}

/// The number of output blocks `op` contributes to the schedule, without
/// materializing the (possibly swapped) operand streams.
pub(crate) fn planned_blocks(op: &TraceOp, cfg: &AcceleratorConfig) -> usize {
    let (m, n) = if serial_is_a(op, cfg) {
        (op.m, op.n)
    } else {
        (op.n, op.m)
    };
    m.div_ceil(cfg.tile.cols) * n.div_ceil(cfg.tile.rows)
}

/// Stage 2 of [`simulate_op`]: executes one work unit — the contiguous
/// block range `[lo, hi)` of a planned op — on a fresh machine instance.
/// Pure with respect to the rest of the op: the returned [`BlockAccum`]
/// is this range's entire contribution.
pub(crate) fn run_unit<M: MachineModel>(
    plan: &OpPlan,
    cfg: &AcceleratorConfig,
    lo: usize,
    hi: usize,
) -> BlockAccum {
    let _span = fpraker_telemetry::span!("sim_run_unit");
    let mut machine = M::from_tile(plan.tile_cfg);
    let acc = if machine.value_dependent() {
        run_block_range(
            &mut machine,
            &plan.op,
            cfg,
            plan.k_padded,
            plan.blocks_n,
            lo,
            hi,
        )
    } else {
        // Value-independent timing: no operand streams, no golden check —
        // the block loop is just round-robin arithmetic.
        let mut acc = BlockAccum::new(cfg.tiles);
        for idx in lo..hi {
            let out = machine.run_block_analytic(plan.ksets);
            acc.tile_cycles[idx % cfg.tiles] += out.cycles;
            acc.stats += out.stats;
        }
        acc
    };
    // The machine is fresh per unit, so its accumulated SWAR-unstable
    // cycles are exactly this unit's contribution.
    fpraker_telemetry::counter!("pe_swar_unstable_cycles_total")
        .add(machine.swar_unstable_cycles());
    acc
}

/// Simulates one GEMM on machine `M` — the single driver behind every
/// machine comparison (formerly the duplicated `simulate_op_fpraker` /
/// `simulate_op_baseline` paths). A thin wrapper over the trace-level
/// scheduler with a one-op trace.
///
/// `threads` bounds the block-level fan-out (`0` = one worker per core);
/// results are bit-identical for every thread count.
///
/// ```
/// use fpraker_core::FpRakerMachine;
/// use fpraker_sim::{simulate_op, AcceleratorConfig};
/// use fpraker_num::Bf16;
/// use fpraker_trace::{Phase, TensorKind, TraceOp};
///
/// let op = TraceOp {
///     layer: "fc".into(), phase: Phase::AxW, m: 4, n: 4, k: 8,
///     a: vec![Bf16::ONE; 32], b: vec![Bf16::ONE; 32],
///     a_kind: TensorKind::Activation, b_kind: TensorKind::Weight,
///     a_dup: 1.0, b_dup: 1.0, out_dup: 1.0,
/// };
/// let out = simulate_op::<FpRakerMachine>(&op, &AcceleratorConfig::fpraker_paper(), 1);
/// assert_eq!(out.macs, 4 * 4 * 8);
/// assert!(out.cycles > 0);
/// ```
pub fn simulate_op<M: MachineModel>(
    op: &TraceOp,
    cfg: &AcceleratorConfig,
    threads: usize,
) -> OpOutcome {
    crate::sched::simulate_ops_scheduled::<M>(std::slice::from_ref(op), cfg, threads)
        .pop()
        .expect("one op in, one outcome out")
}

/// Stage 3 of [`simulate_op`]: folds an op's merged block contributions
/// into its [`OpOutcome`] — compute/memory latency, off-chip traffic and
/// the energy-model event counts. Single-threaded and deterministic.
pub(crate) fn finish_op<M: MachineModel>(
    plan: &OpPlan,
    cfg: &AcceleratorConfig,
    acc: BlockAccum,
) -> OpOutcome {
    let _span = fpraker_telemetry::span!("sim_fold");
    let op = &*plan.op;
    let (rows, cols) = (plan.tile_cfg.rows, plan.tile_cfg.cols);
    let (ksets, k_padded, blocks) = (plan.ksets, plan.k_padded, plan.blocks);
    let compute_cycles = acc.tile_cycles.iter().copied().max().unwrap_or(0);
    let out_raw = ((op.m * op.n) as f64 * 2.0 / op.out_dup.max(1.0) as f64).ceil() as u64;
    let traffic = Traffic {
        a_bytes: offchip_bytes(&op.a, cfg.bdc_offchip, op.a_dup),
        b_bytes: offchip_bytes(&op.b, cfg.bdc_offchip, op.b_dup),
        out_bytes: if cfg.bdc_offchip {
            // Outputs are compressed before writing off-chip; approximate
            // with the average input compression ratio.
            let in_ratio = (offchip_bytes(&op.a, true, op.a_dup)
                + offchip_bytes(&op.b, true, op.b_dup)) as f64
                / (offchip_bytes(&op.a, false, op.a_dup) + offchip_bytes(&op.b, false, op.b_dup))
                    as f64;
            (out_raw as f64 * in_ratio) as u64
        } else {
            out_raw
        },
    };
    let mem_cycles = cfg.dram.cycles_for(traffic.total());
    let sram_bytes =
        blocks as u64 * ((cols + rows) * k_padded * 2) as u64 + (op.m * op.n * 2) as u64;

    let events = M::from_tile(plan.tile_cfg).events(&acc.stats, blocks as u64, ksets as u64);
    let counts = EventCounts {
        terms: events.terms,
        pe_active_cycles: events.pe_active_cycles,
        pe_stall_cycles: events.pe_stall_cycles,
        sets: events.sets,
        a_values_encoded: events.a_values_encoded,
        baseline_pe_cycles: events.baseline_pe_cycles,
        sram_bytes,
        dram_bytes: traffic.total(),
    };

    OpOutcome {
        layer: op.layer.clone(),
        phase: Some(op.phase),
        macs: op.macs(),
        compute_cycles,
        mem_cycles,
        cycles: compute_cycles.max(mem_cycles),
        stats: acc.stats,
        traffic,
        sram_bytes,
        counts,
        golden_failures: acc.golden_failures,
    }
}

/// Convenience: runs a single dot product through a lone PE and the f64
/// reference, returning `(pe result, reference, cycles)` — used by examples
/// and docs.
pub fn pe_dot_with_reference(a: &[Bf16], b: &[Bf16], tile: &TileConfig) -> (Bf16, f64, u64) {
    let mut pe = Pe::new(tile.pe);
    let (out, cycles) = pe.dot(a, b);
    (out, dot_f64(a, b), cycles)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpraker_core::{BaselineMachine, FpRakerMachine};
    use fpraker_num::reference::SplitMix64;
    use fpraker_trace::TensorKind;

    fn random_op(m: usize, n: usize, k: usize, spread: i32, seed: u64) -> TraceOp {
        let mut rng = SplitMix64::new(seed);
        TraceOp {
            layer: "test".into(),
            phase: Phase::AxW,
            m,
            n,
            k,
            a: (0..m * k).map(|_| rng.bf16_in_range(spread)).collect(),
            b: (0..n * k).map(|_| rng.bf16_in_range(spread)).collect(),
            a_kind: TensorKind::Activation,
            b_kind: TensorKind::Weight,
            a_dup: 1.0,
            b_dup: 1.0,
            out_dup: 1.0,
        }
    }

    fn small_cfg(tiles: usize) -> AcceleratorConfig {
        AcceleratorConfig {
            tiles,
            check_golden: true,
            ..AcceleratorConfig::fpraker_paper()
        }
    }

    fn fpraker_op(op: &TraceOp, cfg: &AcceleratorConfig) -> OpOutcome {
        simulate_op::<FpRakerMachine>(op, cfg, 1)
    }

    #[test]
    fn golden_check_passes_on_random_gemm() {
        let op = random_op(20, 12, 24, 3, 1);
        let out = fpraker_op(&op, &small_cfg(2));
        assert_eq!(out.golden_failures, 0);
        assert_eq!(out.macs, 20 * 12 * 24);
        assert!(out.compute_cycles > 0);
    }

    #[test]
    fn baseline_cycles_match_formula() {
        let op = random_op(16, 16, 32, 2, 2);
        let cfg = AcceleratorConfig {
            tiles: 1,
            ..AcceleratorConfig::baseline_paper()
        };
        let out = simulate_op::<BaselineMachine>(&op, &cfg, 1);
        // 2x2 blocks of 8x8 outputs, 4 k-sets each, 1 tile: 16 cycles.
        assert_eq!(out.compute_cycles, 16);
        // With 8 tiles the 4 blocks round-robin: 4 cycles.
        let out8 = simulate_op::<BaselineMachine>(&op, &AcceleratorConfig::baseline_paper(), 1);
        assert_eq!(out8.compute_cycles, 4);
    }

    #[test]
    fn more_tiles_never_slower() {
        let op = random_op(64, 16, 16, 4, 3);
        let c1 = fpraker_op(&op, &small_cfg(4)).compute_cycles;
        let c2 = fpraker_op(&op, &small_cfg(8)).compute_cycles;
        assert!(c2 <= c1, "{c2} > {c1}");
    }

    #[test]
    fn power_of_two_values_run_faster_than_dense_mantissas() {
        // Single-term significands stream in fewer cycles than full ones.
        let mut sparse = random_op(16, 16, 16, 2, 4);
        for v in &mut sparse.a {
            *v = Bf16::from_parts(v.sign(), v.exponent(), 0x80); // 1.0000000
        }
        let mut dense = sparse.clone();
        for v in &mut dense.a {
            *v = Bf16::from_parts(v.sign(), v.exponent(), 0xD5); // 1.1010101
        }
        let cfg = AcceleratorConfig {
            serial_policy: SerialPolicy::AlwaysA,
            ..small_cfg(1)
        };
        let cs = fpraker_op(&sparse, &cfg).compute_cycles;
        let cd = fpraker_op(&dense, &cfg).compute_cycles;
        assert!(cs < cd, "sparse {cs} vs dense {cd}");
    }

    #[test]
    fn bdc_reduces_offchip_traffic_on_correlated_exponents() {
        let mut op = random_op(32, 32, 32, 0, 5); // all exponents equal
        for v in op.a.iter_mut().chain(op.b.iter_mut()) {
            *v = Bf16::from_parts(v.sign(), 0, v.significand());
        }
        let with = fpraker_op(&op, &small_cfg(1));
        let without = fpraker_op(
            &op,
            &AcceleratorConfig {
                bdc_offchip: false,
                ..small_cfg(1)
            },
        );
        assert!(
            with.traffic.total() < without.traffic.total() * 3 / 4,
            "{} vs {}",
            with.traffic.total(),
            without.traffic.total()
        );
        // Compression never changes compute cycles.
        assert_eq!(with.compute_cycles, without.compute_cycles);
    }

    #[test]
    fn serial_policy_sparser_picks_the_better_side() {
        let mut op = random_op(16, 16, 16, 2, 6);
        // Make B single-term, A dense: Sparser should match AlwaysB.
        for v in &mut op.b {
            *v = Bf16::from_parts(v.sign(), v.exponent(), 0x80);
        }
        for v in &mut op.a {
            *v = Bf16::from_parts(v.sign(), v.exponent(), 0xFF);
        }
        let base = small_cfg(1);
        let auto = fpraker_op(
            &op,
            &AcceleratorConfig {
                serial_policy: SerialPolicy::Sparser,
                ..base.clone()
            },
        );
        let forced_b = fpraker_op(
            &op,
            &AcceleratorConfig {
                serial_policy: SerialPolicy::AlwaysB,
                ..base.clone()
            },
        );
        let forced_a = fpraker_op(
            &op,
            &AcceleratorConfig {
                serial_policy: SerialPolicy::AlwaysA,
                ..base
            },
        );
        assert_eq!(auto.compute_cycles, forced_b.compute_cycles);
        assert!(auto.compute_cycles < forced_a.compute_cycles);
    }

    #[test]
    fn narrower_theta_never_slower() {
        let op = random_op(16, 16, 32, 6, 7);
        let mut narrow = small_cfg(1);
        narrow.theta_overrides.push(("test".into(), 4));
        narrow.check_golden = false;
        let mut wide = small_cfg(1);
        wide.check_golden = false;
        let cn = fpraker_op(&op, &narrow).compute_cycles;
        let cw = fpraker_op(&op, &wide).compute_cycles;
        assert!(cn <= cw, "narrow θ slower: {cn} > {cw}");
    }

    #[test]
    fn event_counts_are_consistent() {
        let op = random_op(8, 8, 16, 3, 8);
        let out = fpraker_op(&op, &small_cfg(1));
        assert_eq!(out.counts.terms, out.stats.terms.processed);
        assert!(out.counts.pe_active_cycles > 0);
        assert_eq!(out.counts.dram_bytes, out.traffic.total());
        // Two k-sets per PE over one block: 64 PEs * 2 sets.
        assert_eq!(out.stats.sets, 128);
        assert_eq!(out.counts.a_values_encoded, 128 / 8 * 8);
    }

    #[test]
    fn owned_and_borrowed_plans_agree() {
        // The streaming path plans owned ops; it must produce the same
        // resolved op and tiling as the borrowed in-memory planner, under
        // a value-dependent serial policy.
        let mut op = random_op(16, 12, 16, 3, 10);
        for v in &mut op.b {
            *v = Bf16::from_parts(v.sign(), v.exponent(), 0x80); // B sparser
        }
        let cfg = AcceleratorConfig {
            serial_policy: SerialPolicy::Sparser,
            ..small_cfg(2)
        };
        let borrowed = plan_op(&op, &cfg);
        let owned = plan_owned_op(op.clone(), &cfg);
        assert_eq!(&*borrowed.op, &*owned.op);
        assert_eq!(borrowed.blocks, owned.blocks);
        assert_eq!(borrowed.blocks_n, owned.blocks_n);
        assert_eq!(borrowed.ksets, owned.ksets);
        assert_eq!(borrowed.k_padded, owned.k_padded);
    }

    #[test]
    fn parallel_fan_out_is_bit_identical_to_sequential() {
        let op = random_op(48, 40, 24, 4, 9);
        let cfg = small_cfg(3);
        let seq = simulate_op::<FpRakerMachine>(&op, &cfg, 1);
        for threads in [2, 3, 5, 8] {
            let par = simulate_op::<FpRakerMachine>(&op, &cfg, threads);
            assert_eq!(par.compute_cycles, seq.compute_cycles, "{threads} threads");
            assert_eq!(par.cycles, seq.cycles);
            assert_eq!(par.stats, seq.stats);
            assert_eq!(par.counts, seq.counts);
            assert_eq!(par.golden_failures, seq.golden_failures);
        }
    }
}
