//! Simulation of a single GEMM (one `TraceOp`) on the accelerator.
//!
//! The GEMM is tiled into 8×8 output blocks (the tile's vector-matrix
//! shape); blocks are distributed round-robin over the accelerator's tiles;
//! per-block cycle counts come from the cycle-faithful tile model
//! ([`fpraker_core::Tile`]). Off-chip traffic (optionally BDC-compressed)
//! is overlapped with compute double-buffered: the op's latency is
//! `max(compute, memory)`.

use fpraker_core::{ExecStats, Pe, Tile, TileConfig};
use fpraker_energy::EventCounts;
use fpraker_mem::{bdc, Traffic};
use fpraker_num::encode::Encoding;
use fpraker_num::reference::{dot_f64, dot_magnitude_f64, ulp_bf16};
use fpraker_num::{AccumConfig, Bf16};
use fpraker_trace::{Phase, TraceOp};

use crate::config::{AcceleratorConfig, SerialPolicy};

/// The simulated outcome of one GEMM.
#[derive(Clone, Debug, Default)]
pub struct OpOutcome {
    /// Layer the op came from.
    pub layer: String,
    /// Training phase.
    pub phase: Option<Phase>,
    /// MAC count (excluding padding).
    pub macs: u64,
    /// Compute cycles (slowest tile).
    pub compute_cycles: u64,
    /// Off-chip transfer cycles.
    pub mem_cycles: u64,
    /// Op latency: `max(compute, memory)`.
    pub cycles: u64,
    /// Tile statistics (zeroed for the analytic baseline).
    pub stats: ExecStats,
    /// Off-chip traffic.
    pub traffic: Traffic,
    /// On-chip (global buffer) bytes moved.
    pub sram_bytes: u64,
    /// Event counts for the energy model.
    pub counts: EventCounts,
    /// Outputs that failed the golden check (0 when checking is off).
    pub golden_failures: u64,
}

fn padded_sets(k: usize, lanes: usize) -> usize {
    k.div_ceil(lanes)
}

/// Builds the padded operand stream for logical row `row` of an `rows×k`
/// operand (all-zero beyond the edge).
fn stream_for(data: &[Bf16], rows: usize, k: usize, row: usize, k_padded: usize) -> Vec<Bf16> {
    let mut out = vec![Bf16::ZERO; k_padded];
    if row < rows {
        out[..k].copy_from_slice(&data[row * k..(row + 1) * k]);
    }
    out
}

fn offchip_bytes(values: &[Bf16], bdc_enabled: bool, dup: f32) -> u64 {
    let raw = if bdc_enabled {
        bdc::footprint(values).total_bytes() as u64
    } else {
        (values.len() * 2) as u64
    };
    // Streams duplicate source-tensor values (im2col); the hardware reads
    // the source once and expands on chip.
    (raw as f64 / dup.max(1.0) as f64).ceil() as u64
}

/// Simulates one GEMM on the FPRaker accelerator.
pub fn simulate_op_fpraker(op: &TraceOp, cfg: &AcceleratorConfig) -> OpOutcome {
    let swapped;
    let op = match cfg.serial_policy {
        SerialPolicy::AlwaysA => op,
        SerialPolicy::AlwaysB => {
            swapped = op.swapped();
            &swapped
        }
        SerialPolicy::Sparser => {
            if fpraker_trace::stats::preferred_serial_is_a(op, Encoding::Canonical) {
                op
            } else {
                swapped = op.swapped();
                &swapped
            }
        }
    };

    let mut tile_cfg = cfg.tile;
    if let Some(theta) = cfg.theta_for(&op.layer) {
        tile_cfg.pe.accum = AccumConfig {
            ob_threshold: theta,
            ..tile_cfg.pe.accum
        };
    }
    let (rows, cols, lanes) = (tile_cfg.rows, tile_cfg.cols, tile_cfg.pe.lanes);
    let ksets = padded_sets(op.k, lanes);
    let k_padded = ksets * lanes;
    let blocks_m = op.m.div_ceil(cols);
    let blocks_n = op.n.div_ceil(rows);

    let mut tile = Tile::new(tile_cfg);
    let mut tile_cycles = vec![0u64; cfg.tiles];
    let mut stats = ExecStats::default();
    let mut golden_failures = 0u64;
    let mut next_tile = 0usize;

    for bi in 0..blocks_m {
        for bj in 0..blocks_n {
            let a_streams: Vec<Vec<Bf16>> = (0..cols)
                .map(|c| stream_for(&op.a, op.m, op.k, bi * cols + c, k_padded))
                .collect();
            let b_streams: Vec<Vec<Bf16>> = (0..rows)
                .map(|r| stream_for(&op.b, op.n, op.k, bj * rows + r, k_padded))
                .collect();
            let out = tile.run_block(&a_streams, &b_streams);
            tile_cycles[next_tile] += out.cycles;
            next_tile = (next_tile + 1) % cfg.tiles;
            stats += out.stats;
            if cfg.check_golden {
                for r in 0..rows {
                    for c in 0..cols {
                        let exact = dot_f64(&a_streams[c], &b_streams[r]);
                        let mag = dot_magnitude_f64(&a_streams[c], &b_streams[r]);
                        let got = out.output(r, c, cols).to_f64();
                        if (got - exact).abs() > 2.0 * ulp_bf16(mag.max(1e-30)) {
                            golden_failures += 1;
                        }
                    }
                }
            }
        }
    }

    let compute_cycles = tile_cycles.iter().copied().max().unwrap_or(0);
    let out_raw = ((op.m * op.n) as f64 * 2.0 / op.out_dup.max(1.0) as f64).ceil() as u64;
    let traffic = Traffic {
        a_bytes: offchip_bytes(&op.a, cfg.bdc_offchip, op.a_dup),
        b_bytes: offchip_bytes(&op.b, cfg.bdc_offchip, op.b_dup),
        out_bytes: if cfg.bdc_offchip {
            // Outputs are compressed before writing off-chip; approximate
            // with the average input compression ratio.
            let in_ratio = (offchip_bytes(&op.a, true, op.a_dup)
                + offchip_bytes(&op.b, true, op.b_dup)) as f64
                / (offchip_bytes(&op.a, false, op.a_dup)
                    + offchip_bytes(&op.b, false, op.b_dup)) as f64;
            (out_raw as f64 * in_ratio) as u64
        } else {
            out_raw
        },
    };
    let mem_cycles = cfg.dram.cycles_for(traffic.total());
    let blocks = (blocks_m * blocks_n) as u64;
    let sram_bytes =
        blocks * ((cols + rows) * k_padded * 2) as u64 + (op.m * op.n * 2) as u64;

    let lane_total = stats.lane_cycles;
    let pe_active =
        (lane_total.useful + lane_total.no_term + lane_total.shift_range) / lanes as u64;
    let pe_stall = (lane_total.inter_pe + lane_total.exponent) / lanes as u64;
    let counts = EventCounts {
        terms: stats.terms.processed,
        pe_active_cycles: pe_active,
        pe_stall_cycles: pe_stall,
        sets: stats.sets,
        a_values_encoded: stats.sets / rows as u64 * lanes as u64,
        baseline_pe_cycles: 0,
        sram_bytes,
        dram_bytes: traffic.total(),
    };

    OpOutcome {
        layer: op.layer.clone(),
        phase: Some(op.phase),
        macs: op.macs(),
        compute_cycles,
        mem_cycles,
        cycles: compute_cycles.max(mem_cycles),
        stats,
        traffic,
        sram_bytes,
        counts,
        golden_failures,
    }
}

/// Simulates one GEMM on the bit-parallel baseline accelerator
/// (analytically: the baseline never stalls — every 8×8 output block takes
/// `ceil(k/8)` cycles).
pub fn simulate_op_baseline(op: &TraceOp, cfg: &AcceleratorConfig) -> OpOutcome {
    let (rows, cols, lanes) = (cfg.tile.rows, cfg.tile.cols, cfg.tile.pe.lanes);
    let ksets = padded_sets(op.k, lanes) as u64;
    let blocks = (op.m.div_ceil(cols) * op.n.div_ceil(rows)) as u64;
    // Round-robin block assignment: the slowest tile gets ceil(blocks/T).
    let blocks_max = blocks.div_ceil(cfg.tiles as u64);
    let compute_cycles = blocks_max * ksets;

    let traffic = Traffic {
        a_bytes: offchip_bytes(&op.a, false, op.a_dup),
        b_bytes: offchip_bytes(&op.b, false, op.b_dup),
        out_bytes: ((op.m * op.n) as f64 * 2.0 / op.out_dup.max(1.0) as f64).ceil() as u64,
    };
    let mem_cycles = cfg.dram.cycles_for(traffic.total());
    let k_padded = ksets as usize * lanes;
    let sram_bytes =
        blocks * ((cols + rows) * k_padded * 2) as u64 + (op.m * op.n * 2) as u64;
    let counts = EventCounts {
        baseline_pe_cycles: blocks * ksets * (rows * cols) as u64,
        sram_bytes,
        dram_bytes: traffic.total(),
        ..EventCounts::default()
    };

    OpOutcome {
        layer: op.layer.clone(),
        phase: Some(op.phase),
        macs: op.macs(),
        compute_cycles,
        mem_cycles,
        cycles: compute_cycles.max(mem_cycles),
        stats: ExecStats::default(),
        traffic,
        sram_bytes,
        counts,
        golden_failures: 0,
    }
}

/// Convenience: runs a single dot product through a lone PE and the f64
/// reference, returning `(pe result, reference, cycles)` — used by examples
/// and docs.
pub fn pe_dot_with_reference(a: &[Bf16], b: &[Bf16], tile: &TileConfig) -> (Bf16, f64, u64) {
    let mut pe = Pe::new(tile.pe);
    let (out, cycles) = pe.dot(a, b);
    (out, dot_f64(a, b), cycles)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpraker_num::reference::SplitMix64;
    use fpraker_trace::TensorKind;

    fn random_op(m: usize, n: usize, k: usize, spread: i32, seed: u64) -> TraceOp {
        let mut rng = SplitMix64::new(seed);
        TraceOp {
            layer: "test".into(),
            phase: Phase::AxW,
            m,
            n,
            k,
            a: (0..m * k).map(|_| rng.bf16_in_range(spread)).collect(),
            b: (0..n * k).map(|_| rng.bf16_in_range(spread)).collect(),
            a_kind: TensorKind::Activation,
            b_kind: TensorKind::Weight,
            a_dup: 1.0,
            b_dup: 1.0,
            out_dup: 1.0,
        }
    }

    fn small_cfg(tiles: usize) -> AcceleratorConfig {
        AcceleratorConfig {
            tiles,
            check_golden: true,
            ..AcceleratorConfig::fpraker_paper()
        }
    }

    #[test]
    fn golden_check_passes_on_random_gemm() {
        let op = random_op(20, 12, 24, 3, 1);
        let out = simulate_op_fpraker(&op, &small_cfg(2));
        assert_eq!(out.golden_failures, 0);
        assert_eq!(out.macs, 20 * 12 * 24);
        assert!(out.compute_cycles > 0);
    }

    #[test]
    fn baseline_cycles_match_formula() {
        let op = random_op(16, 16, 32, 2, 2);
        let cfg = AcceleratorConfig {
            tiles: 1,
            ..AcceleratorConfig::baseline_paper()
        };
        let out = simulate_op_baseline(&op, &cfg);
        // 2x2 blocks of 8x8 outputs, 4 k-sets each, 1 tile: 16 cycles.
        assert_eq!(out.compute_cycles, 16);
        // With 8 tiles the 4 blocks round-robin: 4 cycles.
        let out8 = simulate_op_baseline(&op, &AcceleratorConfig::baseline_paper());
        assert_eq!(out8.compute_cycles, 4);
    }

    #[test]
    fn more_tiles_never_slower() {
        let op = random_op(64, 16, 16, 4, 3);
        let c1 = simulate_op_fpraker(&op, &small_cfg(4)).compute_cycles;
        let c2 = simulate_op_fpraker(&op, &small_cfg(8)).compute_cycles;
        assert!(c2 <= c1, "{c2} > {c1}");
    }

    #[test]
    fn power_of_two_values_run_faster_than_dense_mantissas() {
        // Single-term significands stream in fewer cycles than full ones.
        let mut sparse = random_op(16, 16, 16, 2, 4);
        for v in &mut sparse.a {
            *v = Bf16::from_parts(v.sign(), v.exponent(), 0x80); // 1.0000000
        }
        let mut dense = sparse.clone();
        for v in &mut dense.a {
            *v = Bf16::from_parts(v.sign(), v.exponent(), 0xD5); // 1.1010101
        }
        let cfg = AcceleratorConfig {
            serial_policy: SerialPolicy::AlwaysA,
            ..small_cfg(1)
        };
        let cs = simulate_op_fpraker(&sparse, &cfg).compute_cycles;
        let cd = simulate_op_fpraker(&dense, &cfg).compute_cycles;
        assert!(cs < cd, "sparse {cs} vs dense {cd}");
    }

    #[test]
    fn bdc_reduces_offchip_traffic_on_correlated_exponents() {
        let mut op = random_op(32, 32, 32, 0, 5); // all exponents equal
        for v in op.a.iter_mut().chain(op.b.iter_mut()) {
            *v = Bf16::from_parts(v.sign(), 0, v.significand());
        }
        let with = simulate_op_fpraker(&op, &small_cfg(1));
        let without = simulate_op_fpraker(
            &op,
            &AcceleratorConfig {
                bdc_offchip: false,
                ..small_cfg(1)
            },
        );
        assert!(
            with.traffic.total() < without.traffic.total() * 3 / 4,
            "{} vs {}",
            with.traffic.total(),
            without.traffic.total()
        );
        // Compression never changes compute cycles.
        assert_eq!(with.compute_cycles, without.compute_cycles);
    }

    #[test]
    fn serial_policy_sparser_picks_the_better_side() {
        let mut op = random_op(16, 16, 16, 2, 6);
        // Make B single-term, A dense: Sparser should match AlwaysB.
        for v in &mut op.b {
            *v = Bf16::from_parts(v.sign(), v.exponent(), 0x80);
        }
        for v in &mut op.a {
            *v = Bf16::from_parts(v.sign(), v.exponent(), 0xFF);
        }
        let base = small_cfg(1);
        let auto = simulate_op_fpraker(
            &op,
            &AcceleratorConfig {
                serial_policy: SerialPolicy::Sparser,
                ..base.clone()
            },
        );
        let forced_b = simulate_op_fpraker(
            &op,
            &AcceleratorConfig {
                serial_policy: SerialPolicy::AlwaysB,
                ..base.clone()
            },
        );
        let forced_a = simulate_op_fpraker(
            &op,
            &AcceleratorConfig {
                serial_policy: SerialPolicy::AlwaysA,
                ..base
            },
        );
        assert_eq!(auto.compute_cycles, forced_b.compute_cycles);
        assert!(auto.compute_cycles < forced_a.compute_cycles);
    }

    #[test]
    fn narrower_theta_never_slower() {
        let op = random_op(16, 16, 32, 6, 7);
        let mut narrow = small_cfg(1);
        narrow.theta_overrides.push(("test".into(), 4));
        narrow.check_golden = false;
        let mut wide = small_cfg(1);
        wide.check_golden = false;
        let cn = simulate_op_fpraker(&op, &narrow).compute_cycles;
        let cw = simulate_op_fpraker(&op, &wide).compute_cycles;
        assert!(cn <= cw, "narrow θ slower: {cn} > {cw}");
    }

    #[test]
    fn event_counts_are_consistent() {
        let op = random_op(8, 8, 16, 3, 8);
        let out = simulate_op_fpraker(&op, &small_cfg(1));
        assert_eq!(out.counts.terms, out.stats.terms.processed);
        assert!(out.counts.pe_active_cycles > 0);
        assert_eq!(out.counts.dram_bytes, out.traffic.total());
        // Two k-sets per PE over one block: 64 PEs * 2 sets.
        assert_eq!(out.stats.sets, 128);
        assert_eq!(out.counts.a_values_encoded, 128 / 8 * 8);
    }
}
