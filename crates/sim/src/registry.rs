//! Named machine specifications — the registry behind textual machine
//! selection.
//!
//! Binaries, the service layer (`fpraker-serve`) and scripts select an
//! accelerator by *name* rather than by constructing a
//! [`crate::AcceleratorConfig`] in code. The registry maps each name to
//! the energy-accounting family ([`Machine`]) plus the paper configuration
//! it denotes, so every entry point resolves specs identically:
//!
//! | name | machine | configuration |
//! |---|---|---|
//! | `fpraker` | [`Machine::FpRaker`] | [`AcceleratorConfig::fpraker_paper`] (36 tiles, Table II) |
//! | `baseline` | [`Machine::Baseline`] | [`AcceleratorConfig::baseline_paper`] (8 bit-parallel tiles) |
//! | `pragmatic` | [`Machine::FpRaker`] | [`AcceleratorConfig::pragmatic_paper`] (bfloat16 Bit-Pragmatic, 20 tiles) |
//!
//! ```
//! use fpraker_sim::{machine_names, resolve_machine, Machine};
//!
//! let (machine, cfg) = resolve_machine("fpraker").unwrap();
//! assert_eq!(machine, Machine::FpRaker);
//! assert_eq!(cfg.tiles, 36);
//! assert!(resolve_machine("tpu").is_none());
//! assert!(machine_names().contains(&"baseline"));
//! ```

use crate::config::AcceleratorConfig;
use crate::run::Machine;

/// One registry entry: a spec name, its energy-accounting family, the
/// configuration it denotes, and a one-line description (for `--help`
/// output and error messages).
#[derive(Clone, Copy, Debug)]
pub struct MachineSpec {
    /// The name clients submit (e.g. over the `fpraker-serve` protocol).
    pub name: &'static str,
    /// Which energy accounting family the config belongs to.
    pub machine: Machine,
    /// Builds the accelerator configuration this name denotes — carried
    /// on the entry so adding a machine cannot desynchronize name and
    /// config.
    pub config: fn() -> AcceleratorConfig,
    /// Human-readable summary of the configuration.
    pub summary: &'static str,
}

/// Every named machine the registry resolves, in presentation order.
pub const MACHINE_SPECS: [MachineSpec; 3] = [
    MachineSpec {
        name: "fpraker",
        machine: Machine::FpRaker,
        config: AcceleratorConfig::fpraker_paper,
        summary: "FPRaker accelerator, 36 term-serial tiles (Table II)",
    },
    MachineSpec {
        name: "baseline",
        machine: Machine::Baseline,
        config: AcceleratorConfig::baseline_paper,
        summary: "bit-parallel bfloat16 baseline, 8 tiles (Table II)",
    },
    MachineSpec {
        name: "pragmatic",
        machine: Machine::FpRaker,
        config: AcceleratorConfig::pragmatic_paper,
        summary: "bfloat16 Bit-Pragmatic point of comparison, 20 tiles (Section I)",
    },
];

/// The names [`resolve_machine`] accepts, in presentation order.
pub fn machine_names() -> Vec<&'static str> {
    MACHINE_SPECS.iter().map(|s| s.name).collect()
}

/// Resolves a machine spec name (case-insensitive) to its energy family
/// and paper configuration; `None` for unknown names.
pub fn resolve_machine(name: &str) -> Option<(Machine, AcceleratorConfig)> {
    let spec = MACHINE_SPECS
        .iter()
        .find(|s| s.name.eq_ignore_ascii_case(name.trim()))?;
    Some((spec.machine, (spec.config)()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_registered_name_resolves() {
        for spec in MACHINE_SPECS {
            let (machine, _) = resolve_machine(spec.name).expect(spec.name);
            assert_eq!(machine, spec.machine);
        }
        assert_eq!(machine_names().len(), MACHINE_SPECS.len());
    }

    #[test]
    fn resolution_is_case_insensitive_and_trims() {
        assert!(resolve_machine(" FPRaker ").is_some());
        assert!(resolve_machine("BASELINE").is_some());
        assert!(resolve_machine("").is_none());
        assert!(resolve_machine("unknown").is_none());
    }

    #[test]
    fn configs_match_the_paper_tables() {
        assert_eq!(resolve_machine("fpraker").unwrap().1.tiles, 36);
        assert_eq!(resolve_machine("baseline").unwrap().1.tiles, 8);
        assert_eq!(resolve_machine("pragmatic").unwrap().1.tiles, 20);
    }
}
