//! The accelerator-level simulator of the FPRaker reproduction.
//!
//! Mirrors the paper's custom cycle-accurate simulator (Section V-A):
//! GEMM traces stream through the cycle-faithful tile model of
//! [`fpraker-core`], tiled over the accelerator's tiles under the
//! iso-compute-area configurations of Table II (36 FPRaker tiles vs 8
//! bit-parallel tiles, 4096 bfloat16 MACs/cycle each way); produced values
//! are optionally checked against exact golden references, off-chip
//! traffic is modelled with optional exponent base-delta compression, and
//! event counts feed the Table III-calibrated energy model.
//!
//! # Example
//!
//! ```
//! use fpraker_sim::{simulate_trace_fpraker, simulate_trace_baseline, speedup, AcceleratorConfig};
//! use fpraker_trace::Trace;
//!
//! let trace = Trace::new("empty", 0);
//! let fp = simulate_trace_fpraker(&trace, &AcceleratorConfig::fpraker_paper());
//! let bl = simulate_trace_baseline(&trace, &AcceleratorConfig::baseline_paper());
//! assert_eq!(fp.cycles(), 0);
//! assert_eq!(bl.cycles(), 0);
//! assert!(speedup(&fp, &bl).is_finite());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod op;
mod run;

pub use config::{AcceleratorConfig, SerialPolicy};
pub use op::{pe_dot_with_reference, simulate_op_baseline, simulate_op_fpraker, OpOutcome};
pub use run::{
    energy_efficiency, simulate_trace_baseline, simulate_trace_fpraker, speedup, Machine,
    RunResult,
};
