//! The accelerator-level simulator of the FPRaker reproduction.
//!
//! Mirrors the paper's custom cycle-accurate simulator (Section V-A):
//! GEMM traces stream through a block-level machine model, tiled over the
//! accelerator's tiles under the iso-compute-area configurations of
//! Table II (36 FPRaker tiles vs 8 bit-parallel tiles, 4096 bfloat16
//! MACs/cycle each way); produced values are optionally checked against
//! exact golden references, off-chip traffic is modelled with optional
//! exponent base-delta compression, and event counts feed the
//! Table III-calibrated energy model.
//!
//! # Architecture: one engine, pluggable machines
//!
//! Both machines of the paper's comparison — and any future datapath
//! variant — implement the [`fpraker_core::MachineModel`] trait: *given
//! one output block's operand streams, report its cycles, statistics and
//! outputs*. A single generic driver ([`simulate_op`]) handles everything
//! around the block model:
//!
//! * serial-operand policy and per-layer θ overrides;
//! * tiling the GEMM into `rows × cols` blocks and round-robin block
//!   scheduling over tiles;
//! * scheduling `(op, block-range)` work units across one shared worker
//!   pool ([`Engine`]): ops and blocks fan out *together*, with a
//!   fixed-order unsigned reduction so results are **bit-identical for
//!   every worker count**;
//! * streaming: [`Engine::run_source`] drives the same scheduler from any
//!   [`fpraker_trace::TraceSource`] (e.g. an incremental
//!   `fpraker_trace::codec::Reader` over a file) under a bounded
//!   in-flight op window, so traces far larger than RAM simulate in
//!   bounded memory with bit-identical results;
//! * golden-value checking against the exact `f64` reference;
//! * off-chip traffic (optionally BDC-compressed) overlapped with compute,
//!   and the event counts the energy model consumes.
//!
//! # Adding a machine
//!
//! Implement `MachineModel` in one file (see
//! [`fpraker_core::machine`] for the contract and the two built-ins),
//! then either extend [`Machine`] or call
//! [`Engine::simulate_trace_with`] directly:
//!
//! ```
//! use fpraker_core::FpRakerMachine; // your machine here
//! use fpraker_sim::{AcceleratorConfig, Engine, Machine};
//! use fpraker_trace::Trace;
//!
//! let engine = Engine::with_threads(2);
//! let run = engine.simulate_trace_with::<FpRakerMachine>(
//!     Machine::FpRaker, // energy accounting family
//!     &Trace::new("empty", 0),
//!     &AcceleratorConfig::fpraker_paper(),
//! );
//! assert_eq!(run.cycles(), 0);
//! ```
//!
//! # Example
//!
//! ```
//! use fpraker_sim::{simulate_trace_fpraker, simulate_trace_baseline, speedup, AcceleratorConfig};
//! use fpraker_trace::Trace;
//!
//! let trace = Trace::new("empty", 0);
//! let fp = simulate_trace_fpraker(&trace, &AcceleratorConfig::fpraker_paper());
//! let bl = simulate_trace_baseline(&trace, &AcceleratorConfig::baseline_paper());
//! assert_eq!(fp.cycles(), 0);
//! assert_eq!(bl.cycles(), 0);
//! assert!(speedup(&fp, &bl).is_finite());
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod config;
mod engine;
mod op;
mod registry;
mod run;
mod sched;

pub use config::{AcceleratorConfig, SerialPolicy};
pub use engine::{Engine, EngineTelemetry};
pub use fpraker_core::{
    BaselineMachine, FpRakerMachine, MachineBlock, MachineEvents, MachineModel,
};
pub use fpraker_trace::{DecodeError, TraceSource};
pub use op::{pe_dot_with_reference, simulate_op, OpOutcome};
pub use registry::{machine_names, resolve_machine, MachineSpec, MACHINE_SPECS};
pub use run::{
    energy_efficiency, simulate_trace_baseline, simulate_trace_fpraker, speedup, Machine,
    MergeError, RunResult, StreamRun,
};
