//! Accelerator configurations (Table II).

use fpraker_core::TileConfig;
use fpraker_energy::area::iso_area_fpraker_tiles;
use fpraker_mem::DramModel;

/// Which operand is processed term-serially (Section IV: "FPRaker allows
/// us to choose which tensor input we wish to process serially per layer").
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum SerialPolicy {
    /// Always stream the trace's A operand serially.
    #[default]
    AlwaysA,
    /// Always stream the trace's B operand serially (swapped).
    AlwaysB,
    /// Per op, stream whichever operand has higher term sparsity.
    Sparser,
}

/// Full accelerator configuration.
#[derive(Clone, Debug)]
pub struct AcceleratorConfig {
    /// Number of tiles (iso-compute-area: 36 FPRaker vs 8 baseline).
    pub tiles: usize,
    /// Per-tile configuration.
    pub tile: TileConfig,
    /// Exponent base-delta compression of off-chip traffic (Section IV-D).
    pub bdc_offchip: bool,
    /// Serial-operand selection policy.
    pub serial_policy: SerialPolicy,
    /// Off-chip bandwidth model.
    pub dram: DramModel,
    /// Verify every output against the exact `f64` reference (the paper's
    /// golden-value checking). Slows simulation; enabled in tests.
    pub check_golden: bool,
    /// Per-layer out-of-bounds-threshold overrides (layer name → θ), the
    /// per-layer accumulator-width mechanism of Fig. 21.
    pub theta_overrides: Vec<(String, i32)>,
}

impl AcceleratorConfig {
    /// The paper's FPRaker configuration: 36 tiles of 8×8 PEs (Table II).
    pub fn fpraker_paper() -> Self {
        AcceleratorConfig {
            tiles: iso_area_fpraker_tiles(8),
            tile: TileConfig::paper(),
            bdc_offchip: true,
            serial_policy: SerialPolicy::Sparser,
            dram: DramModel::paper(),
            check_golden: false,
            theta_overrides: Vec::new(),
        }
    }

    /// The bfloat16 Bit-Pragmatic point of comparison from the paper's
    /// introduction: term-serial like FPRaker but with full-width shifters
    /// (no Δ window), no out-of-bounds skipping and no exponent-block
    /// sharing. Its PE is only 2.5× smaller than the bit-parallel PE
    /// (Section I), so iso-compute-area affords just 20 tiles — "we cannot
    /// fit enough of them to boost performance via parallelism".
    pub fn pragmatic_paper() -> Self {
        let mut tile = TileConfig::paper();
        tile.pe.max_shift_window = 15; // full-range shifters
        tile.pe.ob_skip = false;
        tile.share_exponent_block = false; // per-PE exponent hardware
        AcceleratorConfig {
            tiles: 20, // 8 baseline tiles × 2.5 area ratio
            tile,
            bdc_offchip: false,
            serial_policy: SerialPolicy::AlwaysA,
            dram: DramModel::paper(),
            check_golden: false,
            theta_overrides: Vec::new(),
        }
    }

    /// The paper's baseline: 8 tiles of 8×8 bit-parallel PEs, 4096
    /// bfloat16 MACs/cycle (Table II), no compression.
    pub fn baseline_paper() -> Self {
        AcceleratorConfig {
            tiles: 8,
            tile: TileConfig::paper(),
            bdc_offchip: false,
            serial_policy: SerialPolicy::AlwaysA,
            dram: DramModel::paper(),
            check_golden: false,
            theta_overrides: Vec::new(),
        }
    }

    /// Looks up a per-layer θ override.
    pub fn theta_for(&self, layer: &str) -> Option<i32> {
        self.theta_overrides
            .iter()
            .find(|(l, _)| l == layer)
            .map(|(_, t)| *t)
    }

    /// Peak MACs per cycle of this configuration.
    pub fn peak_macs_per_cycle(&self) -> u64 {
        (self.tiles * self.tile.lanes_total()) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_configs_match_table_ii() {
        let fp = AcceleratorConfig::fpraker_paper();
        assert_eq!(fp.tiles, 36);
        assert_eq!(fp.tile.num_pes(), 64);
        let bl = AcceleratorConfig::baseline_paper();
        assert_eq!(bl.tiles, 8);
        assert_eq!(bl.peak_macs_per_cycle(), 4096);
    }

    #[test]
    fn pragmatic_config_matches_the_introduction() {
        let pr = AcceleratorConfig::pragmatic_paper();
        assert_eq!(pr.tiles, 20);
        assert!(!pr.tile.pe.ob_skip);
        assert!(!pr.tile.share_exponent_block);
        assert!(pr.tile.pe.max_shift_window >= 12);
    }

    #[test]
    fn theta_lookup() {
        let mut cfg = AcceleratorConfig::fpraker_paper();
        cfg.theta_overrides.push(("conv1".into(), 6));
        assert_eq!(cfg.theta_for("conv1"), Some(6));
        assert_eq!(cfg.theta_for("conv2"), None);
    }
}
