//! The op×block work scheduler: one shared worker budget for a whole trace.
//!
//! The per-op fan-out of the first parallel engine serialized trace ops: a
//! trace of 200 small GEMMs ran as 200 barrier-separated scoped fan-outs,
//! each too small to occupy the workers. This module schedules *ops and
//! blocks together*:
//!
//! 1. **Plan** — every op is tiled up front ([`plan_op`]) and split into
//!    contiguous block-range *work units* (`(op, [lo, hi))`), all pushed
//!    into one injector queue in trace order.
//! 2. **Execute** — a persistent pool of `workers` threads (spawned once
//!    per run, not once per op) claims units off the queue with an atomic
//!    cursor and deposits each unit's [`BlockAccum`] into its pre-sized
//!    slot in a slot table. Units from different ops interleave freely, so
//!    many small ops saturate the pool just like one large op.
//! 3. **Fold** — after the pool drains, a single-threaded pass walks the
//!    slot table *in unit order* (which is trace order), merges each op's
//!    partials with unsigned addition, and finishes the op
//!    ([`finish_op`]: latency, traffic, energy events).
//!
//! Because every per-block quantity reduces with unsigned integer addition
//! in a fixed order, the result is **bit-identical for every worker
//! count** — scheduling only ever moves wall-clock time, never simulated
//! results. `crates/sim/tests/determinism.rs` and
//! `crates/sim/tests/scheduler.rs` pin this invariant.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::thread;

use fpraker_core::MachineModel;
use fpraker_trace::TraceOp;

use crate::config::AcceleratorConfig;
use crate::op::{finish_op, plan_op, resolve_threads, run_unit, BlockAccum, OpOutcome, OpPlan};

/// One schedulable unit: a contiguous block range of one op.
struct WorkUnit {
    /// Index of the op in the trace.
    op: usize,
    /// First block (inclusive).
    lo: usize,
    /// Last block (exclusive).
    hi: usize,
}

/// Splits every op's blocks into work units, in trace order.
///
/// Granularity: each op is cut into at most `workers` contiguous chunks
/// (the same chunking the per-op fan-out used), so a single large GEMM
/// still spreads over the whole pool while a small GEMM stays one unit and
/// keeps its A-stream row cache intact.
fn build_units(plans: &[OpPlan], workers: usize) -> Vec<WorkUnit> {
    let mut units = Vec::new();
    for (op, plan) in plans.iter().enumerate() {
        if plan.blocks == 0 {
            continue;
        }
        let chunk = plan.blocks.div_ceil(workers).max(1);
        let mut lo = 0;
        while lo < plan.blocks {
            let hi = (lo + chunk).min(plan.blocks);
            units.push(WorkUnit { op, lo, hi });
            lo = hi;
        }
    }
    units
}

/// Simulates a slice of ops under one shared worker budget and returns
/// their outcomes in input order.
///
/// `threads = 0` means one worker per available core; the effective worker
/// count is additionally clamped to the number of work units (there is
/// nothing for surplus workers to do). With one worker the trace runs on
/// the calling thread with no pool at all — that is the sequential
/// reference every other worker count must match bit for bit.
pub(crate) fn simulate_ops_scheduled<M: MachineModel>(
    ops: &[TraceOp],
    cfg: &AcceleratorConfig,
    threads: usize,
) -> Vec<OpOutcome> {
    let budget = resolve_threads(threads);
    if budget <= 1 {
        // Sequential reference path: each op is planned, run as one
        // contiguous range, and finished before the next is touched — at
        // most one serial-policy-swapped operand copy is alive at a time.
        return ops
            .iter()
            .map(|op| {
                let plan = plan_op(op, cfg);
                let acc = if plan.blocks > 0 {
                    run_unit::<M>(&plan, cfg, 0, plan.blocks)
                } else {
                    BlockAccum::new(cfg.tiles)
                };
                finish_op::<M>(&plan, cfg, acc)
            })
            .collect();
    }

    // Parallel path: plan the whole trace up front so any worker can claim
    // any unit. Note the memory trade-off: ops whose serial policy swaps
    // operands hold an owned swapped copy for the run's duration, so a
    // fully-swapped trace peaks at ~2x operand memory (the planned trace
    // streaming work on ROADMAP.md is the structural fix).
    let plans: Vec<OpPlan> = ops.iter().map(|op| plan_op(op, cfg)).collect();
    let units = build_units(&plans, budget);
    let workers = budget.min(units.len()).max(1);

    if workers <= 1 {
        return plans
            .iter()
            .map(|plan| {
                let acc = if plan.blocks > 0 {
                    run_unit::<M>(plan, cfg, 0, plan.blocks)
                } else {
                    BlockAccum::new(cfg.tiles)
                };
                finish_op::<M>(plan, cfg, acc)
            })
            .collect();
    }

    // Injector queue (an atomic cursor over the unit list) and the
    // pre-sized slot table the workers deposit partial results into. Each
    // slot is written exactly once, by whichever worker claimed the unit.
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<BlockAccum>>> =
        (0..units.len()).map(|_| Mutex::new(None)).collect();
    thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(unit) = units.get(i) else { break };
                let acc = run_unit::<M>(&plans[unit.op], cfg, unit.lo, unit.hi);
                *slots[i].lock().expect("slot lock poisoned") = Some(acc);
            });
        }
    });

    // Deterministic fold: units were built in trace order, so walking the
    // slot table front to back merges every op's partials in block order —
    // bit-identical to the sequential reduction.
    let mut results = Vec::with_capacity(plans.len());
    let mut unit_idx = 0;
    for (op_idx, plan) in plans.iter().enumerate() {
        let mut acc = BlockAccum::new(cfg.tiles);
        while unit_idx < units.len() && units[unit_idx].op == op_idx {
            let partial = slots[unit_idx]
                .lock()
                .expect("slot lock poisoned")
                .take()
                .expect("worker pool drained every unit");
            acc.merge(&partial);
            unit_idx += 1;
        }
        results.push(finish_op::<M>(plan, cfg, acc));
    }
    results
}

/// The number of work units a run with the given worker budget would
/// schedule — what the budget is clamped against. Mirrors the chunking in
/// [`build_units`] exactly (each op yields `ceil(blocks / chunk)` units
/// with `chunk = ceil(blocks / budget)`), without materializing any plan.
pub(crate) fn planned_units(ops: &[TraceOp], cfg: &AcceleratorConfig, budget: usize) -> usize {
    ops.iter()
        .map(|op| {
            let blocks = crate::op::planned_blocks(op, cfg);
            if blocks == 0 {
                0
            } else {
                blocks.div_ceil(blocks.div_ceil(budget.max(1)).max(1))
            }
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpraker_core::{BaselineMachine, FpRakerMachine};
    use fpraker_num::reference::SplitMix64;
    use fpraker_trace::{Phase, TensorKind};

    fn tiny_ops(count: usize) -> Vec<TraceOp> {
        let mut rng = SplitMix64::new(42);
        (0..count)
            .map(|i| {
                let (m, n, k) = (4 + (i % 3) * 4, 4 + (i % 2) * 4, 8);
                TraceOp {
                    layer: format!("l{i}"),
                    phase: Phase::AxW,
                    m,
                    n,
                    k,
                    a: (0..m * k).map(|_| rng.bf16_in_range(3)).collect(),
                    b: (0..n * k).map(|_| rng.bf16_in_range(3)).collect(),
                    a_kind: TensorKind::Activation,
                    b_kind: TensorKind::Weight,
                    a_dup: 1.0,
                    b_dup: 1.0,
                    out_dup: 1.0,
                }
            })
            .collect()
    }

    #[test]
    fn units_cover_every_block_exactly_once() {
        let ops = tiny_ops(5);
        let cfg = AcceleratorConfig::fpraker_paper();
        let plans: Vec<OpPlan> = ops.iter().map(|op| plan_op(op, &cfg)).collect();
        for workers in [1, 2, 7] {
            let units = build_units(&plans, workers);
            for (op_idx, plan) in plans.iter().enumerate() {
                let mut covered = 0;
                let mut expect_lo = 0;
                for u in units.iter().filter(|u| u.op == op_idx) {
                    assert_eq!(u.lo, expect_lo, "contiguous ranges");
                    assert!(u.hi > u.lo);
                    covered += u.hi - u.lo;
                    expect_lo = u.hi;
                }
                assert_eq!(covered, plan.blocks, "op {op_idx} at {workers} workers");
            }
        }
    }

    #[test]
    fn scheduled_ops_match_sequential_on_both_machines() {
        let ops = tiny_ops(12);
        let cfg = AcceleratorConfig::fpraker_paper();
        let seq = simulate_ops_scheduled::<FpRakerMachine>(&ops, &cfg, 1);
        let par = simulate_ops_scheduled::<FpRakerMachine>(&ops, &cfg, 4);
        for (s, p) in seq.iter().zip(&par) {
            assert_eq!(s.cycles, p.cycles);
            assert_eq!(s.stats, p.stats);
        }
        let bl_cfg = AcceleratorConfig::baseline_paper();
        let seq = simulate_ops_scheduled::<BaselineMachine>(&ops, &bl_cfg, 1);
        let par = simulate_ops_scheduled::<BaselineMachine>(&ops, &bl_cfg, 4);
        for (s, p) in seq.iter().zip(&par) {
            assert_eq!(s.cycles, p.cycles);
        }
    }

    #[test]
    fn empty_op_list_yields_no_outcomes() {
        let cfg = AcceleratorConfig::fpraker_paper();
        assert!(simulate_ops_scheduled::<FpRakerMachine>(&[], &cfg, 8).is_empty());
    }

    #[test]
    fn planned_units_mirror_the_built_schedule() {
        let ops = tiny_ops(5);
        let cfg = AcceleratorConfig::fpraker_paper();
        let plans: Vec<OpPlan> = ops.iter().map(|op| plan_op(op, &cfg)).collect();
        for budget in [1usize, 2, 7, 64, usize::MAX] {
            assert_eq!(
                planned_units(&ops, &cfg, budget),
                build_units(&plans, budget).len(),
                "budget {budget}"
            );
        }
        // Unbounded budget degenerates to one unit per block; budget 1 to
        // one unit per op.
        let total: usize = plans.iter().map(|p| p.blocks).sum();
        assert_eq!(planned_units(&ops, &cfg, usize::MAX), total);
        assert_eq!(planned_units(&ops, &cfg, 1), ops.len());
    }
}
