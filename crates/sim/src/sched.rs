//! The op×block work scheduler: one shared worker budget for a whole trace.
//!
//! The per-op fan-out of the first parallel engine serialized trace ops: a
//! trace of 200 small GEMMs ran as 200 barrier-separated scoped fan-outs,
//! each too small to occupy the workers. This module schedules *ops and
//! blocks together*:
//!
//! 1. **Plan** — every op is tiled up front ([`plan_op`]) and split into
//!    contiguous block-range *work units* (`(op, [lo, hi))`), all pushed
//!    into one injector queue in trace order.
//! 2. **Execute** — a persistent pool of `workers` threads (spawned once
//!    per run, not once per op) claims units off the queue with an atomic
//!    cursor and deposits each unit's [`BlockAccum`] into its pre-sized
//!    slot in a slot table. Units from different ops interleave freely, so
//!    many small ops saturate the pool just like one large op.
//! 3. **Fold** — after the pool drains, a single-threaded pass walks the
//!    slot table *in unit order* (which is trace order), merges each op's
//!    partials with unsigned addition, and finishes the op
//!    ([`finish_op`]: latency, traffic, energy events).
//!
//! Because every per-block quantity reduces with unsigned integer addition
//! in a fixed order, the result is **bit-identical for every worker
//! count** — scheduling only ever moves wall-clock time, never simulated
//! results. `crates/sim/tests/determinism.rs` and
//! `crates/sim/tests/scheduler.rs` pin this invariant.
//!
//! # Streaming: the bounded in-flight op window
//!
//! The plan-everything-up-front pipeline above needs the whole trace in
//! memory. [`simulate_source_scheduled`] is the same three stages driven
//! by any [`TraceSource`] under a **bounded window** of in-flight ops:
//! the calling thread decodes and plans ops only while fewer than
//! `window` are in flight, workers execute their block-range units, and
//! ops are folded (and their operand buffers dropped) in trace order as
//! soon as their last unit finishes. Peak resident operand memory is
//! `window` ops, whatever the trace length — the fold order and the
//! unsigned merges are unchanged, so streamed results are bit-identical
//! to the in-memory path at every worker count
//! (`crates/sim/tests/streaming.rs`).

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::Instant;

use fpraker_core::MachineModel;
use fpraker_trace::{DecodeError, SegmentCursor, TraceOp, TraceSource};

use crate::config::AcceleratorConfig;
use crate::op::{
    finish_op, plan_op, plan_owned_op, resolve_threads, run_unit, BlockAccum, OpOutcome, OpPlan,
};

/// Adds the nanoseconds elapsed since `start` to `counter`. `start` is
/// `None` when telemetry was disabled at interval entry (the pattern is
/// `fpraker_telemetry::enabled().then(Instant::now)`, so the disabled
/// path never reads the clock).
fn add_elapsed_ns(counter: &'static fpraker_telemetry::Counter, start: Option<Instant>) {
    if let Some(t) = start {
        counter.add(u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX));
    }
}

/// One schedulable unit: a contiguous block range of one op.
struct WorkUnit {
    /// Index of the op in the trace.
    op: usize,
    /// First block (inclusive).
    lo: usize,
    /// Last block (exclusive).
    hi: usize,
}

/// Splits every op's blocks into work units, in trace order.
///
/// Granularity: each op is cut into at most `workers` contiguous chunks
/// (the same chunking the per-op fan-out used), so a single large GEMM
/// still spreads over the whole pool while a small GEMM stays one unit and
/// keeps its A-stream row cache intact.
fn build_units(plans: &[OpPlan], workers: usize) -> Vec<WorkUnit> {
    let mut units = Vec::new();
    for (op, plan) in plans.iter().enumerate() {
        if plan.blocks == 0 {
            continue;
        }
        let chunk = plan.blocks.div_ceil(workers).max(1);
        let mut lo = 0;
        while lo < plan.blocks {
            let hi = (lo + chunk).min(plan.blocks);
            units.push(WorkUnit { op, lo, hi });
            lo = hi;
        }
    }
    units
}

/// Simulates a slice of ops under one shared worker budget and returns
/// their outcomes in input order.
///
/// `threads = 0` means one worker per available core; the effective worker
/// count is additionally clamped to the number of work units (there is
/// nothing for surplus workers to do). With one worker the trace runs on
/// the calling thread with no pool at all — that is the sequential
/// reference every other worker count must match bit for bit.
pub(crate) fn simulate_ops_scheduled<M: MachineModel>(
    ops: &[TraceOp],
    cfg: &AcceleratorConfig,
    threads: usize,
) -> Vec<OpOutcome> {
    let budget = resolve_threads(threads);
    if budget <= 1 {
        // Sequential reference path: each op is planned, run as one
        // contiguous range, and finished before the next is touched — at
        // most one serial-policy-swapped operand copy is alive at a time.
        return ops
            .iter()
            .map(|op| {
                let plan = plan_op(op, cfg);
                let acc = if plan.blocks > 0 {
                    run_unit::<M>(&plan, cfg, 0, plan.blocks)
                } else {
                    BlockAccum::new(cfg.tiles)
                };
                finish_op::<M>(&plan, cfg, acc)
            })
            .collect();
    }

    // Parallel path: plan the whole trace up front so any worker can claim
    // any unit. Note the memory trade-off: ops whose serial policy swaps
    // operands hold an owned swapped copy for the run's duration, so a
    // fully-swapped trace peaks at ~2x operand memory (the planned trace
    // streaming work on ROADMAP.md is the structural fix).
    let plans: Vec<OpPlan> = ops.iter().map(|op| plan_op(op, cfg)).collect();
    let units = build_units(&plans, budget);
    let workers = budget.min(units.len()).max(1);

    if workers <= 1 {
        return plans
            .iter()
            .map(|plan| {
                let acc = if plan.blocks > 0 {
                    run_unit::<M>(plan, cfg, 0, plan.blocks)
                } else {
                    BlockAccum::new(cfg.tiles)
                };
                finish_op::<M>(plan, cfg, acc)
            })
            .collect();
    }

    // Injector queue (an atomic cursor over the unit list) and the
    // pre-sized slot table the workers deposit partial results into. Each
    // slot is written exactly once, by whichever worker claimed the unit.
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<BlockAccum>>> =
        (0..units.len()).map(|_| Mutex::new(None)).collect();
    thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(unit) = units.get(i) else { break };
                fpraker_telemetry::gauge!("sim_queue_depth")
                    .set(units.len().saturating_sub(i + 1) as i64);
                let busy = fpraker_telemetry::enabled().then(Instant::now);
                let acc = run_unit::<M>(&plans[unit.op], cfg, unit.lo, unit.hi);
                *slots[i].lock().expect("slot lock poisoned") = Some(acc);
                add_elapsed_ns(
                    fpraker_telemetry::counter!("sim_worker_busy_ns_total"),
                    busy,
                );
            });
        }
    });

    // Deterministic fold: units were built in trace order, so walking the
    // slot table front to back merges every op's partials in block order —
    // bit-identical to the sequential reduction.
    let mut results = Vec::with_capacity(plans.len());
    let mut unit_idx = 0;
    for (op_idx, plan) in plans.iter().enumerate() {
        let mut acc = BlockAccum::new(cfg.tiles);
        while unit_idx < units.len() && units[unit_idx].op == op_idx {
            let partial = slots[unit_idx]
                .lock()
                .expect("slot lock poisoned")
                .take()
                .expect("worker pool drained every unit");
            acc.merge(&partial);
            unit_idx += 1;
        }
        results.push(finish_op::<M>(plan, cfg, acc));
    }
    results
}

/// The number of work units a run with the given worker budget would
/// schedule — what the budget is clamped against. Mirrors the chunking in
/// [`build_units`] exactly (each op yields `ceil(blocks / chunk)` units
/// with `chunk = ceil(blocks / budget)`), without materializing any plan.
pub(crate) fn planned_units(ops: &[TraceOp], cfg: &AcceleratorConfig, budget: usize) -> usize {
    ops.iter()
        .map(|op| {
            let blocks = crate::op::planned_blocks(op, cfg);
            if blocks == 0 {
                0
            } else {
                blocks.div_ceil(blocks.div_ceil(budget.max(1)).max(1))
            }
        })
        .sum()
}

/// The outcome of a streamed run: per-op outcomes in trace order plus the
/// observed peak of the in-flight op window.
#[derive(Debug)]
pub(crate) struct StreamSchedule {
    pub(crate) outcomes: Vec<OpOutcome>,
    /// Most ops simultaneously resident (planned but not yet folded).
    pub(crate) peak_resident_ops: usize,
}

/// One op in flight on the streaming path: its plan (owning the operand
/// buffers), one result slot per work unit, and the count of units still
/// executing. Shared `Arc`-style between the window (which folds it) and
/// the unit queue (which executes it); the operand buffers are freed when
/// the last reference drops, right after the op is folded.
struct InFlightOp {
    plan: OpPlan<'static>,
    slots: Vec<Mutex<Option<BlockAccum>>>,
    remaining: AtomicUsize,
}

/// One queued work unit of the streaming path.
struct StreamUnit {
    op: Arc<InFlightOp>,
    slot: usize,
    lo: usize,
    hi: usize,
}

/// The streaming pool's shared state: a unit queue the decoder refills and
/// workers drain, plus the two wakeup channels (workers waiting for units,
/// the folder waiting for a completed op).
struct StreamQueue {
    state: Mutex<StreamQueueState>,
    work: Condvar,
    op_done: Condvar,
}

struct StreamQueueState {
    units: VecDeque<StreamUnit>,
    closed: bool,
}

impl StreamQueue {
    fn new() -> Self {
        StreamQueue {
            state: Mutex::new(StreamQueueState {
                units: VecDeque::new(),
                closed: false,
            }),
            work: Condvar::new(),
            op_done: Condvar::new(),
        }
    }

    /// Marks the queue closed and wakes every parked worker so the pool
    /// can drain and exit.
    fn close(&self) {
        self.state.lock().expect("queue lock poisoned").closed = true;
        self.work.notify_all();
    }
}

/// Worker loop of the streaming pool: claim a unit, run its block range,
/// deposit the partial into the unit's slot, and signal the folder when an
/// op's last unit lands. Exits when the queue is closed and empty.
fn stream_worker<M: MachineModel>(queue: &StreamQueue, cfg: &AcceleratorConfig) {
    loop {
        let idle = fpraker_telemetry::enabled().then(Instant::now);
        let unit = {
            let mut st = queue.state.lock().expect("queue lock poisoned");
            loop {
                if let Some(u) = st.units.pop_front() {
                    fpraker_telemetry::gauge!("sim_queue_depth").set(st.units.len() as i64);
                    break u;
                }
                if st.closed {
                    return;
                }
                st = queue.work.wait(st).expect("queue lock poisoned");
            }
        };
        add_elapsed_ns(
            fpraker_telemetry::counter!("sim_worker_idle_ns_total"),
            idle,
        );
        let busy = fpraker_telemetry::enabled().then(Instant::now);
        let acc = run_unit::<M>(&unit.op.plan, cfg, unit.lo, unit.hi);
        *unit.op.slots[unit.slot].lock().expect("slot lock poisoned") = Some(acc);
        add_elapsed_ns(
            fpraker_telemetry::counter!("sim_worker_busy_ns_total"),
            busy,
        );
        if unit.op.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Last unit of this op: wake the folder. Taking the state lock
            // orders the notify after the folder's wait, so no wakeup is
            // lost.
            let _guard = queue.state.lock().expect("queue lock poisoned");
            queue.op_done.notify_all();
        }
    }
}

/// Plans one decoded op, splits it into work units (same chunking as
/// [`build_units`]) and enqueues them.
fn enqueue_op(
    op: TraceOp,
    cfg: &AcceleratorConfig,
    budget: usize,
    queue: &StreamQueue,
) -> Arc<InFlightOp> {
    let plan = plan_owned_op(op, cfg);
    let chunk = if plan.blocks == 0 {
        0
    } else {
        plan.blocks.div_ceil(budget).max(1)
    };
    let mut ranges = Vec::new();
    let mut lo = 0;
    while lo < plan.blocks {
        let hi = (lo + chunk).min(plan.blocks);
        ranges.push((lo, hi));
        lo = hi;
    }
    let in_flight = Arc::new(InFlightOp {
        plan,
        slots: ranges.iter().map(|_| Mutex::new(None)).collect(),
        remaining: AtomicUsize::new(ranges.len()),
    });
    {
        let mut st = queue.state.lock().expect("queue lock poisoned");
        for (slot, &(lo, hi)) in ranges.iter().enumerate() {
            st.units.push_back(StreamUnit {
                op: Arc::clone(&in_flight),
                slot,
                lo,
                hi,
            });
        }
        fpraker_telemetry::gauge!("sim_queue_depth").set(st.units.len() as i64);
    }
    queue.work.notify_all();
    in_flight
}

/// The decoder+folder loop of the streaming path, run on the calling
/// thread while the pool executes units. Keeps at most `window` ops in
/// flight; folds ops in trace order as their last unit completes.
fn pump_source<M: MachineModel, S: TraceSource>(
    source: &mut S,
    cfg: &AcceleratorConfig,
    queue: &StreamQueue,
    budget: usize,
    window: usize,
) -> Result<StreamSchedule, DecodeError> {
    let mut in_flight: VecDeque<Arc<InFlightOp>> = VecDeque::new();
    let mut outcomes = Vec::new();
    let mut peak = 0usize;
    let mut drained = false;
    loop {
        // Refill: decode and plan ahead while the window has room.
        while !drained && in_flight.len() < window {
            let decoded = {
                let _span = fpraker_telemetry::span!("sim_decode");
                source.next_op()?
            };
            match decoded {
                Some(op) => {
                    in_flight.push_back(enqueue_op(op, cfg, budget, queue));
                    peak = peak.max(in_flight.len());
                    fpraker_telemetry::gauge!("sim_window_occupancy").set(in_flight.len() as i64);
                }
                None => drained = true,
            }
        }
        // Fold: wait for the front op (trace order) to finish, merge its
        // unit partials in block order, and drop its operand buffers.
        let Some(front) = in_flight.front() else {
            debug_assert!(drained);
            break;
        };
        {
            let mut st = queue.state.lock().expect("queue lock poisoned");
            while front.remaining.load(Ordering::Acquire) != 0 {
                st = queue.op_done.wait(st).expect("queue lock poisoned");
            }
        }
        let done = in_flight.pop_front().expect("front exists");
        fpraker_telemetry::gauge!("sim_window_occupancy").set(in_flight.len() as i64);
        let mut acc = BlockAccum::new(cfg.tiles);
        for slot in &done.slots {
            let partial = slot
                .lock()
                .expect("slot lock poisoned")
                .take()
                .expect("completed op deposited every unit");
            acc.merge(&partial);
        }
        outcomes.push(finish_op::<M>(&done.plan, cfg, acc));
    }
    Ok(StreamSchedule {
        outcomes,
        peak_resident_ops: peak,
    })
}

/// Simulates every op of a [`TraceSource`] under one shared worker budget
/// and a bounded in-flight op window, returning outcomes in trace order.
///
/// `window` is the maximum number of ops simultaneously resident
/// (clamped to at least 1): the decoder plans ahead only while the window
/// has room, so peak operand memory is `window` ops regardless of trace
/// length. With a budget of one worker the source is processed strictly
/// one op at a time on the calling thread (peak residency 1) — the
/// sequential reference every other configuration must match bit for bit.
///
/// On a decode error the pool is shut down and the error is returned;
/// outcomes of ops decoded before the error are discarded.
pub(crate) fn simulate_source_scheduled<M: MachineModel, S: TraceSource>(
    source: &mut S,
    cfg: &AcceleratorConfig,
    threads: usize,
    window: usize,
) -> Result<StreamSchedule, DecodeError> {
    let budget = resolve_threads(threads);
    let window = window.max(1);
    if budget <= 1 {
        let mut outcomes = Vec::new();
        let mut peak = 0;
        loop {
            let decoded = {
                let _span = fpraker_telemetry::span!("sim_decode");
                source.next_op()?
            };
            let Some(op) = decoded else { break };
            peak = 1;
            let plan = plan_owned_op(op, cfg);
            let acc = if plan.blocks > 0 {
                run_unit::<M>(&plan, cfg, 0, plan.blocks)
            } else {
                BlockAccum::new(cfg.tiles)
            };
            outcomes.push(finish_op::<M>(&plan, cfg, acc));
        }
        return Ok(StreamSchedule {
            outcomes,
            peak_resident_ops: peak,
        });
    }

    let queue = StreamQueue::new();
    thread::scope(|scope| {
        for _ in 0..budget {
            scope.spawn(|| stream_worker::<M>(&queue, cfg));
        }
        let run = pump_source::<M, S>(source, cfg, &queue, budget, window);
        // Always close the queue — also on a decode error — so the pool
        // drains and the scope's implicit join cannot deadlock.
        queue.close();
        run
    })
}

/// Shared state of the parallel-segment-decode path: ops decoded by any
/// cursor, keyed by global op index, plus the fold watermark the decoders
/// pace themselves against.
struct SegShare {
    state: Mutex<SegState>,
    /// One condvar for every rendezvous on `state`: decoders announcing a
    /// planned op, workers announcing an op's last unit, the folder
    /// advancing the watermark, and abort.
    cv: Condvar,
}

struct SegState {
    /// Planned-but-unfolded ops by global index.
    ready: BTreeMap<u64, Arc<InFlightOp>>,
    /// Ops folded so far — every op below this index is done.
    folded: u64,
    /// Decode errors by the global index of the op that failed. The folder
    /// reports the error at the first op (in trace order) it cannot fold,
    /// which is exactly the error sequential decode would have hit first.
    errors: BTreeMap<u64, DecodeError>,
    /// Ops currently resident (planned, not folded) across all cursors.
    resident: usize,
    peak: usize,
    /// Folder bailed out; decoders drop their remaining work and exit.
    abort: bool,
}

/// Worker loop of the segmented path — [`stream_worker`] with the op-done
/// signal routed to the segment share (the folder waits there, not on the
/// unit queue).
fn segment_worker<M: MachineModel>(queue: &StreamQueue, share: &SegShare, cfg: &AcceleratorConfig) {
    loop {
        let idle = fpraker_telemetry::enabled().then(Instant::now);
        let unit = {
            let mut st = queue.state.lock().expect("queue lock poisoned");
            loop {
                if let Some(u) = st.units.pop_front() {
                    fpraker_telemetry::gauge!("sim_queue_depth").set(st.units.len() as i64);
                    break u;
                }
                if st.closed {
                    return;
                }
                st = queue.work.wait(st).expect("queue lock poisoned");
            }
        };
        add_elapsed_ns(
            fpraker_telemetry::counter!("sim_worker_idle_ns_total"),
            idle,
        );
        let busy = fpraker_telemetry::enabled().then(Instant::now);
        let acc = run_unit::<M>(&unit.op.plan, cfg, unit.lo, unit.hi);
        *unit.op.slots[unit.slot].lock().expect("slot lock poisoned") = Some(acc);
        add_elapsed_ns(
            fpraker_telemetry::counter!("sim_worker_busy_ns_total"),
            busy,
        );
        if unit.op.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            let _guard = share.state.lock().expect("share lock poisoned");
            share.cv.notify_all();
        }
    }
}

/// Decoder loop: drains one segment cursor, planning and enqueueing each
/// op, pacing itself so at most `window` of *its* ops are unfolded.
fn segment_decoder(
    cursor: &mut SegmentCursor,
    cfg: &AcceleratorConfig,
    budget: usize,
    window: usize,
    queue: &StreamQueue,
    share: &SegShare,
) {
    let mut mine: VecDeque<u64> = VecDeque::new();
    for i in cursor.first_op..cursor.first_op + cursor.ops {
        // Window pacing: wait until fewer than `window` of this cursor's
        // ops are unfolded (the fold watermark retires them in order).
        {
            let mut st = share.state.lock().expect("share lock poisoned");
            loop {
                if st.abort {
                    return;
                }
                while mine.front().is_some_and(|&f| f < st.folded) {
                    mine.pop_front();
                }
                if mine.len() < window {
                    break;
                }
                st = share.cv.wait(st).expect("share lock poisoned");
            }
        }
        // Decode, plan and enqueue outside the share lock; only the
        // bookkeeping (op announced / error recorded) takes it.
        let decoded = {
            let _span = fpraker_telemetry::span!("sim_decode");
            cursor.source.next_op()
        };
        let planned = match decoded {
            Ok(Some(op)) => Ok(enqueue_op(op, cfg, budget, queue)),
            Ok(None) => Err(DecodeError::at(
                0,
                "segment cursor ended before its declared op count",
            )),
            Err(e) => Err(e),
        };
        let mut st = share.state.lock().expect("share lock poisoned");
        match planned {
            Ok(in_flight) => {
                st.ready.insert(i, in_flight);
                st.resident += 1;
                st.peak = st.peak.max(st.resident);
                fpraker_telemetry::gauge!("sim_window_occupancy").set(st.resident as i64);
                share.cv.notify_all();
                mine.push_back(i);
            }
            Err(e) => {
                st.errors.insert(i, e);
                share.cv.notify_all();
                return;
            }
        }
    }
}

/// Simulates a trace from parallel segment cursors — the decode-side
/// counterpart of the op×block execution pool. Each cursor decodes its
/// contiguous op range on its own thread; all of them feed one shared
/// unit queue and worker pool; the calling thread folds ops **in global
/// trace order**, so the result is bit-identical to the sequential
/// streaming path (and therefore to [`simulate_ops_scheduled`]) at every
/// worker count.
///
/// Peak residency is bounded by `window` ops *per cursor* (each cursor
/// paces itself against the fold watermark independently), so memory is
/// `window × cursors` ops at worst — the price of keeping every decode
/// thread busy while the fold drains in trace order.
pub(crate) fn simulate_segments_scheduled<M: MachineModel>(
    mut cursors: Vec<SegmentCursor>,
    cfg: &AcceleratorConfig,
    threads: usize,
    window: usize,
) -> Result<StreamSchedule, DecodeError> {
    let budget = resolve_threads(threads).max(2);
    let window = window.max(1);
    let total: u64 = cursors.iter().map(|c| c.ops).sum();
    let queue = StreamQueue::new();
    let share = SegShare {
        state: Mutex::new(SegState {
            ready: BTreeMap::new(),
            folded: 0,
            errors: BTreeMap::new(),
            resident: 0,
            peak: 0,
            abort: false,
        }),
        cv: Condvar::new(),
    };

    let run = thread::scope(|scope| {
        for _ in 0..budget {
            scope.spawn(|| segment_worker::<M>(&queue, &share, cfg));
        }
        for cursor in &mut cursors {
            scope.spawn(|| segment_decoder(cursor, cfg, budget, window, &queue, &share));
        }

        // Fold in global trace order on the calling thread.
        let mut outcomes = Vec::with_capacity(total.min(1 << 20) as usize);
        let mut error = None;
        for i in 0..total {
            let done = {
                let mut st = share.state.lock().expect("share lock poisoned");
                loop {
                    if let Some(e) = st.errors.get(&i) {
                        error = Some(e.clone());
                        st.abort = true;
                        share.cv.notify_all();
                        break None;
                    }
                    if let Some(arc) = st.ready.get(&i) {
                        if arc.remaining.load(Ordering::Acquire) == 0 {
                            let arc = st.ready.remove(&i).expect("checked present");
                            st.resident -= 1;
                            fpraker_telemetry::gauge!("sim_window_occupancy")
                                .set(st.resident as i64);
                            break Some(arc);
                        }
                    }
                    st = share.cv.wait(st).expect("share lock poisoned");
                }
            };
            let Some(done) = done else { break };
            let mut acc = BlockAccum::new(cfg.tiles);
            for slot in &done.slots {
                let partial = slot
                    .lock()
                    .expect("slot lock poisoned")
                    .take()
                    .expect("completed op deposited every unit");
                acc.merge(&partial);
            }
            outcomes.push(finish_op::<M>(&done.plan, cfg, acc));
            let mut st = share.state.lock().expect("share lock poisoned");
            st.folded = i + 1;
            share.cv.notify_all();
        }
        let peak = share.state.lock().expect("share lock poisoned").peak;
        // Always close the queue — also on an error — so workers drain
        // and the scope's implicit join cannot deadlock; `abort` already
        // released any window-blocked decoders.
        {
            let mut st = share.state.lock().expect("share lock poisoned");
            st.abort = true;
            share.cv.notify_all();
        }
        queue.close();
        match error {
            Some(e) => Err(e),
            None => Ok(StreamSchedule {
                outcomes,
                peak_resident_ops: peak,
            }),
        }
    });
    run
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpraker_core::{BaselineMachine, FpRakerMachine};
    use fpraker_num::reference::SplitMix64;
    use fpraker_trace::{Phase, TensorKind};

    fn tiny_ops(count: usize) -> Vec<TraceOp> {
        let mut rng = SplitMix64::new(42);
        (0..count)
            .map(|i| {
                let (m, n, k) = (4 + (i % 3) * 4, 4 + (i % 2) * 4, 8);
                TraceOp {
                    layer: format!("l{i}"),
                    phase: Phase::AxW,
                    m,
                    n,
                    k,
                    a: (0..m * k).map(|_| rng.bf16_in_range(3)).collect(),
                    b: (0..n * k).map(|_| rng.bf16_in_range(3)).collect(),
                    a_kind: TensorKind::Activation,
                    b_kind: TensorKind::Weight,
                    a_dup: 1.0,
                    b_dup: 1.0,
                    out_dup: 1.0,
                }
            })
            .collect()
    }

    #[test]
    fn units_cover_every_block_exactly_once() {
        let ops = tiny_ops(5);
        let cfg = AcceleratorConfig::fpraker_paper();
        let plans: Vec<OpPlan> = ops.iter().map(|op| plan_op(op, &cfg)).collect();
        for workers in [1, 2, 7] {
            let units = build_units(&plans, workers);
            for (op_idx, plan) in plans.iter().enumerate() {
                let mut covered = 0;
                let mut expect_lo = 0;
                for u in units.iter().filter(|u| u.op == op_idx) {
                    assert_eq!(u.lo, expect_lo, "contiguous ranges");
                    assert!(u.hi > u.lo);
                    covered += u.hi - u.lo;
                    expect_lo = u.hi;
                }
                assert_eq!(covered, plan.blocks, "op {op_idx} at {workers} workers");
            }
        }
    }

    #[test]
    fn scheduled_ops_match_sequential_on_both_machines() {
        let ops = tiny_ops(12);
        let cfg = AcceleratorConfig::fpraker_paper();
        let seq = simulate_ops_scheduled::<FpRakerMachine>(&ops, &cfg, 1);
        let par = simulate_ops_scheduled::<FpRakerMachine>(&ops, &cfg, 4);
        for (s, p) in seq.iter().zip(&par) {
            assert_eq!(s.cycles, p.cycles);
            assert_eq!(s.stats, p.stats);
        }
        let bl_cfg = AcceleratorConfig::baseline_paper();
        let seq = simulate_ops_scheduled::<BaselineMachine>(&ops, &bl_cfg, 1);
        let par = simulate_ops_scheduled::<BaselineMachine>(&ops, &bl_cfg, 4);
        for (s, p) in seq.iter().zip(&par) {
            assert_eq!(s.cycles, p.cycles);
        }
    }

    #[test]
    fn empty_op_list_yields_no_outcomes() {
        let cfg = AcceleratorConfig::fpraker_paper();
        assert!(simulate_ops_scheduled::<FpRakerMachine>(&[], &cfg, 8).is_empty());
    }

    /// A source over a pre-built op list, for exercising the streaming
    /// scheduler without the codec.
    struct VecSource {
        ops: Vec<TraceOp>,
        next: usize,
    }

    impl TraceSource for VecSource {
        fn model(&self) -> &str {
            "vec"
        }
        fn progress_pct(&self) -> u32 {
            0
        }
        fn ops_remaining(&self) -> Option<u64> {
            Some((self.ops.len() - self.next) as u64)
        }
        fn next_op(&mut self) -> Result<Option<TraceOp>, DecodeError> {
            let op = self.ops.get(self.next).cloned();
            if op.is_some() {
                self.next += 1;
            }
            Ok(op)
        }
    }

    #[test]
    fn streamed_schedule_matches_in_memory_schedule() {
        let ops = tiny_ops(12);
        let cfg = AcceleratorConfig::fpraker_paper();
        let in_memory = simulate_ops_scheduled::<FpRakerMachine>(&ops, &cfg, 1);
        for (threads, window) in [(1, 1), (2, 2), (4, 3), (8, 64)] {
            let mut src = VecSource {
                ops: ops.clone(),
                next: 0,
            };
            let streamed =
                simulate_source_scheduled::<FpRakerMachine, _>(&mut src, &cfg, threads, window)
                    .expect("in-memory source cannot fail");
            assert_eq!(streamed.outcomes.len(), in_memory.len());
            assert!(streamed.peak_resident_ops <= window.max(1));
            for (s, m) in streamed.outcomes.iter().zip(&in_memory) {
                assert_eq!(s.cycles, m.cycles, "{threads} threads window {window}");
                assert_eq!(s.stats, m.stats);
                assert_eq!(s.counts, m.counts);
            }
        }
    }

    #[test]
    fn streamed_empty_source_yields_no_outcomes() {
        let cfg = AcceleratorConfig::fpraker_paper();
        let mut src = VecSource {
            ops: Vec::new(),
            next: 0,
        };
        let out = simulate_source_scheduled::<FpRakerMachine, _>(&mut src, &cfg, 4, 8).unwrap();
        assert!(out.outcomes.is_empty());
        assert_eq!(out.peak_resident_ops, 0);
    }

    /// A source that fails after a few good ops — the pool must shut down
    /// cleanly (no deadlock, no panic) and surface the error.
    struct FailingSource {
        good: Vec<TraceOp>,
        next: usize,
    }

    impl TraceSource for FailingSource {
        fn model(&self) -> &str {
            "failing"
        }
        fn progress_pct(&self) -> u32 {
            0
        }
        fn ops_remaining(&self) -> Option<u64> {
            None
        }
        fn next_op(&mut self) -> Result<Option<TraceOp>, DecodeError> {
            if self.next < self.good.len() {
                self.next += 1;
                Ok(Some(self.good[self.next - 1].clone()))
            } else {
                Err(DecodeError::at(99, "synthetic failure"))
            }
        }
    }

    #[test]
    fn source_errors_propagate_without_deadlocking_the_pool() {
        let cfg = AcceleratorConfig::fpraker_paper();
        for threads in [1, 2, 8] {
            let mut src = FailingSource {
                good: tiny_ops(5),
                next: 0,
            };
            let err = simulate_source_scheduled::<FpRakerMachine, _>(&mut src, &cfg, threads, 2)
                .unwrap_err();
            assert_eq!(err.offset(), 99, "{threads} threads");
        }
    }

    #[test]
    fn planned_units_mirror_the_built_schedule() {
        let ops = tiny_ops(5);
        let cfg = AcceleratorConfig::fpraker_paper();
        let plans: Vec<OpPlan> = ops.iter().map(|op| plan_op(op, &cfg)).collect();
        for budget in [1usize, 2, 7, 64, usize::MAX] {
            assert_eq!(
                planned_units(&ops, &cfg, budget),
                build_units(&plans, budget).len(),
                "budget {budget}"
            );
        }
        // Unbounded budget degenerates to one unit per block; budget 1 to
        // one unit per op.
        let total: usize = plans.iter().map(|p| p.blocks).sum();
        assert_eq!(planned_units(&ops, &cfg, usize::MAX), total);
        assert_eq!(planned_units(&ops, &cfg, 1), ops.len());
    }
}
