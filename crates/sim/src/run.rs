//! Trace-level simulation and result aggregation.

use std::collections::BTreeMap;

use fpraker_core::ExecStats;
use fpraker_energy::{EnergyBreakdown, EnergyModel, EventCounts};
use fpraker_trace::{Phase, Trace};

use crate::config::AcceleratorConfig;
use crate::engine::Engine;
use crate::op::OpOutcome;

/// Which accelerator a run modelled — and, for
/// [`Engine::simulate_trace_with`], which energy accounting family a
/// custom [`fpraker_core::MachineModel`] belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Machine {
    /// The FPRaker accelerator (term-serial energy events).
    FpRaker,
    /// The bit-parallel baseline (per-cycle MAC energy events).
    Baseline,
}

/// The simulated execution of a whole trace.
///
/// Per-op outcomes are kept in trace order; every aggregate below is a
/// deterministic fold over them, so a `RunResult` is identical whatever
/// worker budget produced it.
///
/// ```
/// use fpraker_sim::{AcceleratorConfig, Engine, Machine};
/// use fpraker_trace::Trace;
///
/// let run = Engine::new().run(
///     Machine::FpRaker,
///     &Trace::new("empty", 0),
///     &AcceleratorConfig::fpraker_paper(),
/// );
/// assert_eq!(run.ops.len(), 0);
/// assert_eq!(run.cycles(), 0);
/// assert_eq!(run.macs(), 0);
/// assert_eq!(run.golden_failures(), 0);
/// ```
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Which machine was simulated.
    pub machine: Machine,
    /// Per-op outcomes, in trace order.
    pub ops: Vec<OpOutcome>,
}

impl RunResult {
    /// Total cycles (ops execute back to back).
    pub fn cycles(&self) -> u64 {
        self.ops.iter().map(|o| o.cycles).sum()
    }

    /// Total compute-only cycles.
    pub fn compute_cycles(&self) -> u64 {
        self.ops.iter().map(|o| o.compute_cycles).sum()
    }

    /// Total MACs.
    pub fn macs(&self) -> u64 {
        self.ops.iter().map(|o| o.macs).sum()
    }

    /// Cycles per training phase (for Fig. 14).
    pub fn cycles_by_phase(&self) -> BTreeMap<&'static str, u64> {
        self.phase_map(|op| op.cycles)
    }

    /// Compute-only cycles per training phase (for the Fig. 21 study,
    /// where the accumulator width moves compute, not traffic).
    pub fn compute_cycles_by_phase(&self) -> BTreeMap<&'static str, u64> {
        self.phase_map(|op| op.compute_cycles)
    }

    fn phase_map(&self, f: impl Fn(&OpOutcome) -> u64) -> BTreeMap<&'static str, u64> {
        let mut map = BTreeMap::new();
        for op in &self.ops {
            let name = match op.phase {
                Some(Phase::AxW) => "AxW",
                Some(Phase::AxG) => "AxG",
                Some(Phase::GxW) => "GxW",
                None => "other",
            };
            *map.entry(name).or_insert(0) += f(op);
        }
        map
    }

    /// Aggregated tile statistics.
    pub fn stats(&self) -> ExecStats {
        self.ops
            .iter()
            .fold(ExecStats::default(), |acc, o| acc + o.stats)
    }

    /// Aggregated event counts.
    pub fn counts(&self) -> EventCounts {
        let mut c = EventCounts::default();
        for o in &self.ops {
            c.terms += o.counts.terms;
            c.pe_active_cycles += o.counts.pe_active_cycles;
            c.pe_stall_cycles += o.counts.pe_stall_cycles;
            c.sets += o.counts.sets;
            c.a_values_encoded += o.counts.a_values_encoded;
            c.baseline_pe_cycles += o.counts.baseline_pe_cycles;
            c.sram_bytes += o.counts.sram_bytes;
            c.dram_bytes += o.counts.dram_bytes;
        }
        c
    }

    /// Energy of the run under the given model.
    pub fn energy(&self, model: &EnergyModel) -> EnergyBreakdown {
        let counts = self.counts();
        match self.machine {
            Machine::FpRaker => model.fpraker_energy(&counts),
            Machine::Baseline => model.baseline_energy(&counts),
        }
    }

    /// Total golden-check failures.
    pub fn golden_failures(&self) -> u64 {
        self.ops.iter().map(|o| o.golden_failures).sum()
    }

    /// Folds partial runs of disjoint, contiguous op ranges back into the
    /// whole-trace result — the merge half of distributed sharding.
    ///
    /// Each partial is `(first_op, result)`: the result of simulating the
    /// ops starting at global index `first_op`. Because per-op simulation
    /// is independent and every [`RunResult`] aggregate is a deterministic
    /// fold over `ops` in order, re-assembling the outcomes in global op
    /// order reproduces the single-machine run **bit-identically** —
    /// including energy, which is derived from the integer
    /// [`EventCounts`] sum, never from adding per-partial floats (f64
    /// addition is not associative; integer addition is).
    ///
    /// Partials may arrive in any order; they are sorted by `first_op`
    /// here. The ranges must tile `0..total` exactly.
    ///
    /// # Errors
    ///
    /// [`MergeError`] if no partials are given, the machines disagree, or
    /// the ranges overlap or leave a gap.
    pub fn merge_partials(
        partials: impl IntoIterator<Item = (u64, RunResult)>,
    ) -> Result<RunResult, MergeError> {
        let mut parts: Vec<(u64, RunResult)> = partials.into_iter().collect();
        parts.sort_by_key(|(first, _)| *first);
        let (_, head) = parts.first().ok_or(MergeError::Empty)?;
        let machine = head.machine;
        let mut ops = Vec::with_capacity(parts.iter().map(|(_, p)| p.ops.len()).sum());
        let mut next = 0u64;
        for (first, part) in parts {
            if part.machine != machine {
                return Err(MergeError::MachineMismatch {
                    expected: machine,
                    found: part.machine,
                });
            }
            if first != next {
                return Err(MergeError::NotContiguous {
                    expected: next,
                    found: first,
                });
            }
            next += part.ops.len() as u64;
            ops.extend(part.ops);
        }
        Ok(RunResult { machine, ops })
    }
}

/// Why a set of partial runs cannot be folded into one
/// (see [`RunResult::merge_partials`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MergeError {
    /// No partials were given — there is no machine to attribute, so an
    /// empty merge is ambiguous rather than an empty run.
    Empty,
    /// Two partials simulated different machines; their outcomes are not
    /// comparable, let alone concatenable.
    MachineMismatch {
        /// Machine of the first (lowest-`first_op`) partial.
        expected: Machine,
        /// The disagreeing partial's machine.
        found: Machine,
    },
    /// Sorted by `first_op`, a partial does not start exactly where the
    /// previous one ended: the ranges overlap or leave a gap, so the
    /// merged result would silently diverge from the unsharded run.
    NotContiguous {
        /// Where the next partial had to start.
        expected: u64,
        /// Where it actually started.
        found: u64,
    },
}

impl std::fmt::Display for MergeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MergeError::Empty => write!(f, "no partial runs to merge"),
            MergeError::MachineMismatch { expected, found } => {
                write!(f, "partial runs mix machines: {expected:?} vs {found:?}")
            }
            MergeError::NotContiguous { expected, found } => write!(
                f,
                "partial runs are not contiguous: expected a partial starting \
                 at op {expected}, found op {found} (overlap or gap)"
            ),
        }
    }
}

impl std::error::Error for MergeError {}

/// The result of a streamed simulation ([`Engine::run_source`]): the
/// ordinary [`RunResult`] plus what streaming adds — how much of the
/// trace was ever resident.
///
/// The embedded result is bit-identical to running the same trace fully
/// loaded; `peak_resident_ops` is the evidence the run was actually
/// bounded (`crates/sim/tests/streaming.rs` pins both).
#[derive(Clone, Debug)]
pub struct StreamRun {
    /// The simulated execution, identical to the in-memory path's.
    pub result: RunResult,
    /// Most ops simultaneously in flight (decoded and planned but not
    /// yet folded) — bounded by [`Engine::resolved_window`], however long
    /// the trace.
    pub peak_resident_ops: usize,
}

/// Simulates a trace on the FPRaker accelerator with a default (one worker
/// per core) [`Engine`].
pub fn simulate_trace_fpraker(trace: &Trace, cfg: &AcceleratorConfig) -> RunResult {
    Engine::new().run(Machine::FpRaker, trace, cfg)
}

/// Simulates a trace on the bit-parallel baseline accelerator with a
/// default (one worker per core) [`Engine`].
pub fn simulate_trace_baseline(trace: &Trace, cfg: &AcceleratorConfig) -> RunResult {
    Engine::new().run(Machine::Baseline, trace, cfg)
}

/// Speedup of `fpraker` over `baseline` on total cycles.
pub fn speedup(fpraker: &RunResult, baseline: &RunResult) -> f64 {
    baseline.cycles() as f64 / fpraker.cycles().max(1) as f64
}

/// Relative energy efficiency: baseline energy over FPRaker energy
/// (>1 means FPRaker is more efficient).
pub fn energy_efficiency(
    fpraker: &RunResult,
    baseline: &RunResult,
    model: &EnergyModel,
    core_only: bool,
) -> f64 {
    let ef = fpraker.energy(model);
    let eb = baseline.energy(model);
    if core_only {
        eb.core_pj() / ef.core_pj().max(f64::MIN_POSITIVE)
    } else {
        eb.total_pj() / ef.total_pj().max(f64::MIN_POSITIVE)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpraker_num::reference::SplitMix64;
    use fpraker_num::Bf16;
    use fpraker_trace::{TensorKind, TraceOp};

    /// A synthetic trace shaped like trained tensors: narrow exponents,
    /// `mantissa_bits` significant fraction bits (trained/quantized values
    /// concentrate their significands — Fig. 1b), and a zero fraction from
    /// ReLU/pruning.
    fn shaped_trace(spread: i32, zero_fraction: f64, mantissa_bits: u32) -> Trace {
        let mut rng = SplitMix64::new(9);
        let mut tr = Trace::new("tiny", 0);
        for (i, phase) in [Phase::AxW, Phase::GxW, Phase::AxG].iter().enumerate() {
            // Large enough to occupy all 36 tiles of the iso-area config.
            let (m, n, k) = (96, 48, 32);
            let mask = !((1u8 << (7 - mantissa_bits.min(7))) - 1);
            let gen = |rng: &mut SplitMix64, count: usize| -> Vec<Bf16> {
                (0..count)
                    .map(|_| {
                        if rng.next_f64() < zero_fraction {
                            Bf16::ZERO
                        } else {
                            let v = rng.bf16_in_range(spread);
                            Bf16::from_parts(v.sign(), v.exponent(), v.significand() & mask)
                        }
                    })
                    .collect()
            };
            tr.ops.push(TraceOp {
                layer: format!("l{i}"),
                phase: *phase,
                m,
                n,
                k,
                a: gen(&mut rng, m * k),
                b: gen(&mut rng, n * k),
                a_kind: TensorKind::Activation,
                b_kind: TensorKind::Weight,
                a_dup: 1.0,
                b_dup: 1.0,
                out_dup: 1.0,
            });
        }
        tr
    }

    #[test]
    fn fpraker_beats_baseline_under_iso_area_on_sparse_traces() {
        // Trained-tensor-shaped values (4 significant mantissa bits, 50%
        // zeros): the 36-tile FPRaker accelerator must out-compute the
        // 8-tile baseline (the Fig. 11 headline direction). The tiny test
        // GEMMs are memory-bound end to end (randomly scattered zeros also
        // defeat exponent compression — real activations cluster theirs),
        // so the claim is asserted on compute cycles.
        let trace = shaped_trace(2, 0.5, 3);
        let fp = simulate_trace_fpraker(&trace, &AcceleratorConfig::fpraker_paper());
        let bl = simulate_trace_baseline(&trace, &AcceleratorConfig::baseline_paper());
        let s = bl.compute_cycles() as f64 / fp.compute_cycles().max(1) as f64;
        assert!(s > 1.0, "compute speedup {s}");
    }

    #[test]
    fn phases_are_all_accounted() {
        let trace = shaped_trace(2, 0.2, 5);
        let fp = simulate_trace_fpraker(&trace, &AcceleratorConfig::fpraker_paper());
        let by_phase = fp.cycles_by_phase();
        assert_eq!(by_phase.len(), 3);
        assert_eq!(by_phase.values().sum::<u64>(), fp.cycles());
    }

    #[test]
    fn golden_checking_passes_end_to_end() {
        let trace = shaped_trace(3, 0.3, 7);
        let cfg = AcceleratorConfig {
            check_golden: true,
            tiles: 2,
            ..AcceleratorConfig::fpraker_paper()
        };
        let fp = simulate_trace_fpraker(&trace, &cfg);
        assert_eq!(fp.golden_failures(), 0);
    }

    #[test]
    fn energy_efficiency_favors_fpraker_on_sparse_work() {
        let trace = shaped_trace(2, 0.5, 3);
        let fp = simulate_trace_fpraker(&trace, &AcceleratorConfig::fpraker_paper());
        let bl = simulate_trace_baseline(&trace, &AcceleratorConfig::baseline_paper());
        let model = EnergyModel::paper();
        let eff = energy_efficiency(&fp, &bl, &model, true);
        assert!(eff > 1.0, "core energy efficiency {eff}");
    }

    #[test]
    fn macs_match_trace() {
        let trace = shaped_trace(2, 0.0, 7);
        let fp = simulate_trace_fpraker(&trace, &AcceleratorConfig::fpraker_paper());
        assert_eq!(fp.macs(), trace.macs());
        let bl = simulate_trace_baseline(&trace, &AcceleratorConfig::baseline_paper());
        assert_eq!(bl.macs(), trace.macs());
    }
}
