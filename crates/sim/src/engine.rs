//! The simulation engine: drives any [`MachineModel`] over a trace, in
//! parallel.
//!
//! [`Engine`] owns exactly one policy knob — the worker budget of the
//! op×block scheduler (see [`crate::sched`]). Everything else (tile
//! geometry, tiling, traffic, golden checking) comes from the
//! [`AcceleratorConfig`] and the machine itself. Results are bit-identical
//! for every worker count, so parallelism is purely a wall-clock choice.
//!
//! ```
//! use fpraker_sim::{AcceleratorConfig, Engine, Machine};
//! use fpraker_trace::Trace;
//!
//! let engine = Engine::new(); // one worker per core
//! let trace = Trace::new("empty", 0);
//! let run = engine.run(Machine::FpRaker, &trace, &AcceleratorConfig::fpraker_paper());
//! assert_eq!(run.cycles(), 0);
//! ```

use std::path::Path;

use fpraker_core::{BaselineMachine, FpRakerMachine, MachineModel};
use fpraker_trace::{DecodeError, IndexedTraceFile, Trace, TraceSource};

use crate::config::AcceleratorConfig;
use crate::op::resolve_threads;
use crate::run::{Machine, RunResult, StreamRun};
use crate::sched;

/// Wall-clock telemetry for one engine run: where the host time went,
/// by pipeline stage.
///
/// Produced by [`Engine::run_with_telemetry`] as the *delta* of the
/// process-global stage histograms (`sim_decode_seconds`,
/// `sim_plan_seconds`, `sim_run_unit_seconds`, `sim_fold_seconds`)
/// across the run. Stage times are summed over all worker threads, so
/// [`EngineTelemetry::run_unit_ns`] routinely exceeds
/// [`EngineTelemetry::wall_ns`] on parallel runs. The metrics are
/// process-global: engine runs *concurrent with this one in the same
/// process* bleed into the deltas, and the deltas are all zero when
/// telemetry is runtime-disabled or compiled out. Telemetry is strictly
/// observational — the [`RunResult`] is bit-identical with or without it.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineTelemetry {
    /// Wall-clock nanoseconds for the whole run (measured locally, so
    /// nonzero even when telemetry is disabled).
    pub wall_ns: u64,
    /// Nanoseconds spent decoding trace ops (zero for in-memory traces,
    /// which need no decode).
    pub decode_ns: u64,
    /// Nanoseconds spent planning ops (serial-policy resolution, tiling).
    pub plan_ns: u64,
    /// Nanoseconds spent executing block-range work units, summed across
    /// worker threads.
    pub run_unit_ns: u64,
    /// Nanoseconds spent folding unit partials into op outcomes.
    pub fold_ns: u64,
    /// Work units executed.
    pub units: u64,
}

impl EngineTelemetry {
    /// Total stage-attributed nanoseconds (decode + plan + run-unit +
    /// fold) — the denominator for the per-stage fractions.
    pub fn stage_total_ns(&self) -> u64 {
        self.decode_ns + self.plan_ns + self.run_unit_ns + self.fold_ns
    }

    /// The fraction of stage-attributed time spent in one stage (pass a
    /// field like [`EngineTelemetry::fold_ns`]); 0 when no stage time was
    /// recorded.
    pub fn stage_fraction(&self, stage_ns: u64) -> f64 {
        let total = self.stage_total_ns();
        if total == 0 {
            0.0
        } else {
            stage_ns as f64 / total as f64
        }
    }
}

/// Snapshot of the global stage histograms: per-stage summed nanoseconds
/// plus the run-unit count.
fn stage_snapshot() -> [u64; 5] {
    [
        fpraker_telemetry::histogram!("sim_decode_seconds").sum(),
        fpraker_telemetry::histogram!("sim_plan_seconds").sum(),
        fpraker_telemetry::histogram!("sim_run_unit_seconds").sum(),
        fpraker_telemetry::histogram!("sim_fold_seconds").sum(),
        fpraker_telemetry::histogram!("sim_run_unit_seconds").count(),
    ]
}

/// A reusable, parallel trace-simulation engine.
///
/// One engine value is a worker budget (plus a streaming window, see
/// [`Engine::stream_window`]); [`Engine::run`] spawns a worker pool once
/// per call and schedules every `(op, block-range)` work unit of the
/// trace across it, so traces of many small GEMMs parallelize as well as
/// one large GEMM. [`Engine::run_source`] is the same engine fed by a
/// [`TraceSource`] under a bounded in-flight op window, for traces larger
/// than RAM.
///
/// ```
/// use fpraker_sim::Engine;
///
/// assert_eq!(Engine::with_threads(4).resolved_threads(), 4);
/// assert!(Engine::new().resolved_threads() >= 1); // one per core
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Engine {
    threads: usize,
    window: usize,
}

impl Engine {
    /// An engine using one worker per available core.
    pub fn new() -> Self {
        Engine {
            threads: 0,
            window: 0,
        }
    }

    /// An engine with an explicit worker budget.
    ///
    /// Semantics of `threads`:
    ///
    /// * `0` — resolve to one worker per available core at run time
    ///   (equivalent to [`Engine::new`]);
    /// * `1` — the fully sequential reference engine: no pool is spawned,
    ///   the trace runs on the calling thread;
    /// * `n > 1` — at most `n` pool workers. A run never spawns more
    ///   workers than it has work units, so oversized budgets (including
    ///   `usize::MAX`) are safe and merely clamp — see
    ///   [`Engine::resolved_threads_for`].
    ///
    /// ```
    /// use fpraker_sim::Engine;
    ///
    /// assert_eq!(Engine::with_threads(0), Engine::new());
    /// assert_eq!(Engine::with_threads(1).resolved_threads(), 1);
    /// ```
    pub fn with_threads(threads: usize) -> Self {
        Engine { threads, window: 0 }
    }

    /// Sets the streaming window: the maximum number of ops
    /// [`Engine::run_source`] keeps in flight (decoded and planned but
    /// not yet folded). This bounds peak operand memory at `window` ops
    /// regardless of trace length. `0` (the default) resolves to twice
    /// the worker budget — enough look-ahead to keep the pool fed — and
    /// any explicit value is clamped to at least 1. The window never
    /// affects simulated results, only memory and wall-clock.
    ///
    /// ```
    /// use fpraker_sim::Engine;
    ///
    /// let engine = Engine::with_threads(4).stream_window(8);
    /// assert_eq!(engine.resolved_window(), 8);
    /// assert_eq!(Engine::with_threads(4).resolved_window(), 8); // auto: 2× workers
    /// ```
    pub fn stream_window(mut self, window: usize) -> Self {
        self.window = window;
        self
    }

    /// The in-flight op window [`Engine::run_source`] will use, after
    /// resolving the `0` (auto) setting to twice the worker budget.
    pub fn resolved_window(&self) -> usize {
        if self.window == 0 {
            (2 * self.resolved_threads()).max(2)
        } else {
            self.window.max(1)
        }
    }

    /// The engine's worker budget after resolving `0` to the available
    /// core count. This is an upper bound: a run also clamps to the work
    /// available (see [`Engine::resolved_threads_for`]).
    ///
    /// ```
    /// use fpraker_sim::Engine;
    ///
    /// assert_eq!(Engine::with_threads(3).resolved_threads(), 3);
    /// ```
    pub fn resolved_threads(&self) -> usize {
        resolve_threads(self.threads)
    }

    /// The number of workers a run over `trace` would actually use: the
    /// resolved budget clamped to the number of op×block work units the
    /// scheduler would build for it (surplus workers would have nothing to
    /// pull from the queue), and never below 1. Uses the scheduler's own
    /// chunking, so this is exactly the pool size [`Engine::run`] spawns.
    ///
    /// ```
    /// use fpraker_sim::{AcceleratorConfig, Engine};
    /// use fpraker_trace::Trace;
    ///
    /// // An empty trace has no work units: any budget clamps to 1.
    /// let trace = Trace::new("empty", 0);
    /// let cfg = AcceleratorConfig::fpraker_paper();
    /// assert_eq!(Engine::with_threads(64).resolved_threads_for(&trace, &cfg), 1);
    /// ```
    pub fn resolved_threads_for(&self, trace: &Trace, cfg: &AcceleratorConfig) -> usize {
        let budget = self.resolved_threads();
        budget
            .min(sched::planned_units(&trace.ops, cfg, budget))
            .max(1)
    }

    /// Simulates a trace on one of the built-in machines.
    ///
    /// ```
    /// use fpraker_sim::{AcceleratorConfig, Engine, Machine};
    /// use fpraker_trace::Trace;
    ///
    /// let run = Engine::with_threads(2).run(
    ///     Machine::Baseline,
    ///     &Trace::new("empty", 0),
    ///     &AcceleratorConfig::baseline_paper(),
    /// );
    /// assert_eq!(run.machine, Machine::Baseline);
    /// ```
    pub fn run(&self, machine: Machine, trace: &Trace, cfg: &AcceleratorConfig) -> RunResult {
        match machine {
            Machine::FpRaker => self.simulate_trace_with::<FpRakerMachine>(machine, trace, cfg),
            Machine::Baseline => self.simulate_trace_with::<BaselineMachine>(machine, trace, cfg),
        }
    }

    /// Simulates a trace on any [`MachineModel`] — the extension point for
    /// new machines (alternative term encodings, accumulator widths, …).
    ///
    /// `label` selects which of the two energy accounting families
    /// ([`Machine::FpRaker`]'s term-serial events or
    /// [`Machine::Baseline`]'s bit-parallel events) applies to `M`.
    ///
    /// ```
    /// use fpraker_core::FpRakerMachine; // your machine here
    /// use fpraker_sim::{AcceleratorConfig, Engine, Machine};
    /// use fpraker_trace::Trace;
    ///
    /// let run = Engine::with_threads(2).simulate_trace_with::<FpRakerMachine>(
    ///     Machine::FpRaker,
    ///     &Trace::new("empty", 0),
    ///     &AcceleratorConfig::fpraker_paper(),
    /// );
    /// assert_eq!(run.cycles(), 0);
    /// ```
    pub fn simulate_trace_with<M: MachineModel>(
        &self,
        label: Machine,
        trace: &Trace,
        cfg: &AcceleratorConfig,
    ) -> RunResult {
        fpraker_telemetry::init();
        let result = RunResult {
            machine: label,
            ops: sched::simulate_ops_scheduled::<M>(&trace.ops, cfg, self.threads),
        };
        // Best-effort profile export (only when FPRAKER_TRACE_OUT is set);
        // an unwritable path must not fail the simulation.
        let _ = fpraker_telemetry::flush_chrome_trace();
        result
    }

    /// [`Engine::run`] plus an [`EngineTelemetry`] describing where the
    /// host wall-clock went, captured as this run's delta of the global
    /// stage histograms. The [`RunResult`] is bit-identical to
    /// [`Engine::run`]'s — telemetry never influences simulation.
    ///
    /// ```
    /// use fpraker_sim::{AcceleratorConfig, Engine, Machine};
    /// use fpraker_trace::Trace;
    ///
    /// let (run, telem) = Engine::with_threads(2).run_with_telemetry(
    ///     Machine::FpRaker,
    ///     &Trace::new("empty", 0),
    ///     &AcceleratorConfig::fpraker_paper(),
    /// );
    /// assert_eq!(run.cycles(), 0);
    /// assert_eq!(telem.units, 0); // an empty trace schedules no units
    /// ```
    pub fn run_with_telemetry(
        &self,
        machine: Machine,
        trace: &Trace,
        cfg: &AcceleratorConfig,
    ) -> (RunResult, EngineTelemetry) {
        let before = stage_snapshot();
        let start = std::time::Instant::now();
        let result = self.run(machine, trace, cfg);
        let wall_ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let after = stage_snapshot();
        let telemetry = EngineTelemetry {
            wall_ns,
            decode_ns: after[0].saturating_sub(before[0]),
            plan_ns: after[1].saturating_sub(before[1]),
            run_unit_ns: after[2].saturating_sub(before[2]),
            fold_ns: after[3].saturating_sub(before[3]),
            units: after[4].saturating_sub(before[4]),
        };
        (result, telemetry)
    }

    /// Simulates a [`TraceSource`] on one of the built-in machines under
    /// a bounded in-flight op window: ops are planned as they are
    /// decoded and their operand buffers are dropped once folded, so peak
    /// memory is [`Engine::resolved_window`] ops regardless of trace
    /// length. The [`RunResult`] is **bit-identical** to
    /// [`Engine::run`] on the equivalent in-memory trace, at every worker
    /// count and window size.
    ///
    /// ```
    /// use fpraker_sim::{AcceleratorConfig, Engine, Machine};
    /// use fpraker_trace::{codec, Trace};
    ///
    /// let bytes = codec::encode(&Trace::new("empty", 0));
    /// let reader = codec::Reader::new(&bytes[..]).unwrap();
    /// let run = Engine::with_threads(2)
    ///     .run_source(Machine::FpRaker, reader, &AcceleratorConfig::fpraker_paper())
    ///     .unwrap();
    /// assert_eq!(run.result.cycles(), 0);
    /// assert_eq!(run.peak_resident_ops, 0);
    /// ```
    ///
    /// # Errors
    ///
    /// Propagates the source's [`DecodeError`] (truncated or corrupt
    /// stream); outcomes of ops decoded before the error are discarded.
    pub fn run_source<S: TraceSource>(
        &self,
        machine: Machine,
        source: S,
        cfg: &AcceleratorConfig,
    ) -> Result<StreamRun, DecodeError> {
        match machine {
            Machine::FpRaker => self.stream_source_with::<FpRakerMachine, S>(machine, source, cfg),
            Machine::Baseline => {
                self.stream_source_with::<BaselineMachine, S>(machine, source, cfg)
            }
        }
    }

    /// [`Engine::run_source`] for any [`MachineModel`] — the streaming
    /// counterpart of [`Engine::simulate_trace_with`], with the same
    /// `label` semantics.
    ///
    /// When the source advertises an index
    /// ([`TraceSource::segment_cursors`] returns more than one cursor —
    /// e.g. an [`IndexedTraceFile`] over a `finish_indexed` trace) and the
    /// worker budget allows, decoding itself is parallelized: one cursor
    /// per segment group feeds the shared op×block pool concurrently, so
    /// a single reader thread no longer starves the workers. Results stay
    /// **bit-identical** to the sequential path (ops are folded in global
    /// trace order); only wall-clock and the residency bound change —
    /// peak residency is `window` ops *per cursor* on the parallel path.
    ///
    /// # Errors
    ///
    /// Propagates the source's [`DecodeError`].
    pub fn stream_source_with<M: MachineModel, S: TraceSource>(
        &self,
        label: Machine,
        mut source: S,
        cfg: &AcceleratorConfig,
    ) -> Result<StreamRun, DecodeError> {
        fpraker_telemetry::init();
        let run = self.stream_source_inner::<M, S>(label, &mut source, cfg);
        let _ = fpraker_telemetry::flush_chrome_trace();
        run
    }

    fn stream_source_inner<M: MachineModel, S: TraceSource>(
        &self,
        label: Machine,
        source: &mut S,
        cfg: &AcceleratorConfig,
    ) -> Result<StreamRun, DecodeError> {
        let window = self.resolved_window();
        if self.resolved_threads() > 1 {
            if let Some(cursors) = source.segment_cursors(self.resolved_threads()) {
                if cursors.len() > 1 {
                    let sched = sched::simulate_segments_scheduled::<M>(
                        cursors,
                        cfg,
                        self.threads,
                        window,
                    )?;
                    return Ok(StreamRun {
                        result: RunResult {
                            machine: label,
                            ops: sched.outcomes,
                        },
                        peak_resident_ops: sched.peak_resident_ops,
                    });
                }
            }
        }
        let sched = sched::simulate_source_scheduled::<M, _>(source, cfg, self.threads, window)?;
        Ok(StreamRun {
            result: RunResult {
                machine: label,
                ops: sched.outcomes,
            },
            peak_resident_ops: sched.peak_resident_ops,
        })
    }

    /// Simulates an **indexed trace file** with parallel segment decode:
    /// opens the file, reads its index footer, and — when the footer is
    /// usable and the budget allows — decodes independent segments on
    /// concurrent cursors feeding the shared op×block scheduler. Files
    /// without a (valid) footer degrade to the sequential streaming path;
    /// either way the [`RunResult`] is bit-identical to [`Engine::run`]
    /// on the decoded trace at every worker count.
    ///
    /// ```no_run
    /// use fpraker_sim::{AcceleratorConfig, Engine, Machine};
    ///
    /// let run = Engine::new()
    ///     .run_indexed(Machine::FpRaker, "big.trace", &AcceleratorConfig::fpraker_paper())
    ///     .unwrap();
    /// println!("{} cycles", run.result.cycles());
    /// ```
    ///
    /// # Errors
    ///
    /// [`DecodeError`] if the file cannot be opened, its header is
    /// invalid, or an op fails to decode.
    pub fn run_indexed<P: AsRef<Path>>(
        &self,
        machine: Machine,
        path: P,
        cfg: &AcceleratorConfig,
    ) -> Result<StreamRun, DecodeError> {
        let source = IndexedTraceFile::open(path.as_ref())?;
        self.run_source(machine, source, cfg)
    }

    /// [`Engine::run_indexed`] for any [`MachineModel`], with
    /// [`Engine::simulate_trace_with`]'s `label` semantics.
    ///
    /// # Errors
    ///
    /// As [`Engine::run_indexed`].
    pub fn stream_indexed_with<M: MachineModel, P: AsRef<Path>>(
        &self,
        label: Machine,
        path: P,
        cfg: &AcceleratorConfig,
    ) -> Result<StreamRun, DecodeError> {
        let source = IndexedTraceFile::open(path.as_ref())?;
        self.stream_source_with::<M, _>(label, source, cfg)
    }
}

impl Default for Engine {
    fn default() -> Self {
        Engine::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolved_threads_is_positive() {
        assert!(Engine::new().resolved_threads() >= 1);
        assert_eq!(Engine::with_threads(3).resolved_threads(), 3);
    }

    #[test]
    fn resolved_threads_for_clamps_to_available_work() {
        let mut trace = Trace::new("one-block", 0);
        trace.ops.push(fpraker_trace::TraceOp {
            layer: "l".into(),
            phase: fpraker_trace::Phase::AxW,
            m: 4,
            n: 4,
            k: 8,
            a: vec![fpraker_num::Bf16::ONE; 32],
            b: vec![fpraker_num::Bf16::ONE; 32],
            a_kind: fpraker_trace::TensorKind::Activation,
            b_kind: fpraker_trace::TensorKind::Weight,
            a_dup: 1.0,
            b_dup: 1.0,
            out_dup: 1.0,
        });
        let cfg = AcceleratorConfig::fpraker_paper();
        // One 4x4x8 GEMM is a single 8x8 output block.
        assert_eq!(
            Engine::with_threads(usize::MAX).resolved_threads_for(&trace, &cfg),
            1
        );
        assert_eq!(
            Engine::with_threads(1).resolved_threads_for(&trace, &cfg),
            1
        );
    }

    #[test]
    fn empty_trace_runs_on_both_machines() {
        let trace = Trace::new("empty", 0);
        let engine = Engine::with_threads(2);
        for machine in [Machine::FpRaker, Machine::Baseline] {
            let run = engine.run(machine, &trace, &AcceleratorConfig::fpraker_paper());
            assert_eq!(run.machine, machine);
            assert_eq!(run.cycles(), 0);
        }
    }
}
