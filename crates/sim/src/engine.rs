//! The simulation engine: drives any [`MachineModel`] over a trace, in
//! parallel.
//!
//! [`Engine`] owns exactly one policy knob — the worker-thread count for
//! the per-op block fan-out (see [`crate::simulate_op`]). Everything else
//! (tile geometry, tiling, traffic, golden checking) comes from the
//! [`AcceleratorConfig`] and the machine itself. Results are bit-identical
//! for every thread count, so parallelism is purely a wall-clock choice.
//!
//! ```
//! use fpraker_sim::{AcceleratorConfig, Engine, Machine};
//! use fpraker_trace::Trace;
//!
//! let engine = Engine::new(); // one worker per core
//! let trace = Trace::new("empty", 0);
//! let run = engine.run(Machine::FpRaker, &trace, &AcceleratorConfig::fpraker_paper());
//! assert_eq!(run.cycles(), 0);
//! ```

use fpraker_core::{BaselineMachine, FpRakerMachine, MachineModel};
use fpraker_trace::Trace;

use crate::config::AcceleratorConfig;
use crate::op::{resolve_threads, simulate_op};
use crate::run::{Machine, RunResult};

/// A reusable, parallel trace-simulation engine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Engine {
    threads: usize,
}

impl Engine {
    /// An engine using one worker per available core.
    pub fn new() -> Self {
        Engine { threads: 0 }
    }

    /// An engine with an explicit worker count (`0` = one per core).
    /// `with_threads(1)` is the fully sequential reference engine.
    pub fn with_threads(threads: usize) -> Self {
        Engine { threads }
    }

    /// The number of workers this engine will actually use.
    pub fn resolved_threads(&self) -> usize {
        resolve_threads(self.threads)
    }

    /// Simulates a trace on one of the built-in machines.
    pub fn run(&self, machine: Machine, trace: &Trace, cfg: &AcceleratorConfig) -> RunResult {
        match machine {
            Machine::FpRaker => self.simulate_trace_with::<FpRakerMachine>(machine, trace, cfg),
            Machine::Baseline => self.simulate_trace_with::<BaselineMachine>(machine, trace, cfg),
        }
    }

    /// Simulates a trace on any [`MachineModel`] — the extension point for
    /// new machines (alternative term encodings, accumulator widths, …).
    ///
    /// `label` selects which of the two energy accounting families
    /// ([`Machine::FpRaker`]'s term-serial events or
    /// [`Machine::Baseline`]'s bit-parallel events) applies to `M`.
    pub fn simulate_trace_with<M: MachineModel>(
        &self,
        label: Machine,
        trace: &Trace,
        cfg: &AcceleratorConfig,
    ) -> RunResult {
        RunResult {
            machine: label,
            ops: trace
                .ops
                .iter()
                .map(|op| simulate_op::<M>(op, cfg, self.threads))
                .collect(),
        }
    }
}

impl Default for Engine {
    fn default() -> Self {
        Engine::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolved_threads_is_positive() {
        assert!(Engine::new().resolved_threads() >= 1);
        assert_eq!(Engine::with_threads(3).resolved_threads(), 3);
    }

    #[test]
    fn empty_trace_runs_on_both_machines() {
        let trace = Trace::new("empty", 0);
        let engine = Engine::with_threads(2);
        for machine in [Machine::FpRaker, Machine::Baseline] {
            let run = engine.run(machine, &trace, &AcceleratorConfig::fpraker_paper());
            assert_eq!(run.machine, machine);
            assert_eq!(run.cycles(), 0);
        }
    }
}
