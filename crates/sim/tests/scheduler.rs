//! Stress and property tests of the op×block work scheduler: traces of
//! many small GEMMs — the shape that serialized under the old per-op
//! fan-out — must produce bit-identical results at every worker count,
//! and trace-level aggregates must always be the fold of the per-op
//! outcomes, regardless of how units were scheduled.

use fpraker_core::ExecStats;
use fpraker_num::reference::SplitMix64;
use fpraker_num::Bf16;
use fpraker_sim::{AcceleratorConfig, Engine, Machine, RunResult};
use fpraker_trace::{Phase, TensorKind, Trace, TraceOp};
use proptest::prelude::*;

/// A trace of `count` small GEMMs with varied shapes, sparsity and layer
/// names (so per-layer θ overrides and the Sparser policy both see
/// variety). Each op is at most a few 8×8 output blocks: the worst case
/// for op-serial scheduling.
fn many_small_ops(count: usize, seed: u64) -> Trace {
    let mut rng = SplitMix64::new(seed);
    let mut tr = Trace::new("small-ops", 50);
    let phases = [Phase::AxW, Phase::GxW, Phase::AxG];
    for i in 0..count {
        let m = 4 + (i % 4) * 4; // 4..16
        let n = 4 + (i % 3) * 4; // 4..12
        let k = 8 + (i % 2) * 8; // 8 or 16
        let zero_pct = (i % 5) as f64 / 5.0;
        let gen = |rng: &mut SplitMix64, n: usize| -> Vec<Bf16> {
            (0..n)
                .map(|_| {
                    if rng.next_f64() < zero_pct {
                        Bf16::ZERO
                    } else {
                        rng.bf16_in_range(4)
                    }
                })
                .collect()
        };
        tr.ops.push(TraceOp {
            layer: format!("l{}", i % 7),
            phase: phases[i % 3],
            m,
            n,
            k,
            a: gen(&mut rng, m * k),
            b: gen(&mut rng, n * k),
            a_kind: TensorKind::Activation,
            b_kind: TensorKind::Weight,
            a_dup: 1.0,
            b_dup: 1.0,
            out_dup: 1.0,
        });
    }
    tr
}

fn assert_identical(seq: &RunResult, par: &RunResult, what: &str) {
    assert_eq!(seq.ops.len(), par.ops.len(), "{what}: op count");
    for (i, (s, p)) in seq.ops.iter().zip(&par.ops).enumerate() {
        assert_eq!(s.cycles, p.cycles, "{what} op{i}: cycles");
        assert_eq!(
            s.compute_cycles, p.compute_cycles,
            "{what} op{i}: compute cycles"
        );
        assert_eq!(s.mem_cycles, p.mem_cycles, "{what} op{i}: mem cycles");
        assert_eq!(s.stats, p.stats, "{what} op{i}: stats");
        assert_eq!(s.counts, p.counts, "{what} op{i}: counts");
        assert_eq!(s.traffic, p.traffic, "{what} op{i}: traffic");
        assert_eq!(
            s.golden_failures, p.golden_failures,
            "{what} op{i}: golden failures"
        );
    }
}

/// The headline stress test: 64 tiny GEMMs, golden checking on, pinned
/// bit-identical at 1, 2 and 8 workers.
#[test]
fn sixty_four_tiny_gemms_are_bit_identical_at_1_2_and_8_workers() {
    let trace = many_small_ops(64, 0xBEEF);
    let mut cfg = AcceleratorConfig::fpraker_paper();
    cfg.check_golden = true;
    cfg.tiles = 4;
    let seq = Engine::with_threads(1).run(Machine::FpRaker, &trace, &cfg);
    assert_eq!(seq.golden_failures(), 0, "sequential golden check");
    for workers in [2usize, 8] {
        let par = Engine::with_threads(workers).run(Machine::FpRaker, &trace, &cfg);
        assert_identical(&seq, &par, &format!("{workers} workers"));
    }
}

/// Per-layer θ overrides narrow some layers' accumulators (deliberately
/// diverging from the exact reference, so golden checking stays off); the
/// scheduler must still be invisible in the results.
#[test]
fn theta_overrides_schedule_identically() {
    let trace = many_small_ops(32, 0x7E7A);
    let mut cfg = AcceleratorConfig::fpraker_paper();
    cfg.theta_overrides = vec![("l1".into(), 8), ("l4".into(), 6)];
    let seq = Engine::with_threads(1).run(Machine::FpRaker, &trace, &cfg);
    for workers in [2usize, 8] {
        let par = Engine::with_threads(workers).run(Machine::FpRaker, &trace, &cfg);
        assert_identical(&seq, &par, &format!("theta {workers} workers"));
    }
}

#[test]
fn baseline_machine_schedules_identically_on_small_ops() {
    let trace = many_small_ops(64, 0xF00D);
    let cfg = AcceleratorConfig::baseline_paper();
    let seq = Engine::with_threads(1).run(Machine::Baseline, &trace, &cfg);
    for workers in [2usize, 8] {
        let par = Engine::with_threads(workers).run(Machine::Baseline, &trace, &cfg);
        assert_identical(&seq, &par, &format!("baseline {workers} workers"));
    }
}

/// The budget clamp: a worker budget far beyond the available op×block
/// work must behave exactly like a fitting one.
#[test]
fn oversized_worker_budgets_clamp_to_available_work() {
    let trace = many_small_ops(3, 0xC1A);
    let cfg = AcceleratorConfig::fpraker_paper();
    let seq = Engine::with_threads(1).run(Machine::FpRaker, &trace, &cfg);
    let huge = Engine::with_threads(10_000).run(Machine::FpRaker, &trace, &cfg);
    assert_identical(&seq, &huge, "10k workers");
    let resolved = Engine::with_threads(10_000).resolved_threads_for(&trace, &cfg);
    assert!(resolved <= 3 * 4, "clamped to op x block work: {resolved}");
}

fn fold_stats(run: &RunResult) -> ExecStats {
    run.ops
        .iter()
        .fold(ExecStats::default(), |acc, o| acc + o.stats)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Whatever the trace shape and worker count, trace-level aggregates
    /// are exactly the fold of the per-op outcomes, and agree with the
    /// sequential reference — scheduling order never leaks into results.
    #[test]
    fn per_op_results_sum_to_trace_totals(
        count in 1usize..24,
        seed in any::<u64>(),
        workers in 1usize..9,
    ) {
        let trace = many_small_ops(count, seed);
        let cfg = AcceleratorConfig::fpraker_paper();
        let run = Engine::with_threads(workers).run(Machine::FpRaker, &trace, &cfg);
        prop_assert_eq!(run.ops.len(), count);
        prop_assert_eq!(run.cycles(), run.ops.iter().map(|o| o.cycles).sum::<u64>());
        prop_assert_eq!(
            run.compute_cycles(),
            run.ops.iter().map(|o| o.compute_cycles).sum::<u64>()
        );
        prop_assert_eq!(run.macs(), trace.macs());
        prop_assert_eq!(run.stats(), fold_stats(&run));
        prop_assert_eq!(
            run.cycles_by_phase().values().sum::<u64>(),
            run.cycles()
        );
        let seq = Engine::with_threads(1).run(Machine::FpRaker, &trace, &cfg);
        prop_assert_eq!(run.cycles(), seq.cycles());
        prop_assert_eq!(run.stats(), seq.stats());
        prop_assert_eq!(run.counts(), seq.counts());
    }
}
