//! Accelerator-level integration tests: configuration sweeps and the
//! Section I three-machine comparison.

use fpraker_num::reference::SplitMix64;
use fpraker_num::Bf16;
use fpraker_sim::{
    simulate_trace_baseline, simulate_trace_fpraker, AcceleratorConfig, SerialPolicy,
};
use fpraker_trace::{Phase, TensorKind, Trace, TraceOp};

/// A quantized-looking trace (short mantissas, bursty zeros, narrow
/// exponents) big enough to occupy every tile.
fn quantized_trace() -> Trace {
    let mut rng = SplitMix64::new(0x51AB);
    let mut tr = Trace::new("quantized", 50);
    for phase in [Phase::AxW, Phase::GxW, Phase::AxG] {
        let (m, n, k) = (128, 64, 64);
        let gen = |rng: &mut SplitMix64, count: usize| -> Vec<Bf16> {
            let mut out = Vec::with_capacity(count);
            let mut burst = 0u32;
            for _ in 0..count {
                if burst > 0 {
                    burst -= 1;
                    out.push(Bf16::ZERO);
                    continue;
                }
                if rng.next_f64() < 0.18 {
                    burst = 5; // bursty zeros, like post-ReLU feature maps
                    out.push(Bf16::ZERO);
                } else {
                    let v = rng.bf16_in_range(2);
                    // 3-bit mantissa, as PACT training produces.
                    out.push(Bf16::from_parts(
                        v.sign(),
                        v.exponent(),
                        v.significand() & 0xE0,
                    ));
                }
            }
            out
        };
        tr.ops.push(TraceOp {
            layer: format!("{phase}"),
            phase,
            m,
            n,
            k,
            a: gen(&mut rng, m * k),
            b: gen(&mut rng, n * k),
            a_kind: TensorKind::Activation,
            b_kind: TensorKind::Weight,
            a_dup: 1.0,
            b_dup: 1.0,
            out_dup: 1.0,
        });
    }
    tr
}

#[test]
fn three_machine_ordering_matches_section_i() {
    // FPRaker (36 tiles) must out-compute the baseline (8 tiles), and the
    // bfloat16 Bit-Pragmatic design (20 tiles, full shifters, no OB skip,
    // no sharing) must trail FPRaker — the paper's Section I motivation.
    let trace = quantized_trace();
    let bl = simulate_trace_baseline(&trace, &AcceleratorConfig::baseline_paper());
    let fp = simulate_trace_fpraker(&trace, &AcceleratorConfig::fpraker_paper());
    let pr = simulate_trace_fpraker(&trace, &AcceleratorConfig::pragmatic_paper());
    let s_fp = bl.compute_cycles() as f64 / fp.compute_cycles().max(1) as f64;
    let s_pr = bl.compute_cycles() as f64 / pr.compute_cycles().max(1) as f64;
    assert!(s_fp > 1.0, "FPRaker compute speedup {s_fp} <= 1");
    assert!(
        s_fp > s_pr,
        "FPRaker ({s_fp}) should beat Bit-Pragmatic ({s_pr})"
    );
}

#[test]
fn more_tiles_scale_until_blocks_run_out() {
    let trace = quantized_trace();
    let mut prev = u64::MAX;
    for tiles in [4usize, 9, 18, 36] {
        let cfg = AcceleratorConfig {
            tiles,
            ..AcceleratorConfig::fpraker_paper()
        };
        let run = simulate_trace_fpraker(&trace, &cfg);
        assert!(
            run.compute_cycles() <= prev,
            "{tiles} tiles slower than fewer tiles"
        );
        prev = run.compute_cycles();
    }
}

#[test]
fn serial_side_choice_is_visible_in_cycles() {
    let mut trace = quantized_trace();
    // Make B dense (in *canonical terms* — note 0xFF would be the opposite:
    // 1.1111111 = 2 - 2^-7 is only two terms!) so the A side is clearly
    // preferable.
    use fpraker_num::encode::{term_count, Encoding};
    assert!(term_count(0xD5, Encoding::Canonical) >= 4);
    for op in &mut trace.ops {
        for v in &mut op.b {
            if !v.is_zero() {
                *v = Bf16::from_parts(v.sign(), v.exponent(), 0xD5);
            }
        }
    }
    let run = |policy| {
        let cfg = AcceleratorConfig {
            serial_policy: policy,
            ..AcceleratorConfig::fpraker_paper()
        };
        simulate_trace_fpraker(&trace, &cfg).compute_cycles()
    };
    let auto = run(SerialPolicy::Sparser);
    let a = run(SerialPolicy::AlwaysA);
    let b = run(SerialPolicy::AlwaysB);
    assert_eq!(auto, a.min(b), "Sparser should match the better side");
    assert!(b > a, "dense serial side should be slower");
}

#[test]
fn golden_checking_holds_across_all_machines_configs() {
    let mut trace = quantized_trace();
    trace.ops.truncate(1);
    for rows in [2usize, 8] {
        let mut cfg = AcceleratorConfig::fpraker_paper();
        cfg.tile = fpraker_core::TileConfig::with_rows(rows);
        cfg.check_golden = true;
        let run = simulate_trace_fpraker(&trace, &cfg);
        assert_eq!(run.golden_failures(), 0, "rows={rows}");
    }
}

#[test]
fn narrow_accumulators_trade_cycles_monotonically() {
    let mut trace = quantized_trace();
    trace.ops.truncate(1);
    let mut prev = u64::MAX;
    for theta in [12i32, 8, 4] {
        let mut cfg = AcceleratorConfig::fpraker_paper();
        cfg.theta_overrides = trace.ops.iter().map(|o| (o.layer.clone(), theta)).collect();
        let run = simulate_trace_fpraker(&trace, &cfg);
        assert!(
            run.compute_cycles() <= prev,
            "theta={theta} slower than wider"
        );
        prev = run.compute_cycles();
    }
}
