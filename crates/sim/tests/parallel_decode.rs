//! Parallel segment decode determinism: simulating an **indexed** trace
//! with one decode cursor per segment group must produce a `RunResult`
//! bit-identical to `Engine::run` on the fully loaded trace and to the
//! sequential streaming path — at 1, 2 and 8 workers, with golden
//! checking on — and damaged footers must degrade to sequential decode
//! without changing a single result.

use std::fs::File;
use std::io::BufWriter;

use fpraker_num::reference::SplitMix64;
use fpraker_num::Bf16;
use fpraker_sim::{AcceleratorConfig, Engine, Machine, OpOutcome, RunResult};
use fpraker_trace::{codec, IndexedBytes, Phase, TensorKind, Trace, TraceOp, TraceSource};
use proptest::prelude::*;

/// A trace mixing large fan-out ops with tiny GEMMs — enough ops that a
/// small index stride yields many segments.
fn mixed_trace(count: usize) -> Trace {
    let mut rng = SplitMix64::new(0x1DE7);
    let mut tr = Trace::new("parallel-decode", 50);
    let phases = [Phase::AxW, Phase::GxW, Phase::AxG];
    for i in 0..count {
        let (m, n, k) = if i % 6 == 0 {
            (32, 24, 16)
        } else {
            (8 + (i % 3) * 4, 8, 8)
        };
        let zero_pct = (i % 4) as f64 * 0.2;
        let gen = |rng: &mut SplitMix64, count: usize| -> Vec<Bf16> {
            (0..count)
                .map(|_| {
                    if rng.next_f64() < zero_pct {
                        Bf16::ZERO
                    } else {
                        rng.bf16_in_range(4)
                    }
                })
                .collect()
        };
        tr.ops.push(TraceOp {
            layer: format!("l{i}"),
            phase: phases[i % 3],
            m,
            n,
            k,
            a: gen(&mut rng, m * k),
            b: gen(&mut rng, n * k),
            a_kind: TensorKind::Activation,
            b_kind: TensorKind::Weight,
            a_dup: 1.0,
            b_dup: 1.0,
            out_dup: 1.0,
        });
    }
    tr
}

fn encode_indexed(tr: &Trace, stride: u32) -> Vec<u8> {
    let mut out = Vec::new();
    let mut w = codec::Writer::new(&mut out, &tr.model, tr.progress_pct, tr.ops.len() as u32)
        .expect("header");
    for op in &tr.ops {
        w.write_op(op).expect("op");
    }
    w.finish_indexed(stride).expect("footer");
    out
}

fn assert_ops_identical(a: &OpOutcome, b: &OpOutcome, what: &str) {
    assert_eq!(a.layer, b.layer, "{what}: layer");
    assert_eq!(a.cycles, b.cycles, "{what}: cycles");
    assert_eq!(a.compute_cycles, b.compute_cycles, "{what}: compute");
    assert_eq!(a.mem_cycles, b.mem_cycles, "{what}: memory");
    assert_eq!(a.stats, b.stats, "{what}: stats");
    assert_eq!(a.counts, b.counts, "{what}: counts");
    assert_eq!(a.traffic, b.traffic, "{what}: traffic");
    assert_eq!(a.sram_bytes, b.sram_bytes, "{what}: sram");
    assert_eq!(a.golden_failures, b.golden_failures, "{what}: golden");
}

fn assert_runs_identical(a: &RunResult, b: &RunResult, what: &str) {
    assert_eq!(a.ops.len(), b.ops.len(), "{what}: op count");
    for (i, (x, y)) in a.ops.iter().zip(&b.ops).enumerate() {
        assert_ops_identical(x, y, &format!("{what} op{i}"));
    }
}

/// The tentpole invariant: parallel segment decode == `Engine::run`, bit
/// for bit, at 1, 2 and 8 workers (golden checking on), through both the
/// in-memory and the on-disk indexed sources.
#[test]
fn parallel_decode_is_bit_identical_to_in_memory_at_1_2_and_8_workers() {
    let trace = mixed_trace(24);
    let bytes = encode_indexed(&trace, 2);
    let mut cfg = AcceleratorConfig::fpraker_paper();
    cfg.check_golden = true;
    cfg.tiles = 4;

    let path = std::env::temp_dir().join(format!(
        "fpraker_parallel_decode_{}.trace",
        std::process::id()
    ));
    std::fs::write(&path, &bytes).expect("write indexed trace");

    for workers in [1usize, 2, 8] {
        let engine = Engine::with_threads(workers).stream_window(3);
        let in_memory = engine.run(Machine::FpRaker, &trace, &cfg);

        let source = IndexedBytes::new(bytes.clone()).expect("header");
        assert!(source.has_index());
        let streamed = engine
            .run_source(Machine::FpRaker, source, &cfg)
            .expect("indexed bytes");
        assert_runs_identical(
            &streamed.result,
            &in_memory,
            &format!("{workers} workers, bytes"),
        );
        assert_eq!(streamed.result.golden_failures(), 0);

        let from_file = engine
            .run_indexed(Machine::FpRaker, &path, &cfg)
            .expect("indexed file");
        assert_runs_identical(
            &from_file.result,
            &in_memory,
            &format!("{workers} workers, file"),
        );
    }
    std::fs::remove_file(&path).ok();
}

/// Segment cursors are actually handed out in parallel form (more than
/// one), and the sequential streaming run over the very same bytes agrees.
#[test]
fn segmented_and_sequential_streaming_agree() {
    let trace = mixed_trace(18);
    let bytes = encode_indexed(&trace, 3);
    let cfg = AcceleratorConfig::fpraker_paper();
    let engine = Engine::with_threads(4).stream_window(2);

    let source = IndexedBytes::new(bytes.clone()).expect("header");
    let cursors = source.segment_cursors(4).expect("indexed source");
    assert!(cursors.len() > 1, "expected parallel cursors");
    assert_eq!(cursors.iter().map(|c| c.ops).sum::<u64>(), 18);

    let segmented = engine
        .run_source(Machine::FpRaker, source, &cfg)
        .expect("segmented");
    let sequential = engine
        .run_source(
            Machine::FpRaker,
            codec::Reader::new(&bytes[..]).expect("header"),
            &cfg,
        )
        .expect("sequential");
    assert_runs_identical(&segmented.result, &sequential.result, "segmented vs stream");
    // Parallel decode bounds residency per cursor, not globally.
    assert!(segmented.peak_resident_ops <= 2 * cursors_len_bound(18, 3, 4));
}

fn cursors_len_bound(ops: u32, stride: u32, limit: usize) -> usize {
    (ops.div_ceil(stride) as usize).min(limit)
}

/// A corrupted or truncated footer degrades to sequential decode with
/// identical results — and a baseline-machine run agrees too.
#[test]
fn damaged_footer_degrades_without_changing_results() {
    let trace = mixed_trace(12);
    let good = encode_indexed(&trace, 2);
    let plain_len = codec::encode(&trace).len();
    let cfg = AcceleratorConfig::fpraker_paper();
    let engine = Engine::with_threads(4);
    let reference = engine.run(Machine::FpRaker, &trace, &cfg);

    // Corrupt the middle of the footer table and truncate half of it.
    let mut corrupted = good.clone();
    let mid = plain_len + (good.len() - plain_len) / 2;
    corrupted[mid] ^= 0x5A;
    let truncated = good[..mid].to_vec();
    for bytes in [corrupted, truncated] {
        let source = IndexedBytes::new(bytes).expect("header still valid");
        assert!(!source.has_index(), "damaged footer must not index");
        assert!(source.segment_cursors(4).is_none());
        let run = engine
            .run_source(Machine::FpRaker, source, &cfg)
            .expect("degraded run");
        assert_runs_identical(&run.result, &reference, "degraded");
    }

    // Pre-PR-5 files (no footer at all) still run, streamed or indexed.
    let plain = codec::encode(&trace).to_vec();
    let source = IndexedBytes::new(plain).expect("plain header");
    assert!(!source.has_index());
    let run = engine
        .run_source(Machine::FpRaker, source, &cfg)
        .expect("plain run");
    assert_runs_identical(&run.result, &reference, "pre-footer file");

    let bl_cfg = AcceleratorConfig::baseline_paper();
    let bl_ref = engine.run(Machine::Baseline, &trace, &bl_cfg);
    let bl = engine
        .run_source(
            Machine::Baseline,
            IndexedBytes::new(encode_indexed(&trace, 2)).expect("header"),
            &bl_cfg,
        )
        .expect("baseline indexed");
    assert_runs_identical(&bl.result, &bl_ref, "baseline indexed");
}

/// A trace truncated mid-op errors cleanly from the parallel path at
/// every worker count (no hang, no panic), like the sequential path.
#[test]
fn truncated_op_stream_errors_cleanly_from_parallel_decode() {
    let trace = mixed_trace(12);
    let bytes = encode_indexed(&trace, 2);
    let plain_len = codec::encode(&trace).len();
    // Cut inside the op region, then re-append the *original* footer so
    // the index still parses and points (partly) past the cut.
    let mut cut = bytes[..plain_len * 2 / 3].to_vec();
    cut.extend_from_slice(&bytes[plain_len..]);
    for workers in [2usize, 8] {
        let engine = Engine::with_threads(workers).stream_window(2);
        let source = IndexedBytes::new(cut.clone()).expect("header");
        let err = engine
            .run_source(
                Machine::FpRaker,
                source,
                &AcceleratorConfig::fpraker_paper(),
            )
            .expect_err("truncated ops must error");
        assert!(err.to_string().contains("at byte"), "{workers}: {err}");
    }
}

/// An on-disk indexed round trip through a `BufWriter`-backed
/// `GrowingWriter` (the capture path) simulates identically.
#[test]
fn growing_writer_file_round_trips_through_run_indexed() {
    let trace = mixed_trace(10);
    let path = std::env::temp_dir().join(format!(
        "fpraker_growing_decode_{}.trace",
        std::process::id()
    ));
    {
        let file = BufWriter::new(File::create(&path).expect("create"));
        let mut w =
            codec::GrowingWriter::new(file, &trace.model, trace.progress_pct).expect("header");
        for op in &trace.ops {
            w.write_op(op).expect("op");
        }
        assert_eq!(w.finish_indexed(2).expect("finish"), 10);
    }
    let cfg = AcceleratorConfig::fpraker_paper();
    let engine = Engine::with_threads(4);
    let run = engine
        .run_indexed(Machine::FpRaker, &path, &cfg)
        .expect("run indexed");
    std::fs::remove_file(&path).ok();
    assert_runs_identical(
        &run.result,
        &engine.run(Machine::FpRaker, &trace, &cfg),
        "growing writer file",
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Arbitrary op mixes, strides and worker counts: the parallel path
    /// always folds to the in-memory result.
    #[test]
    fn parallel_decode_matches_in_memory_for_arbitrary_traces(
        count in 4usize..14,
        stride in 1u32..5,
        workers in 2usize..9,
        seed in any::<u64>(),
    ) {
        let mut rng = SplitMix64::new(seed);
        let mut tr = Trace::new("prop", 10);
        for i in 0..count {
            let (m, n, k) = (4 + (i % 3) * 4, 4 + (i % 2) * 8, 8);
            tr.ops.push(TraceOp {
                layer: format!("p{i}"),
                phase: [Phase::AxW, Phase::GxW, Phase::AxG][i % 3],
                m,
                n,
                k,
                a: (0..m * k).map(|_| rng.bf16_in_range(3)).collect(),
                b: (0..n * k).map(|_| rng.bf16_in_range(3)).collect(),
                a_kind: TensorKind::Activation,
                b_kind: TensorKind::Weight,
                a_dup: 1.0,
                b_dup: 1.0,
                out_dup: 1.0,
            });
        }
        let bytes = encode_indexed(&tr, stride);
        let cfg = AcceleratorConfig::fpraker_paper();
        let engine = Engine::with_threads(workers).stream_window(2);
        let in_memory = engine.run(Machine::FpRaker, &tr, &cfg);
        let streamed = engine
            .run_source(
                Machine::FpRaker,
                IndexedBytes::new(bytes).expect("header"),
                &cfg,
            )
            .expect("indexed run");
        prop_assert_eq!(streamed.result.ops.len(), in_memory.ops.len());
        for (s, m) in streamed.result.ops.iter().zip(&in_memory.ops) {
            prop_assert_eq!(s.cycles, m.cycles);
            prop_assert_eq!(s.compute_cycles, m.compute_cycles);
            prop_assert_eq!(&s.stats, &m.stats);
            prop_assert_eq!(&s.counts, &m.counts);
        }
    }
}
