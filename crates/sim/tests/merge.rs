//! Partial-run fold determinism: `RunResult::merge_partials` over runs of
//! disjoint contiguous sub-traces must reproduce the whole-trace
//! `Engine::run` bit-identically — integer aggregates equal, energy equal
//! to the last mantissa bit (it is derived from the summed integer event
//! counts, never from adding per-partial floats) — in any completion
//! order, for any partition, on either machine. This is the invariant the
//! distributed shard coordinator's merge rests on.

use fpraker_energy::EnergyModel;
use fpraker_num::reference::SplitMix64;
use fpraker_num::Bf16;
use fpraker_sim::{AcceleratorConfig, Engine, Machine, MergeError, RunResult};
use fpraker_trace::{Phase, TensorKind, Trace, TraceOp};
use proptest::prelude::*;

fn mixed_trace(count: usize, seed: u64) -> Trace {
    let mut rng = SplitMix64::new(seed);
    let mut tr = Trace::new("merge-test", 35);
    let phases = [Phase::AxW, Phase::GxW, Phase::AxG];
    for i in 0..count {
        let (m, n, k) = (4 + (i % 3) * 8, 4 + (i % 2) * 4, 8);
        let zero_pct = (i % 4) as f64 * 0.2;
        let gen = |rng: &mut SplitMix64, count: usize| -> Vec<Bf16> {
            (0..count)
                .map(|_| {
                    if rng.next_f64() < zero_pct {
                        Bf16::ZERO
                    } else {
                        rng.bf16_in_range(4)
                    }
                })
                .collect()
        };
        tr.ops.push(TraceOp {
            layer: format!("l{i}"),
            phase: phases[i % 3],
            m,
            n,
            k,
            a: gen(&mut rng, m * k),
            b: gen(&mut rng, n * k),
            a_kind: TensorKind::Activation,
            b_kind: TensorKind::Weight,
            a_dup: 1.0,
            b_dup: 1.0,
            out_dup: 1.0,
        });
    }
    tr
}

/// The op range `[first, first + ops)` of `tr` as a standalone trace —
/// what a shard worker would decode from a segment-range extract.
fn sub_trace(tr: &Trace, first: usize, ops: usize) -> Trace {
    let mut sub = Trace::new(&tr.model, tr.progress_pct);
    sub.ops = tr.ops[first..first + ops].to_vec();
    sub
}

/// Splits `0..total` at the given interior cut points into
/// `(first_op, ops)` ranges.
fn ranges_from_cuts(total: usize, cuts: &[usize]) -> Vec<(usize, usize)> {
    let mut bounds = vec![0];
    bounds.extend(cuts.iter().copied());
    bounds.push(total);
    bounds.windows(2).map(|w| (w[0], w[1] - w[0])).collect()
}

fn assert_bit_identical(merged: &RunResult, whole: &RunResult, what: &str) {
    assert_eq!(merged.ops.len(), whole.ops.len(), "{what}: op count");
    assert_eq!(merged.cycles(), whole.cycles(), "{what}: cycles");
    assert_eq!(
        merged.compute_cycles(),
        whole.compute_cycles(),
        "{what}: compute cycles"
    );
    assert_eq!(merged.macs(), whole.macs(), "{what}: macs");
    assert_eq!(
        merged.golden_failures(),
        whole.golden_failures(),
        "{what}: golden failures"
    );
    assert_eq!(merged.counts(), whole.counts(), "{what}: event counts");
    assert_eq!(merged.stats(), whole.stats(), "{what}: exec stats");
    let model = EnergyModel::paper();
    assert_eq!(
        merged.energy(&model).total_pj().to_bits(),
        whole.energy(&model).total_pj().to_bits(),
        "{what}: energy bits"
    );
    for (i, (m, w)) in merged.ops.iter().zip(&whole.ops).enumerate() {
        assert_eq!(m.layer, w.layer, "{what} op{i}: layer");
        assert_eq!(m.cycles, w.cycles, "{what} op{i}: cycles");
        assert_eq!(m.counts, w.counts, "{what} op{i}: counts");
    }
}

#[test]
fn merged_sub_trace_runs_bit_equal_the_whole_run_on_both_machines() {
    let tr = mixed_trace(12, 0x5EED);
    for (machine, cfg) in [
        (Machine::FpRaker, AcceleratorConfig::fpraker_paper()),
        (Machine::Baseline, AcceleratorConfig::baseline_paper()),
    ] {
        let engine = Engine::with_threads(2);
        let whole = engine.run(machine, &tr, &cfg);
        for cuts in [vec![], vec![5], vec![3, 7], vec![1, 2, 3, 11]] {
            let partials: Vec<(u64, RunResult)> = ranges_from_cuts(12, &cuts)
                .into_iter()
                .map(|(first, ops)| {
                    (
                        first as u64,
                        engine.run(machine, &sub_trace(&tr, first, ops), &cfg),
                    )
                })
                .collect();
            let merged = RunResult::merge_partials(partials).expect("contiguous merge");
            assert_bit_identical(&merged, &whole, &format!("{machine:?} cuts {cuts:?}"));
        }
    }
}

#[test]
fn merge_accepts_partials_in_any_order() {
    let tr = mixed_trace(9, 7);
    let cfg = AcceleratorConfig::fpraker_paper();
    let engine = Engine::with_threads(1);
    let whole = engine.run(Machine::FpRaker, &tr, &cfg);
    let mut partials: Vec<(u64, RunResult)> = ranges_from_cuts(9, &[2, 6])
        .into_iter()
        .map(|(first, ops)| {
            (
                first as u64,
                engine.run(Machine::FpRaker, &sub_trace(&tr, first, ops), &cfg),
            )
        })
        .collect();
    partials.reverse();
    partials.swap(0, 1);
    let merged = RunResult::merge_partials(partials).expect("order must not matter");
    assert_bit_identical(&merged, &whole, "reversed completion order");
}

#[test]
fn merge_rejects_empty_gaps_overlaps_and_machine_mixes() {
    let tr = mixed_trace(6, 1);
    let cfg = AcceleratorConfig::fpraker_paper();
    let engine = Engine::with_threads(1);
    let run_range = |machine, first: usize, ops: usize| {
        (
            first as u64,
            engine.run(machine, &sub_trace(&tr, first, ops), &cfg),
        )
    };

    assert_eq!(
        RunResult::merge_partials(Vec::new()).unwrap_err(),
        MergeError::Empty
    );

    let gap = vec![
        run_range(Machine::FpRaker, 0, 2),
        run_range(Machine::FpRaker, 4, 2),
    ];
    assert_eq!(
        RunResult::merge_partials(gap).unwrap_err(),
        MergeError::NotContiguous {
            expected: 2,
            found: 4
        }
    );

    let overlap = vec![
        run_range(Machine::FpRaker, 0, 4),
        run_range(Machine::FpRaker, 2, 4),
    ];
    assert_eq!(
        RunResult::merge_partials(overlap).unwrap_err(),
        MergeError::NotContiguous {
            expected: 4,
            found: 2
        }
    );

    let mixed = vec![
        run_range(Machine::FpRaker, 0, 3),
        run_range(Machine::Baseline, 3, 3),
    ];
    assert_eq!(
        RunResult::merge_partials(mixed).unwrap_err(),
        MergeError::MachineMismatch {
            expected: Machine::FpRaker,
            found: Machine::Baseline
        }
    );

    // A partial starting past 0 is itself non-contiguous.
    let tail_only = vec![run_range(Machine::FpRaker, 2, 4)];
    assert_eq!(
        RunResult::merge_partials(tail_only).unwrap_err(),
        MergeError::NotContiguous {
            expected: 0,
            found: 2
        }
    );
}

#[test]
fn merging_one_partial_or_empty_ranges_is_exact() {
    let tr = mixed_trace(5, 3);
    let cfg = AcceleratorConfig::fpraker_paper();
    let engine = Engine::with_threads(1);
    let whole = engine.run(Machine::FpRaker, &tr, &cfg);

    // Degenerate partition: one shard carrying everything.
    let single = vec![(0u64, whole.clone())];
    let merged = RunResult::merge_partials(single).expect("single partial");
    assert_bit_identical(&merged, &whole, "single partial");

    // Zero-op partials are legal fillers (an empty segment group).
    let empty = Trace::new(&tr.model, tr.progress_pct);
    let padded = vec![
        (0u64, engine.run(Machine::FpRaker, &empty, &cfg)),
        (0u64, whole.clone()),
        (5u64, engine.run(Machine::FpRaker, &empty, &cfg)),
    ];
    let merged = RunResult::merge_partials(padded).expect("empty partials fold away");
    assert_bit_identical(&merged, &whole, "zero-op partials");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random traces × random partitions × shuffled completion order: the
    /// merged result always bit-equals the unsharded run. Partition width
    /// sweeps 1..=count, covering the 1-worker (single shard) and
    /// more-shards-than-ops extremes the coordinator also hits.
    #[test]
    fn merge_bit_equals_unsharded_for_random_partitions(
        count in 2usize..10,
        parts in 1usize..5,
        seed in any::<u64>(),
    ) {
        let tr = mixed_trace(count, seed);
        let cfg = AcceleratorConfig::fpraker_paper();
        let engine = Engine::with_threads(2);
        let whole = engine.run(Machine::FpRaker, &tr, &cfg);

        // Derive `parts - 1` random interior cut points from the seed.
        let mut rng = SplitMix64::new(seed ^ 0xC07);
        let mut cuts: Vec<usize> = (0..parts - 1)
            .map(|_| 1 + (rng.next_u64() as usize) % (count - 1))
            .collect();
        cuts.sort_unstable();
        cuts.dedup();

        let mut partials: Vec<(u64, RunResult)> = ranges_from_cuts(count, &cuts)
            .into_iter()
            .map(|(first, ops)| {
                (
                    first as u64,
                    engine.run(Machine::FpRaker, &sub_trace(&tr, first, ops), &cfg),
                )
            })
            .collect();

        // Fisher–Yates with the same deterministic rng: completion order
        // must not matter.
        for i in (1..partials.len()).rev() {
            let j = (rng.next_u64() as usize) % (i + 1);
            partials.swap(i, j);
        }

        let merged = RunResult::merge_partials(partials).expect("contiguous merge");
        prop_assert_eq!(merged.ops.len(), whole.ops.len());
        prop_assert_eq!(merged.cycles(), whole.cycles());
        prop_assert_eq!(merged.compute_cycles(), whole.compute_cycles());
        prop_assert_eq!(merged.macs(), whole.macs());
        prop_assert_eq!(merged.counts(), whole.counts());
        let model = EnergyModel::paper();
        prop_assert_eq!(
            merged.energy(&model).total_pj().to_bits(),
            whole.energy(&model).total_pj().to_bits()
        );
        for (m, w) in merged.ops.iter().zip(&whole.ops) {
            prop_assert_eq!(m.cycles, w.cycles);
            prop_assert_eq!(&m.counts, &w.counts);
        }
    }
}
