//! Sequential-vs-parallel determinism: the engine's block fan-out must be
//! invisible in the results. Same trace, 1 worker vs N workers → identical
//! cycles, statistics, event counts, traffic and golden-check outcomes,
//! on both machines.

use fpraker_num::reference::SplitMix64;
use fpraker_num::Bf16;
use fpraker_sim::{AcceleratorConfig, Engine, Machine, OpOutcome, RunResult};
use fpraker_trace::{Phase, TensorKind, Trace, TraceOp};

/// A trace big enough to fan out over many blocks per op (several tiles'
/// worth of 8×8 output blocks), with mixed sparsity so FPRaker's timing is
/// genuinely value-dependent.
fn fan_out_trace() -> Trace {
    let mut rng = SplitMix64::new(0xD17E);
    let mut tr = Trace::new("determinism", 50);
    for (i, (phase, zero_pct)) in [(Phase::AxW, 0.3), (Phase::GxW, 0.6), (Phase::AxG, 0.0)]
        .iter()
        .enumerate()
    {
        let (m, n, k) = (72, 40, 24);
        let gen = |rng: &mut SplitMix64, count: usize| -> Vec<Bf16> {
            (0..count)
                .map(|_| {
                    if rng.next_f64() < *zero_pct {
                        Bf16::ZERO
                    } else {
                        rng.bf16_in_range(4)
                    }
                })
                .collect()
        };
        tr.ops.push(TraceOp {
            layer: format!("layer{i}"),
            phase: *phase,
            m,
            n,
            k,
            a: gen(&mut rng, m * k),
            b: gen(&mut rng, n * k),
            a_kind: TensorKind::Activation,
            b_kind: TensorKind::Weight,
            a_dup: 1.0,
            b_dup: 1.0,
            out_dup: 1.0,
        });
    }
    tr
}

fn assert_ops_identical(seq: &OpOutcome, par: &OpOutcome, what: &str) {
    assert_eq!(seq.cycles, par.cycles, "{what}: op cycles");
    assert_eq!(
        seq.compute_cycles, par.compute_cycles,
        "{what}: compute cycles"
    );
    assert_eq!(seq.mem_cycles, par.mem_cycles, "{what}: memory cycles");
    assert_eq!(seq.stats, par.stats, "{what}: exec stats");
    assert_eq!(seq.counts, par.counts, "{what}: event counts");
    assert_eq!(seq.traffic, par.traffic, "{what}: traffic");
    assert_eq!(seq.sram_bytes, par.sram_bytes, "{what}: sram bytes");
    assert_eq!(
        seq.golden_failures, par.golden_failures,
        "{what}: golden failures"
    );
}

fn assert_runs_identical(seq: &RunResult, par: &RunResult, what: &str) {
    assert_eq!(seq.ops.len(), par.ops.len(), "{what}: op count");
    for (i, (s, p)) in seq.ops.iter().zip(&par.ops).enumerate() {
        assert_ops_identical(s, p, &format!("{what} op{i}"));
    }
}

#[test]
fn fpraker_runs_are_identical_across_thread_counts() {
    let trace = fan_out_trace();
    let mut cfg = AcceleratorConfig::fpraker_paper();
    // Golden checking recomputes every output from the f64 reference: if
    // the parallel path scrambled accumulator state, this would see it.
    cfg.check_golden = true;
    cfg.tiles = 4;
    let seq = Engine::with_threads(1).run(Machine::FpRaker, &trace, &cfg);
    assert_eq!(seq.golden_failures(), 0, "sequential golden check");
    for threads in [2, 3, 4, 7, 16] {
        let par = Engine::with_threads(threads).run(Machine::FpRaker, &trace, &cfg);
        assert_runs_identical(&seq, &par, &format!("{threads} threads"));
    }
    // And the auto engine (one worker per core).
    let auto = Engine::new().run(Machine::FpRaker, &trace, &cfg);
    assert_runs_identical(&seq, &auto, "auto threads");
}

#[test]
fn baseline_runs_are_identical_across_thread_counts() {
    let trace = fan_out_trace();
    let cfg = AcceleratorConfig::baseline_paper();
    let seq = Engine::with_threads(1).run(Machine::Baseline, &trace, &cfg);
    for threads in [2, 8] {
        let par = Engine::with_threads(threads).run(Machine::Baseline, &trace, &cfg);
        assert_runs_identical(&seq, &par, &format!("baseline {threads} threads"));
    }
}

/// Mixed op sizes — a few large fan-out ops interleaved with a tail of
/// tiny GEMMs — exercise the op×block scheduler's interleaving: work units
/// of different ops run concurrently on the shared pool, and the fold must
/// still be bit-identical to the sequential reference, golden checking on.
#[test]
fn mixed_large_and_small_ops_are_identical_across_worker_counts() {
    let mut trace = fan_out_trace();
    let mut rng = SplitMix64::new(0x51AB);
    for i in 0..24 {
        let (m, n, k) = (4 + (i % 3) * 4, 8, 8);
        trace.ops.push(TraceOp {
            layer: format!("tiny{i}"),
            phase: Phase::AxW,
            m,
            n,
            k,
            a: (0..m * k).map(|_| rng.bf16_in_range(3)).collect(),
            b: (0..n * k).map(|_| rng.bf16_in_range(3)).collect(),
            a_kind: TensorKind::Activation,
            b_kind: TensorKind::Weight,
            a_dup: 1.0,
            b_dup: 1.0,
            out_dup: 1.0,
        });
    }
    let mut cfg = AcceleratorConfig::fpraker_paper();
    cfg.check_golden = true;
    cfg.tiles = 4;
    let seq = Engine::with_threads(1).run(Machine::FpRaker, &trace, &cfg);
    assert_eq!(seq.golden_failures(), 0, "sequential golden check");
    for threads in [2, 5, 16] {
        let par = Engine::with_threads(threads).run(Machine::FpRaker, &trace, &cfg);
        assert_runs_identical(&seq, &par, &format!("mixed {threads} threads"));
    }
}

/// The observability invariant: telemetry observes the run and never
/// influences it. Runtime-disabling telemetry (and, on the CI leg that
/// builds with `telemetry-off`, compiling it out entirely) must leave
/// every run bit-identical at 1, 2 and 8 workers, golden checking on.
#[test]
fn telemetry_on_off_runs_are_bit_identical() {
    let trace = fan_out_trace();
    let mut cfg = AcceleratorConfig::fpraker_paper();
    cfg.check_golden = true;
    cfg.tiles = 4;
    let golden: Vec<RunResult> = [1, 2, 8]
        .iter()
        .map(|&t| Engine::with_threads(t).run(Machine::FpRaker, &trace, &cfg))
        .collect();
    assert_eq!(golden[0].golden_failures(), 0, "golden check");
    // Same engine, telemetry runtime-disabled: identical results. When
    // the suite is compiled with `telemetry-off` this exercises the
    // compiled-out no-op path instead — same assertion either way.
    fpraker_telemetry::set_enabled(false);
    let off: Vec<RunResult> = [1, 2, 8]
        .iter()
        .map(|&t| Engine::with_threads(t).run(Machine::FpRaker, &trace, &cfg))
        .collect();
    fpraker_telemetry::set_enabled(true);
    for ((threads, on), off) in [1, 2, 8].iter().zip(&golden).zip(&off) {
        assert_runs_identical(on, off, &format!("telemetry off, {threads} workers"));
    }
    // And the instrumented telemetry API itself: run_with_telemetry
    // returns the very same results as run.
    for (threads, on) in [1usize, 2, 8].iter().zip(&golden) {
        let (run, _tel) =
            Engine::with_threads(*threads).run_with_telemetry(Machine::FpRaker, &trace, &cfg);
        assert_runs_identical(on, &run, &format!("run_with_telemetry, {threads} workers"));
    }
}

#[test]
fn thread_count_does_not_leak_into_derived_metrics() {
    let trace = fan_out_trace();
    let cfg = AcceleratorConfig::fpraker_paper();
    let bl_cfg = AcceleratorConfig::baseline_paper();
    let (fp1, bl1) = (
        Engine::with_threads(1).run(Machine::FpRaker, &trace, &cfg),
        Engine::with_threads(1).run(Machine::Baseline, &trace, &bl_cfg),
    );
    let (fp4, bl4) = (
        Engine::with_threads(4).run(Machine::FpRaker, &trace, &cfg),
        Engine::with_threads(4).run(Machine::Baseline, &trace, &bl_cfg),
    );
    assert_eq!(
        fpraker_sim::speedup(&fp1, &bl1),
        fpraker_sim::speedup(&fp4, &bl4),
        "speedup must not depend on the worker count"
    );
    assert_eq!(fp1.cycles_by_phase(), fp4.cycles_by_phase());
    assert_eq!(fp1.stats(), fp4.stats());
}
