//! Telemetry observability of the engine: stage timings surface through
//! [`EngineTelemetry`], and the PE's SWAR-unstable-cycle fallback counter
//! is visible as a process metric. These tests read the process-global
//! registry, so they live in their own integration-test binary (one
//! process) and never run concurrently with other registry readers.

use std::sync::{Mutex, MutexGuard};

use fpraker_core::{Pe, PeConfig};
use fpraker_num::Bf16;
use fpraker_sim::{AcceleratorConfig, Engine, Machine};
use fpraker_trace::{Phase, TensorKind, Trace, TraceOp};

/// Serializes the tests: they share the process-global registry and the
/// runtime enable flag, so concurrent runs would see each other's
/// counter movement.
static TELEMETRY_LOCK: Mutex<()> = Mutex::new(());

fn exclusive() -> MutexGuard<'static, ()> {
    TELEMETRY_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn bf(vals: &[f32]) -> Vec<Bf16> {
    vals.iter().map(|&v| Bf16::from_f32(v)).collect()
}

/// A 1×1×8 GEMM holding the engineered cancel-then-adopt set from the PE
/// unit suite: lanes +1 and −1 cancel exactly, so the third lane's add
/// lands on an empty accumulator with a non-zero column offset and must
/// re-adopt its exponent — the SWAR fold detects the unstable cycle and
/// replays it per-lane.
fn cancel_then_adopt_trace() -> Trace {
    let mut tr = Trace::new("swar-unstable", 50);
    tr.ops.push(TraceOp {
        layer: "engineered".into(),
        phase: Phase::AxW,
        m: 1,
        n: 1,
        k: 8,
        a: bf(&[1.0, 1.0, 0.5, 0.5, 0.5, 0.0, 0.0, 0.0]),
        b: bf(&[1.0, -1.0, 1.0, 1.0, 1.0, 0.0, 0.0, 0.0]),
        a_kind: TensorKind::Activation,
        b_kind: TensorKind::Weight,
        a_dup: 1.0,
        b_dup: 1.0,
        out_dup: 1.0,
    });
    tr
}

#[test]
fn swar_unstable_cycles_surface_as_a_counter() {
    let _x = exclusive();
    let counter = fpraker_telemetry::counter!("pe_swar_unstable_cycles_total");
    let trace = cancel_then_adopt_trace();
    let mut cfg = AcceleratorConfig::fpraker_paper();
    cfg.check_golden = true;
    let before = counter.get();
    let run = Engine::with_threads(1).run(Machine::FpRaker, &trace, &cfg);
    assert_eq!(run.golden_failures(), 0, "fallback must stay bit-exact");
    let delta = counter.get() - before;
    if fpraker_telemetry::compiled() && Pe::new(PeConfig::paper()).uses_swar() {
        assert!(
            delta >= 1,
            "engineered cancel-then-adopt cycle must increment the \
             unstable-cycle counter (delta = {delta})"
        );
    } else {
        assert_eq!(delta, 0, "counter must stay flat when compiled out");
    }
}

#[test]
fn engine_telemetry_reports_stage_time_without_touching_results() {
    let _x = exclusive();
    let trace = cancel_then_adopt_trace();
    let cfg = AcceleratorConfig::fpraker_paper();
    let plain = Engine::with_threads(2).run(Machine::FpRaker, &trace, &cfg);
    let (run, tel) = Engine::with_threads(2).run_with_telemetry(Machine::FpRaker, &trace, &cfg);
    // Observing the run must not perturb it.
    assert_eq!(run.cycles(), plain.cycles());
    assert_eq!(run.macs(), plain.macs());
    assert_eq!(run.ops.len(), plain.ops.len());
    assert_eq!(tel.units, if fpraker_telemetry::compiled() { 1 } else { 0 });
    if fpraker_telemetry::compiled() {
        assert!(tel.wall_ns > 0, "wall clock always ticks");
        assert!(
            tel.plan_ns > 0 && tel.run_unit_ns > 0 && tel.fold_ns > 0,
            "every stage of a non-empty run takes time: {tel:?}"
        );
        assert_eq!(tel.decode_ns, 0, "in-memory traces are never decoded");
        let total = tel.stage_total_ns();
        let f: f64 = [tel.plan_ns, tel.run_unit_ns, tel.fold_ns]
            .iter()
            .map(|&ns| tel.stage_fraction(ns))
            .sum();
        assert!(total > 0 && (f - 1.0).abs() < 1e-9, "fractions sum to 1");
    }
}

#[test]
fn disabling_telemetry_freezes_counters_and_results_stay_identical() {
    let _x = exclusive();
    let trace = cancel_then_adopt_trace();
    let cfg = AcceleratorConfig::fpraker_paper();
    let on = Engine::with_threads(1).run(Machine::FpRaker, &trace, &cfg);
    let counter = fpraker_telemetry::counter!("pe_swar_unstable_cycles_total");
    fpraker_telemetry::set_enabled(false);
    let before = counter.get();
    let off = Engine::with_threads(1).run(Machine::FpRaker, &trace, &cfg);
    let frozen = counter.get() == before;
    fpraker_telemetry::set_enabled(true);
    assert!(frozen, "a disabled counter must not move");
    assert_eq!(on.cycles(), off.cycles());
    assert_eq!(on.macs(), off.macs());
    assert_eq!(on.counts(), off.counts());
}
