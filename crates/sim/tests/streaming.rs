//! Streamed-vs-in-memory determinism: simulating a trace through the
//! streaming path (incremental codec `Reader` → bounded in-flight op
//! window) must produce a `RunResult` bit-identical to loading the whole
//! trace and running it, at every worker count — and the window must
//! actually bound residency (peak resident ops strictly below the trace's
//! op count).

use std::fs::File;
use std::io::{BufReader, BufWriter};

use fpraker_num::reference::SplitMix64;
use fpraker_num::Bf16;
use fpraker_sim::{AcceleratorConfig, Engine, Machine, OpOutcome, RunResult};
use fpraker_trace::{codec, Phase, TensorKind, Trace, TraceOp};

/// A trace mixing large fan-out ops with a tail of tiny GEMMs, the shape
/// that exercises unit interleaving and the window refill logic.
fn mixed_trace() -> Trace {
    let mut rng = SplitMix64::new(0x57E4);
    let mut tr = Trace::new("streaming", 50);
    let phases = [Phase::AxW, Phase::GxW, Phase::AxG];
    for i in 0..20usize {
        let (m, n, k) = if i % 5 == 0 {
            (40, 24, 16)
        } else {
            (8 + (i % 3) * 4, 8, 8)
        };
        let zero_pct = (i % 4) as f64 * 0.2;
        let gen = |rng: &mut SplitMix64, count: usize| -> Vec<Bf16> {
            (0..count)
                .map(|_| {
                    if rng.next_f64() < zero_pct {
                        Bf16::ZERO
                    } else {
                        rng.bf16_in_range(4)
                    }
                })
                .collect()
        };
        tr.ops.push(TraceOp {
            layer: format!("l{i}"),
            phase: phases[i % 3],
            m,
            n,
            k,
            a: gen(&mut rng, m * k),
            b: gen(&mut rng, n * k),
            a_kind: TensorKind::Activation,
            b_kind: TensorKind::Weight,
            a_dup: 1.0,
            b_dup: 1.0,
            out_dup: 1.0,
        });
    }
    tr
}

fn assert_ops_identical(a: &OpOutcome, b: &OpOutcome, what: &str) {
    assert_eq!(a.layer, b.layer, "{what}: layer");
    assert_eq!(a.cycles, b.cycles, "{what}: cycles");
    assert_eq!(a.compute_cycles, b.compute_cycles, "{what}: compute");
    assert_eq!(a.mem_cycles, b.mem_cycles, "{what}: memory");
    assert_eq!(a.stats, b.stats, "{what}: stats");
    assert_eq!(a.counts, b.counts, "{what}: counts");
    assert_eq!(a.traffic, b.traffic, "{what}: traffic");
    assert_eq!(a.sram_bytes, b.sram_bytes, "{what}: sram");
    assert_eq!(a.golden_failures, b.golden_failures, "{what}: golden");
}

fn assert_runs_identical(a: &RunResult, b: &RunResult, what: &str) {
    assert_eq!(a.ops.len(), b.ops.len(), "{what}: op count");
    for (i, (x, y)) in a.ops.iter().zip(&b.ops).enumerate() {
        assert_ops_identical(x, y, &format!("{what} op{i}"));
    }
}

/// The tentpole invariant: streamed == in-memory, bit for bit, at 1, 2
/// and 8 workers, under a window far smaller than the trace.
#[test]
fn streamed_run_is_bit_identical_to_in_memory_at_1_2_and_8_workers() {
    let trace = mixed_trace();
    let bytes = codec::encode(&trace);
    let mut cfg = AcceleratorConfig::fpraker_paper();
    cfg.check_golden = true;
    cfg.tiles = 4;
    let window = 3;
    for workers in [1usize, 2, 8] {
        let engine = Engine::with_threads(workers).stream_window(window);
        let in_memory = engine.run(Machine::FpRaker, &trace, &cfg);
        let reader = codec::Reader::new(&bytes[..]).expect("header");
        let streamed = engine
            .run_source(Machine::FpRaker, reader, &cfg)
            .expect("stream");
        assert_runs_identical(&streamed.result, &in_memory, &format!("{workers} workers"));
        assert_eq!(streamed.result.golden_failures(), 0);
        // The window genuinely bounded residency.
        assert!(
            streamed.peak_resident_ops <= window,
            "{workers} workers: peak {} > window {window}",
            streamed.peak_resident_ops
        );
        assert!(
            streamed.peak_resident_ops < trace.ops.len(),
            "{workers} workers: whole trace was resident"
        );
    }
}

#[test]
fn streamed_run_from_disk_matches_in_memory() {
    let trace = mixed_trace();
    let path = std::env::temp_dir().join(format!(
        "fpraker_streaming_test_{}.trace",
        std::process::id()
    ));
    {
        let file = BufWriter::new(File::create(&path).expect("create"));
        let mut w = codec::Writer::new(file, &trace.model, trace.progress_pct, 20).expect("header");
        for op in &trace.ops {
            w.write_op(op).expect("op");
        }
        w.finish().expect("finish");
    }
    let cfg = AcceleratorConfig::fpraker_paper();
    let engine = Engine::with_threads(4).stream_window(2);
    let reader =
        codec::Reader::new(BufReader::new(File::open(&path).expect("open"))).expect("header");
    let streamed = engine
        .run_source(Machine::FpRaker, reader, &cfg)
        .expect("stream");
    std::fs::remove_file(&path).ok();
    let in_memory = engine.run(Machine::FpRaker, &trace, &cfg);
    assert_runs_identical(&streamed.result, &in_memory, "disk round-trip");
    assert!(streamed.peak_resident_ops <= 2);
}

#[test]
fn in_memory_trace_source_streams_identically() {
    let trace = mixed_trace();
    let cfg = AcceleratorConfig::fpraker_paper();
    for workers in [1usize, 4] {
        let engine = Engine::with_threads(workers).stream_window(1);
        let streamed = engine
            .run_source(Machine::FpRaker, trace.source(), &cfg)
            .expect("in-memory source cannot fail");
        let in_memory = engine.run(Machine::FpRaker, &trace, &cfg);
        assert_runs_identical(&streamed.result, &in_memory, "Trace::source");
        assert!(streamed.peak_resident_ops <= 1);
    }
}

#[test]
fn baseline_machine_streams_identically() {
    let trace = mixed_trace();
    let cfg = AcceleratorConfig::baseline_paper();
    let engine = Engine::with_threads(8).stream_window(4);
    let bytes = codec::encode(&trace);
    let reader = codec::Reader::new(&bytes[..]).expect("header");
    let streamed = engine
        .run_source(Machine::Baseline, reader, &cfg)
        .expect("stream");
    let in_memory = engine.run(Machine::Baseline, &trace, &cfg);
    assert_runs_identical(&streamed.result, &in_memory, "baseline");
    assert_eq!(streamed.result.machine, Machine::Baseline);
}

#[test]
fn truncated_stream_is_an_error_at_every_worker_count() {
    let trace = mixed_trace();
    let bytes = codec::encode(&trace);
    let cfg = AcceleratorConfig::fpraker_paper();
    // Cut mid-stream: several ops decode fine, then the source fails. The
    // pool must shut down cleanly and report the error, not hang or panic.
    let cut = bytes.len() * 2 / 3;
    for workers in [1usize, 2, 8] {
        let engine = Engine::with_threads(workers).stream_window(4);
        let reader = codec::Reader::new(&bytes[..cut]).expect("header survives this cut");
        let err = engine
            .run_source(Machine::FpRaker, reader, &cfg)
            .expect_err("truncated stream must error");
        assert!(
            err.to_string().contains("at byte"),
            "{workers} workers: {err}"
        );
    }
}

#[test]
fn empty_trace_streams_to_empty_run() {
    let bytes = codec::encode(&Trace::new("empty", 0));
    let cfg = AcceleratorConfig::fpraker_paper();
    let run = Engine::with_threads(4)
        .run_source(
            Machine::FpRaker,
            codec::Reader::new(&bytes[..]).unwrap(),
            &cfg,
        )
        .unwrap();
    assert_eq!(run.result.cycles(), 0);
    assert_eq!(run.peak_resident_ops, 0);
}
