//! The GEMM engine: one funnel for every multiply-accumulate in training.
//!
//! All layers route their GEMMs through [`Engine::gemm_nt`], which
//!
//! 1. rounds operands to bfloat16 (the accelerator's storage format) unless
//!    running in native-f32 mode,
//! 2. computes the product under the selected [`Arithmetic`] — fast `f32`,
//!    the bit-parallel bfloat16 baseline, or cycle-faithful FPRaker PE
//!    emulation (the Fig. 17 accuracy study trains entire models through
//!    the PE code path, as the paper did by overriding `mad()` in PlaidML),
//! 3. optionally captures the operands as a [`TraceOp`] for the simulator
//!    (the paper's PyTorch-hook trace collection, Section V-A).
//!
//! Capture is **sink-driven**: every recorded op goes to a [`TraceSink`].
//! The built-in in-memory sink backs the classic
//! [`Engine::arm_capture`]/[`Engine::take_trace`] pair; a
//! [`FileTraceSink`] records straight through the incremental
//! [`fpraker_trace::codec::GrowingWriter`] to disk (optionally indexed),
//! so training can capture traces of any length without ever holding a
//! `Trace` in RAM.

use std::fmt;
use std::fs::File;
use std::io::{self, BufWriter, Seek, Write};
use std::path::Path;

use fpraker_core::{BaselinePe, Pe, PeConfig};
use fpraker_num::Bf16;
use fpraker_tensor::{matmul_nt, Tensor};
use fpraker_trace::codec::GrowingWriter;
use fpraker_trace::{Phase, TensorKind, Trace, TraceOp};

/// Which arithmetic implements the MACs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Arithmetic {
    /// Native `f32` (the paper's "Native_FP32" reference curve).
    F32,
    /// Bit-parallel bfloat16 with chunked extended accumulation (the
    /// paper's "Baseline_BF16").
    Bf16Baseline,
    /// Term-serial FPRaker PE emulation ("FPRaker_BF16").
    FpRaker(PeConfig),
}

impl Arithmetic {
    /// `true` if operands are rounded to bfloat16 before multiplying.
    pub fn quantizes_operands(&self) -> bool {
        !matches!(self, Arithmetic::F32)
    }
}

/// Where captured GEMMs go — the extension point that lets training
/// record traces without materializing them.
///
/// The engine hands each recorded op to the armed sink as soon as the
/// GEMM runs; a sink that writes through the incremental codec (see
/// [`FileTraceSink`]) therefore holds at most the op being encoded,
/// whatever the capture length. [`TraceSink::finish`] is called once,
/// from [`Engine::finish_capture`], to finalize whatever the sink was
/// writing (patch the op count, append the index footer, flush).
pub trait TraceSink {
    /// Records one captured op.
    ///
    /// # Errors
    ///
    /// I/O failures from streaming sinks. The engine stores the first
    /// error and stops recording; it surfaces from
    /// [`Engine::finish_capture`] (a GEMM cannot fail because the trace
    /// disk filled up).
    fn record(&mut self, op: TraceOp) -> io::Result<()>;

    /// Finalizes the sink, returning the number of ops it recorded.
    ///
    /// # Errors
    ///
    /// I/O failures while finalizing.
    fn finish(self: Box<Self>) -> io::Result<u64>;
}

/// A [`TraceSink`] that streams every captured op straight to disk
/// through [`GrowingWriter`] — the op count is unknown until capture
/// ends, which is exactly what the growing writer's deferred header
/// count is for. Optionally finishes with an index footer so the
/// captured file supports seeking and parallel segment decode. A thin
/// newtype over [`WriterTraceSink`], which owns the one sink
/// implementation.
pub struct FileTraceSink(WriterTraceSink<BufWriter<File>>);

impl FileTraceSink {
    /// Creates (truncating) a trace file and writes its header.
    ///
    /// # Errors
    ///
    /// File-creation or header-write failures.
    pub fn create(path: impl AsRef<Path>, model: &str, progress_pct: u32) -> io::Result<Self> {
        Self::new(path, model, progress_pct, None)
    }

    /// Like [`FileTraceSink::create`], but [`TraceSink::finish`] appends
    /// an index footer at the given stride (`0` = auto) — the captured
    /// file then feeds `Engine::run_indexed` directly.
    ///
    /// # Errors
    ///
    /// As [`FileTraceSink::create`].
    pub fn create_indexed(
        path: impl AsRef<Path>,
        model: &str,
        progress_pct: u32,
        stride: u32,
    ) -> io::Result<Self> {
        Self::new(path, model, progress_pct, Some(stride))
    }

    fn new(
        path: impl AsRef<Path>,
        model: &str,
        progress_pct: u32,
        index_stride: Option<u32>,
    ) -> io::Result<Self> {
        let file = BufWriter::new(File::create(path)?);
        Ok(FileTraceSink(WriterTraceSink::new(
            file,
            model,
            progress_pct,
            index_stride,
        )?))
    }
}

impl TraceSink for FileTraceSink {
    fn record(&mut self, op: TraceOp) -> io::Result<()> {
        self.0.record(op)
    }

    fn finish(self: Box<Self>) -> io::Result<u64> {
        Box::new(self.0).finish()
    }
}

/// Any `Write + Seek` sink streamed through [`GrowingWriter`] — the
/// implementation behind [`FileTraceSink`], usable directly for
/// in-memory buffers, sockets with spooling, or custom stores.
pub struct WriterTraceSink<W: Write + Seek + 'static> {
    writer: GrowingWriter<W>,
    index_stride: Option<u32>,
}

impl<W: Write + Seek + 'static> WriterTraceSink<W> {
    /// Starts a capture stream on `w` (`index_stride`: `None` = no
    /// footer, `Some(0)` = auto stride).
    ///
    /// # Errors
    ///
    /// Header-write failures.
    pub fn new(
        w: W,
        model: &str,
        progress_pct: u32,
        index_stride: Option<u32>,
    ) -> io::Result<Self> {
        Ok(WriterTraceSink {
            writer: GrowingWriter::new(w, model, progress_pct)?,
            index_stride,
        })
    }
}

impl<W: Write + Seek + 'static> TraceSink for WriterTraceSink<W> {
    fn record(&mut self, op: TraceOp) -> io::Result<()> {
        self.writer.write_op(&op)
    }

    fn finish(self: Box<Self>) -> io::Result<u64> {
        let ops = match self.index_stride {
            Some(stride) => self.writer.finish_indexed(stride)?,
            None => self.writer.finish()?,
        };
        Ok(u64::from(ops))
    }
}

/// Trace-capture state: disarmed, recording into the in-memory sink
/// (the classic [`Engine::take_trace`] path), or recording through a
/// caller-provided [`TraceSink`].
enum Capture {
    Off,
    Memory(Vec<TraceOp>),
    Sink {
        sink: Box<dyn TraceSink>,
        ops: u64,
        /// First record failure; recording stops and the error surfaces
        /// from [`Engine::finish_capture`].
        failed: Option<io::Error>,
    },
}

impl fmt::Debug for Capture {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Capture::Off => write!(f, "Capture::Off"),
            Capture::Memory(ops) => write!(f, "Capture::Memory({} ops)", ops.len()),
            Capture::Sink { ops, failed, .. } => {
                write!(f, "Capture::Sink({ops} ops, failed: {})", failed.is_some())
            }
        }
    }
}

/// The engine threaded through every layer's forward and backward pass.
#[derive(Debug)]
pub struct Engine {
    arithmetic: Arithmetic,
    capture: Capture,
    /// Total MACs executed (for reporting).
    pub macs: u64,
}

impl Engine {
    /// Creates an engine with the given arithmetic and capture disarmed.
    pub fn new(arithmetic: Arithmetic) -> Self {
        Engine {
            arithmetic,
            capture: Capture::Off,
            macs: 0,
        }
    }

    /// An engine computing in native `f32`.
    pub fn f32() -> Self {
        Self::new(Arithmetic::F32)
    }

    /// The engine's arithmetic mode.
    pub fn arithmetic(&self) -> Arithmetic {
        self.arithmetic
    }

    /// Arms in-memory trace capture: subsequent GEMMs are recorded until
    /// [`Engine::take_trace`].
    pub fn arm_capture(&mut self) {
        self.capture = Capture::Memory(Vec::new());
    }

    /// Arms capture through a caller-provided sink: subsequent GEMMs are
    /// recorded into it — one op at a time, nothing retained — until
    /// [`Engine::finish_capture`]. Use a [`FileTraceSink`] to record
    /// straight to disk.
    pub fn arm_capture_sink(&mut self, sink: Box<dyn TraceSink>) {
        self.capture = Capture::Sink {
            sink,
            ops: 0,
            failed: None,
        };
    }

    /// `true` while GEMMs are being recorded.
    pub fn capturing(&self) -> bool {
        !matches!(self.capture, Capture::Off)
    }

    /// Disarms in-memory capture and returns the recorded ops as a
    /// [`Trace`].
    ///
    /// # Panics
    ///
    /// Panics if capture was armed with [`Engine::arm_capture_sink`] —
    /// a streaming capture has no in-memory trace to take; call
    /// [`Engine::finish_capture`] instead.
    pub fn take_trace(&mut self, model: impl Into<String>, progress_pct: u32) -> Trace {
        let ops = match std::mem::replace(&mut self.capture, Capture::Off) {
            Capture::Memory(ops) => ops,
            Capture::Off => Vec::new(),
            Capture::Sink { .. } => {
                panic!("capture was armed with a sink; use Engine::finish_capture")
            }
        };
        Trace {
            model: model.into(),
            progress_pct,
            ops,
        }
    }

    /// Disarms sink capture and finalizes the sink, returning the number
    /// of ops recorded.
    ///
    /// # Errors
    ///
    /// The first error the sink reported while recording (recording
    /// stopped there), or the finalization failure.
    ///
    /// # Panics
    ///
    /// Panics if capture was not armed with
    /// [`Engine::arm_capture_sink`].
    pub fn finish_capture(&mut self) -> io::Result<u64> {
        match std::mem::replace(&mut self.capture, Capture::Off) {
            Capture::Sink {
                sink,
                ops,
                failed: None,
            } => {
                let finished = sink.finish()?;
                debug_assert_eq!(finished, ops);
                Ok(finished)
            }
            Capture::Sink {
                failed: Some(e), ..
            } => Err(e),
            _ => panic!("capture was not armed with a sink; use Engine::take_trace"),
        }
    }

    /// Computes `C (m×n) = A (m×k) · Bᵀ` where `b` is given row-major
    /// `n×k` (each row of `b` is a column of the mathematical `B`). This is
    /// the operand layout the FPRaker tile consumes, so captured traces
    /// stream directly into the simulator.
    ///
    /// Operands are rounded to bfloat16 first unless the arithmetic is
    /// [`Arithmetic::F32`].
    ///
    /// # Panics
    ///
    /// Panics if operands are not rank 2 or their `k` dimensions disagree.
    pub fn gemm_nt(
        &mut self,
        layer: &str,
        phase: Phase,
        a: &Tensor,
        b: &Tensor,
        a_kind: TensorKind,
        b_kind: TensorKind,
    ) -> Tensor {
        self.gemm_nt_dup(layer, phase, a, b, a_kind, b_kind, [1.0, 1.0, 1.0])
    }

    /// Like [`Engine::gemm_nt`], with stream-duplication hints
    /// `[a_dup, b_dup, out_dup]` recorded into captured traces: how many
    /// times each source-tensor element is replicated in the stream (im2col
    /// lowering duplicates activations; the real accelerator expands on
    /// chip, so off-chip traffic models divide by these factors).
    #[allow(clippy::too_many_arguments)]
    pub fn gemm_nt_dup(
        &mut self,
        layer: &str,
        phase: Phase,
        a: &Tensor,
        b: &Tensor,
        a_kind: TensorKind,
        b_kind: TensorKind,
        dups: [f32; 3],
    ) -> Tensor {
        assert_eq!(a.dims().len(), 2, "gemm operands must be rank 2");
        assert_eq!(b.dims().len(), 2, "gemm operands must be rank 2");
        let (m, k) = (a.dims()[0], a.dims()[1]);
        let (n, kb) = (b.dims()[0], b.dims()[1]);
        assert_eq!(k, kb, "k mismatch: {k} vs {kb}");
        self.macs += (m * n * k) as u64;

        let (qa, qb);
        let (a, b) = if self.arithmetic.quantizes_operands() {
            qa = a.map(|v| Bf16::from_f32(v).to_f32());
            qb = b.map(|v| Bf16::from_f32(v).to_f32());
            (&qa, &qb)
        } else {
            (a, b)
        };

        if self.capturing() {
            let op = TraceOp {
                layer: layer.to_string(),
                phase,
                m,
                n,
                k,
                a: a.to_bf16(),
                b: b.to_bf16(),
                a_kind,
                b_kind,
                a_dup: dups[0].max(1.0),
                b_dup: dups[1].max(1.0),
                out_dup: dups[2].max(1.0),
            };
            match &mut self.capture {
                Capture::Memory(ops) => ops.push(op),
                Capture::Sink { sink, ops, failed } if failed.is_none() => match sink.record(op) {
                    Ok(()) => *ops += 1,
                    Err(e) => *failed = Some(e),
                },
                _ => {}
            }
        }

        match self.arithmetic {
            Arithmetic::F32 => matmul_nt(a, b),
            Arithmetic::Bf16Baseline => {
                let av = a.to_bf16();
                let bv = b.to_bf16();
                let mut pe = BaselinePe::new(PeConfig::paper());
                let mut out = vec![0.0f32; m * n];
                for i in 0..m {
                    let arow = &av[i * k..(i + 1) * k];
                    for j in 0..n {
                        let brow = &bv[j * k..(j + 1) * k];
                        out[i * n + j] = pe.dot(arow, brow).0.to_f32();
                    }
                }
                Tensor::from_vec(vec![m, n], out)
            }
            Arithmetic::FpRaker(cfg) => {
                let av = a.to_bf16();
                let bv = b.to_bf16();
                let mut pe = Pe::new(cfg);
                let mut out = vec![0.0f32; m * n];
                for i in 0..m {
                    let arow = &av[i * k..(i + 1) * k];
                    for j in 0..n {
                        let brow = &bv[j * k..(j + 1) * k];
                        out[i * n + j] = pe.dot(arow, brow).0.to_f32();
                    }
                }
                Tensor::from_vec(vec![m, n], out)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpraker_tensor::transpose2d;

    fn engine_gemm(arith: Arithmetic, a: &Tensor, b: &Tensor) -> Tensor {
        let mut e = Engine::new(arith);
        e.gemm_nt(
            "t",
            Phase::AxW,
            a,
            b,
            TensorKind::Activation,
            TensorKind::Weight,
        )
    }

    #[test]
    fn f32_gemm_matches_matmul() {
        let a = Tensor::from_vec(vec![2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let bt = Tensor::from_vec(vec![2, 3], vec![1.0, 0.0, 1.0, 0.5, 0.5, 0.0]);
        let c = engine_gemm(Arithmetic::F32, &a, &bt);
        let expect = fpraker_tensor::matmul(&a, &transpose2d(&bt));
        assert_eq!(c, expect);
    }

    #[test]
    fn all_arithmetics_agree_on_exact_values() {
        // Small integers are exact in every mode.
        let a = Tensor::from_vec(vec![2, 4], vec![1.0, 2.0, 3.0, 4.0, -1.0, 0.0, 2.0, 1.0]);
        let bt = Tensor::from_vec(vec![3, 4], (0..12).map(|i| (i % 3) as f32).collect());
        let f = engine_gemm(Arithmetic::F32, &a, &bt);
        let bl = engine_gemm(Arithmetic::Bf16Baseline, &a, &bt);
        let fp = engine_gemm(Arithmetic::FpRaker(PeConfig::paper()), &a, &bt);
        assert_eq!(f, bl);
        assert_eq!(f, fp);
    }

    #[test]
    fn bf16_modes_quantize_operands() {
        // A value below bf16 resolution relative to 1.0 disappears in the
        // quantizing modes but not in f32.
        let a = Tensor::from_vec(vec![1, 1], vec![1.0 + 2f32.powi(-10)]);
        let bt = Tensor::from_vec(vec![1, 1], vec![1024.0]);
        let f = engine_gemm(Arithmetic::F32, &a, &bt);
        let bl = engine_gemm(Arithmetic::Bf16Baseline, &a, &bt);
        assert!(f.data()[0] > 1024.0);
        assert_eq!(bl.data()[0], 1024.0);
    }

    #[test]
    fn capture_records_stream_layout() {
        let mut e = Engine::f32();
        e.arm_capture();
        let a = Tensor::from_vec(vec![2, 3], vec![1.0; 6]);
        let bt = Tensor::from_vec(vec![4, 3], vec![0.5; 12]);
        let _ = e.gemm_nt(
            "fc",
            Phase::GxW,
            &a,
            &bt,
            TensorKind::Gradient,
            TensorKind::Weight,
        );
        let trace = e.take_trace("m", 10);
        assert_eq!(trace.ops.len(), 1);
        let op = &trace.ops[0];
        assert_eq!((op.m, op.n, op.k), (2, 4, 3));
        assert_eq!(op.phase, Phase::GxW);
        assert!(op.validate().is_ok());
        assert!(!e.capturing());
        assert_eq!(e.macs, 24);
    }

    #[test]
    fn sink_capture_streams_the_same_ops_as_memory_capture() {
        let run = |e: &mut Engine| {
            let a = Tensor::from_vec(vec![2, 3], vec![1.0; 6]);
            let bt = Tensor::from_vec(vec![4, 3], vec![0.5; 12]);
            for phase in [Phase::AxW, Phase::GxW] {
                let _ = e.gemm_nt(
                    "fc",
                    phase,
                    &a,
                    &bt,
                    TensorKind::Activation,
                    TensorKind::Weight,
                );
            }
        };
        let mut mem = Engine::f32();
        mem.arm_capture();
        run(&mut mem);
        let reference = mem.take_trace("m", 10);

        let path = std::env::temp_dir().join(format!(
            "fpraker_dnn_sink_capture_{}.trace",
            std::process::id()
        ));
        let mut streamed = Engine::f32();
        streamed.arm_capture_sink(Box::new(
            FileTraceSink::create_indexed(&path, "m", 10, 1).unwrap(),
        ));
        assert!(streamed.capturing());
        run(&mut streamed);
        assert_eq!(streamed.finish_capture().unwrap(), 2);
        assert!(!streamed.capturing());

        // The streamed bytes decode to exactly the in-memory capture, and
        // the footer indexes them.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(fpraker_trace::codec::decode(&bytes).unwrap(), reference);
        let reader = fpraker_trace::codec::IndexedReader::new(std::io::Cursor::new(bytes)).unwrap();
        assert!(reader.has_index());
        assert_eq!(reader.segments().len(), 2);
    }

    #[test]
    fn sink_record_failure_surfaces_from_finish_capture() {
        struct FailingSink;
        impl TraceSink for FailingSink {
            fn record(&mut self, _op: TraceOp) -> std::io::Result<()> {
                Err(std::io::Error::other("disk full"))
            }
            fn finish(self: Box<Self>) -> std::io::Result<u64> {
                Ok(0)
            }
        }
        let mut e = Engine::f32();
        e.arm_capture_sink(Box::new(FailingSink));
        let a = Tensor::from_vec(vec![1, 2], vec![1.0; 2]);
        let b = Tensor::from_vec(vec![1, 2], vec![1.0; 2]);
        // The GEMM itself still succeeds; the error is stored.
        let _ = e.gemm_nt(
            "x",
            Phase::AxW,
            &a,
            &b,
            TensorKind::Activation,
            TensorKind::Weight,
        );
        let err = e.finish_capture().unwrap_err();
        assert!(err.to_string().contains("disk full"));
    }

    #[test]
    fn capture_disarmed_records_nothing() {
        let mut e = Engine::f32();
        let a = Tensor::zeros(vec![1, 2]);
        let b = Tensor::zeros(vec![1, 2]);
        let _ = e.gemm_nt(
            "x",
            Phase::AxW,
            &a,
            &b,
            TensorKind::Activation,
            TensorKind::Weight,
        );
        assert!(e.take_trace("m", 0).ops.is_empty());
    }
}
