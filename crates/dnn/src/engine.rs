//! The GEMM engine: one funnel for every multiply-accumulate in training.
//!
//! All layers route their GEMMs through [`Engine::gemm_nt`], which
//!
//! 1. rounds operands to bfloat16 (the accelerator's storage format) unless
//!    running in native-f32 mode,
//! 2. computes the product under the selected [`Arithmetic`] — fast `f32`,
//!    the bit-parallel bfloat16 baseline, or cycle-faithful FPRaker PE
//!    emulation (the Fig. 17 accuracy study trains entire models through
//!    the PE code path, as the paper did by overriding `mad()` in PlaidML),
//! 3. optionally captures the operands as a [`TraceOp`] for the simulator
//!    (the paper's PyTorch-hook trace collection, Section V-A).

use fpraker_core::{BaselinePe, Pe, PeConfig};
use fpraker_num::Bf16;
use fpraker_tensor::{matmul_nt, Tensor};
use fpraker_trace::{Phase, TensorKind, Trace, TraceOp};

/// Which arithmetic implements the MACs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Arithmetic {
    /// Native `f32` (the paper's "Native_FP32" reference curve).
    F32,
    /// Bit-parallel bfloat16 with chunked extended accumulation (the
    /// paper's "Baseline_BF16").
    Bf16Baseline,
    /// Term-serial FPRaker PE emulation ("FPRaker_BF16").
    FpRaker(PeConfig),
}

impl Arithmetic {
    /// `true` if operands are rounded to bfloat16 before multiplying.
    pub fn quantizes_operands(&self) -> bool {
        !matches!(self, Arithmetic::F32)
    }
}

/// Trace-capture state: when armed, every GEMM is recorded.
#[derive(Debug, Default)]
pub struct Capture {
    armed: bool,
    ops: Vec<TraceOp>,
}

/// The engine threaded through every layer's forward and backward pass.
#[derive(Debug)]
pub struct Engine {
    arithmetic: Arithmetic,
    capture: Capture,
    /// Total MACs executed (for reporting).
    pub macs: u64,
}

impl Engine {
    /// Creates an engine with the given arithmetic and capture disarmed.
    pub fn new(arithmetic: Arithmetic) -> Self {
        Engine {
            arithmetic,
            capture: Capture::default(),
            macs: 0,
        }
    }

    /// An engine computing in native `f32`.
    pub fn f32() -> Self {
        Self::new(Arithmetic::F32)
    }

    /// The engine's arithmetic mode.
    pub fn arithmetic(&self) -> Arithmetic {
        self.arithmetic
    }

    /// Arms trace capture: subsequent GEMMs are recorded until
    /// [`Engine::take_trace`].
    pub fn arm_capture(&mut self) {
        self.capture.armed = true;
        self.capture.ops.clear();
    }

    /// `true` while GEMMs are being recorded.
    pub fn capturing(&self) -> bool {
        self.capture.armed
    }

    /// Disarms capture and returns the recorded ops as a [`Trace`].
    pub fn take_trace(&mut self, model: impl Into<String>, progress_pct: u32) -> Trace {
        self.capture.armed = false;
        Trace {
            model: model.into(),
            progress_pct,
            ops: std::mem::take(&mut self.capture.ops),
        }
    }

    /// Computes `C (m×n) = A (m×k) · Bᵀ` where `b` is given row-major
    /// `n×k` (each row of `b` is a column of the mathematical `B`). This is
    /// the operand layout the FPRaker tile consumes, so captured traces
    /// stream directly into the simulator.
    ///
    /// Operands are rounded to bfloat16 first unless the arithmetic is
    /// [`Arithmetic::F32`].
    ///
    /// # Panics
    ///
    /// Panics if operands are not rank 2 or their `k` dimensions disagree.
    pub fn gemm_nt(
        &mut self,
        layer: &str,
        phase: Phase,
        a: &Tensor,
        b: &Tensor,
        a_kind: TensorKind,
        b_kind: TensorKind,
    ) -> Tensor {
        self.gemm_nt_dup(layer, phase, a, b, a_kind, b_kind, [1.0, 1.0, 1.0])
    }

    /// Like [`Engine::gemm_nt`], with stream-duplication hints
    /// `[a_dup, b_dup, out_dup]` recorded into captured traces: how many
    /// times each source-tensor element is replicated in the stream (im2col
    /// lowering duplicates activations; the real accelerator expands on
    /// chip, so off-chip traffic models divide by these factors).
    #[allow(clippy::too_many_arguments)]
    pub fn gemm_nt_dup(
        &mut self,
        layer: &str,
        phase: Phase,
        a: &Tensor,
        b: &Tensor,
        a_kind: TensorKind,
        b_kind: TensorKind,
        dups: [f32; 3],
    ) -> Tensor {
        assert_eq!(a.dims().len(), 2, "gemm operands must be rank 2");
        assert_eq!(b.dims().len(), 2, "gemm operands must be rank 2");
        let (m, k) = (a.dims()[0], a.dims()[1]);
        let (n, kb) = (b.dims()[0], b.dims()[1]);
        assert_eq!(k, kb, "k mismatch: {k} vs {kb}");
        self.macs += (m * n * k) as u64;

        let (qa, qb);
        let (a, b) = if self.arithmetic.quantizes_operands() {
            qa = a.map(|v| Bf16::from_f32(v).to_f32());
            qb = b.map(|v| Bf16::from_f32(v).to_f32());
            (&qa, &qb)
        } else {
            (a, b)
        };

        if self.capture.armed {
            self.capture.ops.push(TraceOp {
                layer: layer.to_string(),
                phase,
                m,
                n,
                k,
                a: a.to_bf16(),
                b: b.to_bf16(),
                a_kind,
                b_kind,
                a_dup: dups[0].max(1.0),
                b_dup: dups[1].max(1.0),
                out_dup: dups[2].max(1.0),
            });
        }

        match self.arithmetic {
            Arithmetic::F32 => matmul_nt(a, b),
            Arithmetic::Bf16Baseline => {
                let av = a.to_bf16();
                let bv = b.to_bf16();
                let mut pe = BaselinePe::new(PeConfig::paper());
                let mut out = vec![0.0f32; m * n];
                for i in 0..m {
                    let arow = &av[i * k..(i + 1) * k];
                    for j in 0..n {
                        let brow = &bv[j * k..(j + 1) * k];
                        out[i * n + j] = pe.dot(arow, brow).0.to_f32();
                    }
                }
                Tensor::from_vec(vec![m, n], out)
            }
            Arithmetic::FpRaker(cfg) => {
                let av = a.to_bf16();
                let bv = b.to_bf16();
                let mut pe = Pe::new(cfg);
                let mut out = vec![0.0f32; m * n];
                for i in 0..m {
                    let arow = &av[i * k..(i + 1) * k];
                    for j in 0..n {
                        let brow = &bv[j * k..(j + 1) * k];
                        out[i * n + j] = pe.dot(arow, brow).0.to_f32();
                    }
                }
                Tensor::from_vec(vec![m, n], out)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpraker_tensor::transpose2d;

    fn engine_gemm(arith: Arithmetic, a: &Tensor, b: &Tensor) -> Tensor {
        let mut e = Engine::new(arith);
        e.gemm_nt(
            "t",
            Phase::AxW,
            a,
            b,
            TensorKind::Activation,
            TensorKind::Weight,
        )
    }

    #[test]
    fn f32_gemm_matches_matmul() {
        let a = Tensor::from_vec(vec![2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let bt = Tensor::from_vec(vec![2, 3], vec![1.0, 0.0, 1.0, 0.5, 0.5, 0.0]);
        let c = engine_gemm(Arithmetic::F32, &a, &bt);
        let expect = fpraker_tensor::matmul(&a, &transpose2d(&bt));
        assert_eq!(c, expect);
    }

    #[test]
    fn all_arithmetics_agree_on_exact_values() {
        // Small integers are exact in every mode.
        let a = Tensor::from_vec(vec![2, 4], vec![1.0, 2.0, 3.0, 4.0, -1.0, 0.0, 2.0, 1.0]);
        let bt = Tensor::from_vec(vec![3, 4], (0..12).map(|i| (i % 3) as f32).collect());
        let f = engine_gemm(Arithmetic::F32, &a, &bt);
        let bl = engine_gemm(Arithmetic::Bf16Baseline, &a, &bt);
        let fp = engine_gemm(Arithmetic::FpRaker(PeConfig::paper()), &a, &bt);
        assert_eq!(f, bl);
        assert_eq!(f, fp);
    }

    #[test]
    fn bf16_modes_quantize_operands() {
        // A value below bf16 resolution relative to 1.0 disappears in the
        // quantizing modes but not in f32.
        let a = Tensor::from_vec(vec![1, 1], vec![1.0 + 2f32.powi(-10)]);
        let bt = Tensor::from_vec(vec![1, 1], vec![1024.0]);
        let f = engine_gemm(Arithmetic::F32, &a, &bt);
        let bl = engine_gemm(Arithmetic::Bf16Baseline, &a, &bt);
        assert!(f.data()[0] > 1024.0);
        assert_eq!(bl.data()[0], 1024.0);
    }

    #[test]
    fn capture_records_stream_layout() {
        let mut e = Engine::f32();
        e.arm_capture();
        let a = Tensor::from_vec(vec![2, 3], vec![1.0; 6]);
        let bt = Tensor::from_vec(vec![4, 3], vec![0.5; 12]);
        let _ = e.gemm_nt(
            "fc",
            Phase::GxW,
            &a,
            &bt,
            TensorKind::Gradient,
            TensorKind::Weight,
        );
        let trace = e.take_trace("m", 10);
        assert_eq!(trace.ops.len(), 1);
        let op = &trace.ops[0];
        assert_eq!((op.m, op.n, op.k), (2, 4, 3));
        assert_eq!(op.phase, Phase::GxW);
        assert!(op.validate().is_ok());
        assert!(!e.capturing());
        assert_eq!(e.macs, 24);
    }

    #[test]
    fn capture_disarmed_records_nothing() {
        let mut e = Engine::f32();
        let a = Tensor::zeros(vec![1, 2]);
        let b = Tensor::zeros(vec![1, 2]);
        let _ = e.gemm_nt(
            "x",
            Phase::AxW,
            &a,
            &b,
            TensorKind::Activation,
            TensorKind::Weight,
        );
        assert!(e.take_trace("m", 0).ops.is_empty());
    }
}
