//! A from-scratch mini deep-learning training framework — the workload
//! substrate of the FPRaker reproduction.
//!
//! The paper drives its simulator with traces collected from PyTorch
//! training of nine models (Table I) on GPUs. Neither PyTorch nor the
//! datasets are available here, so this crate *is* the substitute: real
//! forward/backward training of scaled-down analogues of all nine
//! workloads on synthetic datasets, with
//!
//! * every MAC routed through one [`Engine`] (arithmetic selection + trace
//!   capture),
//! * PACT quantization-aware training ([`PactRelu`], weight grids) for the
//!   ResNet18-Q analogue,
//! * dynamic sparse reparameterization ([`Pruner`]) for the ResNet50-S2
//!   analogue,
//! * conv/linear/LSTM/attention layers with gradient-checked backward
//!   passes,
//! * and the Fig. 17 accuracy-study machinery: training end-to-end under
//!   native f32, bit-parallel bfloat16, or FPRaker-emulated arithmetic.
//!
//! # Example
//!
//! ```
//! use fpraker_dnn::{models, Engine};
//!
//! let mut workload = models::build("ncf");
//! let mut engine = Engine::f32();
//! let (loss, _acc) = workload.train_step(&mut engine, 0);
//! assert!(loss.is_finite());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod act;
mod attention;
mod conv;
pub mod data;
mod dense;
mod engine;
mod layer;
pub mod loss;
pub mod models;
mod optim;
mod quant;
mod recurrent;
pub mod train;

pub use act::{Dropout, Gelu, PactRelu, Relu, Sigmoid, Tanh};
pub use attention::SelfAttention;
pub use conv::{BatchNorm2d, Conv2d, MaxPool2d};
pub use dense::{Embedding, Linear};
pub use engine::{Arithmetic, Engine, FileTraceSink, TraceSink, WriterTraceSink};
pub use layer::{Flatten, Layer, Param, Residual, Sequential};
pub use optim::Sgd;
pub use quant::{quantize_symmetric, Pruner};
pub use recurrent::Lstm;
pub use train::{train_and_sample, TrainingRun, Workload};
