//! Convolutional layers: Conv2d (lowered to GEMM), max pooling, and a
//! batch-normalization layer.

use fpraker_tensor::{col2im, im2col, init, sum_rows, transpose2d, ConvGeom, Tensor};
use fpraker_trace::{Phase, TensorKind};
use rand::Rng;

use crate::engine::Engine;
use crate::layer::{Layer, Param};
use crate::quant::quantize_symmetric;

/// Converts a `(N*OH*OW, F)` GEMM output into NCHW `(N, F, OH, OW)`.
fn rows_to_nchw(rows: &Tensor, n: usize, f: usize, oh: usize, ow: usize) -> Tensor {
    let mut out = vec![0.0f32; n * f * oh * ow];
    let rd = rows.data();
    for img in 0..n {
        for y in 0..oh {
            for x in 0..ow {
                let row = (img * oh + y) * ow + x;
                for ch in 0..f {
                    out[((img * f + ch) * oh + y) * ow + x] = rd[row * f + ch];
                }
            }
        }
    }
    Tensor::from_vec(vec![n, f, oh, ow], out)
}

/// Converts NCHW `(N, F, OH, OW)` into `(N*OH*OW, F)` rows (the inverse of
/// [`rows_to_nchw`]).
fn nchw_to_rows(t: &Tensor) -> Tensor {
    let (n, f, oh, ow) = (t.dims()[0], t.dims()[1], t.dims()[2], t.dims()[3]);
    let mut out = vec![0.0f32; n * f * oh * ow];
    let td = t.data();
    for img in 0..n {
        for ch in 0..f {
            for y in 0..oh {
                for x in 0..ow {
                    let row = (img * oh + y) * ow + x;
                    out[row * f + ch] = td[((img * f + ch) * oh + y) * ow + x];
                }
            }
        }
    }
    Tensor::from_vec(vec![n * oh * ow, f], out)
}

/// A 2-D convolution, lowered to GEMM via im2col. Weights are stored
/// `(out_channels, in_channels*k*k)` — exactly the parallel-operand stream
/// layout the tile consumes.
pub struct Conv2d {
    name: String,
    geom: ConvGeom,
    weight: Param,
    bias: Param,
    /// Forward-pass weight quantization bits (quantization-aware training).
    pub weight_bits: Option<u32>,
    cached_cols: Option<Tensor>,
    cached_input_dims: Vec<usize>,
}

impl Conv2d {
    /// Creates a convolution with Kaiming-uniform weights.
    pub fn new<R: Rng>(name: impl Into<String>, geom: ConvGeom, rng: &mut R) -> Self {
        let name = name.into();
        let patch = geom.patch_len();
        Conv2d {
            weight: Param::new(
                format!("{name}.weight"),
                init::kaiming_uniform(rng, vec![geom.out_channels, patch], patch),
            ),
            bias: Param::new(
                format!("{name}.bias"),
                Tensor::zeros(vec![geom.out_channels]),
            ),
            weight_bits: None,
            cached_cols: None,
            cached_input_dims: Vec::new(),
            geom,
            name,
        }
    }

    /// Enables forward-pass weight quantization to `bits` bits.
    pub fn with_weight_bits(mut self, bits: u32) -> Self {
        self.weight_bits = Some(bits);
        self
    }

    /// The convolution geometry.
    pub fn geom(&self) -> &ConvGeom {
        &self.geom
    }

    fn forward_weights(&self) -> Tensor {
        match self.weight_bits {
            Some(bits) => quantize_symmetric(&self.weight.value, bits),
            None => self.weight.value.clone(),
        }
    }
}

impl Layer for Conv2d {
    fn name(&self) -> &str {
        &self.name
    }

    fn forward(&mut self, engine: &mut Engine, input: &Tensor, _training: bool) -> Tensor {
        assert_eq!(input.dims().len(), 4, "conv input must be NCHW");
        let (n, _, h, w) = (
            input.dims()[0],
            input.dims()[1],
            input.dims()[2],
            input.dims()[3],
        );
        let (oh, ow) = self.geom.out_size(h, w);
        let cols = im2col(input, &self.geom);
        let weights = self.forward_weights();
        let dup = cols.len() as f32 / input.len() as f32;
        let mut rows = engine.gemm_nt_dup(
            &self.name,
            Phase::AxW,
            &cols,
            &weights,
            TensorKind::Activation,
            TensorKind::Weight,
            [dup, 1.0, 1.0],
        );
        fpraker_tensor::add_bias_rows(&mut rows, &self.bias.value);
        self.cached_cols = Some(cols);
        self.cached_input_dims = input.dims().to_vec();
        rows_to_nchw(&rows, n, self.geom.out_channels, oh, ow)
    }

    fn backward(&mut self, engine: &mut Engine, grad: &Tensor) -> Tensor {
        let cols = self.cached_cols.take().expect("backward before forward");
        let g_rows = nchw_to_rows(grad); // (N*OH*OW, F)
        self.bias.grad.add_scaled(&sum_rows(&g_rows), 1.0);

        // Weight gradient: dW (F, patch) = g_rowsᵀ · cols.
        let g_t = transpose2d(&g_rows);
        let cols_t = transpose2d(&cols);
        let n_in: usize = self.cached_input_dims.iter().product();
        let cols_dup = cols.len() as f32 / n_in as f32;
        let dw = engine.gemm_nt_dup(
            &self.name,
            Phase::AxG,
            &g_t,
            &cols_t,
            TensorKind::Gradient,
            TensorKind::Activation,
            [1.0, cols_dup, 1.0],
        );
        self.weight.grad.add_scaled(&dw, 1.0);

        // Input gradient: dcols (rows, patch) = g_rows · W, then col2im;
        // the dcols matrix is reduced on chip before anything leaves.
        let w_t = transpose2d(&self.forward_weights());
        let dcols = engine.gemm_nt_dup(
            &self.name,
            Phase::GxW,
            &g_rows,
            &w_t,
            TensorKind::Gradient,
            TensorKind::Weight,
            [1.0, 1.0, cols_dup],
        );
        let (n, h, w) = (
            self.cached_input_dims[0],
            self.cached_input_dims[2],
            self.cached_input_dims[3],
        );
        col2im(&dcols, &self.geom, n, h, w)
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.weight, &mut self.bias]
    }
}

/// 2×2 max pooling with stride 2.
pub struct MaxPool2d {
    name: String,
    cached_argmax: Vec<usize>,
    cached_dims: Vec<usize>,
}

impl MaxPool2d {
    /// Creates a 2×2/stride-2 max-pool layer.
    pub fn new(name: impl Into<String>) -> Self {
        MaxPool2d {
            name: name.into(),
            cached_argmax: Vec::new(),
            cached_dims: Vec::new(),
        }
    }
}

impl Layer for MaxPool2d {
    fn name(&self) -> &str {
        &self.name
    }

    fn forward(&mut self, _e: &mut Engine, input: &Tensor, _training: bool) -> Tensor {
        assert_eq!(input.dims().len(), 4, "pool input must be NCHW");
        let (n, c, h, w) = (
            input.dims()[0],
            input.dims()[1],
            input.dims()[2],
            input.dims()[3],
        );
        assert!(h % 2 == 0 && w % 2 == 0, "pool needs even spatial dims");
        let (oh, ow) = (h / 2, w / 2);
        let mut out = vec![0.0f32; n * c * oh * ow];
        self.cached_argmax = vec![0; out.len()];
        self.cached_dims = input.dims().to_vec();
        let id = input.data();
        for img in 0..n {
            for ch in 0..c {
                for y in 0..oh {
                    for x in 0..ow {
                        let mut best = f32::NEG_INFINITY;
                        let mut best_off = 0;
                        for dy in 0..2 {
                            for dx in 0..2 {
                                let off = ((img * c + ch) * h + 2 * y + dy) * w + 2 * x + dx;
                                if id[off] > best {
                                    best = id[off];
                                    best_off = off;
                                }
                            }
                        }
                        let o = ((img * c + ch) * oh + y) * ow + x;
                        out[o] = best;
                        self.cached_argmax[o] = best_off;
                    }
                }
            }
        }
        Tensor::from_vec(vec![n, c, oh, ow], out)
    }

    fn backward(&mut self, _e: &mut Engine, grad: &Tensor) -> Tensor {
        let mut out = Tensor::zeros(self.cached_dims.clone());
        for (o, &src) in self.cached_argmax.iter().enumerate() {
            out.data_mut()[src] += grad.data()[o];
        }
        out
    }
}

/// Per-channel batch normalization over NCHW inputs with affine scale and
/// shift; batch statistics in training, running statistics at evaluation.
pub struct BatchNorm2d {
    name: String,
    gamma: Param,
    beta: Param,
    running_mean: Vec<f32>,
    running_var: Vec<f32>,
    momentum: f32,
    eps: f32,
    cached: Option<BnCache>,
}

struct BnCache {
    input: Tensor,
    mean: Vec<f32>,
    var: Vec<f32>,
}

impl BatchNorm2d {
    /// Creates a batch-norm layer over `channels`.
    pub fn new(name: impl Into<String>, channels: usize) -> Self {
        let name = name.into();
        BatchNorm2d {
            gamma: Param::new(format!("{name}.gamma"), Tensor::full(vec![channels], 1.0)),
            beta: Param::new(format!("{name}.beta"), Tensor::zeros(vec![channels])),
            running_mean: vec![0.0; channels],
            running_var: vec![1.0; channels],
            momentum: 0.1,
            eps: 1e-5,
            cached: None,
            name,
        }
    }
}

impl Layer for BatchNorm2d {
    fn name(&self) -> &str {
        &self.name
    }

    fn forward(&mut self, _e: &mut Engine, input: &Tensor, training: bool) -> Tensor {
        assert_eq!(input.dims().len(), 4, "batchnorm input must be NCHW");
        let (n, c, h, w) = (
            input.dims()[0],
            input.dims()[1],
            input.dims()[2],
            input.dims()[3],
        );
        let per_ch = (n * h * w) as f32;
        let mut mean = vec![0.0f32; c];
        let mut var = vec![0.0f32; c];
        if training {
            for img in 0..n {
                for (ch, m) in mean.iter_mut().enumerate() {
                    for i in 0..h * w {
                        *m += input.data()[(img * c + ch) * h * w + i];
                    }
                }
            }
            for m in &mut mean {
                *m /= per_ch;
            }
            for img in 0..n {
                for ch in 0..c {
                    for i in 0..h * w {
                        let d = input.data()[(img * c + ch) * h * w + i] - mean[ch];
                        var[ch] += d * d;
                    }
                }
            }
            for v in &mut var {
                *v /= per_ch;
            }
            for ch in 0..c {
                self.running_mean[ch] =
                    (1.0 - self.momentum) * self.running_mean[ch] + self.momentum * mean[ch];
                self.running_var[ch] =
                    (1.0 - self.momentum) * self.running_var[ch] + self.momentum * var[ch];
            }
        } else {
            mean.copy_from_slice(&self.running_mean);
            var.copy_from_slice(&self.running_var);
        }
        let mut out = input.clone();
        let gamma = self.gamma.value.data().to_vec();
        let beta = self.beta.value.data().to_vec();
        for img in 0..n {
            for ch in 0..c {
                let inv = 1.0 / (var[ch] + self.eps).sqrt();
                for i in 0..h * w {
                    let off = (img * c + ch) * h * w + i;
                    out.data_mut()[off] = (out.data()[off] - mean[ch]) * inv * gamma[ch] + beta[ch];
                }
            }
        }
        if training {
            self.cached = Some(BnCache {
                input: input.clone(),
                mean,
                var,
            });
        }
        out
    }

    fn backward(&mut self, _e: &mut Engine, grad: &Tensor) -> Tensor {
        let cache = self
            .cached
            .take()
            .expect("backward before training forward");
        let input = &cache.input;
        let (n, c, h, w) = (
            input.dims()[0],
            input.dims()[1],
            input.dims()[2],
            input.dims()[3],
        );
        let m = (n * h * w) as f32;
        let mut out = Tensor::zeros(input.dims().to_vec());
        for ch in 0..c {
            let inv = 1.0 / (cache.var[ch] + self.eps).sqrt();
            let gamma = self.gamma.value.data()[ch];
            // Accumulate the channel sums needed by the BN backward formula.
            let mut sum_g = 0.0f32;
            let mut sum_gx = 0.0f32;
            for img in 0..n {
                for i in 0..h * w {
                    let off = (img * c + ch) * h * w + i;
                    let xhat = (input.data()[off] - cache.mean[ch]) * inv;
                    let g = grad.data()[off];
                    sum_g += g;
                    sum_gx += g * xhat;
                }
            }
            self.beta.grad.data_mut()[ch] += sum_g;
            self.gamma.grad.data_mut()[ch] += sum_gx;
            for img in 0..n {
                for i in 0..h * w {
                    let off = (img * c + ch) * h * w + i;
                    let xhat = (input.data()[off] - cache.mean[ch]) * inv;
                    let g = grad.data()[off];
                    out.data_mut()[off] = gamma * inv / m * (m * g - sum_g - xhat * sum_gx);
                }
            }
        }
        out
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.gamma, &mut self.beta]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn geom() -> ConvGeom {
        ConvGeom {
            in_channels: 2,
            out_channels: 3,
            kernel: 3,
            stride: 1,
            pad: 1,
        }
    }

    #[test]
    fn conv_preserves_spatial_dims_with_pad1() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut conv = Conv2d::new("c", geom(), &mut rng);
        let mut e = Engine::f32();
        let x = init::normal(&mut rng, vec![2, 2, 4, 4], 1.0);
        let y = conv.forward(&mut e, &x, true);
        assert_eq!(y.dims(), &[2, 3, 4, 4]);
    }

    #[test]
    fn conv_input_gradient_matches_finite_difference() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut conv = Conv2d::new("c", geom(), &mut rng);
        let mut e = Engine::f32();
        let x = init::normal(&mut rng, vec![1, 2, 3, 3], 1.0);
        let _ = conv.forward(&mut e, &x, true);
        let gy = Tensor::full(vec![1, 3, 3, 3], 1.0);
        let gx = conv.backward(&mut e, &gy);
        let eps = 1e-2f32;
        for i in [0usize, 5, 9, 17] {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let yp = conv.forward(&mut e, &xp, true).sum();
            let ym = conv.forward(&mut e, &xm, true).sum();
            let num = (yp - ym) / (2.0 * eps);
            assert!(
                (num - gx.data()[i]).abs() < 2e-2 * (1.0 + num.abs()),
                "elem {i}: {num} vs {}",
                gx.data()[i]
            );
        }
    }

    #[test]
    fn conv_weight_gradient_matches_finite_difference() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut conv = Conv2d::new("c", geom(), &mut rng);
        let mut e = Engine::f32();
        let x = init::normal(&mut rng, vec![1, 2, 3, 3], 1.0);
        let _ = conv.forward(&mut e, &x, true);
        let gy = Tensor::full(vec![1, 3, 3, 3], 1.0);
        let _ = conv.backward(&mut e, &gy);
        let analytic = conv.weight.grad.clone();
        let eps = 1e-2f32;
        for i in [0usize, 7, 20, 53] {
            let orig = conv.weight.value.data()[i];
            conv.weight.value.data_mut()[i] = orig + eps;
            let yp = conv.forward(&mut e, &x, true).sum();
            conv.weight.value.data_mut()[i] = orig - eps;
            let ym = conv.forward(&mut e, &x, true).sum();
            conv.weight.value.data_mut()[i] = orig;
            let num = (yp - ym) / (2.0 * eps);
            assert!(
                (num - analytic.data()[i]).abs() < 2e-2 * (1.0 + num.abs()),
                "weight {i}: {num} vs {}",
                analytic.data()[i]
            );
        }
    }

    #[test]
    fn nchw_row_conversions_invert() {
        let mut rng = StdRng::seed_from_u64(3);
        let t = init::normal(&mut rng, vec![2, 3, 4, 5], 1.0);
        let rows = nchw_to_rows(&t);
        assert_eq!(rows.dims(), &[2 * 4 * 5, 3]);
        let back = rows_to_nchw(&rows, 2, 3, 4, 5);
        assert_eq!(back, t);
    }

    #[test]
    fn maxpool_selects_max_and_routes_gradient() {
        let mut pool = MaxPool2d::new("p");
        let mut e = Engine::f32();
        let x = Tensor::from_vec(vec![1, 1, 2, 2], vec![1.0, 5.0, 2.0, 3.0]);
        let y = pool.forward(&mut e, &x, true);
        assert_eq!(y.data(), &[5.0]);
        let g = pool.backward(&mut e, &Tensor::full(vec![1, 1, 1, 1], 2.0));
        assert_eq!(g.data(), &[0.0, 2.0, 0.0, 0.0]);
    }

    #[test]
    fn batchnorm_normalizes_each_channel() {
        let mut bn = BatchNorm2d::new("bn", 2);
        let mut e = Engine::f32();
        let mut rng = StdRng::seed_from_u64(4);
        let x = init::normal(&mut rng, vec![4, 2, 3, 3], 3.0).map(|v| v + 7.0);
        let y = bn.forward(&mut e, &x, true);
        // Per-channel mean ~0, var ~1.
        for ch in 0..2 {
            let mut vals = Vec::new();
            for img in 0..4 {
                for i in 0..9 {
                    vals.push(y.data()[(img * 2 + ch) * 9 + i]);
                }
            }
            let mean: f32 = vals.iter().sum::<f32>() / vals.len() as f32;
            let var: f32 =
                vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / vals.len() as f32;
            assert!(mean.abs() < 1e-4, "mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "var {var}");
        }
    }

    #[test]
    fn batchnorm_gradient_matches_finite_difference() {
        let mut bn = BatchNorm2d::new("bn", 1);
        let mut e = Engine::f32();
        let x = Tensor::from_vec(vec![2, 1, 1, 2], vec![1.0, 2.0, 4.0, -1.0]);
        let _ = bn.forward(&mut e, &x, true);
        // Weighted loss to make per-element gradients distinct.
        let gy = Tensor::from_vec(vec![2, 1, 1, 2], vec![1.0, 0.5, -0.25, 2.0]);
        let gx = bn.backward(&mut e, &gy);
        let eps = 1e-3f32;
        for i in 0..4 {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let loss = |t: &Tensor, bn: &mut BatchNorm2d, e: &mut Engine| {
                let y = bn.forward(e, t, true);
                y.data()
                    .iter()
                    .zip(gy.data())
                    .map(|(a, b)| a * b)
                    .sum::<f32>()
            };
            let num = (loss(&xp, &mut bn, &mut e) - loss(&xm, &mut bn, &mut e)) / (2.0 * eps);
            assert!(
                (num - gx.data()[i]).abs() < 5e-3 * (1.0 + num.abs()),
                "elem {i}: {num} vs {}",
                gx.data()[i]
            );
        }
    }
}
