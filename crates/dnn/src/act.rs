//! Activation functions and dropout.
//!
//! ReLU is the source of the activation value-sparsity the paper measures
//! (Fig. 1a: "The activations in the image classification networks exhibit
//! sparsity exceeding 35% ... since these networks use the ReLU activation
//! function which clips negative values to zero"). [`PactRelu`] implements
//! PACT [24], the clipped-and-quantized activation used by the ResNet18-Q
//! workload.

use fpraker_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::engine::Engine;
use crate::layer::{Layer, Param};

macro_rules! elementwise_layer {
    ($(#[$doc:meta])* $name:ident, $fwd:expr, $bwd:expr) => {
        $(#[$doc])*
        pub struct $name {
            name: String,
            cached_input: Option<Tensor>,
        }

        impl $name {
            /// Creates the layer.
            pub fn new(name: impl Into<String>) -> Self {
                Self { name: name.into(), cached_input: None }
            }
        }

        impl Layer for $name {
            fn name(&self) -> &str {
                &self.name
            }

            fn forward(&mut self, _e: &mut Engine, input: &Tensor, _training: bool) -> Tensor {
                self.cached_input = Some(input.clone());
                input.map($fwd)
            }

            fn backward(&mut self, _e: &mut Engine, grad: &Tensor) -> Tensor {
                let x = self.cached_input.as_ref().expect("backward before forward");
                let dfdx = x.map($bwd);
                grad.zip_map(&dfdx, |g, d| g * d)
            }
        }
    };
}

elementwise_layer!(
    /// Rectified linear unit: `max(0, x)`.
    Relu,
    |x| x.max(0.0),
    |x| if x > 0.0 { 1.0 } else { 0.0 }
);

elementwise_layer!(
    /// Hyperbolic tangent.
    Tanh,
    |x| x.tanh(),
    |x| 1.0 - x.tanh() * x.tanh()
);

elementwise_layer!(
    /// Logistic sigmoid.
    Sigmoid,
    |x| 1.0 / (1.0 + (-x).exp()),
    |x| {
        let s = 1.0 / (1.0 + (-x).exp());
        s * (1.0 - s)
    }
);

elementwise_layer!(
    /// Gaussian error linear unit (tanh approximation), the transformer
    /// activation of the BERT workload.
    Gelu,
    gelu_fwd,
    gelu_bwd
);

fn gelu_fwd(x: f32) -> f32 {
    const C: f32 = 0.797_884_6; // sqrt(2/pi)
    0.5 * x * (1.0 + (C * (x + 0.044715 * x * x * x)).tanh())
}

fn gelu_bwd(x: f32) -> f32 {
    const C: f32 = 0.797_884_6;
    let inner = C * (x + 0.044715 * x * x * x);
    let t = inner.tanh();
    let dinner = C * (1.0 + 3.0 * 0.044715 * x * x);
    0.5 * (1.0 + t) + 0.5 * x * (1.0 - t * t) * dinner
}

/// PACT: parameterized clipping activation for quantized training \[24\].
///
/// Forward: `y = clip(x, 0, α)` quantized to a `2^bits - 1`-level uniform
/// grid. Backward: straight-through estimator inside `(0, α)`; gradient
/// w.r.t. `α` flows from the clipped region. The quantized activations have
/// at most `bits` significant mantissa bits, which is what gives the
/// ResNet18-Q workload its high term sparsity (Section V-C).
pub struct PactRelu {
    name: String,
    /// The learnable clipping threshold α (a 1-element parameter).
    alpha: Param,
    bits: u32,
    cached_input: Option<Tensor>,
}

impl PactRelu {
    /// Creates a PACT activation with initial clip `alpha0` and the given
    /// quantization bit-width (the paper's ResNet18-Q uses 4 bits).
    pub fn new(name: impl Into<String>, alpha0: f32, bits: u32) -> Self {
        let name = name.into();
        PactRelu {
            alpha: Param::new(
                format!("{name}.alpha"),
                Tensor::from_vec(vec![1], vec![alpha0]),
            ),
            bits,
            cached_input: None,
            name,
        }
    }

    fn levels(&self) -> f32 {
        (1u32 << self.bits) as f32 - 1.0
    }
}

impl Layer for PactRelu {
    fn name(&self) -> &str {
        &self.name
    }

    fn forward(&mut self, _e: &mut Engine, input: &Tensor, _training: bool) -> Tensor {
        self.cached_input = Some(input.clone());
        let alpha = self.alpha.value.data()[0].max(1e-3);
        let levels = self.levels();
        // Power-of-two step: quantized activations are `k * 2^e` with a
        // `bits`-bit `k`, so their bfloat16 significands carry at most
        // `bits` meaningful positions — the property FPRaker's term
        // encoder exploits (Section V-C).
        let step = 2f32.powi((alpha / levels).log2().ceil() as i32);
        input.map(|x| {
            let clipped = x.clamp(0.0, alpha);
            (clipped / step).round() * step
        })
    }

    fn backward(&mut self, _e: &mut Engine, grad: &Tensor) -> Tensor {
        let x = self.cached_input.as_ref().expect("backward before forward");
        let alpha = self.alpha.value.data()[0].max(1e-3);
        // Straight-through estimator inside (0, α); the gradient w.r.t. α
        // accumulates over the clipped region.
        let out = grad.zip_map(x, |g, xv| if xv > 0.0 && xv < alpha { g } else { 0.0 });
        let dalpha: f32 = grad
            .data()
            .iter()
            .zip(x.data())
            .filter(|(_, &xv)| xv >= alpha)
            .map(|(g, _)| *g)
            .sum();
        self.alpha.grad.data_mut()[0] += dalpha;
        out
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.alpha]
    }
}

/// Inverted dropout: zeroes a fraction `p` of activations during training
/// and scales the survivors by `1/(1-p)`; identity at evaluation.
pub struct Dropout {
    name: String,
    p: f32,
    rng: StdRng,
    mask: Option<Tensor>,
}

impl Dropout {
    /// Creates a dropout layer with drop probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1)`.
    pub fn new(name: impl Into<String>, p: f32, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&p), "drop probability must be in [0,1)");
        Dropout {
            name: name.into(),
            p,
            rng: StdRng::seed_from_u64(seed),
            mask: None,
        }
    }
}

impl Layer for Dropout {
    fn name(&self) -> &str {
        &self.name
    }

    fn forward(&mut self, _e: &mut Engine, input: &Tensor, training: bool) -> Tensor {
        if !training || self.p == 0.0 {
            self.mask = None;
            return input.clone();
        }
        let keep = 1.0 - self.p;
        let mask_data: Vec<f32> = (0..input.len())
            .map(|_| {
                if self.rng.gen::<f32>() < self.p {
                    0.0
                } else {
                    1.0 / keep
                }
            })
            .collect();
        let mask = Tensor::from_vec(input.dims().to_vec(), mask_data);
        let out = input.zip_map(&mask, |x, m| x * m);
        self.mask = Some(mask);
        out
    }

    fn backward(&mut self, _e: &mut Engine, grad: &Tensor) -> Tensor {
        match &self.mask {
            Some(mask) => grad.zip_map(mask, |g, m| g * m),
            None => grad.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grad_check(layer: &mut dyn Layer, xs: &[f32]) {
        let mut e = Engine::f32();
        let x = Tensor::from_vec(vec![1, xs.len()], xs.to_vec());
        let _ = layer.forward(&mut e, &x, true);
        let gy = Tensor::full(vec![1, xs.len()], 1.0);
        let gx = layer.backward(&mut e, &gy);
        let eps = 1e-3f32;
        for i in 0..xs.len() {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let yp = layer.forward(&mut e, &xp, true).sum();
            let ym = layer.forward(&mut e, &xm, true).sum();
            let num = (yp - ym) / (2.0 * eps);
            assert!(
                (num - gx.data()[i]).abs() < 2e-2,
                "{}: elem {i} numeric {num} vs analytic {}",
                layer.name(),
                gx.data()[i]
            );
        }
    }

    #[test]
    fn smooth_activations_match_finite_difference() {
        grad_check(&mut Tanh::new("tanh"), &[-1.5, -0.2, 0.0, 0.3, 2.0]);
        grad_check(&mut Sigmoid::new("sig"), &[-2.0, -0.5, 0.1, 1.0]);
        grad_check(&mut Gelu::new("gelu"), &[-2.0, -0.5, 0.1, 1.0, 3.0]);
    }

    #[test]
    fn relu_zeroes_negatives_and_their_grads() {
        let mut relu = Relu::new("r");
        let mut e = Engine::f32();
        let x = Tensor::from_vec(vec![1, 4], vec![-1.0, 2.0, -3.0, 4.0]);
        let y = relu.forward(&mut e, &x, true);
        assert_eq!(y.data(), &[0.0, 2.0, 0.0, 4.0]);
        assert_eq!(y.zero_fraction(), 0.5);
        let g = relu.backward(&mut e, &Tensor::full(vec![1, 4], 1.0));
        assert_eq!(g.data(), &[0.0, 1.0, 0.0, 1.0]);
    }

    #[test]
    fn pact_output_lands_on_grid_and_clips() {
        let mut pact = PactRelu::new("p", 2.0, 4);
        let mut e = Engine::f32();
        let x = Tensor::from_vec(vec![1, 5], vec![-1.0, 0.4, 1.0, 1.9, 5.0]);
        let y = pact.forward(&mut e, &x, true);
        // step = 2^ceil(log2(2/15)) = 2^-3.
        let step = 0.125;
        for &v in y.data() {
            let q = (v / step).round() * step;
            assert!((v - q).abs() < 1e-6, "{v} off grid");
            assert!((0.0..=2.0).contains(&v));
        }
        assert_eq!(y.data()[0], 0.0);
        assert_eq!(y.data()[4], 2.0);
        // Gradients: zero below 0, STE in range, alpha-grad above.
        let g = pact.backward(&mut e, &Tensor::full(vec![1, 5], 1.0));
        assert_eq!(g.data(), &[0.0, 1.0, 1.0, 1.0, 0.0]);
        assert_eq!(pact.alpha.grad.data()[0], 1.0);
    }

    #[test]
    fn dropout_scales_survivors_and_is_identity_in_eval() {
        let mut d = Dropout::new("d", 0.5, 42);
        let mut e = Engine::f32();
        let x = Tensor::full(vec![1, 1000], 1.0);
        let y = d.forward(&mut e, &x, true);
        let kept = y.data().iter().filter(|&&v| v != 0.0).count();
        assert!((300..700).contains(&kept), "{kept} kept");
        for &v in y.data() {
            assert!(v == 0.0 || (v - 2.0).abs() < 1e-6);
        }
        // Backward respects the same mask.
        let g = d.backward(&mut e, &x);
        assert_eq!(g.data().iter().filter(|&&v| v != 0.0).count(), kept);
        // Eval mode is the identity.
        let y_eval = d.forward(&mut e, &x, false);
        assert_eq!(y_eval, x);
    }

    #[test]
    #[should_panic(expected = "must be in [0,1)")]
    fn dropout_rejects_bad_probability() {
        let _ = Dropout::new("d", 1.5, 0);
    }
}
