//! Synthetic datasets.
//!
//! The paper trains on ImageNet, SNLI, im2latex, COCO, ml-20m and WMT17 —
//! none of which are available offline. Each dataset here is a *learnable*
//! synthetic substitute: inputs are drawn from class-conditional
//! distributions (prototype patterns plus noise, index co-occurrence
//! structure), so real gradient dynamics — shrinking losses, ReLU-induced
//! sparsity, narrow exponent distributions — emerge from actual training
//! rather than being injected.

use fpraker_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A synthetic supervised dataset: `samples` rows of features (flattened
/// per-sample dims) with integer class labels.
#[derive(Clone, Debug)]
pub struct Dataset {
    /// Per-sample feature dims (e.g. `[3, 16, 16]` for CHW images).
    pub sample_dims: Vec<usize>,
    features: Vec<f32>,
    labels: Vec<usize>,
    /// Number of classes.
    pub num_classes: usize,
}

impl Dataset {
    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// `true` if the dataset has no samples.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Feature width per sample.
    pub fn sample_len(&self) -> usize {
        self.sample_dims.iter().product()
    }

    /// Assembles batch `idx` (wrapping around the dataset) as a tensor of
    /// shape `[batch, ...sample_dims]` plus its labels.
    pub fn batch(&self, idx: usize, batch_size: usize) -> (Tensor, Vec<usize>) {
        let sl = self.sample_len();
        let mut feats = Vec::with_capacity(batch_size * sl);
        let mut labels = Vec::with_capacity(batch_size);
        for i in 0..batch_size {
            let s = (idx * batch_size + i) % self.len();
            feats.extend_from_slice(&self.features[s * sl..(s + 1) * sl]);
            labels.push(self.labels[s]);
        }
        let mut dims = vec![batch_size];
        dims.extend_from_slice(&self.sample_dims);
        (Tensor::from_vec(dims, feats), labels)
    }

    /// Number of batches per epoch at the given batch size.
    pub fn batches(&self, batch_size: usize) -> usize {
        self.len().div_ceil(batch_size)
    }
}

/// Class-conditional images: each class has a random prototype pattern;
/// samples are the prototype plus Gaussian noise ("SynthCIFAR"). Channels
/// × height × width, values roughly in `[-1, 1]`.
pub fn synth_images(
    samples: usize,
    classes: usize,
    channels: usize,
    size: usize,
    noise: f32,
    seed: u64,
) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let feat = channels * size * size;
    let prototypes: Vec<Vec<f32>> = (0..classes)
        .map(|_| (0..feat).map(|_| rng.gen_range(-1.0..1.0)).collect())
        .collect();
    let mut features = Vec::with_capacity(samples * feat);
    let mut labels = Vec::with_capacity(samples);
    for s in 0..samples {
        let class = s % classes;
        labels.push(class);
        for &proto in prototypes[class].iter().take(feat) {
            let n: f32 = if noise > 0.0 {
                rng.gen_range(-noise..noise)
            } else {
                0.0
            };
            features.push(proto + n);
        }
    }
    Dataset {
        sample_dims: vec![channels, size, size],
        features,
        labels,
        num_classes: classes,
    }
}

/// Class-conditional sequences for recurrent models: each class is a
/// distinct sinusoidal pattern over `seq_len` steps of `features` channels,
/// plus noise.
pub fn synth_sequences(
    samples: usize,
    classes: usize,
    seq_len: usize,
    features: usize,
    noise: f32,
    seed: u64,
) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut data = Vec::with_capacity(samples * seq_len * features);
    let mut labels = Vec::with_capacity(samples);
    for s in 0..samples {
        let class = s % classes;
        labels.push(class);
        let freq = 0.5 + class as f32 * 0.7;
        let phase: f32 = rng.gen_range(0.0..1.0);
        for t in 0..seq_len {
            for f in 0..features {
                let v = (freq * (t as f32 + phase) + f as f32 * 0.3).sin();
                let n: f32 = if noise > 0.0 {
                    rng.gen_range(-noise..noise)
                } else {
                    0.0
                };
                data.push(v + n);
            }
        }
    }
    Dataset {
        sample_dims: vec![seq_len * features],
        features: data,
        labels,
        num_classes: classes,
    }
}

/// Index-pair interactions for recommendation (NCF-style): each sample is
/// `(user, item)` with a binary label from hidden user/item affinity
/// vectors.
pub fn synth_interactions(samples: usize, users: usize, items: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let dim = 4;
    let uvec: Vec<f32> = (0..users * dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let ivec: Vec<f32> = (0..items * dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let mut features = Vec::with_capacity(samples * 2);
    let mut labels = Vec::with_capacity(samples);
    for _ in 0..samples {
        let u = rng.gen_range(0..users);
        let i = rng.gen_range(0..items);
        let score: f32 = (0..dim)
            .map(|d| uvec[u * dim + d] * ivec[i * dim + d])
            .sum();
        features.push(u as f32);
        // Items are offset into a shared vocabulary after the users.
        features.push((users + i) as f32);
        labels.push(usize::from(score > 0.0));
    }
    Dataset {
        sample_dims: vec![2],
        features,
        labels,
        num_classes: 2,
    }
}

/// Token sequences for transformer models: each class is a distinct token
/// bigram distribution over a small vocabulary.
pub fn synth_tokens(
    samples: usize,
    classes: usize,
    seq_len: usize,
    vocab: usize,
    seed: u64,
) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut features = Vec::with_capacity(samples * seq_len);
    let mut labels = Vec::with_capacity(samples);
    for s in 0..samples {
        let class = s % classes;
        labels.push(class);
        // Class-specific band of the vocabulary plus random noise tokens.
        let band = vocab / classes.max(1);
        let lo = class * band;
        for _ in 0..seq_len {
            let tok = if rng.gen::<f32>() < 0.7 {
                lo + rng.gen_range(0..band.max(1))
            } else {
                rng.gen_range(0..vocab)
            };
            features.push(tok as f32);
        }
    }
    Dataset {
        sample_dims: vec![seq_len],
        features,
        labels,
        num_classes: classes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn images_have_expected_shape_and_labels() {
        let d = synth_images(20, 4, 3, 8, 0.1, 1);
        assert_eq!(d.len(), 20);
        assert_eq!(d.sample_dims, vec![3, 8, 8]);
        let (x, y) = d.batch(0, 5);
        assert_eq!(x.dims(), &[5, 3, 8, 8]);
        assert_eq!(y, vec![0, 1, 2, 3, 0]);
    }

    #[test]
    fn batches_wrap_around() {
        let d = synth_images(6, 2, 1, 2, 0.0, 2);
        let (x1, _) = d.batch(0, 4);
        let (x2, _) = d.batch(1, 4);
        // Batch 1 wraps to samples 4,5,0,1.
        assert_eq!(&x2.data()[8..12], &x1.data()[0..4]);
        assert_eq!(d.batches(4), 2);
    }

    #[test]
    fn same_seed_is_deterministic() {
        let a = synth_sequences(10, 3, 4, 2, 0.1, 7);
        let b = synth_sequences(10, 3, 4, 2, 0.1, 7);
        assert_eq!(a.batch(0, 4).0, b.batch(0, 4).0);
    }

    #[test]
    fn interactions_index_into_shared_vocab() {
        let d = synth_interactions(50, 10, 20, 3);
        let (x, y) = d.batch(0, 50);
        for pair in x.data().chunks(2) {
            assert!(pair[0] < 10.0);
            assert!((10.0..30.0).contains(&pair[1]));
        }
        // Both labels occur.
        assert!(y.contains(&0) && y.contains(&1));
    }

    #[test]
    fn tokens_stay_in_vocab() {
        let d = synth_tokens(30, 3, 6, 12, 4);
        let (x, _) = d.batch(0, 30);
        assert!(x.data().iter().all(|&t| (0.0..12.0).contains(&t)));
    }

    #[test]
    fn classes_are_separable() {
        // Nearest-prototype classification on clean images must be perfect:
        // the datasets are learnable by construction.
        let d = synth_images(40, 4, 1, 4, 0.05, 9);
        let (x, y) = d.batch(0, 40);
        let sl = d.sample_len();
        // Use sample i as its class's reference.
        let mut refs: Vec<&[f32]> = vec![&[]; 4];
        #[allow(clippy::needless_range_loop)]
        for i in 0..4 {
            refs[y[i]] = &x.data()[i * sl..(i + 1) * sl];
        }
        #[allow(clippy::needless_range_loop)]
        for i in 0..40 {
            let s = &x.data()[i * sl..(i + 1) * sl];
            let best = (0..4)
                .min_by(|&a, &b| {
                    let da: f32 = refs[a].iter().zip(s).map(|(r, v)| (r - v).powi(2)).sum();
                    let db: f32 = refs[b].iter().zip(s).map(|(r, v)| (r - v).powi(2)).sum();
                    da.partial_cmp(&db).unwrap()
                })
                .unwrap();
            assert_eq!(best, y[i], "sample {i} misclassified by prototype");
        }
    }
}
