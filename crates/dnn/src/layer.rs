//! The layer abstraction of the training framework.
//!
//! Layers own their parameters and cached activations; `forward` and
//! `backward` thread the [`Engine`] through so that every MAC goes through
//! one funnel (arithmetic selection + trace capture). This mirrors how the
//! paper instruments training ("we trained each model ... and stored all of
//! the inputs and outputs for each layer using Pytorch Forward and Backward
//! hooks").

use fpraker_tensor::Tensor;

use crate::engine::Engine;

/// A trainable parameter: master value, gradient accumulator, and momentum
/// buffer (all `f32`; operands are rounded to bfloat16 inside the engine).
#[derive(Clone, Debug)]
pub struct Param {
    /// Parameter name, unique within a layer.
    pub name: String,
    /// Master value.
    pub value: Tensor,
    /// Gradient accumulated by the current step.
    pub grad: Tensor,
    /// Momentum buffer for SGD.
    pub momentum: Tensor,
}

impl Param {
    /// Creates a parameter with zeroed gradient and momentum.
    pub fn new(name: impl Into<String>, value: Tensor) -> Self {
        let dims = value.dims().to_vec();
        Param {
            name: name.into(),
            value,
            grad: Tensor::zeros(dims.clone()),
            momentum: Tensor::zeros(dims),
        }
    }

    /// Clears the gradient.
    pub fn zero_grad(&mut self) {
        self.grad.data_mut().fill(0.0);
    }
}

/// A differentiable layer.
///
/// `forward` caches whatever `backward` needs; `backward` consumes the
/// gradient w.r.t. the layer's output and returns the gradient w.r.t. its
/// input, accumulating parameter gradients along the way.
pub trait Layer {
    /// The layer's name (used in traces and per-layer reports).
    fn name(&self) -> &str;

    /// Computes the layer's output. `training` distinguishes train/eval
    /// behaviour (dropout, batch statistics).
    fn forward(&mut self, engine: &mut Engine, input: &Tensor, training: bool) -> Tensor;

    /// Backpropagates `grad` (w.r.t. the output of the latest `forward`),
    /// returning the gradient w.r.t. the input.
    fn backward(&mut self, engine: &mut Engine, grad: &Tensor) -> Tensor;

    /// The layer's trainable parameters, if any.
    fn params_mut(&mut self) -> Vec<&mut Param> {
        Vec::new()
    }
}

/// A sequential stack of layers.
///
/// # Example
///
/// ```
/// use fpraker_dnn::{Engine, Layer, Linear, Relu, Sequential};
/// use fpraker_tensor::Tensor;
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// let mut rng = StdRng::seed_from_u64(0);
/// let mut net = Sequential::new("mlp");
/// net.push(Linear::new("fc1", 4, 8, &mut rng));
/// net.push(Relu::new("relu1"));
/// net.push(Linear::new("fc2", 8, 2, &mut rng));
///
/// let mut engine = Engine::f32();
/// let x = Tensor::zeros(vec![3, 4]);
/// let y = net.forward(&mut engine, &x, true);
/// assert_eq!(y.dims(), &[3, 2]);
/// ```
pub struct Sequential {
    name: String,
    layers: Vec<Box<dyn Layer>>,
}

impl Sequential {
    /// Creates an empty stack.
    pub fn new(name: impl Into<String>) -> Self {
        Sequential {
            name: name.into(),
            layers: Vec::new(),
        }
    }

    /// Appends a layer.
    pub fn push(&mut self, layer: impl Layer + 'static) {
        self.layers.push(Box::new(layer));
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// `true` if the stack has no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Zeroes every parameter gradient.
    pub fn zero_grads(&mut self) {
        for p in self.params_mut() {
            p.zero_grad();
        }
    }

    /// Total number of trainable scalars.
    pub fn num_parameters(&mut self) -> usize {
        self.params_mut().iter().map(|p| p.value.len()).sum()
    }
}

impl Layer for Sequential {
    fn name(&self) -> &str {
        &self.name
    }

    fn forward(&mut self, engine: &mut Engine, input: &Tensor, training: bool) -> Tensor {
        let mut x = input.clone();
        for layer in &mut self.layers {
            x = layer.forward(engine, &x, training);
        }
        x
    }

    fn backward(&mut self, engine: &mut Engine, grad: &Tensor) -> Tensor {
        let mut g = grad.clone();
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(engine, &g);
        }
        g
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        self.layers
            .iter_mut()
            .flat_map(|l| l.params_mut())
            .collect()
    }
}

/// Flattens `(N, ...)` to `(N, prod(...))`; backward restores the shape.
pub struct Flatten {
    name: String,
    cached_dims: Vec<usize>,
}

impl Flatten {
    /// Creates a flatten layer.
    pub fn new(name: impl Into<String>) -> Self {
        Flatten {
            name: name.into(),
            cached_dims: Vec::new(),
        }
    }
}

impl Layer for Flatten {
    fn name(&self) -> &str {
        &self.name
    }

    fn forward(&mut self, _engine: &mut Engine, input: &Tensor, _training: bool) -> Tensor {
        self.cached_dims = input.dims().to_vec();
        let n = self.cached_dims[0];
        let rest: usize = self.cached_dims[1..].iter().product();
        input.clone().reshape(vec![n, rest])
    }

    fn backward(&mut self, _engine: &mut Engine, grad: &Tensor) -> Tensor {
        grad.clone().reshape(self.cached_dims.clone())
    }
}

/// A residual block: `output = inner(x) + shortcut(x)` (identity shortcut
/// when `shortcut` is `None`). Shapes of the two paths must agree.
pub struct Residual {
    name: String,
    inner: Sequential,
    shortcut: Option<Sequential>,
}

impl Residual {
    /// Creates a residual block with an identity shortcut.
    pub fn new(name: impl Into<String>, inner: Sequential) -> Self {
        Residual {
            name: name.into(),
            inner,
            shortcut: None,
        }
    }

    /// Creates a residual block with a projection shortcut.
    pub fn with_shortcut(name: impl Into<String>, inner: Sequential, shortcut: Sequential) -> Self {
        Residual {
            name: name.into(),
            inner,
            shortcut: Some(shortcut),
        }
    }
}

impl Layer for Residual {
    fn name(&self) -> &str {
        &self.name
    }

    fn forward(&mut self, engine: &mut Engine, input: &Tensor, training: bool) -> Tensor {
        let main = self.inner.forward(engine, input, training);
        let skip = match &mut self.shortcut {
            Some(s) => s.forward(engine, input, training),
            None => input.clone(),
        };
        main.zip_map(&skip, |a, b| a + b)
    }

    fn backward(&mut self, engine: &mut Engine, grad: &Tensor) -> Tensor {
        let g_main = self.inner.backward(engine, grad);
        let g_skip = match &mut self.shortcut {
            Some(s) => s.backward(engine, grad),
            None => grad.clone(),
        };
        g_main.zip_map(&g_skip, |a, b| a + b)
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut p = self.inner.params_mut();
        if let Some(s) = &mut self.shortcut {
            p.extend(s.params_mut());
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::act::Relu;
    use crate::dense::Linear;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn flatten_round_trips() {
        let mut f = Flatten::new("flat");
        let mut e = Engine::f32();
        let x = Tensor::zeros(vec![2, 3, 4, 5]);
        let y = f.forward(&mut e, &x, true);
        assert_eq!(y.dims(), &[2, 60]);
        let g = f.backward(&mut e, &y);
        assert_eq!(g.dims(), &[2, 3, 4, 5]);
    }

    #[test]
    fn sequential_collects_params() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut net = Sequential::new("net");
        net.push(Linear::new("a", 4, 8, &mut rng));
        net.push(Relu::new("r"));
        net.push(Linear::new("b", 8, 2, &mut rng));
        // Two weights + two biases.
        assert_eq!(net.params_mut().len(), 4);
        assert_eq!(net.num_parameters(), 4 * 8 + 8 + 8 * 2 + 2);
        net.zero_grads();
    }

    #[test]
    fn residual_identity_adds_input() {
        let inner = Sequential::new("empty");
        let mut res = Residual::new("res", inner);
        let mut e = Engine::f32();
        let x = Tensor::from_vec(vec![1, 3], vec![1.0, 2.0, 3.0]);
        let y = res.forward(&mut e, &x, true);
        // Empty inner path is the identity, so output is 2x.
        assert_eq!(y.data(), &[2.0, 4.0, 6.0]);
        let g = res.backward(&mut e, &Tensor::full(vec![1, 3], 1.0));
        assert_eq!(g.data(), &[2.0, 2.0, 2.0]);
    }
}
