//! The workload zoo: scaled-down analogues of the nine models the paper
//! studies (Table I), plus the AlexNet/ResNet18 pair of the Fig. 21
//! accumulator-width study.
//!
//! Each analogue preserves the *mechanisms* that shape the paper's
//! measurements — ReLU-heavy convolutions (activation sparsity), PACT 4-bit
//! quantization (term sparsity), dynamic sparse reparameterization (weight
//! sparsity), LSTM/attention/MLP structure (fully-connected GEMMs with
//! tanh/sigmoid/GELU values) — at laptop scale. Dataset scale, layer count
//! and widths are reduced; the computation structure per layer is the same.

use rand::rngs::StdRng;
use rand::SeedableRng;

use fpraker_tensor::ConvGeom;

use crate::act::{Dropout, Gelu, PactRelu, Relu, Sigmoid, Tanh};
use crate::attention::SelfAttention;
use crate::conv::{BatchNorm2d, Conv2d, MaxPool2d};
use crate::data::{synth_images, synth_interactions, synth_sequences, synth_tokens, Dataset};
use crate::dense::{Embedding, Linear};
use crate::layer::{Flatten, Residual, Sequential};
use crate::optim::Sgd;
use crate::quant::Pruner;
use crate::recurrent::Lstm;
use crate::train::Workload;

/// The nine studied models, in Table I order, by zoo name.
pub const PAPER_MODELS: [&str; 9] = [
    "squeezenet1.1",
    "vgg16",
    "resnet18-q",
    "resnet50-s2",
    "snli",
    "image2text",
    "detectron2",
    "ncf",
    "bert",
];

fn conv_geom(cin: usize, cout: usize, k: usize, stride: usize, pad: usize) -> ConvGeom {
    ConvGeom {
        in_channels: cin,
        out_channels: cout,
        kernel: k,
        stride,
        pad,
    }
}

/// Builds a workload analogue by zoo name (see [`PAPER_MODELS`]), or the
/// extra Fig. 21 models `"alexnet"` / `"resnet18"`.
///
/// # Panics
///
/// Panics on an unknown name.
pub fn build(name: &str) -> Workload {
    match name {
        "squeezenet1.1" => squeezenet(),
        "vgg16" => vgg16(),
        "resnet18-q" => resnet18_q(),
        "resnet50-s2" => resnet50_s2(),
        "snli" => snli(),
        "image2text" => image2text(),
        "detectron2" => detectron2(),
        "ncf" => ncf(),
        "bert" => bert(),
        "alexnet" => alexnet(),
        "resnet18" => resnet18_plain(),
        other => panic!("unknown model '{other}'"),
    }
}

/// The paper-facing display name of a zoo model (Table I).
pub fn display_name(name: &str) -> &'static str {
    match name {
        "squeezenet1.1" => "SqueezeNet 1.1",
        "vgg16" => "VGG16",
        "resnet18-q" => "ResNet18-Q",
        "resnet50-s2" => "ResNet50-S2",
        "snli" => "SNLI",
        "image2text" => "Image2Text",
        "detectron2" => "Detectron2",
        "ncf" => "NCF",
        "bert" => "Bert",
        "alexnet" => "AlexNet",
        "resnet18" => "ResNet18",
        _ => "unknown",
    }
}

fn image_dataset(seed: u64) -> Dataset {
    synth_images(64, 8, 3, 16, 0.35, seed)
}

/// SqueezeNet 1.1 analogue: fire-module-style squeeze (1×1) and expand
/// (3×3) convolutions with ReLU.
fn squeezenet() -> Workload {
    let mut rng = StdRng::seed_from_u64(0x5100);
    let mut net = Sequential::new("squeezenet1.1");
    net.push(Conv2d::new("conv1", conv_geom(3, 16, 3, 1, 1), &mut rng));
    net.push(Relu::new("relu1"));
    net.push(MaxPool2d::new("pool1"));
    // Fire module: squeeze 1x1 then expand 3x3.
    net.push(Conv2d::new(
        "fire.squeeze",
        conv_geom(16, 8, 1, 1, 0),
        &mut rng,
    ));
    net.push(Relu::new("fire.relu_s"));
    net.push(Conv2d::new(
        "fire.expand",
        conv_geom(8, 16, 3, 1, 1),
        &mut rng,
    ));
    net.push(Relu::new("fire.relu_e"));
    net.push(MaxPool2d::new("pool2"));
    net.push(Flatten::new("flat"));
    net.push(Linear::new("fc", 16 * 4 * 4, 8, &mut rng));
    Workload::new(
        "squeezenet1.1",
        net,
        image_dataset(11),
        8,
        Sgd::new(0.02).with_momentum(0.9),
    )
}

/// VGG16 analogue: stacked 3×3 convolutions, pooling, big FC head with
/// dropout.
fn vgg16() -> Workload {
    let mut rng = StdRng::seed_from_u64(0x5600);
    let mut net = Sequential::new("vgg16");
    net.push(Conv2d::new("conv1_1", conv_geom(3, 16, 3, 1, 1), &mut rng));
    net.push(Relu::new("relu1_1"));
    net.push(Conv2d::new("conv1_2", conv_geom(16, 16, 3, 1, 1), &mut rng));
    net.push(Relu::new("relu1_2"));
    net.push(MaxPool2d::new("pool1"));
    net.push(Conv2d::new("conv2_1", conv_geom(16, 32, 3, 1, 1), &mut rng));
    net.push(Relu::new("relu2_1"));
    net.push(MaxPool2d::new("pool2"));
    net.push(Flatten::new("flat"));
    net.push(Linear::new("fc1", 32 * 4 * 4, 64, &mut rng));
    net.push(Relu::new("relu_fc1"));
    net.push(Dropout::new("drop", 0.3, 0x5601));
    net.push(Linear::new("fc2", 64, 8, &mut rng));
    Workload::new(
        "vgg16",
        net,
        image_dataset(22),
        8,
        Sgd::new(0.02).with_momentum(0.9),
    )
}

fn residual_block<R: rand::Rng>(
    name: &str,
    channels: usize,
    rng: &mut R,
    quant_bits: Option<u32>,
) -> Residual {
    let mut inner = Sequential::new(format!("{name}.inner"));
    let mut conv1 = Conv2d::new(
        format!("{name}.conv1"),
        conv_geom(channels, channels, 3, 1, 1),
        rng,
    );
    let mut conv2 = Conv2d::new(
        format!("{name}.conv2"),
        conv_geom(channels, channels, 3, 1, 1),
        rng,
    );
    if let Some(bits) = quant_bits {
        conv1 = conv1.with_weight_bits(bits);
        conv2 = conv2.with_weight_bits(bits);
    }
    inner.push(conv1);
    inner.push(BatchNorm2d::new(format!("{name}.bn1"), channels));
    match quant_bits {
        Some(bits) => inner.push(PactRelu::new(format!("{name}.act1"), 4.0, bits)),
        None => inner.push(Relu::new(format!("{name}.act1"))),
    }
    inner.push(conv2);
    inner.push(BatchNorm2d::new(format!("{name}.bn2"), channels));
    Residual::new(name.to_string(), inner)
}

/// ResNet18-Q analogue: residual blocks trained with PACT — activations
/// and weights quantized to 4 bits during training (the paper's
/// highest-term-sparsity workload).
fn resnet18_q() -> Workload {
    let mut rng = StdRng::seed_from_u64(0x1800);
    let mut net = Sequential::new("resnet18-q");
    net.push(Conv2d::new("conv1", conv_geom(3, 16, 3, 1, 1), &mut rng).with_weight_bits(4));
    net.push(BatchNorm2d::new("bn1", 16));
    net.push(PactRelu::new("pact1", 4.0, 4));
    net.push(residual_block("block1", 16, &mut rng, Some(4)));
    net.push(PactRelu::new("pact2", 4.0, 4));
    net.push(MaxPool2d::new("pool"));
    net.push(Flatten::new("flat"));
    net.push(Linear::new("fc", 16 * 8 * 8, 8, &mut rng).with_weight_bits(4));
    Workload::new(
        "resnet18-q",
        net,
        image_dataset(33),
        8,
        Sgd::new(0.02).with_momentum(0.9),
    )
}

/// ResNet50-S2 analogue: residual blocks trained with dynamic sparse
/// reparameterization holding 80% weight sparsity.
fn resnet50_s2() -> Workload {
    let mut rng = StdRng::seed_from_u64(0x5000);
    let mut net = Sequential::new("resnet50-s2");
    net.push(Conv2d::new("conv1", conv_geom(3, 16, 3, 1, 1), &mut rng));
    net.push(BatchNorm2d::new("bn1", 16));
    net.push(Relu::new("relu1"));
    net.push(residual_block("block1", 16, &mut rng, None));
    net.push(Relu::new("relu2"));
    net.push(residual_block("block2", 16, &mut rng, None));
    net.push(Relu::new("relu3"));
    net.push(MaxPool2d::new("pool"));
    net.push(Flatten::new("flat"));
    net.push(Linear::new("fc", 16 * 8 * 8, 8, &mut rng));
    let mut w = Workload::new(
        "resnet50-s2",
        net,
        image_dataset(44),
        8,
        Sgd::new(0.02).with_momentum(0.9),
    );
    w.attach_pruner(Pruner::new(0.8, 4, 0x5001));
    w
}

/// SNLI analogue: LSTM encoder + ReLU fully-connected classifier with
/// dropout (Table I: "fully-connected, LSTM-encoder, ReLU, and dropout
/// layers").
fn snli() -> Workload {
    let mut rng = StdRng::seed_from_u64(0x501);
    let mut net = Sequential::new("snli");
    net.push(Lstm::new("encoder", 16, 32, 6, &mut rng));
    net.push(Linear::new("fc1", 32, 64, &mut rng));
    net.push(Relu::new("relu"));
    net.push(Dropout::new("drop", 0.2, 0x502));
    net.push(Linear::new("fc2", 64, 3, &mut rng));
    let data = synth_sequences(60, 3, 6, 16, 0.2, 55);
    Workload::new(
        "snli",
        net,
        data,
        10,
        Sgd::new(0.05).with_momentum(0.9).with_grad_clip(5.0),
    )
}

/// Image2Text analogue: convolutional encoder feeding an LSTM decoder
/// (encoder-decoder image-to-markup structure).
fn image2text() -> Workload {
    let mut rng = StdRng::seed_from_u64(0x12E);
    let mut net = Sequential::new("image2text");
    net.push(Conv2d::new("enc.conv1", conv_geom(1, 8, 3, 1, 1), &mut rng));
    net.push(Relu::new("enc.relu1"));
    net.push(MaxPool2d::new("enc.pool"));
    net.push(Flatten::new("flat"));
    net.push(Linear::new("enc.fc", 8 * 8 * 8, 48, &mut rng));
    net.push(Tanh::new("enc.tanh"));
    net.push(Lstm::new("dec.lstm", 8, 16, 6, &mut rng));
    net.push(Linear::new("dec.fc", 16, 10, &mut rng));
    let data = synth_images(60, 10, 1, 16, 0.3, 66);
    Workload::new(
        "image2text",
        net,
        data,
        10,
        Sgd::new(0.03).with_momentum(0.9).with_grad_clip(5.0),
    )
}

/// Detectron2 analogue: a conv-heavy detection backbone and head
/// (Mask-R-CNN-style convolution stack).
fn detectron2() -> Workload {
    let mut rng = StdRng::seed_from_u64(0xDE7);
    let mut net = Sequential::new("detectron2");
    net.push(Conv2d::new(
        "backbone.conv1",
        conv_geom(3, 16, 3, 1, 1),
        &mut rng,
    ));
    net.push(BatchNorm2d::new("backbone.bn1", 16));
    net.push(Relu::new("backbone.relu1"));
    net.push(Conv2d::new(
        "backbone.conv2",
        conv_geom(16, 32, 3, 2, 1),
        &mut rng,
    ));
    net.push(Relu::new("backbone.relu2"));
    net.push(Conv2d::new(
        "head.conv",
        conv_geom(32, 32, 3, 1, 1),
        &mut rng,
    ));
    net.push(Relu::new("head.relu"));
    net.push(MaxPool2d::new("head.pool"));
    net.push(Flatten::new("flat"));
    net.push(Linear::new("head.cls", 32 * 4 * 4, 8, &mut rng));
    Workload::new(
        "detectron2",
        net,
        image_dataset(77),
        8,
        Sgd::new(0.02).with_momentum(0.9),
    )
}

/// NCF analogue: user/item embeddings feeding an MLP with ReLU and a
/// sigmoid-style head (neural collaborative filtering).
fn ncf() -> Workload {
    let mut rng = StdRng::seed_from_u64(0xCF);
    let mut net = Sequential::new("ncf");
    net.push(Embedding::new("emb", 48, 16, &mut rng)); // 16 users + 32 items
    net.push(Linear::new("mlp.fc1", 32, 64, &mut rng));
    net.push(Relu::new("mlp.relu1"));
    net.push(Linear::new("mlp.fc2", 64, 32, &mut rng));
    net.push(Sigmoid::new("mlp.sig"));
    net.push(Linear::new("mlp.fc3", 32, 2, &mut rng));
    let data = synth_interactions(80, 16, 32, 88);
    Workload::new("ncf", net, data, 16, Sgd::new(0.05).with_momentum(0.9))
}

/// BERT analogue: token embeddings, self-attention, GELU feed-forward
/// (transformer encoder block + classifier, as in GLUE fine-tuning).
fn bert() -> Workload {
    let mut rng = StdRng::seed_from_u64(0xBE2);
    let mut net = Sequential::new("bert");
    net.push(Embedding::new("emb", 32, 16, &mut rng));
    net.push(SelfAttention::new("attn", 16, 6, &mut rng));
    net.push(Linear::new("ffn.fc1", 96, 128, &mut rng));
    net.push(Gelu::new("ffn.gelu"));
    net.push(Linear::new("ffn.fc2", 128, 4, &mut rng));
    let data = synth_tokens(60, 4, 6, 32, 99);
    Workload::new(
        "bert",
        net,
        data,
        10,
        Sgd::new(0.03).with_momentum(0.9).with_grad_clip(5.0),
    )
}

/// AlexNet analogue for the Fig. 21 accumulator-width study.
fn alexnet() -> Workload {
    let mut rng = StdRng::seed_from_u64(0xA1E);
    let mut net = Sequential::new("alexnet");
    net.push(Conv2d::new("conv1", conv_geom(3, 16, 3, 2, 1), &mut rng));
    net.push(Relu::new("relu1"));
    net.push(Conv2d::new("conv2", conv_geom(16, 32, 3, 1, 1), &mut rng));
    net.push(Relu::new("relu2"));
    net.push(MaxPool2d::new("pool"));
    net.push(Flatten::new("flat"));
    net.push(Linear::new("fc1", 32 * 4 * 4, 64, &mut rng));
    net.push(Relu::new("relu3"));
    net.push(Linear::new("fc2", 64, 8, &mut rng));
    Workload::new(
        "alexnet",
        net,
        image_dataset(101),
        8,
        Sgd::new(0.02).with_momentum(0.9),
    )
}

/// Plain (unquantized) ResNet18 analogue for Fig. 21.
fn resnet18_plain() -> Workload {
    let mut rng = StdRng::seed_from_u64(0x1801);
    let mut net = Sequential::new("resnet18");
    net.push(Conv2d::new("conv1", conv_geom(3, 16, 3, 1, 1), &mut rng));
    net.push(BatchNorm2d::new("bn1", 16));
    net.push(Relu::new("relu1"));
    net.push(residual_block("block1", 16, &mut rng, None));
    net.push(Relu::new("relu2"));
    net.push(MaxPool2d::new("pool"));
    net.push(Flatten::new("flat"));
    net.push(Linear::new("fc", 16 * 8 * 8, 8, &mut rng));
    Workload::new(
        "resnet18",
        net,
        image_dataset(111),
        8,
        Sgd::new(0.02).with_momentum(0.9),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use crate::layer::Layer;

    #[test]
    fn every_model_builds_and_runs_one_forward() {
        for name in PAPER_MODELS.iter().chain(["alexnet", "resnet18"].iter()) {
            let mut w = build(name);
            let mut e = Engine::f32();
            let (x, labels) = w.data.batch(0, w.batch_size);
            let y = w.net.forward(&mut e, &x, true);
            assert_eq!(y.dims()[0], w.batch_size, "{name}");
            assert_eq!(y.dims()[1], w.data.num_classes, "{name}");
            assert!(labels.iter().all(|&l| l < w.data.num_classes));
            assert!(
                y.data().iter().all(|v| v.is_finite()),
                "{name} produced non-finite logits"
            );
        }
    }

    #[test]
    #[should_panic(expected = "unknown model")]
    fn unknown_model_panics() {
        let _ = build("alexnet-9000");
    }

    #[test]
    fn display_names_match_table_i() {
        assert_eq!(display_name("squeezenet1.1"), "SqueezeNet 1.1");
        assert_eq!(display_name("bert"), "Bert");
        for m in PAPER_MODELS {
            assert_ne!(display_name(m), "unknown");
        }
    }

    #[test]
    fn quantized_model_uses_pact_layers() {
        let mut w = build("resnet18-q");
        let mut e = Engine::f32();
        let (x, _) = w.data.batch(0, w.batch_size);
        let _ = w.net.forward(&mut e, &x, true);
        // The PACT alpha parameters exist.
        let names: Vec<String> = w.net.params_mut().iter().map(|p| p.name.clone()).collect();
        assert!(names.iter().any(|n| n.contains("alpha")), "{names:?}");
    }

    #[test]
    fn pruned_model_has_weight_sparsity_after_steps() {
        let mut w = build("resnet50-s2");
        let mut e = Engine::f32();
        for step in 0..2 {
            let (loss, _) = w.train_step(&mut e, step);
            assert!(loss.is_finite());
        }
        // Conv weights should be ~80% zero.
        let mut found = false;
        for p in w.net.params_mut() {
            if p.name == "block1.conv1.weight" {
                let zf = p.value.zero_fraction();
                assert!(zf > 0.7, "sparsity {zf}");
                found = true;
            }
        }
        assert!(found);
    }
}
