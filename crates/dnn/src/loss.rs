//! Loss functions: softmax cross-entropy and mean squared error.

use fpraker_tensor::Tensor;

/// Numerically-stable row-wise softmax.
pub fn softmax_rows(logits: &Tensor) -> Tensor {
    assert_eq!(logits.dims().len(), 2, "softmax input must be rank 2");
    let n = logits.dims()[1];
    let mut out = logits.clone();
    for row in out.data_mut().chunks_mut(n) {
        let max = row.iter().fold(f32::NEG_INFINITY, |m, &v| m.max(v));
        let mut sum = 0.0f32;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        for v in row.iter_mut() {
            *v /= sum;
        }
    }
    out
}

/// Softmax cross-entropy over `(batch, classes)` logits against integer
/// labels. Returns `(mean loss, gradient w.r.t. logits)` — the gradient is
/// the familiar `(softmax - onehot) / batch`.
///
/// # Panics
///
/// Panics if a label is out of range.
pub fn cross_entropy(logits: &Tensor, labels: &[usize]) -> (f32, Tensor) {
    let (batch, classes) = (logits.dims()[0], logits.dims()[1]);
    assert_eq!(labels.len(), batch, "one label per row");
    let probs = softmax_rows(logits);
    let mut loss = 0.0f32;
    let mut grad = probs.clone();
    for (i, &label) in labels.iter().enumerate() {
        assert!(label < classes, "label {label} out of range");
        let p = probs.data()[i * classes + label].max(1e-12);
        loss -= p.ln();
        grad.data_mut()[i * classes + label] -= 1.0;
    }
    grad.scale(1.0 / batch as f32);
    (loss / batch as f32, grad)
}

/// Mean squared error between predictions and targets. Returns
/// `(mean loss, gradient w.r.t. predictions)`.
///
/// # Panics
///
/// Panics if shapes differ.
pub fn mse(pred: &Tensor, target: &Tensor) -> (f32, Tensor) {
    assert_eq!(pred.dims(), target.dims(), "shape mismatch");
    let n = pred.len().max(1) as f32;
    let diff = pred.zip_map(target, |p, t| p - t);
    let loss = diff.data().iter().map(|d| d * d).sum::<f32>() / n;
    let mut grad = diff;
    grad.scale(2.0 / n);
    (loss, grad)
}

/// Classification accuracy of `(batch, classes)` logits against labels.
pub fn accuracy(logits: &Tensor, labels: &[usize]) -> f64 {
    let preds = fpraker_tensor::argmax_rows(logits);
    let correct = preds.iter().zip(labels).filter(|(p, l)| p == l).count();
    correct as f64 / labels.len().max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_rows_sum_to_one() {
        let logits = Tensor::from_vec(vec![2, 3], vec![1.0, 2.0, 3.0, -1.0, 0.0, 100.0]);
        let p = softmax_rows(&logits);
        for row in p.data().chunks(3) {
            let s: f32 = row.iter().sum();
            assert!((s - 1.0).abs() < 1e-6);
            assert!(row.iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
        // The huge logit dominates without overflow.
        assert!(p.data()[5] > 0.999);
    }

    #[test]
    fn cross_entropy_of_perfect_prediction_is_small() {
        let logits = Tensor::from_vec(vec![1, 3], vec![20.0, 0.0, 0.0]);
        let (loss, grad) = cross_entropy(&logits, &[0]);
        assert!(loss < 1e-3);
        assert!(grad.data()[0].abs() < 1e-3);
    }

    #[test]
    fn cross_entropy_gradient_matches_finite_difference() {
        let logits = Tensor::from_vec(vec![2, 3], vec![0.5, -0.2, 0.1, 1.0, 0.0, -1.0]);
        let labels = [2usize, 0];
        let (_, grad) = cross_entropy(&logits, &labels);
        let eps = 1e-3f32;
        for i in 0..6 {
            let mut lp = logits.clone();
            lp.data_mut()[i] += eps;
            let mut lm = logits.clone();
            lm.data_mut()[i] -= eps;
            let num = (cross_entropy(&lp, &labels).0 - cross_entropy(&lm, &labels).0) / (2.0 * eps);
            assert!(
                (num - grad.data()[i]).abs() < 1e-3,
                "elem {i}: {num} vs {}",
                grad.data()[i]
            );
        }
    }

    #[test]
    fn mse_basics() {
        let pred = Tensor::from_vec(vec![2], vec![1.0, 3.0]);
        let target = Tensor::from_vec(vec![2], vec![0.0, 5.0]);
        let (loss, grad) = mse(&pred, &target);
        assert!((loss - (1.0 + 4.0) / 2.0).abs() < 1e-6);
        assert_eq!(grad.data(), &[1.0, -2.0]);
    }

    #[test]
    fn accuracy_counts_matches() {
        let logits = Tensor::from_vec(vec![2, 2], vec![0.9, 0.1, 0.2, 0.8]);
        assert_eq!(accuracy(&logits, &[0, 1]), 1.0);
        assert_eq!(accuracy(&logits, &[1, 1]), 0.5);
    }

    #[test]
    #[should_panic(expected = "label 5 out of range")]
    fn cross_entropy_checks_labels() {
        let logits = Tensor::zeros(vec![1, 3]);
        let _ = cross_entropy(&logits, &[5]);
    }
}
