//! Fully-connected and embedding layers.

use fpraker_tensor::{add_bias_rows, init, sum_rows, transpose2d, Tensor};
use fpraker_trace::{Phase, TensorKind};
use rand::Rng;

use crate::engine::Engine;
use crate::layer::{Layer, Param};
use crate::quant::quantize_symmetric;

/// A fully-connected layer: `y = x · Wᵀ + b` with `W: (out, in)`.
///
/// Optional weight quantization (`weight_bits`) emulates quantization-aware
/// training: the forward pass uses weights rounded to a `2^bits`-level
/// symmetric grid while gradients update the full-precision master copy
/// (straight-through estimator) — the mechanism behind the paper's
/// ResNet18-Q workload (PACT).
pub struct Linear {
    name: String,
    weight: Param,
    bias: Param,
    /// Forward-pass weight quantization bits (None = full precision).
    pub weight_bits: Option<u32>,
    cached_input: Option<Tensor>,
}

impl Linear {
    /// Creates a linear layer with Kaiming-uniform weights.
    pub fn new<R: Rng>(
        name: impl Into<String>,
        in_dim: usize,
        out_dim: usize,
        rng: &mut R,
    ) -> Self {
        let name = name.into();
        Linear {
            weight: Param::new(
                format!("{name}.weight"),
                init::kaiming_uniform(rng, vec![out_dim, in_dim], in_dim),
            ),
            bias: Param::new(format!("{name}.bias"), Tensor::zeros(vec![out_dim])),
            weight_bits: None,
            cached_input: None,
            name,
        }
    }

    /// Enables forward-pass weight quantization to `bits` bits.
    pub fn with_weight_bits(mut self, bits: u32) -> Self {
        self.weight_bits = Some(bits);
        self
    }

    /// The effective forward weights (quantized if configured).
    fn forward_weights(&self) -> Tensor {
        match self.weight_bits {
            Some(bits) => quantize_symmetric(&self.weight.value, bits),
            None => self.weight.value.clone(),
        }
    }
}

impl Layer for Linear {
    fn name(&self) -> &str {
        &self.name
    }

    fn forward(&mut self, engine: &mut Engine, input: &Tensor, _training: bool) -> Tensor {
        assert_eq!(input.dims().len(), 2, "linear input must be (batch, in)");
        self.cached_input = Some(input.clone());
        let w = self.forward_weights();
        let mut out = engine.gemm_nt(
            &self.name,
            Phase::AxW,
            input,
            &w,
            TensorKind::Activation,
            TensorKind::Weight,
        );
        add_bias_rows(&mut out, &self.bias.value);
        out
    }

    fn backward(&mut self, engine: &mut Engine, grad: &Tensor) -> Tensor {
        let input = self
            .cached_input
            .take()
            .expect("backward called before forward");
        // Bias gradient.
        self.bias.grad.add_scaled(&sum_rows(grad), 1.0);
        // Weight gradient: dW (out, in) = gradᵀ · input.
        let grad_t = transpose2d(grad);
        let input_t = transpose2d(&input);
        let dw = engine.gemm_nt(
            &self.name,
            Phase::AxG,
            &grad_t,
            &input_t,
            TensorKind::Gradient,
            TensorKind::Activation,
        );
        self.weight.grad.add_scaled(&dw, 1.0);
        // Input gradient: dX (batch, in) = grad · W.
        let w_t = transpose2d(&self.forward_weights());
        engine.gemm_nt(
            &self.name,
            Phase::GxW,
            grad,
            &w_t,
            TensorKind::Gradient,
            TensorKind::Weight,
        )
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.weight, &mut self.bias]
    }
}

/// An embedding table: the input holds indices (as `f32`), the output
/// concatenates the looked-up rows. Lookups move no MACs through the
/// engine (they are gathers); the GEMM work of embedding models lives in
/// the MLP on top (as in the paper's NCF workload).
pub struct Embedding {
    name: String,
    weight: Param,
    dim: usize,
    cached_indices: Vec<usize>,
    cached_shape: (usize, usize),
}

impl Embedding {
    /// Creates an embedding table of `vocab` rows of width `dim`.
    pub fn new<R: Rng>(name: impl Into<String>, vocab: usize, dim: usize, rng: &mut R) -> Self {
        let name = name.into();
        Embedding {
            weight: Param::new(
                format!("{name}.weight"),
                init::normal(rng, vec![vocab, dim], 0.1),
            ),
            dim,
            cached_indices: Vec::new(),
            cached_shape: (0, 0),
            name,
        }
    }

    /// The vocabulary size.
    pub fn vocab(&self) -> usize {
        self.weight.value.dims()[0]
    }
}

impl Layer for Embedding {
    fn name(&self) -> &str {
        &self.name
    }

    fn forward(&mut self, _engine: &mut Engine, input: &Tensor, _training: bool) -> Tensor {
        assert_eq!(
            input.dims().len(),
            2,
            "embedding input must be (batch, slots)"
        );
        let (batch, slots) = (input.dims()[0], input.dims()[1]);
        let vocab = self.vocab();
        self.cached_indices = input
            .data()
            .iter()
            .map(|&v| {
                let idx = v as usize;
                assert!(idx < vocab, "index {idx} out of vocabulary {vocab}");
                idx
            })
            .collect();
        self.cached_shape = (batch, slots);
        let mut out = vec![0.0f32; batch * slots * self.dim];
        for (pos, &idx) in self.cached_indices.iter().enumerate() {
            let row = &self.weight.value.data()[idx * self.dim..(idx + 1) * self.dim];
            out[pos * self.dim..(pos + 1) * self.dim].copy_from_slice(row);
        }
        Tensor::from_vec(vec![batch, slots * self.dim], out)
    }

    fn backward(&mut self, _engine: &mut Engine, grad: &Tensor) -> Tensor {
        let (batch, slots) = self.cached_shape;
        assert_eq!(grad.dims(), &[batch, slots * self.dim], "grad shape");
        for (pos, &idx) in self.cached_indices.iter().enumerate() {
            let g = &grad.data()[pos * self.dim..(pos + 1) * self.dim];
            let row = &mut self.weight.grad.data_mut()[idx * self.dim..(idx + 1) * self.dim];
            for (r, &v) in row.iter_mut().zip(g) {
                *r += v;
            }
        }
        // Indices carry no gradient.
        Tensor::zeros(vec![batch, slots])
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.weight]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn finite_diff_check(in_dim: usize, out_dim: usize) {
        // Numerical gradient check of Linear wrt input.
        let mut rng = StdRng::seed_from_u64(3);
        let mut layer = Linear::new("fc", in_dim, out_dim, &mut rng);
        let mut e = Engine::f32();
        let x = init::normal(&mut rng, vec![2, in_dim], 1.0);
        let y = layer.forward(&mut e, &x, true);
        // Loss = sum(y); dL/dy = ones.
        let gy = Tensor::full(y.dims().to_vec(), 1.0);
        let gx = layer.backward(&mut e, &gy);
        let eps = 1e-2f32;
        for i in 0..x.len().min(6) {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let yp = layer.forward(&mut e, &xp, true).sum();
            let ym = layer.forward(&mut e, &xm, true).sum();
            let num = (yp - ym) / (2.0 * eps);
            let ana = gx.data()[i];
            assert!(
                (num - ana).abs() < 1e-2 * (1.0 + num.abs()),
                "element {i}: numeric {num} vs analytic {ana}"
            );
        }
    }

    #[test]
    fn linear_input_gradient_matches_finite_difference() {
        finite_diff_check(5, 3);
    }

    #[test]
    fn linear_weight_gradient_matches_finite_difference() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut layer = Linear::new("fc", 3, 2, &mut rng);
        let mut e = Engine::f32();
        let x = init::normal(&mut rng, vec![4, 3], 1.0);
        let _ = layer.forward(&mut e, &x, true);
        let gy = Tensor::full(vec![4, 2], 1.0);
        let _ = layer.backward(&mut e, &gy);
        let analytic = layer.weight.grad.clone();
        let eps = 1e-2f32;
        for i in 0..analytic.len() {
            let orig = layer.weight.value.data()[i];
            layer.weight.value.data_mut()[i] = orig + eps;
            let yp = layer.forward(&mut e, &x, true).sum();
            layer.weight.value.data_mut()[i] = orig - eps;
            let ym = layer.forward(&mut e, &x, true).sum();
            layer.weight.value.data_mut()[i] = orig;
            let num = (yp - ym) / (2.0 * eps);
            assert!(
                (num - analytic.data()[i]).abs() < 1e-2 * (1.0 + num.abs()),
                "weight {i}: numeric {num} vs analytic {}",
                analytic.data()[i]
            );
        }
    }

    #[test]
    fn quantized_linear_uses_power_of_two_grid() {
        let mut rng = StdRng::seed_from_u64(5);
        let layer = Linear::new("fc", 8, 4, &mut rng).with_weight_bits(4);
        let w = layer.forward_weights();
        // The grid step is a power of two and k fits in 4 signed bits.
        let maxabs = w.data().iter().fold(0.0f32, |m, v| m.max(v.abs()));
        let step = 2f32.powi((maxabs / 7.0).log2().ceil() as i32);
        for &v in w.data() {
            let q = (v / step).round() * step;
            assert!((v - q).abs() < 1e-5, "{v} not on grid (step {step})");
            assert!((v / step).abs() <= 7.5);
        }
    }

    #[test]
    fn embedding_gathers_and_scatters() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut emb = Embedding::new("emb", 10, 3, &mut rng);
        let mut e = Engine::f32();
        let input = Tensor::from_vec(vec![2, 2], vec![1.0, 3.0, 3.0, 0.0]);
        let out = emb.forward(&mut e, &input, true);
        assert_eq!(out.dims(), &[2, 6]);
        let row3 = emb.weight.value.data()[9..12].to_vec();
        assert_eq!(&out.data()[3..6], &row3[..]);
        // Backward scatters: index 3 appears twice.
        let g = Tensor::full(vec![2, 6], 1.0);
        let _ = emb.backward(&mut e, &g);
        assert_eq!(emb.weight.grad.data()[9], 2.0);
        assert_eq!(emb.weight.grad.data()[0], 1.0);
        assert_eq!(emb.weight.grad.data()[6], 0.0); // index 2 unused
    }

    #[test]
    #[should_panic(expected = "out of vocabulary")]
    fn embedding_checks_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut emb = Embedding::new("emb", 4, 2, &mut rng);
        let mut e = Engine::f32();
        let _ = emb.forward(&mut e, &Tensor::from_vec(vec![1, 1], vec![9.0]), true);
    }
}
