//! A single-layer LSTM with full backpropagation through time — the
//! compute pattern of the paper's SNLI and Image2Text workloads
//! (LSTM-encoder models, Table I).

use fpraker_tensor::{init, sum_rows, transpose2d, Tensor};
use fpraker_trace::{Phase, TensorKind};
use rand::Rng;

use crate::engine::Engine;
use crate::layer::{Layer, Param};

fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

/// Per-timestep cache for BPTT.
struct StepCache {
    x: Tensor,      // (batch, in)
    h_prev: Tensor, // (batch, H)
    c_prev: Tensor, // (batch, H)
    i: Tensor,
    f: Tensor,
    g: Tensor,
    o: Tensor,
    c: Tensor,
}

/// A single-layer LSTM over fixed-length sequences.
///
/// Input is `(batch, seq_len * input_size)`; the output is the final
/// hidden state `(batch, hidden)`. Gate order is `[input, forget, cell,
/// output]`.
pub struct Lstm {
    name: String,
    input_size: usize,
    hidden: usize,
    seq_len: usize,
    w_ih: Param, // (4H, in)
    w_hh: Param, // (4H, H)
    bias: Param, // (4H)
    cache: Vec<StepCache>,
}

impl Lstm {
    /// Creates an LSTM processing `seq_len` steps of `input_size` features
    /// into a `hidden`-sized state.
    pub fn new<R: Rng>(
        name: impl Into<String>,
        input_size: usize,
        hidden: usize,
        seq_len: usize,
        rng: &mut R,
    ) -> Self {
        let name = name.into();
        Lstm {
            w_ih: Param::new(
                format!("{name}.w_ih"),
                init::kaiming_uniform(rng, vec![4 * hidden, input_size], input_size),
            ),
            w_hh: Param::new(
                format!("{name}.w_hh"),
                init::kaiming_uniform(rng, vec![4 * hidden, hidden], hidden),
            ),
            bias: Param::new(format!("{name}.bias"), {
                // Forget-gate bias of 1.0 is the standard stabilizer.
                let mut b = Tensor::zeros(vec![4 * hidden]);
                for i in hidden..2 * hidden {
                    b.data_mut()[i] = 1.0;
                }
                b
            }),
            input_size,
            hidden,
            seq_len,
            cache: Vec::new(),
            name,
        }
    }

    fn slice_cols(z: &Tensor, from: usize, to: usize) -> Tensor {
        let (rows, cols) = (z.dims()[0], z.dims()[1]);
        let mut out = vec![0.0f32; rows * (to - from)];
        for r in 0..rows {
            out[r * (to - from)..(r + 1) * (to - from)]
                .copy_from_slice(&z.data()[r * cols + from..r * cols + to]);
        }
        Tensor::from_vec(vec![rows, to - from], out)
    }
}

impl Layer for Lstm {
    fn name(&self) -> &str {
        &self.name
    }

    fn forward(&mut self, engine: &mut Engine, input: &Tensor, _training: bool) -> Tensor {
        let batch = input.dims()[0];
        assert_eq!(
            input.dims()[1],
            self.seq_len * self.input_size,
            "LSTM input must be (batch, seq_len*input_size)"
        );
        let h_dim = self.hidden;
        self.cache.clear();
        let mut h = Tensor::zeros(vec![batch, h_dim]);
        let mut c = Tensor::zeros(vec![batch, h_dim]);
        for t in 0..self.seq_len {
            // Extract step input x_t.
            let mut x = vec![0.0f32; batch * self.input_size];
            for b in 0..batch {
                let src = b * self.seq_len * self.input_size + t * self.input_size;
                x[b * self.input_size..(b + 1) * self.input_size]
                    .copy_from_slice(&input.data()[src..src + self.input_size]);
            }
            let x = Tensor::from_vec(vec![batch, self.input_size], x);

            let mut z = engine.gemm_nt(
                &self.name,
                Phase::AxW,
                &x,
                &self.w_ih.value,
                TensorKind::Activation,
                TensorKind::Weight,
            );
            let zh = engine.gemm_nt(
                &self.name,
                Phase::AxW,
                &h,
                &self.w_hh.value,
                TensorKind::Activation,
                TensorKind::Weight,
            );
            z.add_scaled(&zh, 1.0);
            fpraker_tensor::add_bias_rows(&mut z, &self.bias.value);

            let i = Self::slice_cols(&z, 0, h_dim).map(sigmoid);
            let f = Self::slice_cols(&z, h_dim, 2 * h_dim).map(sigmoid);
            let g = Self::slice_cols(&z, 2 * h_dim, 3 * h_dim).map(|v| v.tanh());
            let o = Self::slice_cols(&z, 3 * h_dim, 4 * h_dim).map(sigmoid);

            let c_new = f
                .zip_map(&c, |fv, cv| fv * cv)
                .zip_map(&i.zip_map(&g, |iv, gv| iv * gv), |a, b| a + b);
            let h_new = o.zip_map(&c_new, |ov, cv| ov * cv.tanh());

            self.cache.push(StepCache {
                x,
                h_prev: h,
                c_prev: c,
                i,
                f,
                g,
                o,
                c: c_new.clone(),
            });
            h = h_new;
            c = c_new;
        }
        h
    }

    fn backward(&mut self, engine: &mut Engine, grad: &Tensor) -> Tensor {
        let batch = grad.dims()[0];
        let h_dim = self.hidden;
        let mut dh = grad.clone();
        let mut dc = Tensor::zeros(vec![batch, h_dim]);
        let mut dinput = Tensor::zeros(vec![batch, self.seq_len * self.input_size]);

        for (t, step) in self.cache.iter().enumerate().rev() {
            let tanh_c = step.c.map(|v| v.tanh());
            let do_ = dh.zip_map(&tanh_c, |d, tc| d * tc);
            let dtc = dh.zip_map(&step.o, |d, ov| d * ov);
            dc = dc.zip_map(
                &dtc.zip_map(&tanh_c, |d, tc| d * (1.0 - tc * tc)),
                |a, b| a + b,
            );

            let di = dc.zip_map(&step.g, |d, g| d * g);
            let dg = dc.zip_map(&step.i, |d, i| d * i);
            let df = dc.zip_map(&step.c_prev, |d, c| d * c);
            let dc_prev = dc.zip_map(&step.f, |d, f| d * f);

            // Through the gate nonlinearities.
            let dzi = di.zip_map(&step.i, |d, s| d * s * (1.0 - s));
            let dzf = df.zip_map(&step.f, |d, s| d * s * (1.0 - s));
            let dzg = dg.zip_map(&step.g, |d, g| d * (1.0 - g * g));
            let dzo = do_.zip_map(&step.o, |d, s| d * s * (1.0 - s));

            // Concatenate into (batch, 4H).
            let mut dz = vec![0.0f32; batch * 4 * h_dim];
            for b in 0..batch {
                for (gate, src) in [&dzi, &dzf, &dzg, &dzo].iter().enumerate() {
                    dz[b * 4 * h_dim + gate * h_dim..b * 4 * h_dim + (gate + 1) * h_dim]
                        .copy_from_slice(&src.data()[b * h_dim..(b + 1) * h_dim]);
                }
            }
            let dz = Tensor::from_vec(vec![batch, 4 * h_dim], dz);

            // Parameter gradients.
            let dz_t = transpose2d(&dz);
            let x_t = transpose2d(&step.x);
            let h_t = transpose2d(&step.h_prev);
            let dwih = engine.gemm_nt(
                &self.name,
                Phase::AxG,
                &dz_t,
                &x_t,
                TensorKind::Gradient,
                TensorKind::Activation,
            );
            self.w_ih.grad.add_scaled(&dwih, 1.0);
            let dwhh = engine.gemm_nt(
                &self.name,
                Phase::AxG,
                &dz_t,
                &h_t,
                TensorKind::Gradient,
                TensorKind::Activation,
            );
            self.w_hh.grad.add_scaled(&dwhh, 1.0);
            self.bias.grad.add_scaled(&sum_rows(&dz), 1.0);

            // Input and recurrent gradients.
            let wih_t = transpose2d(&self.w_ih.value);
            let dx = engine.gemm_nt(
                &self.name,
                Phase::GxW,
                &dz,
                &wih_t,
                TensorKind::Gradient,
                TensorKind::Weight,
            );
            for b in 0..batch {
                let dst = b * self.seq_len * self.input_size + t * self.input_size;
                for k in 0..self.input_size {
                    dinput.data_mut()[dst + k] += dx.data()[b * self.input_size + k];
                }
            }
            let whh_t = transpose2d(&self.w_hh.value);
            dh = engine.gemm_nt(
                &self.name,
                Phase::GxW,
                &dz,
                &whh_t,
                TensorKind::Gradient,
                TensorKind::Weight,
            );
            dc = dc_prev;
        }
        self.cache.clear();
        dinput
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.w_ih, &mut self.w_hh, &mut self.bias]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn output_shape_is_final_hidden_state() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut lstm = Lstm::new("lstm", 3, 5, 4, &mut rng);
        let mut e = Engine::f32();
        let x = init::normal(&mut rng, vec![2, 12], 1.0);
        let y = lstm.forward(&mut e, &x, true);
        assert_eq!(y.dims(), &[2, 5]);
        // Hidden states are bounded by tanh/sigmoid products.
        assert!(y.data().iter().all(|v| v.abs() <= 1.0));
    }

    #[test]
    fn input_gradient_matches_finite_difference() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut lstm = Lstm::new("lstm", 2, 3, 3, &mut rng);
        let mut e = Engine::f32();
        let x = init::normal(&mut rng, vec![1, 6], 1.0);
        let _ = lstm.forward(&mut e, &x, true);
        let gy = Tensor::full(vec![1, 3], 1.0);
        let gx = lstm.backward(&mut e, &gy);
        let eps = 1e-2f32;
        for i in 0..6 {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let yp = lstm.forward(&mut e, &xp, true).sum();
            let ym = lstm.forward(&mut e, &xm, true).sum();
            let num = (yp - ym) / (2.0 * eps);
            assert!(
                (num - gx.data()[i]).abs() < 3e-2 * (1.0 + num.abs()),
                "elem {i}: numeric {num} vs analytic {}",
                gx.data()[i]
            );
        }
    }

    #[test]
    fn weight_gradient_matches_finite_difference() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut lstm = Lstm::new("lstm", 2, 2, 2, &mut rng);
        let mut e = Engine::f32();
        let x = init::normal(&mut rng, vec![2, 4], 1.0);
        let _ = lstm.forward(&mut e, &x, true);
        let gy = Tensor::full(vec![2, 2], 1.0);
        let _ = lstm.backward(&mut e, &gy);
        let analytic = lstm.w_hh.grad.clone();
        let eps = 1e-2f32;
        for i in [0usize, 3, 7, 11] {
            let orig = lstm.w_hh.value.data()[i];
            lstm.w_hh.value.data_mut()[i] = orig + eps;
            let yp = lstm.forward(&mut e, &x, true).sum();
            lstm.w_hh.value.data_mut()[i] = orig - eps;
            let ym = lstm.forward(&mut e, &x, true).sum();
            lstm.w_hh.value.data_mut()[i] = orig;
            let num = (yp - ym) / (2.0 * eps);
            assert!(
                (num - analytic.data()[i]).abs() < 3e-2 * (1.0 + num.abs()),
                "w_hh {i}: numeric {num} vs analytic {}",
                analytic.data()[i]
            );
        }
    }

    #[test]
    fn forget_bias_initialized_to_one() {
        let mut rng = StdRng::seed_from_u64(3);
        let lstm = Lstm::new("lstm", 2, 4, 2, &mut rng);
        let b = lstm.bias.value.data();
        assert!(b[0..4].iter().all(|&v| v == 0.0));
        assert!(b[4..8].iter().all(|&v| v == 1.0));
        assert!(b[8..16].iter().all(|&v| v == 0.0));
    }
}
