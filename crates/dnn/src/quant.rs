//! Quantization and pruning utilities.
//!
//! These implement the two training-time compression methods whose
//! workloads the paper studies:
//!
//! * **PACT-style quantization** (ResNet18-Q): activations are handled by
//!   [`crate::PactRelu`]; weights use [`quantize_symmetric`] in the forward
//!   pass with straight-through gradients.
//! * **Dynamic sparse reparameterization** (ResNet50-S2) [22]/[62]:
//!   [`Pruner`] maintains a fixed weight sparsity throughout training by
//!   magnitude-pruning and regrowing weights at random positions.

use fpraker_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::layer::Param;

/// Rounds a tensor onto a symmetric uniform grid of `bits`-bit integers
/// scaled by a **power of two**. Used for quantization-aware training of
/// weights.
///
/// The power-of-two step is what makes quantization visible to FPRaker:
/// a quantized value is `k * 2^e` with `|k| < 2^(bits-1)`, so its bfloat16
/// significand has at most `bits - 1` fraction bits and encodes to very few
/// terms ("most of the activations and weights throughout the training
/// process can fit in 4b or less. This translates into high term sparsity",
/// Section V-C). An arbitrary-scale grid would fill the mantissa back up.
///
/// # Panics
///
/// Panics if `bits` is 0 or greater than 8.
pub fn quantize_symmetric(t: &Tensor, bits: u32) -> Tensor {
    assert!((1..=8).contains(&bits), "bits must be in 1..=8");
    let maxabs = t.data().iter().fold(0.0f32, |m, v| m.max(v.abs()));
    if maxabs == 0.0 {
        return t.clone();
    }
    let kmax = (1i32 << (bits - 1)) - 1;
    // Smallest power-of-two step whose grid covers maxabs.
    let step = 2f32.powi((maxabs / kmax as f32).log2().ceil() as i32);
    t.map(|v| ((v / step).round().clamp(-(kmax as f32), kmax as f32)) * step)
}

/// Dynamic sparse reparameterization: keeps each registered parameter at a
/// target sparsity by masking, periodically pruning the smallest-magnitude
/// survivors and regrowing the same number of weights at random zero
/// positions.
///
/// # Example
///
/// ```
/// use fpraker_dnn::{Pruner, Param};
/// use fpraker_tensor::Tensor;
///
/// let mut p = Param::new("w", Tensor::full(vec![100], 1.0));
/// let mut pruner = Pruner::new(0.8, 5, 7);
/// pruner.register(&p);
/// pruner.apply(std::slice::from_mut(&mut p));
/// assert!((p.value.zero_fraction() - 0.8).abs() < 0.01);
/// ```
#[derive(Debug)]
pub struct Pruner {
    sparsity: f64,
    reparam_interval: u32,
    steps: u32,
    rng: StdRng,
    masks: Vec<(String, Vec<bool>)>,
}

impl Pruner {
    /// Creates a pruner targeting the given weight `sparsity` (fraction of
    /// zeroed weights), re-allocating masks every `reparam_interval` steps.
    ///
    /// # Panics
    ///
    /// Panics if `sparsity` is not in `[0, 1)`.
    pub fn new(sparsity: f64, reparam_interval: u32, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&sparsity), "sparsity must be in [0,1)");
        Pruner {
            sparsity,
            reparam_interval: reparam_interval.max(1),
            steps: 0,
            rng: StdRng::seed_from_u64(seed),
            masks: Vec::new(),
        }
    }

    /// Registers a parameter for pruning, initializing its mask by
    /// magnitude.
    pub fn register(&mut self, param: &Param) {
        let mask = self.magnitude_mask(&param.value);
        self.masks.push((param.name.clone(), mask));
    }

    fn magnitude_mask(&self, value: &Tensor) -> Vec<bool> {
        let n = value.len();
        let keep = ((1.0 - self.sparsity) * n as f64).round() as usize;
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| {
            value.data()[b]
                .abs()
                .partial_cmp(&value.data()[a].abs())
                .unwrap()
        });
        let mut mask = vec![false; n];
        for &i in order.iter().take(keep) {
            mask[i] = true;
        }
        mask
    }

    /// Applies masks to the given parameters (zeroing pruned weights and
    /// their gradients) and advances the step counter; at every reparam
    /// interval, prunes the smallest surviving weights and regrows the same
    /// count at random pruned positions (dynamic reparameterization).
    ///
    /// Call once per optimizer step, after the update.
    pub fn apply<'a>(&mut self, params: impl IntoIterator<Item = &'a mut Param>) {
        self.steps += 1;
        let reparam = self.steps.is_multiple_of(self.reparam_interval);
        let mut params: Vec<&mut Param> = params.into_iter().collect();
        for (name, mask) in &mut self.masks {
            let Some(param) = params.iter_mut().find(|p| &p.name == name) else {
                continue;
            };
            if reparam {
                // Prune the smallest 10% of survivors, regrow at random.
                let survivors: Vec<usize> = (0..mask.len()).filter(|&i| mask[i]).collect();
                let n_swap = (survivors.len() / 10).max(1).min(survivors.len());
                let mut by_mag = survivors.clone();
                by_mag.sort_by(|&a, &b| {
                    param.value.data()[a]
                        .abs()
                        .partial_cmp(&param.value.data()[b].abs())
                        .unwrap()
                });
                let mut freed = 0usize;
                for &i in by_mag.iter().take(n_swap) {
                    mask[i] = false;
                    freed += 1;
                }
                let zeros: Vec<usize> = (0..mask.len()).filter(|&i| !mask[i]).collect();
                for _ in 0..freed {
                    // Regrow at a random pruned position (re-initialized
                    // small so training can recover it).
                    let pick = zeros[self.rng.gen_range(0..zeros.len())];
                    if !mask[pick] {
                        mask[pick] = true;
                        param.value.data_mut()[pick] = self.rng.gen_range(-0.01..0.01);
                    }
                }
            }
            for (i, &m) in mask.iter().enumerate() {
                if !m {
                    param.value.data_mut()[i] = 0.0;
                    param.grad.data_mut()[i] = 0.0;
                }
            }
        }
    }

    /// The target sparsity.
    pub fn sparsity(&self) -> f64 {
        self.sparsity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantize_symmetric_lands_on_power_of_two_grid() {
        let t = Tensor::from_vec(vec![5], vec![-1.0, -0.3, 0.0, 0.31, 0.97]);
        let q = quantize_symmetric(&t, 4);
        // step = 2^ceil(log2(1/7)) = 2^-2.
        let step = 0.25;
        for &v in q.data() {
            let r = (v / step).round() * step;
            assert!((v - r).abs() < 1e-6, "{v} off grid");
            // k fits in 4 signed bits.
            assert!((v / step).abs() <= 7.5);
        }
        assert_eq!(q.data()[0], -1.0);
    }

    #[test]
    fn quantized_values_have_short_significands() {
        use fpraker_num::encode::{term_count, Encoding};
        use fpraker_num::Bf16;
        let t = Tensor::from_vec(
            vec![64],
            (0..64).map(|i| (i as f32 - 32.0) * 0.031).collect(),
        );
        let q = quantize_symmetric(&t, 4);
        for &v in q.data() {
            let b = Bf16::from_f32(v);
            if !b.is_zero() {
                let terms = term_count(b.significand(), Encoding::Canonical);
                assert!(terms <= 3, "{v} has {terms} terms");
            }
        }
    }

    #[test]
    fn quantize_zero_tensor_is_identity() {
        let t = Tensor::zeros(vec![4]);
        assert_eq!(quantize_symmetric(&t, 4), t);
    }

    #[test]
    #[should_panic(expected = "bits must be in 1..=8")]
    fn quantize_rejects_zero_bits() {
        let _ = quantize_symmetric(&Tensor::zeros(vec![1]), 0);
    }

    #[test]
    fn pruner_maintains_target_sparsity() {
        let mut rng = StdRng::seed_from_u64(1);
        let data: Vec<f32> = (0..200).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let mut p = Param::new("w", Tensor::from_vec(vec![200], data));
        let mut pruner = Pruner::new(0.7, 3, 9);
        pruner.register(&p);
        for _ in 0..10 {
            // Simulate updates drifting the weights.
            for v in p.value.data_mut() {
                *v += 0.01;
            }
            pruner.apply(std::slice::from_mut(&mut p));
            let zf = p.value.zero_fraction();
            assert!((zf - 0.7).abs() < 0.02, "sparsity drifted to {zf}");
        }
    }

    #[test]
    fn pruner_keeps_largest_magnitudes_initially() {
        let values = vec![0.1, -5.0, 0.2, 4.0, -0.05, 3.0, 0.01, -2.0, 0.3, 1.0];
        let p = Param::new("w", Tensor::from_vec(vec![10], values));
        let mut pruner = Pruner::new(0.5, 100, 1);
        pruner.register(&p);
        let mut p = p;
        pruner.apply(std::slice::from_mut(&mut p));
        // The five largest magnitudes survive.
        for (i, expect) in [(1, -5.0f32), (3, 4.0), (5, 3.0), (7, -2.0), (9, 1.0)] {
            assert_eq!(p.value.data()[i], expect);
        }
        assert_eq!(p.value.zero_fraction(), 0.5);
    }

    #[test]
    fn reparam_changes_the_mask() {
        let mut rng = StdRng::seed_from_u64(2);
        let data: Vec<f32> = (0..100).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let mut p = Param::new("w", Tensor::from_vec(vec![100], data));
        let mut pruner = Pruner::new(0.5, 1, 3);
        pruner.register(&p);
        pruner.apply(std::slice::from_mut(&mut p));
        let before: Vec<bool> = p.value.data().iter().map(|&v| v != 0.0).collect();
        pruner.apply(std::slice::from_mut(&mut p));
        let after: Vec<bool> = p.value.data().iter().map(|&v| v != 0.0).collect();
        assert_ne!(before, after, "reparameterization should move the mask");
    }
}
