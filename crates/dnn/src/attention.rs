//! Single-head self-attention — the transformer block of the paper's BERT
//! workload (Table I: "a transformer-based model using attention").

use fpraker_tensor::{init, transpose2d, Tensor};
use fpraker_trace::{Phase, TensorKind};
use rand::Rng;

use crate::engine::Engine;
use crate::layer::{Layer, Param};
use crate::loss::softmax_rows;

/// Single-head scaled-dot-product self-attention with input/output
/// projections. Input and output are `(batch, seq_len * dim)`.
pub struct SelfAttention {
    name: String,
    dim: usize,
    seq_len: usize,
    wq: Param,
    wk: Param,
    wv: Param,
    wo: Param,
    cache: Option<AttnCache>,
}

struct AttnCache {
    x: Tensor,          // (batch*T, dim)
    q: Tensor,          // (batch*T, dim)
    k: Tensor,          // (batch*T, dim)
    v: Tensor,          // (batch*T, dim)
    probs: Vec<Tensor>, // per batch, (T, T)
    attended: Tensor,   // (batch*T, dim) before output projection
    batch: usize,
}

impl SelfAttention {
    /// Creates an attention layer over sequences of `seq_len` tokens of
    /// width `dim`.
    pub fn new<R: Rng>(name: impl Into<String>, dim: usize, seq_len: usize, rng: &mut R) -> Self {
        let name = name.into();
        let mk = |n: &str, rng: &mut R| {
            Param::new(
                format!("{name}.{n}"),
                init::kaiming_uniform(rng, vec![dim, dim], dim),
            )
        };
        SelfAttention {
            wq: mk("wq", rng),
            wk: mk("wk", rng),
            wv: mk("wv", rng),
            wo: mk("wo", rng),
            dim,
            seq_len,
            cache: None,
            name,
        }
    }

    fn rows(&self, flat: &Tensor, b: usize) -> Tensor {
        // Extract sequence b as a (T, dim) matrix from (batch*T, dim).
        let t = self.seq_len;
        let mut out = vec![0.0f32; t * self.dim];
        out.copy_from_slice(&flat.data()[b * t * self.dim..(b + 1) * t * self.dim]);
        Tensor::from_vec(vec![t, self.dim], out)
    }
}

impl Layer for SelfAttention {
    fn name(&self) -> &str {
        &self.name
    }

    fn forward(&mut self, engine: &mut Engine, input: &Tensor, _training: bool) -> Tensor {
        let batch = input.dims()[0];
        assert_eq!(
            input.dims()[1],
            self.seq_len * self.dim,
            "attention input must be (batch, seq_len*dim)"
        );
        let t = self.seq_len;
        let x = input.clone().reshape(vec![batch * t, self.dim]);
        let project = |engine: &mut Engine, w: &Param, name: &str| {
            let _ = name;
            engine.gemm_nt(
                name,
                Phase::AxW,
                &x,
                &w.value,
                TensorKind::Activation,
                TensorKind::Weight,
            )
        };
        let q = project(engine, &self.wq, &format!("{}.q", self.name));
        let k = project(engine, &self.wk, &format!("{}.k", self.name));
        let v = project(engine, &self.wv, &format!("{}.v", self.name));

        let scale = 1.0 / (self.dim as f32).sqrt();
        let mut probs = Vec::with_capacity(batch);
        let mut attended = vec![0.0f32; batch * t * self.dim];
        for b in 0..batch {
            let qb = self.rows(&q, b);
            let kb = self.rows(&k, b);
            let vb = self.rows(&v, b);
            // scores (T,T) = Q Kᵀ * scale — both operands are activations.
            let mut scores = engine.gemm_nt(
                &format!("{}.qk", self.name),
                Phase::AxW,
                &qb,
                &kb,
                TensorKind::Activation,
                TensorKind::Activation,
            );
            scores.scale(scale);
            let p = softmax_rows(&scores);
            // attended (T,dim) = P · V.
            let vb_t = transpose2d(&vb);
            let out_b = engine.gemm_nt(
                &format!("{}.pv", self.name),
                Phase::AxW,
                &p,
                &vb_t,
                TensorKind::Activation,
                TensorKind::Activation,
            );
            attended[b * t * self.dim..(b + 1) * t * self.dim].copy_from_slice(out_b.data());
            probs.push(p);
        }
        let attended = Tensor::from_vec(vec![batch * t, self.dim], attended);
        let out = engine.gemm_nt(
            &format!("{}.out", self.name),
            Phase::AxW,
            &attended,
            &self.wo.value,
            TensorKind::Activation,
            TensorKind::Weight,
        );
        self.cache = Some(AttnCache {
            x,
            q,
            k,
            v,
            probs,
            attended,
            batch,
        });
        out.reshape(vec![batch, t * self.dim])
    }

    fn backward(&mut self, engine: &mut Engine, grad: &Tensor) -> Tensor {
        let cache = self.cache.take().expect("backward before forward");
        let (batch, t) = (cache.batch, self.seq_len);
        let dout = grad.clone().reshape(vec![batch * t, self.dim]);

        // Output projection.
        let dout_t = transpose2d(&dout);
        let att_t = transpose2d(&cache.attended);
        let dwo = engine.gemm_nt(
            &format!("{}.out", self.name),
            Phase::AxG,
            &dout_t,
            &att_t,
            TensorKind::Gradient,
            TensorKind::Activation,
        );
        self.wo.grad.add_scaled(&dwo, 1.0);
        let wo_t = transpose2d(&self.wo.value);
        let datt = engine.gemm_nt(
            &format!("{}.out", self.name),
            Phase::GxW,
            &dout,
            &wo_t,
            TensorKind::Gradient,
            TensorKind::Weight,
        );

        let scale = 1.0 / (self.dim as f32).sqrt();
        let mut dq = vec![0.0f32; batch * t * self.dim];
        let mut dk = vec![0.0f32; batch * t * self.dim];
        let mut dv = vec![0.0f32; batch * t * self.dim];
        for b in 0..batch {
            let p = &cache.probs[b];
            let datt_b = self.rows(&datt, b);
            let vb = self.rows(&cache.v, b);
            // dP (T,T) = dAtt · Vᵀ.
            let dp = engine.gemm_nt(
                &format!("{}.pv", self.name),
                Phase::AxG,
                &datt_b,
                &vb,
                TensorKind::Gradient,
                TensorKind::Activation,
            );
            // dV (T,dim) = Pᵀ · dAtt.
            let p_t = transpose2d(p);
            let datt_t = transpose2d(&datt_b);
            let dv_b = engine.gemm_nt(
                &format!("{}.pv", self.name),
                Phase::AxG,
                &p_t,
                &datt_t,
                TensorKind::Gradient,
                TensorKind::Activation,
            );
            dv[b * t * self.dim..(b + 1) * t * self.dim].copy_from_slice(dv_b.data());

            // Softmax backward: dS = P ⊙ (dP − rowsum(dP ⊙ P)).
            let mut ds = vec![0.0f32; t * t];
            for r in 0..t {
                let mut dot = 0.0f32;
                for c in 0..t {
                    dot += dp.data()[r * t + c] * p.data()[r * t + c];
                }
                for c in 0..t {
                    ds[r * t + c] = p.data()[r * t + c] * (dp.data()[r * t + c] - dot) * scale;
                }
            }
            let ds = Tensor::from_vec(vec![t, t], ds);

            // dQ = dS · K ; dK = dSᵀ · Q.
            let kb = self.rows(&cache.k, b);
            let kb_t = transpose2d(&kb);
            let dq_b = engine.gemm_nt(
                &format!("{}.qk", self.name),
                Phase::GxW,
                &ds,
                &kb_t,
                TensorKind::Gradient,
                TensorKind::Activation,
            );
            dq[b * t * self.dim..(b + 1) * t * self.dim].copy_from_slice(dq_b.data());
            let ds_t = transpose2d(&ds);
            let qb = self.rows(&cache.q, b);
            let qb_t = transpose2d(&qb);
            let dk_b = engine.gemm_nt(
                &format!("{}.qk", self.name),
                Phase::GxW,
                &ds_t,
                &qb_t,
                TensorKind::Gradient,
                TensorKind::Activation,
            );
            dk[b * t * self.dim..(b + 1) * t * self.dim].copy_from_slice(dk_b.data());
        }

        // Back through the three input projections.
        let mut dx = Tensor::zeros(vec![batch * t, self.dim]);
        let x_t = transpose2d(&cache.x);
        for (dproj, w) in [
            (
                Tensor::from_vec(vec![batch * t, self.dim], dq),
                &mut self.wq,
            ),
            (
                Tensor::from_vec(vec![batch * t, self.dim], dk),
                &mut self.wk,
            ),
            (
                Tensor::from_vec(vec![batch * t, self.dim], dv),
                &mut self.wv,
            ),
        ] {
            let dproj_t = transpose2d(&dproj);
            let dw = engine.gemm_nt(
                &self.name,
                Phase::AxG,
                &dproj_t,
                &x_t,
                TensorKind::Gradient,
                TensorKind::Activation,
            );
            w.grad.add_scaled(&dw, 1.0);
            let w_t = transpose2d(&w.value);
            let dxp = engine.gemm_nt(
                &self.name,
                Phase::GxW,
                &dproj,
                &w_t,
                TensorKind::Gradient,
                TensorKind::Weight,
            );
            dx.add_scaled(&dxp, 1.0);
        }
        dx.reshape(vec![batch, t * self.dim])
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.wq, &mut self.wk, &mut self.wv, &mut self.wo]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn output_shape_matches_input() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut attn = SelfAttention::new("attn", 4, 3, &mut rng);
        let mut e = Engine::f32();
        let x = init::normal(&mut rng, vec![2, 12], 1.0);
        let y = attn.forward(&mut e, &x, true);
        assert_eq!(y.dims(), &[2, 12]);
    }

    #[test]
    fn input_gradient_matches_finite_difference() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut attn = SelfAttention::new("attn", 3, 2, &mut rng);
        let mut e = Engine::f32();
        let x = init::normal(&mut rng, vec![1, 6], 1.0);
        let _ = attn.forward(&mut e, &x, true);
        let gy = Tensor::full(vec![1, 6], 1.0);
        let gx = attn.backward(&mut e, &gy);
        let eps = 1e-2f32;
        for i in 0..6 {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let yp = attn.forward(&mut e, &xp, true).sum();
            let ym = attn.forward(&mut e, &xm, true).sum();
            let num = (yp - ym) / (2.0 * eps);
            assert!(
                (num - gx.data()[i]).abs() < 3e-2 * (1.0 + num.abs()),
                "elem {i}: numeric {num} vs analytic {}",
                gx.data()[i]
            );
        }
    }

    #[test]
    fn weight_gradient_matches_finite_difference() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut attn = SelfAttention::new("attn", 3, 2, &mut rng);
        let mut e = Engine::f32();
        let x = init::normal(&mut rng, vec![2, 6], 1.0);
        let _ = attn.forward(&mut e, &x, true);
        let gy = Tensor::full(vec![2, 6], 1.0);
        let _ = attn.backward(&mut e, &gy);
        let analytic = attn.wq.grad.clone();
        let eps = 1e-2f32;
        for i in [0usize, 4, 8] {
            let orig = attn.wq.value.data()[i];
            attn.wq.value.data_mut()[i] = orig + eps;
            let yp = attn.forward(&mut e, &x, true).sum();
            attn.wq.value.data_mut()[i] = orig - eps;
            let ym = attn.forward(&mut e, &x, true).sum();
            attn.wq.value.data_mut()[i] = orig;
            let num = (yp - ym) / (2.0 * eps);
            assert!(
                (num - analytic.data()[i]).abs() < 3e-2 * (1.0 + num.abs()),
                "wq {i}: numeric {num} vs analytic {}",
                analytic.data()[i]
            );
        }
    }
}
