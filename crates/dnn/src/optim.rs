//! Stochastic gradient descent with momentum and weight decay.

use crate::layer::Param;

/// SGD with classical momentum and decoupled weight decay.
///
/// # Example
///
/// ```
/// use fpraker_dnn::{Param, Sgd};
/// use fpraker_tensor::Tensor;
///
/// let mut p = Param::new("w", Tensor::full(vec![1], 1.0));
/// p.grad = Tensor::full(vec![1], 0.5);
/// let opt = Sgd::new(0.1);
/// opt.step_slice(std::slice::from_mut(&mut p));
/// assert!((p.value.data()[0] - 0.95).abs() < 1e-6);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
    /// Momentum coefficient (0 disables momentum).
    pub momentum: f32,
    /// L2 weight decay coefficient.
    pub weight_decay: f32,
    /// Gradient-norm clip (0 disables clipping), applied per parameter.
    pub grad_clip: f32,
}

impl Sgd {
    /// Plain SGD at the given learning rate.
    pub fn new(lr: f32) -> Self {
        Sgd {
            lr,
            momentum: 0.0,
            weight_decay: 0.0,
            grad_clip: 0.0,
        }
    }

    /// Adds momentum.
    pub fn with_momentum(mut self, momentum: f32) -> Self {
        self.momentum = momentum;
        self
    }

    /// Adds weight decay.
    pub fn with_weight_decay(mut self, wd: f32) -> Self {
        self.weight_decay = wd;
        self
    }

    /// Adds per-parameter gradient-norm clipping.
    pub fn with_grad_clip(mut self, clip: f32) -> Self {
        self.grad_clip = clip;
        self
    }

    /// Applies one update to every parameter and clears gradients.
    pub fn step(&self, params: &mut [&mut Param]) {
        for p in params.iter_mut() {
            self.step_one(p);
        }
    }

    /// Applies one update to a contiguous parameter slice (convenience for
    /// tests and the pruner).
    pub fn step_slice(&self, params: &mut [Param]) {
        for p in params.iter_mut() {
            self.step_one(p);
        }
    }

    fn step_one(&self, p: &mut Param) {
        let mut scale = 1.0f32;
        if self.grad_clip > 0.0 {
            let norm: f32 = p.grad.data().iter().map(|g| g * g).sum::<f32>().sqrt();
            if norm > self.grad_clip {
                scale = self.grad_clip / norm;
            }
        }
        let n = p.value.len();
        for i in 0..n {
            let mut g = p.grad.data()[i] * scale;
            if self.weight_decay > 0.0 {
                g += self.weight_decay * p.value.data()[i];
            }
            let v = if self.momentum > 0.0 {
                let m = self.momentum * p.momentum.data()[i] + g;
                p.momentum.data_mut()[i] = m;
                m
            } else {
                g
            };
            p.value.data_mut()[i] -= self.lr * v;
        }
        p.zero_grad();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpraker_tensor::Tensor;

    fn param(v: f32, g: f32) -> Param {
        let mut p = Param::new("w", Tensor::full(vec![1], v));
        p.grad = Tensor::full(vec![1], g);
        p
    }

    #[test]
    fn plain_step_descends() {
        let mut p = param(1.0, 2.0);
        Sgd::new(0.1).step_slice(std::slice::from_mut(&mut p));
        assert!((p.value.data()[0] - 0.8).abs() < 1e-6);
        assert_eq!(p.grad.data()[0], 0.0, "gradients cleared after step");
    }

    #[test]
    fn momentum_accumulates_velocity() {
        let opt = Sgd::new(0.1).with_momentum(0.9);
        let mut p = param(0.0, 1.0);
        opt.step_slice(std::slice::from_mut(&mut p));
        let after_one = p.value.data()[0];
        assert!((after_one + 0.1).abs() < 1e-6);
        p.grad = Tensor::full(vec![1], 1.0);
        opt.step_slice(std::slice::from_mut(&mut p));
        // Second step moves further: v = 0.9*1 + 1 = 1.9.
        assert!((p.value.data()[0] - (after_one - 0.19)).abs() < 1e-6);
    }

    #[test]
    fn weight_decay_shrinks_weights() {
        let opt = Sgd::new(0.1).with_weight_decay(0.5);
        let mut p = param(1.0, 0.0);
        opt.step_slice(std::slice::from_mut(&mut p));
        assert!((p.value.data()[0] - 0.95).abs() < 1e-6);
    }

    #[test]
    fn grad_clip_bounds_update() {
        let opt = Sgd::new(1.0).with_grad_clip(1.0);
        let mut p = param(0.0, 100.0);
        opt.step_slice(std::slice::from_mut(&mut p));
        assert!((p.value.data()[0] + 1.0).abs() < 1e-5);
    }

    #[test]
    fn converges_on_quadratic() {
        // Minimize (w - 3)^2 by SGD: w -> 3.
        let mut p = Param::new("w", Tensor::full(vec![1], 0.0));
        let opt = Sgd::new(0.1).with_momentum(0.5);
        for _ in 0..100 {
            let w = p.value.data()[0];
            p.grad = Tensor::full(vec![1], 2.0 * (w - 3.0));
            opt.step_slice(std::slice::from_mut(&mut p));
        }
        assert!((p.value.data()[0] - 3.0).abs() < 1e-3);
    }
}
