//! The training loop and trace sampling.
//!
//! Mirrors the paper's methodology (Section V-A): train each workload,
//! sample "one random mini-batch during the forward and backward pass" at
//! several points of training, and hand those traces to the simulator.

use fpraker_trace::Trace;

use crate::data::Dataset;
use crate::engine::{Engine, TraceSink};
use crate::layer::{Layer, Sequential};
use crate::loss::{accuracy, cross_entropy};
use crate::optim::Sgd;
use crate::quant::Pruner;

/// A trainable workload: a network, its synthetic dataset, and training
/// hyper-parameters (plus an optional pruner for the sparse-training
/// analogue).
pub struct Workload {
    /// Zoo name.
    pub name: &'static str,
    /// The network.
    pub net: Sequential,
    /// The dataset.
    pub data: Dataset,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Optimizer settings.
    pub opt: Sgd,
    /// Dynamic sparse reparameterization, if the workload trains pruned.
    pub pruner: Option<Pruner>,
}

impl Workload {
    /// Assembles a workload.
    pub fn new(
        name: &'static str,
        net: Sequential,
        data: Dataset,
        batch_size: usize,
        opt: Sgd,
    ) -> Self {
        Workload {
            name,
            net,
            data,
            batch_size,
            opt,
            pruner: None,
        }
    }

    /// Attaches a pruner, registering every rank-≥2 weight parameter.
    pub fn attach_pruner(&mut self, mut pruner: Pruner) {
        for p in self.net.params_mut() {
            if p.name.ends_with(".weight") && p.value.dims().len() >= 2 {
                pruner.register(p);
            }
        }
        // Apply the initial mask immediately.
        pruner.apply(self.net.params_mut());
        self.pruner = Some(pruner);
    }

    /// Runs one optimization step on batch `step` and returns
    /// `(loss, accuracy)` on that batch.
    pub fn train_step(&mut self, engine: &mut Engine, step: usize) -> (f32, f64) {
        let (x, labels) = self.data.batch(step, self.batch_size);
        self.net.zero_grads();
        let logits = self.net.forward(engine, &x, true);
        let (loss, grad) = cross_entropy(&logits, &labels);
        let acc = accuracy(&logits, &labels);
        let _ = self.net.backward(engine, &grad);
        self.opt.step(&mut self.net.params_mut());
        if let Some(pruner) = &mut self.pruner {
            pruner.apply(self.net.params_mut());
        }
        (loss, acc)
    }

    /// Runs one full epoch, returning the mean loss and accuracy.
    pub fn train_epoch(&mut self, engine: &mut Engine, epoch: usize) -> (f32, f64) {
        let batches = self.data.batches(self.batch_size);
        let mut loss_sum = 0.0f32;
        let mut acc_sum = 0.0f64;
        for b in 0..batches {
            let (l, a) = self.train_step(engine, epoch * batches + b);
            loss_sum += l;
            acc_sum += a;
        }
        (loss_sum / batches as f32, acc_sum / batches as f64)
    }

    /// Evaluation accuracy over the whole dataset.
    pub fn eval_accuracy(&mut self, engine: &mut Engine) -> f64 {
        let batches = self.data.batches(self.batch_size);
        let mut acc_sum = 0.0f64;
        for b in 0..batches {
            let (x, labels) = self.data.batch(b, self.batch_size);
            let logits = self.net.forward(engine, &x, false);
            acc_sum += accuracy(&logits, &labels);
        }
        acc_sum / batches as f64
    }

    /// Captures one mini-batch's forward+backward GEMMs as a trace, tagged
    /// with training progress (percent). Parameters are not updated.
    pub fn capture_trace(&mut self, engine: &mut Engine, progress_pct: u32) -> Trace {
        let (x, labels) = self.data.batch(0, self.batch_size);
        self.net.zero_grads();
        engine.arm_capture();
        self.capture_pass(engine, &x, &labels);
        engine.take_trace(self.name, progress_pct)
    }

    /// Like [`Workload::capture_trace`], but records through a
    /// [`TraceSink`] instead of materializing a [`Trace`]: each GEMM is
    /// handed to the sink as it runs, so capturing straight to disk (a
    /// [`crate::FileTraceSink`] over the incremental codec writer) holds
    /// at most one op in memory whatever the model size. Returns the
    /// number of ops recorded.
    ///
    /// # Errors
    ///
    /// The sink's first record failure, or its finalization failure.
    pub fn capture_trace_to(
        &mut self,
        engine: &mut Engine,
        sink: Box<dyn TraceSink>,
    ) -> std::io::Result<u64> {
        let (x, labels) = self.data.batch(0, self.batch_size);
        self.net.zero_grads();
        engine.arm_capture_sink(sink);
        self.capture_pass(engine, &x, &labels);
        engine.finish_capture()
    }

    /// The shared forward+backward pass both capture entry points run.
    fn capture_pass(&mut self, engine: &mut Engine, x: &fpraker_tensor::Tensor, labels: &[usize]) {
        let logits = self.net.forward(engine, x, true);
        let (_, grad) = cross_entropy(&logits, labels);
        let _ = self.net.backward(engine, &grad);
        self.net.zero_grads();
    }
}

/// The result of [`train_and_sample`]: per-epoch metrics and the sampled
/// traces.
#[derive(Debug)]
pub struct TrainingRun {
    /// Mean training loss per epoch.
    pub losses: Vec<f32>,
    /// Mean training accuracy per epoch.
    pub accuracies: Vec<f64>,
    /// Traces sampled at the requested progress points.
    pub traces: Vec<Trace>,
}

/// Trains a workload for `epochs` epochs, capturing one trace at each of
/// the given progress percentages (0 = before training, 100 = after the
/// final epoch).
pub fn train_and_sample(
    workload: &mut Workload,
    engine: &mut Engine,
    epochs: usize,
    sample_at_pct: &[u32],
) -> TrainingRun {
    let mut run = TrainingRun {
        losses: Vec::with_capacity(epochs),
        accuracies: Vec::with_capacity(epochs),
        traces: Vec::new(),
    };
    let mut sample_points: Vec<u32> = sample_at_pct.to_vec();
    sample_points.sort_unstable();
    let progress_of = |epoch: usize| (epoch * 100 / epochs.max(1)) as u32;

    for &pct in sample_points.iter().filter(|&&p| p == 0) {
        run.traces.push(workload.capture_trace(engine, pct));
    }
    for epoch in 0..epochs {
        let (loss, acc) = workload.train_epoch(engine, epoch);
        run.losses.push(loss);
        run.accuracies.push(acc);
        let reached = progress_of(epoch + 1);
        let prev = progress_of(epoch);
        for &pct in &sample_points {
            if pct > prev && pct <= reached {
                run.traces.push(workload.capture_trace(engine, pct));
            }
        }
    }
    run
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models;

    #[test]
    fn training_reduces_loss_on_mlp_workload() {
        let mut w = models::build("ncf");
        let mut e = Engine::f32();
        let (first, _) = w.train_epoch(&mut e, 0);
        let mut last = first;
        for epoch in 1..15 {
            let (l, _) = w.train_epoch(&mut e, epoch);
            last = l;
        }
        assert!(last < first * 0.9, "loss did not drop: {first} -> {last}");
    }

    #[test]
    fn conv_workload_learns_the_synthetic_classes() {
        let mut w = models::build("detectron2");
        let mut e = Engine::f32();
        for epoch in 0..12 {
            let _ = w.train_epoch(&mut e, epoch);
        }
        let acc = w.eval_accuracy(&mut e);
        assert!(acc > 0.5, "accuracy only {acc}");
    }

    #[test]
    fn capture_trace_produces_all_three_phases() {
        use fpraker_trace::Phase;
        let mut w = models::build("vgg16");
        let mut e = Engine::f32();
        let trace = w.capture_trace(&mut e, 0);
        assert!(trace.validate().is_ok());
        for phase in [Phase::AxW, Phase::AxG, Phase::GxW] {
            assert!(
                trace.ops_in_phase(phase).count() > 0,
                "missing phase {phase}"
            );
        }
        assert!(trace.macs() > 10_000);
    }

    #[test]
    fn capture_trace_to_streams_the_same_trace_as_capture_trace() {
        use crate::engine::FileTraceSink;

        let mut w = models::build("ncf");
        let mut e = Engine::f32();
        let reference = w.capture_trace(&mut e, 0);
        let path =
            std::env::temp_dir().join(format!("fpraker_capture_to_{}.trace", std::process::id()));
        let sink = FileTraceSink::create_indexed(&path, "ncf", 0, 0).unwrap();
        let ops = w.capture_trace_to(&mut e, Box::new(sink)).unwrap();
        assert_eq!(ops as usize, reference.ops.len());
        let bytes = std::fs::read(&path).unwrap();
        std::fs::remove_file(&path).ok();
        // Bit-for-bit the same capture, never materialized on the way out.
        let decoded = fpraker_trace::codec::decode(&bytes).unwrap();
        assert_eq!(decoded, reference);
    }

    #[test]
    fn train_and_sample_collects_traces_at_requested_points() {
        let mut w = models::build("ncf");
        let mut e = Engine::f32();
        let run = train_and_sample(&mut w, &mut e, 4, &[0, 50, 100]);
        assert_eq!(run.losses.len(), 4);
        assert_eq!(run.traces.len(), 3);
        let pcts: Vec<u32> = run.traces.iter().map(|t| t.progress_pct).collect();
        assert_eq!(pcts, vec![0, 50, 100]);
    }
}
