//! Criterion microbenchmarks of the core components, one group per
//! evaluation artifact the component underlies:
//!
//! * `fig01_encoding`   — term encoding throughput (sparsity measurement);
//! * `fig05_pe`         — PE set processing (the cycle-level kernel);
//! * `fig10_bdc`        — base-delta compression codec;
//! * `fig11_tile`       — tile block simulation (the iso-area comparison);
//! * `fig11_baseline`   — baseline PE for reference;
//! * `table2_accum`     — the extended-precision accumulator.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};

use fpraker_core::{BaselinePe, Pe, PeConfig, Tile, TileConfig};
use fpraker_mem::bdc;
use fpraker_num::encode::{encode_terms, Encoding};
use fpraker_num::reference::SplitMix64;
use fpraker_num::{AccumConfig, Accumulator, Bf16};

fn rand_values(n: usize, spread: i32, seed: u64) -> Vec<Bf16> {
    let mut rng = SplitMix64::new(seed);
    (0..n).map(|_| rng.bf16_in_range(spread)).collect()
}

fn bench_encoding(c: &mut Criterion) {
    let values = rand_values(4096, 8, 1);
    let mut g = c.benchmark_group("fig01_encoding");
    g.throughput(Throughput::Elements(values.len() as u64));
    for enc in [Encoding::Canonical, Encoding::RawBits] {
        g.bench_function(format!("{enc:?}"), |b| {
            b.iter(|| {
                let mut total = 0usize;
                for v in &values {
                    total += encode_terms(v.significand(), enc).len();
                }
                total
            })
        });
    }
    g.finish();
}

fn bench_pe(c: &mut Criterion) {
    let a = rand_values(8, 4, 2);
    let b = rand_values(8, 4, 3);
    let mut g = c.benchmark_group("fig05_pe");
    g.throughput(Throughput::Elements(8));
    g.bench_function("process_set", |bench| {
        bench.iter_batched(
            || Pe::new(PeConfig::paper()),
            |mut pe| pe.process_set(&a, &b),
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_baseline(c: &mut Criterion) {
    let a = rand_values(8, 4, 2);
    let b = rand_values(8, 4, 3);
    let mut g = c.benchmark_group("fig11_baseline");
    g.throughput(Throughput::Elements(8));
    g.bench_function("process_set", |bench| {
        bench.iter_batched(
            || BaselinePe::new(PeConfig::paper()),
            |mut pe| pe.process_set(&a, &b),
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_bdc(c: &mut Criterion) {
    let values = rand_values(4096, 3, 4);
    let mut g = c.benchmark_group("fig10_bdc");
    g.throughput(Throughput::Elements(values.len() as u64));
    g.bench_function("compress", |b| b.iter(|| bdc::compress(&values)));
    let (bytes, _) = bdc::compress(&values);
    g.bench_function("decompress", |b| {
        b.iter(|| bdc::decompress(&bytes, values.len()).unwrap())
    });
    g.bench_function("footprint", |b| b.iter(|| bdc::footprint(&values)));
    g.finish();
}

fn bench_tile(c: &mut Criterion) {
    let sets = 8;
    let a: Vec<Vec<Bf16>> = (0..8).map(|i| rand_values(sets * 8, 3, 10 + i)).collect();
    let b: Vec<Vec<Bf16>> = (0..8).map(|i| rand_values(sets * 8, 3, 20 + i)).collect();
    let mut g = c.benchmark_group("fig11_tile");
    g.throughput(Throughput::Elements((64 * sets * 8) as u64));
    g.bench_function("run_block_8x8", |bench| {
        bench.iter_batched(
            || Tile::new(TileConfig::paper()),
            |mut tile| tile.run_block(&a, &b),
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_accumulator(c: &mut Criterion) {
    let mut g = c.benchmark_group("table2_accum");
    g.throughput(Throughput::Elements(1024));
    g.bench_function("add_scaled_normalize", |b| {
        b.iter(|| {
            let mut acc = Accumulator::new(AccumConfig::paper());
            for i in 0..1024u64 {
                acc.add_scaled(i % 3 == 0, 0x80 + (i & 0x7F), (i % 17) as i32 - 8);
                acc.normalize();
            }
            acc.read_bf16()
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_encoding, bench_pe, bench_baseline, bench_bdc, bench_tile, bench_accumulator
}
criterion_main!(benches);
