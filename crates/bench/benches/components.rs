//! Microbenchmarks of the core components, one group per evaluation
//! artifact the component underlies:
//!
//! * `fig01_encoding`   — term encoding throughput (sparsity measurement);
//! * `fig05_pe`         — PE set processing (the cycle-level kernel);
//! * `fig10_bdc`        — base-delta compression codec;
//! * `fig11_tile`       — tile block simulation (the iso-area comparison);
//! * `fig11_baseline`   — baseline PE for reference;
//! * `table2_accum`     — the extended-precision accumulator.
//!
//! Built with `harness = false` on the dependency-free
//! [`fpraker_bench::harness`] (no criterion in the offline set).

use fpraker_bench::harness::bench;
use fpraker_core::{BaselinePe, Pe, PeConfig, Tile, TileConfig};
use fpraker_mem::bdc;
use fpraker_num::encode::{encode_terms, Encoding};
use fpraker_num::reference::SplitMix64;
use fpraker_num::{AccumConfig, Accumulator, Bf16};

fn rand_values(n: usize, spread: i32, seed: u64) -> Vec<Bf16> {
    let mut rng = SplitMix64::new(seed);
    (0..n).map(|_| rng.bf16_in_range(spread)).collect()
}

fn bench_encoding() {
    let values = rand_values(4096, 8, 1);
    for enc in [Encoding::Canonical, Encoding::RawBits] {
        bench(
            &format!("fig01_encoding/{enc:?}"),
            200,
            Some(values.len() as u64),
            || {
                let mut total = 0usize;
                for v in &values {
                    total += encode_terms(v.significand(), enc).len();
                }
                total
            },
        );
    }
}

fn bench_pe() {
    let a = rand_values(8, 4, 2);
    let b = rand_values(8, 4, 3);
    bench("fig05_pe/process_set", 2000, Some(8), || {
        let mut pe = Pe::new(PeConfig::paper());
        pe.process_set(&a, &b)
    });
}

fn bench_baseline() {
    let a = rand_values(8, 4, 2);
    let b = rand_values(8, 4, 3);
    bench("fig11_baseline/process_set", 2000, Some(8), || {
        let mut pe = BaselinePe::new(PeConfig::paper());
        pe.process_set(&a, &b)
    });
}

fn bench_bdc() {
    let values = rand_values(4096, 3, 4);
    bench("fig10_bdc/compress", 200, Some(values.len() as u64), || {
        bdc::compress(&values)
    });
    let (bytes, _) = bdc::compress(&values);
    bench(
        "fig10_bdc/decompress",
        200,
        Some(values.len() as u64),
        || bdc::decompress(&bytes, values.len()).unwrap(),
    );
    bench(
        "fig10_bdc/footprint",
        200,
        Some(values.len() as u64),
        || bdc::footprint(&values),
    );
}

fn bench_tile() {
    let sets = 8;
    let a: Vec<Vec<Bf16>> = (0..8).map(|i| rand_values(sets * 8, 3, 10 + i)).collect();
    let b: Vec<Vec<Bf16>> = (0..8).map(|i| rand_values(sets * 8, 3, 20 + i)).collect();
    bench(
        "fig11_tile/run_block_8x8",
        50,
        Some((64 * sets * 8) as u64),
        || {
            let mut tile = Tile::new(TileConfig::paper());
            tile.run_block(&a, &b)
        },
    );
}

fn bench_accumulator() {
    bench("table2_accum/add_scaled_normalize", 500, Some(1024), || {
        let mut acc = Accumulator::new(AccumConfig::paper());
        for i in 0..1024u64 {
            acc.add_scaled(i % 3 == 0, 0x80 + (i & 0x7F), (i % 17) as i32 - 8);
            acc.normalize();
        }
        acc.read_bf16()
    });
}

fn main() {
    bench_encoding();
    bench_pe();
    bench_baseline();
    bench_bdc();
    bench_tile();
    bench_accumulator();
}
