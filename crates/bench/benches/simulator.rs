//! Wall-clock benchmarks of the trace-level simulator — the engine behind
//! Figs. 11–16 and 18–21. Runs the canonical measurement set
//! ([`fpraker_bench::simbench`]): the fixed synthetic GEMM trace through
//! both machines, sequentially and with the parallel block fan-out.
//!
//! Built with `harness = false` on the dependency-free
//! [`fpraker_bench::harness`] (no criterion in the offline set). The
//! machine-readable variant of this measurement is the `bench_sim` binary,
//! which writes `BENCH_sim.json`.

use fpraker_bench::simbench::simulator_measurements;

fn main() {
    let b = simulator_measurements(10);
    println!(
        "PE hot loop: planned path {:.2}x scalar, SWAR {:.2}x planned, encode LUT {:.2}x, SWAR tile {:.2}x planned tile",
        b.pe_set_speedup(),
        b.pe_swar_speedup(),
        b.pe_encode_speedup(),
        b.pe_swar_tile_speedup()
    );
    println!(
        "parallel speedup at {} thread(s): {:.2}x",
        b.threads,
        b.parallel_speedup()
    );
    println!(
        "op-level scheduling speedup on the many-small-ops trace: {:.2}x",
        b.parallel_ops_speedup()
    );
    println!(
        "service: {:.1} cold jobs/s, {:.1} cached jobs/s ({:.1}x cache speedup)",
        b.serve_cold_jobs_per_sec(),
        b.serve_cached_jobs_per_sec(),
        b.serve_cache_speedup()
    );
    println!(
        "pipelined service: {:.1} mixed jobs/s over {} connections ({:.2}x over serial submission)",
        b.serve_pipelined_mixed_jobs_per_sec(),
        b.serve_pipelined_connections,
        b.serve_pipelined_speedup()
    );
}
