//! Criterion benchmarks of the trace-level simulator — the engine behind
//! Figs. 11–16 and 18–21. Runs a fixed synthetic GEMM trace through both
//! machines.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use fpraker_num::reference::SplitMix64;
use fpraker_num::Bf16;
use fpraker_sim::{simulate_trace_baseline, simulate_trace_fpraker, AcceleratorConfig};
use fpraker_trace::{Phase, TensorKind, Trace, TraceOp};

fn synthetic_trace() -> Trace {
    let mut rng = SplitMix64::new(99);
    let mut tr = Trace::new("bench", 50);
    let (m, n, k) = (96, 32, 64);
    let gen = |rng: &mut SplitMix64, count: usize| -> Vec<Bf16> {
        (0..count)
            .map(|_| {
                if rng.next_f64() < 0.4 {
                    Bf16::ZERO
                } else {
                    rng.bf16_in_range(3)
                }
            })
            .collect()
    };
    for phase in [Phase::AxW, Phase::GxW, Phase::AxG] {
        tr.ops.push(TraceOp {
            layer: "bench".into(),
            phase,
            m,
            n,
            k,
            a: gen(&mut rng, m * k),
            b: gen(&mut rng, n * k),
            a_kind: TensorKind::Activation,
            b_kind: TensorKind::Weight,
            a_dup: 1.0,
            b_dup: 1.0,
            out_dup: 1.0,
        });
    }
    tr
}

fn bench_sim(c: &mut Criterion) {
    let trace = synthetic_trace();
    let macs = trace.macs();
    let mut g = c.benchmark_group("fig11_simulator");
    g.throughput(Throughput::Elements(macs));
    g.sample_size(10);
    g.bench_function("fpraker_36_tiles", |b| {
        b.iter(|| simulate_trace_fpraker(&trace, &AcceleratorConfig::fpraker_paper()))
    });
    g.bench_function("baseline_8_tiles", |b| {
        b.iter(|| simulate_trace_baseline(&trace, &AcceleratorConfig::baseline_paper()))
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_sim
}
criterion_main!(benches);
