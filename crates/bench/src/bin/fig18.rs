//! Regenerates the paper's fig18 data. See `fpraker_bench::figures`.
fn main() {
    println!("{}", fpraker_bench::figures::fig18());
}
