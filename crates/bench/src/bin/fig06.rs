//! Regenerates the paper's fig06 data. See `fpraker_bench::figures`.
fn main() {
    println!("{}", fpraker_bench::figures::fig06());
}
