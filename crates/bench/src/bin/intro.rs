//! The Section I Bit-Pragmatic comparison. See `fpraker_bench::figures`.
fn main() {
    println!("{}", fpraker_bench::figures::intro_pragmatic());
}
