//! Regenerates every table and figure of the evaluation in one run —
//! the source of the numbers recorded in EXPERIMENTS.md.

use std::time::Instant;

fn main() {
    let t0 = Instant::now();
    type FigureFn = fn() -> String;
    let figs: Vec<(&str, FigureFn)> = vec![
        ("table3", fpraker_bench::figures::table3),
        ("intro", fpraker_bench::figures::intro_pragmatic),
        ("fig01", fpraker_bench::figures::fig01),
        ("fig02", fpraker_bench::figures::fig02),
        ("fig06", fpraker_bench::figures::fig06),
        ("fig10", fpraker_bench::figures::fig10),
        ("fig11", fpraker_bench::figures::fig11),
        ("fig12", fpraker_bench::figures::fig12),
        ("fig13", fpraker_bench::figures::fig13),
        ("fig14", fpraker_bench::figures::fig14),
        ("fig15", fpraker_bench::figures::fig15),
        ("fig16", fpraker_bench::figures::fig16),
        ("fig17", fpraker_bench::figures::fig17),
        ("fig18", fpraker_bench::figures::fig18),
        ("fig19", fpraker_bench::figures::fig19),
        ("fig20", fpraker_bench::figures::fig20),
        ("fig21", fpraker_bench::figures::fig21),
    ];
    for (name, f) in figs {
        let t = Instant::now();
        println!("{}", f());
        eprintln!("[{name} done in {:.1?}]", t.elapsed());
    }
    eprintln!("[reproduce total {:.1?}]", t0.elapsed());
}
