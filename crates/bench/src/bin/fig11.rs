//! Regenerates the paper's fig11 data. See `fpraker_bench::figures`.
fn main() {
    println!("{}", fpraker_bench::figures::fig11());
}
