//! Regenerates the paper's fig12 data. See `fpraker_bench::figures`.
fn main() {
    println!("{}", fpraker_bench::figures::fig12());
}
