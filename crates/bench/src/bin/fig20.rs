//! Regenerates the paper's fig20 data. See `fpraker_bench::figures`.
fn main() {
    println!("{}", fpraker_bench::figures::fig20());
}
