//! Regenerates the paper's fig14 data. See `fpraker_bench::figures`.
fn main() {
    println!("{}", fpraker_bench::figures::fig14());
}
