//! Regenerates the paper's fig13 data. See `fpraker_bench::figures`.
fn main() {
    println!("{}", fpraker_bench::figures::fig13());
}
