//! Regenerates the paper's fig17 data. See `fpraker_bench::figures`.
fn main() {
    println!("{}", fpraker_bench::figures::fig17());
}
