//! Regenerates the paper's fig15 data. See `fpraker_bench::figures`.
fn main() {
    println!("{}", fpraker_bench::figures::fig15());
}
