//! Regenerates the paper's fig16 data. See `fpraker_bench::figures`.
fn main() {
    println!("{}", fpraker_bench::figures::fig16());
}
