//! Regenerates the paper's table3 data. See `fpraker_bench::figures`.
fn main() {
    println!("{}", fpraker_bench::figures::table3());
}
