//! Regenerates the paper's fig21 data. See `fpraker_bench::figures`.
fn main() {
    println!("{}", fpraker_bench::figures::fig21());
}
