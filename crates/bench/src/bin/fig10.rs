//! Regenerates the paper's fig10 data. See `fpraker_bench::figures`.
fn main() {
    println!("{}", fpraker_bench::figures::fig10());
}
