//! Synthesizes a parameterized GEMM trace and streams it to disk through
//! the incremental `fpraker_trace::codec::Writer` — one op resident at a
//! time, so traces far larger than RAM can be generated.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p fpraker-bench --bin tracegen -- OUT.trace \
//!     [--ops N] [--m M] [--n N] [--k K] [--zeros F] [--seed S] [--model NAME] \
//!     [--index] [--index-stride S]
//! ```
//!
//! Defaults: 256 ops of 16×16×32 with 40% zeros, seed 0x5EED, model
//! `tracegen`. The written file decodes with `fpraker_trace::codec` and
//! simulates with `fpraker_sim::Engine::run_source` without ever being
//! fully loaded. `--index` appends the index footer (stride
//! `--index-stride`, default auto), making the file seekable and enabling
//! `Engine::run_indexed`'s parallel segment decode.

use std::fs::File;
use std::io::BufWriter;
use std::process::exit;

use fpraker_bench::workloads::SyntheticTraceSpec;

fn usage() -> ! {
    eprintln!(
        "usage: tracegen OUT.trace [--ops N] [--m M] [--n N] [--k K] \
         [--zeros F] [--seed S] [--model NAME] [--index] [--index-stride S]"
    );
    exit(2);
}

fn parse<T: std::str::FromStr>(flag: &str, value: Option<String>) -> T {
    let Some(v) = value else {
        eprintln!("{flag} needs a value");
        usage();
    };
    v.parse().unwrap_or_else(|_| {
        eprintln!("{flag}: cannot parse {v:?}");
        usage();
    })
}

fn main() {
    let mut args = std::env::args().skip(1);
    let Some(out_path) = args.next().filter(|a| !a.starts_with("--")) else {
        usage();
    };
    let mut spec = SyntheticTraceSpec {
        model: "tracegen".into(),
        ops: 256,
        m: 16,
        n: 16,
        k: 32,
        zero_fraction: 0.4,
        seed: 0x5EED,
    };
    let mut index = false;
    let mut index_stride = 0u32; // 0 = auto
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--ops" => spec.ops = parse(&flag, args.next()),
            "--m" => spec.m = parse(&flag, args.next()),
            "--n" => spec.n = parse(&flag, args.next()),
            "--k" => spec.k = parse(&flag, args.next()),
            "--zeros" => spec.zero_fraction = parse(&flag, args.next()),
            "--seed" => spec.seed = parse(&flag, args.next()),
            "--model" => spec.model = parse(&flag, args.next()),
            "--index" => index = true,
            "--index-stride" => {
                index = true;
                index_stride = parse(&flag, args.next());
            }
            _ => usage(),
        }
    }
    if spec.m == 0 || spec.n == 0 || spec.k == 0 || !(0.0..=1.0).contains(&spec.zero_fraction) {
        eprintln!("dimensions must be positive and --zeros within [0, 1]");
        exit(2);
    }

    let file = File::create(&out_path).unwrap_or_else(|e| {
        eprintln!("cannot create {out_path}: {e}");
        exit(1);
    });
    let sink = BufWriter::new(file);
    let (ops, digest) = if index {
        spec.write_indexed_to(sink, index_stride)
    } else {
        spec.write_to(sink)
    }
    .unwrap_or_else(|e| {
        eprintln!("write failed: {e}");
        exit(1);
    });
    let bytes = std::fs::metadata(&out_path).map(|m| m.len()).unwrap_or(0);
    println!(
        "wrote {out_path}: {ops} ops of {}x{}x{} ({} MACs, {bytes} bytes), streamed one op at a time",
        spec.m,
        spec.n,
        spec.k,
        spec.macs()
    );
    if index {
        let segments = fpraker_trace::IndexedTraceFile::open(&out_path)
            .ok()
            .map(|f| f.segments().len())
            .unwrap_or(0);
        println!("index footer: {segments} segments (parallel decode via Engine::run_indexed)");
    }
    println!("content digest: {digest:#018x} (the fpraker-serve cache key for this trace)");
}
