//! Machine-readable simulator benchmark: times the fixed synthetic trace
//! at 1 thread and at the machine's core count, the many-small-ops trace
//! under both scheduling modes, a disk-backed trace streamed vs fully
//! loaded (`fpraker/stream_*`), the trace-simulation service cold vs
//! cached (`serve/*`), and the shard coordinator fanning an indexed
//! trace across 1/2/4 loopback workers (`shard/*`), and writes
//! `BENCH_sim.json` so future PRs have a wall-clock trajectory to
//! regress against.
//!
//! Usage: `cargo run --release -p fpraker-bench --bin bench_sim [out.json]`
//! (default output path: `BENCH_sim.json` in the current directory).
//! `FPRAKER_BENCH_SMOKE=1` shrinks the disk-backed streaming and service
//! traces (CI).

use std::fmt::Write as _;

use fpraker_bench::harness::Measurement;
use fpraker_bench::simbench::simulator_measurements;

fn json_entry(m: &Measurement) -> String {
    let mut s = String::new();
    write!(
        s,
        "    {{\"name\": \"{}\", \"iters\": {}, \"min_ns\": {}, \"median_ns\": {}, \"p90_ns\": {}, \"mean_ns\": {}",
        m.name, m.iters, m.min_ns, m.median_ns, m.p90_ns, m.mean_ns
    )
    .unwrap();
    if let Some(e) = m.elements {
        write!(s, ", \"elements\": {e}").unwrap();
    }
    s.push('}');
    s
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_sim.json".to_string());
    let b = simulator_measurements(10);
    let speedup = b.parallel_speedup();
    let ops_speedup = b.parallel_ops_speedup();
    let stream_overhead = b.stream_overhead();
    println!(
        "PE hot loop over {} sets: planned path {:.2}x the scalar reference; SWAR {:.2}x the planned path; encode LUT {:.2}x encode_terms; SWAR tile {:.2}x the planned tile, planned tile {:.2}x the scalar tile",
        b.pe_sets,
        b.pe_set_speedup(),
        b.pe_swar_speedup(),
        b.pe_encode_speedup(),
        b.pe_swar_tile_speedup(),
        b.pe_tile_speedup()
    );
    println!("parallel speedup at {} thread(s): {speedup:.2}x", b.threads);
    println!(
        "telemetry hot-path overhead: {:.4}x (stage split: decode {:.0}%, plan {:.0}%, run_unit {:.0}%, fold {:.0}%)",
        b.telemetry_overhead(),
        100.0 * b.telemetry.stage_fraction(b.telemetry.decode_ns),
        100.0 * b.telemetry.stage_fraction(b.telemetry.plan_ns),
        100.0 * b.telemetry.stage_fraction(b.telemetry.run_unit_ns),
        100.0 * b.telemetry.stage_fraction(b.telemetry.fold_ns)
    );
    println!(
        "op-level scheduling speedup on the many-small-ops trace: {ops_speedup:.2}x (serial ops vs parallel ops)"
    );
    println!(
        "streaming a {}-op trace from disk: {stream_overhead:.2}x the in-memory wall-clock, peak {} of {} ops resident (window {})",
        b.stream_total_ops, b.stream_peak_resident_ops, b.stream_total_ops, b.stream_window
    );
    println!(
        "parallel segment decode of a {}-op indexed trace ({} segments): {:.2}x over one sequential cursor",
        b.decode_total_ops,
        b.decode_segments,
        b.decode_speedup()
    );
    println!(
        "dnn trace capture ({} ops): streamed-to-disk holds {} peak operand bytes vs {} in memory ({:.0}x less)",
        b.capture_ops,
        b.capture_peak_bytes_streamed,
        b.capture_peak_bytes_inmemory,
        b.capture_memory_ratio()
    );
    println!(
        "service over loopback TCP: {:.1} cold jobs/s vs {:.1} cached jobs/s ({:.1}x from the content-addressed cache, {} hits recorded)",
        b.serve_cold_jobs_per_sec(),
        b.serve_cached_jobs_per_sec(),
        b.serve_cache_speedup(),
        b.serve_cache_hits
    );
    println!(
        "pipelined service ({} jobs over {} connections): {:.1} cold jobs/s, {:.1} cached jobs/s, {:.1} mixed jobs/s vs {:.1} serial mixed jobs/s ({:.2}x from pipelining)",
        b.serve_pipelined_jobs,
        b.serve_pipelined_connections,
        b.serve_pipelined_cold_jobs_per_sec(),
        b.serve_pipelined_cached_jobs_per_sec(),
        b.serve_pipelined_mixed_jobs_per_sec(),
        b.serve_submit_mixed_jobs_per_sec(),
        b.serve_pipelined_speedup()
    );
    println!(
        "sharded service ({} shards at 4 workers): 2 workers {:.2}x, 4 workers {:.2}x over one worker; merge fold costs {:.4}x of a 1-worker run",
        b.shard_shards,
        b.shard_scaling_2(),
        b.shard_scaling_4(),
        b.shard_merge_overhead()
    );

    let mut json = String::from("{\n");
    writeln!(json, "  \"benchmark\": \"fpraker_sim synthetic trace\",").unwrap();
    writeln!(json, "  \"trace_macs\": {},", b.macs).unwrap();
    writeln!(json, "  \"small_ops_trace_macs\": {},", b.small_ops_macs).unwrap();
    writeln!(json, "  \"threads\": {},", b.threads).unwrap();
    writeln!(json, "  \"parallel_speedup\": {speedup:.4},").unwrap();
    writeln!(
        json,
        "  \"telemetry_overhead\": {:.4},",
        b.telemetry_overhead()
    )
    .unwrap();
    writeln!(
        json,
        "  \"telemetry/stage_decode\": {:.4},",
        b.telemetry.stage_fraction(b.telemetry.decode_ns)
    )
    .unwrap();
    writeln!(
        json,
        "  \"telemetry/stage_plan\": {:.4},",
        b.telemetry.stage_fraction(b.telemetry.plan_ns)
    )
    .unwrap();
    writeln!(
        json,
        "  \"telemetry/stage_run_unit\": {:.4},",
        b.telemetry.stage_fraction(b.telemetry.run_unit_ns)
    )
    .unwrap();
    writeln!(
        json,
        "  \"telemetry/stage_fold\": {:.4},",
        b.telemetry.stage_fraction(b.telemetry.fold_ns)
    )
    .unwrap();
    writeln!(json, "  \"parallel_ops_speedup\": {ops_speedup:.4},").unwrap();
    writeln!(json, "  \"stream_overhead\": {stream_overhead:.4},").unwrap();
    writeln!(json, "  \"stream_total_ops\": {},", b.stream_total_ops).unwrap();
    writeln!(json, "  \"stream_window\": {},", b.stream_window).unwrap();
    writeln!(
        json,
        "  \"stream_peak_resident_ops\": {},",
        b.stream_peak_resident_ops
    )
    .unwrap();
    writeln!(json, "  \"decode_speedup\": {:.4},", b.decode_speedup()).unwrap();
    writeln!(json, "  \"decode_total_ops\": {},", b.decode_total_ops).unwrap();
    writeln!(json, "  \"decode_segments\": {},", b.decode_segments).unwrap();
    writeln!(json, "  \"capture_ops\": {},", b.capture_ops).unwrap();
    writeln!(
        json,
        "  \"capture_peak_bytes_inmemory\": {},",
        b.capture_peak_bytes_inmemory
    )
    .unwrap();
    writeln!(
        json,
        "  \"capture_peak_bytes_streamed\": {},",
        b.capture_peak_bytes_streamed
    )
    .unwrap();
    writeln!(
        json,
        "  \"capture_memory_ratio\": {:.4},",
        b.capture_memory_ratio()
    )
    .unwrap();
    writeln!(json, "  \"serve_trace_macs\": {},", b.serve_trace_macs).unwrap();
    writeln!(
        json,
        "  \"serve_cold_jobs_per_sec\": {:.4},",
        b.serve_cold_jobs_per_sec()
    )
    .unwrap();
    writeln!(
        json,
        "  \"serve_cached_jobs_per_sec\": {:.4},",
        b.serve_cached_jobs_per_sec()
    )
    .unwrap();
    writeln!(
        json,
        "  \"serve_cache_speedup\": {:.4},",
        b.serve_cache_speedup()
    )
    .unwrap();
    writeln!(json, "  \"serve_cache_hits\": {},", b.serve_cache_hits).unwrap();
    writeln!(
        json,
        "  \"serve_pipelined_jobs\": {},",
        b.serve_pipelined_jobs
    )
    .unwrap();
    writeln!(
        json,
        "  \"serve_pipelined_connections\": {},",
        b.serve_pipelined_connections
    )
    .unwrap();
    writeln!(
        json,
        "  \"serve_pipelined_cold_jobs_per_sec\": {:.4},",
        b.serve_pipelined_cold_jobs_per_sec()
    )
    .unwrap();
    writeln!(
        json,
        "  \"serve_pipelined_cached_jobs_per_sec\": {:.4},",
        b.serve_pipelined_cached_jobs_per_sec()
    )
    .unwrap();
    writeln!(
        json,
        "  \"serve_pipelined_mixed_jobs_per_sec\": {:.4},",
        b.serve_pipelined_mixed_jobs_per_sec()
    )
    .unwrap();
    writeln!(
        json,
        "  \"serve_submit_mixed_jobs_per_sec\": {:.4},",
        b.serve_submit_mixed_jobs_per_sec()
    )
    .unwrap();
    writeln!(
        json,
        "  \"serve_pipelined_speedup\": {:.4},",
        b.serve_pipelined_speedup()
    )
    .unwrap();
    writeln!(json, "  \"shard_trace_macs\": {},", b.shard_trace_macs).unwrap();
    writeln!(json, "  \"shard_shards\": {},", b.shard_shards).unwrap();
    writeln!(json, "  \"shard_scaling_2\": {:.4},", b.shard_scaling_2()).unwrap();
    writeln!(json, "  \"shard_scaling_4\": {:.4},", b.shard_scaling_4()).unwrap();
    writeln!(
        json,
        "  \"shard_merge_overhead\": {:.4},",
        b.shard_merge_overhead()
    )
    .unwrap();
    writeln!(json, "  \"pe_sets\": {},", b.pe_sets).unwrap();
    writeln!(json, "  \"pe_set_speedup\": {:.4},", b.pe_set_speedup()).unwrap();
    writeln!(
        json,
        "  \"pe_encode_speedup\": {:.4},",
        b.pe_encode_speedup()
    )
    .unwrap();
    writeln!(json, "  \"pe_tile_speedup\": {:.4},", b.pe_tile_speedup()).unwrap();
    writeln!(json, "  \"pe_swar_speedup\": {:.4},", b.pe_swar_speedup()).unwrap();
    writeln!(
        json,
        "  \"pe_swar_tile_speedup\": {:.4},",
        b.pe_swar_tile_speedup()
    )
    .unwrap();
    writeln!(json, "  \"measurements\": [").unwrap();
    let entries: Vec<String> = [
        &b.pe_set,
        &b.pe_swar_set,
        &b.pe_set_scalar,
        &b.pe_encode,
        &b.pe_encode_compute,
        &b.pe_planned_tile,
        &b.pe_swar_tile,
        &b.pe_tile_scalar,
        &b.seq,
        &b.seq_telemetry_off,
        &b.par,
        &b.baseline,
        &b.serial_ops,
        &b.parallel_ops,
        &b.stream_streamed,
        &b.stream_inmemory,
        &b.decode_serial,
        &b.decode_parallel,
        &b.capture_inmemory,
        &b.capture_streamed,
        &b.serve_cold,
        &b.serve_cached,
        &b.serve_submit_mixed,
        &b.serve_pipelined_cold,
        &b.serve_pipelined_cached,
        &b.serve_pipelined_mixed,
        &b.shard_workers_1,
        &b.shard_workers_2,
        &b.shard_workers_4,
        &b.shard_merge,
    ]
    .iter()
    .map(|m| json_entry(m))
    .collect();
    json.push_str(&entries.join(",\n"));
    json.push_str("\n  ]\n}\n");
    std::fs::write(&out_path, json).expect("write benchmark JSON");
    println!("wrote {out_path}");
}
