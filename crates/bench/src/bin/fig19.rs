//! Regenerates the paper's fig19 data. See `fpraker_bench::figures`.
fn main() {
    println!("{}", fpraker_bench::figures::fig19());
}
