//! Regenerates the paper's fig02 data. See `fpraker_bench::figures`.
fn main() {
    println!("{}", fpraker_bench::figures::fig02());
}
