//! Regenerates the paper's fig01 data. See `fpraker_bench::figures`.
fn main() {
    println!("{}", fpraker_bench::figures::fig01());
}
