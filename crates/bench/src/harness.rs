//! Dependency-free wall-clock benchmark harness.
//!
//! The offline dependency set contains no criterion, so the `benches/`
//! targets are plain `harness = false` binaries built on this module: each
//! measurement runs a closure repeatedly, reports min/median/mean wall
//! time and, when an element count is given, throughput. Timings are also
//! collectable as [`Measurement`]s for machine-readable output
//! (`BENCH_sim.json`).

use std::time::Instant;

/// One benchmark measurement.
#[derive(Clone, Debug)]
pub struct Measurement {
    /// Benchmark name (`group/function`).
    pub name: String,
    /// Number of timed iterations.
    pub iters: u32,
    /// Minimum iteration wall time in nanoseconds.
    pub min_ns: u128,
    /// Median iteration wall time in nanoseconds.
    pub median_ns: u128,
    /// Mean iteration wall time in nanoseconds.
    pub mean_ns: u128,
    /// Optional elements processed per iteration (for throughput).
    pub elements: Option<u64>,
}

impl Measurement {
    /// Elements per second at the median time, when an element count is set.
    pub fn throughput(&self) -> Option<f64> {
        self.elements
            .map(|e| e as f64 / (self.median_ns.max(1) as f64 / 1e9))
    }

    /// Renders one human-readable summary line.
    pub fn summary(&self) -> String {
        let mut line = format!(
            "{:<40} {:>12} median  {:>12} min  {:>12} mean",
            self.name,
            format_ns(self.median_ns),
            format_ns(self.min_ns),
            format_ns(self.mean_ns),
        );
        if let Some(t) = self.throughput() {
            line.push_str(&format!("  {:>12.3e} elem/s", t));
        }
        line
    }
}

fn format_ns(ns: u128) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// Times `f` for `iters` iterations (after one untimed warm-up call) and
/// prints the summary line. The closure's result is passed to
/// `std::hint::black_box` so the work is not optimized away.
pub fn bench<T>(
    name: &str,
    iters: u32,
    elements: Option<u64>,
    mut f: impl FnMut() -> T,
) -> Measurement {
    assert!(iters > 0, "at least one iteration");
    std::hint::black_box(f());
    let mut samples: Vec<u128> = Vec::with_capacity(iters as usize);
    for _ in 0..iters {
        let t = Instant::now();
        std::hint::black_box(f());
        samples.push(t.elapsed().as_nanos());
    }
    samples.sort_unstable();
    let m = Measurement {
        name: name.to_string(),
        iters,
        min_ns: samples[0],
        median_ns: samples[samples.len() / 2],
        mean_ns: samples.iter().sum::<u128>() / samples.len() as u128,
        elements,
    };
    println!("{}", m.summary());
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measurement_orders_are_consistent() {
        let m = bench("test/sleepless", 5, Some(100), || {
            std::hint::black_box((0..1000u64).sum::<u64>())
        });
        assert!(m.min_ns <= m.median_ns);
        assert!(m.throughput().unwrap() > 0.0);
        assert_eq!(m.iters, 5);
    }

    #[test]
    fn ns_formatting_picks_sane_units() {
        assert_eq!(format_ns(12), "12ns");
        assert_eq!(format_ns(1_500), "1.500us");
        assert_eq!(format_ns(2_500_000), "2.500ms");
        assert_eq!(format_ns(3_000_000_000), "3.000s");
    }
}
