//! Dependency-free wall-clock benchmark harness.
//!
//! The offline dependency set contains no criterion, so the `benches/`
//! targets are plain `harness = false` binaries built on this module: each
//! measurement runs a warm-up pass, then times a closure repeatedly and
//! reports min/median/p90/mean wall time and, when an element count is
//! given, throughput. Timings are also collectable as [`Measurement`]s for
//! machine-readable output (`BENCH_sim.json`).

use std::time::Instant;

/// One benchmark measurement.
#[derive(Clone, Debug)]
pub struct Measurement {
    /// Benchmark name (`group/function`).
    pub name: String,
    /// Number of timed iterations.
    pub iters: u32,
    /// Minimum iteration wall time in nanoseconds.
    pub min_ns: u128,
    /// Median iteration wall time in nanoseconds.
    pub median_ns: u128,
    /// 90th-percentile iteration wall time in nanoseconds (nearest-rank).
    pub p90_ns: u128,
    /// Mean iteration wall time in nanoseconds.
    pub mean_ns: u128,
    /// Optional elements processed per iteration (for throughput).
    pub elements: Option<u64>,
}

impl Measurement {
    /// Elements per second at the median time, when an element count is set.
    pub fn throughput(&self) -> Option<f64> {
        self.elements
            .map(|e| e as f64 / (self.median_ns.max(1) as f64 / 1e9))
    }

    /// Renders one human-readable summary line.
    pub fn summary(&self) -> String {
        let mut line = format!(
            "{:<40} {:>12} median  {:>12} min  {:>12} p90  {:>12} mean",
            self.name,
            format_ns(self.median_ns),
            format_ns(self.min_ns),
            format_ns(self.p90_ns),
            format_ns(self.mean_ns),
        );
        if let Some(t) = self.throughput() {
            line.push_str(&format!("  {:>12.3e} elem/s", t));
        }
        line
    }
}

fn format_ns(ns: u128) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// Untimed warm-up calls [`bench()`] makes before sampling: enough to fault
/// in code and data and settle the frequency governor, without dwarfing
/// short runs. Exposed so callers feeding one distinct input per call can
/// size their input pool to `iters + warmup_iters(iters)`.
pub fn warmup_iters(iters: u32) -> u32 {
    (iters / 4).clamp(1, 8)
}

/// Nearest-rank percentile of an ascending-sorted sample vector.
fn percentile(sorted: &[u128], pct: u32) -> u128 {
    debug_assert!(!sorted.is_empty() && sorted.windows(2).all(|w| w[0] <= w[1]));
    let rank = (sorted.len() * pct as usize).div_ceil(100);
    sorted[rank.saturating_sub(1).min(sorted.len() - 1)]
}

/// Times `f` for `iters` iterations after a warm-up pass and prints the
/// summary line. The closure's result is passed to `std::hint::black_box`
/// so the work is not optimized away.
pub fn bench<T>(
    name: &str,
    iters: u32,
    elements: Option<u64>,
    mut f: impl FnMut() -> T,
) -> Measurement {
    assert!(iters > 0, "at least one iteration");
    for _ in 0..warmup_iters(iters) {
        std::hint::black_box(f());
    }
    let mut samples: Vec<u128> = Vec::with_capacity(iters as usize);
    for _ in 0..iters {
        let t = Instant::now();
        std::hint::black_box(f());
        samples.push(t.elapsed().as_nanos());
    }
    samples.sort_unstable();
    let m = Measurement {
        name: name.to_string(),
        iters,
        min_ns: samples[0],
        median_ns: samples[samples.len() / 2],
        p90_ns: percentile(&samples, 90),
        mean_ns: samples.iter().sum::<u128>() / samples.len() as u128,
        elements,
    };
    println!("{}", m.summary());
    m
}

/// Times two closures with their iterations interleaved (A, B, A, B, …)
/// after warming both up, and prints both summary lines.
///
/// Back-to-back [`bench()`] calls put each closure's samples in one
/// contiguous block of wall time, so slow drift (frequency scaling,
/// thermal, a noisy neighbour) lands entirely on one side and pollutes
/// any A/B ratio. Interleaving spreads both sides across the same drift,
/// which is what makes small ratios — like the telemetry overhead
/// budget — measurable at all.
pub fn bench_pair<A, B>(
    name_a: &str,
    name_b: &str,
    iters: u32,
    elements: Option<u64>,
    mut fa: impl FnMut() -> A,
    mut fb: impl FnMut() -> B,
) -> (Measurement, Measurement) {
    assert!(iters > 0, "at least one iteration");
    for _ in 0..warmup_iters(iters) {
        std::hint::black_box(fa());
        std::hint::black_box(fb());
    }
    let mut samples_a: Vec<u128> = Vec::with_capacity(iters as usize);
    let mut samples_b: Vec<u128> = Vec::with_capacity(iters as usize);
    for _ in 0..iters {
        let t = Instant::now();
        std::hint::black_box(fa());
        samples_a.push(t.elapsed().as_nanos());
        let t = Instant::now();
        std::hint::black_box(fb());
        samples_b.push(t.elapsed().as_nanos());
    }
    let finish = |name: &str, mut samples: Vec<u128>| {
        samples.sort_unstable();
        let m = Measurement {
            name: name.to_string(),
            iters,
            min_ns: samples[0],
            median_ns: samples[samples.len() / 2],
            p90_ns: percentile(&samples, 90),
            mean_ns: samples.iter().sum::<u128>() / samples.len() as u128,
            elements,
        };
        println!("{}", m.summary());
        m
    };
    (finish(name_a, samples_a), finish(name_b, samples_b))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measurement_orders_are_consistent() {
        let m = bench("test/sleepless", 5, Some(100), || {
            std::hint::black_box((0..1000u64).sum::<u64>())
        });
        assert!(m.min_ns <= m.median_ns);
        assert!(m.median_ns <= m.p90_ns);
        assert!(m.throughput().unwrap() > 0.0);
        assert_eq!(m.iters, 5);
    }

    #[test]
    fn summary_reports_all_statistics() {
        let m = bench("test/summary", 3, None, || std::hint::black_box(1u64));
        let s = m.summary();
        for stat in ["median", "min", "p90", "mean"] {
            assert!(s.contains(stat), "{s}");
        }
    }

    #[test]
    fn bench_pair_reports_both_sides() {
        let (a, b) = bench_pair(
            "test/pair_a",
            "test/pair_b",
            4,
            Some(10),
            || std::hint::black_box((0..100u64).sum::<u64>()),
            || std::hint::black_box((0..200u64).sum::<u64>()),
        );
        assert_eq!((a.iters, b.iters), (4, 4));
        assert!(a.min_ns <= a.median_ns);
        assert!(b.min_ns <= b.median_ns);
        assert_eq!(a.name, "test/pair_a");
        assert_eq!(b.name, "test/pair_b");
    }

    #[test]
    fn percentile_is_nearest_rank() {
        let v: Vec<u128> = (1..=10).collect();
        assert_eq!(percentile(&v, 90), 9);
        assert_eq!(percentile(&v, 100), 10);
        assert_eq!(percentile(&v, 50), 5);
        assert_eq!(percentile(&[7], 90), 7);
    }

    #[test]
    fn warmup_scales_with_iters_but_is_bounded() {
        assert_eq!(warmup_iters(1), 1);
        assert_eq!(warmup_iters(10), 2);
        assert_eq!(warmup_iters(100), 8);
    }

    #[test]
    fn ns_formatting_picks_sane_units() {
        assert_eq!(format_ns(12), "12ns");
        assert_eq!(format_ns(1_500), "1.500us");
        assert_eq!(format_ns(2_500_000), "2.500ms");
        assert_eq!(format_ns(3_000_000_000), "3.000s");
    }
}
