//! Minimal ASCII table rendering for figure output.

use std::fmt::Write as _;

/// A simple left-aligned ASCII table.
///
/// # Example
///
/// ```
/// use fpraker_bench::Table;
///
/// let mut t = Table::new(vec!["model".into(), "speedup".into()]);
/// t.row(vec!["vgg16".into(), "1.40".into()]);
/// let s = t.render();
/// assert!(s.contains("vgg16"));
/// assert!(s.contains("speedup"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: Vec<String>) -> Self {
        Table {
            header,
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header.
    pub fn row(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.header.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut width = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            width[i] = h.len();
        }
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                width[i] = width[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let line = |cells: &[String], out: &mut String| {
            for (i, cell) in cells.iter().enumerate() {
                let _ = write!(out, "| {:w$} ", cell, w = width[i]);
            }
            out.push_str("|\n");
        };
        line(&self.header, &mut out);
        let mut sep = String::new();
        for w in &width {
            let _ = write!(sep, "|{}", "-".repeat(w + 2));
        }
        sep.push_str("|\n");
        out.push_str(&sep);
        for row in &self.rows {
            line(row, &mut out);
        }
        out
    }
}

/// Formats a ratio with two decimals and an `x` suffix.
pub fn ratio(x: f64) -> String {
    format!("{x:.2}x")
}

/// Formats a fraction as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_alignment() {
        let mut t = Table::new(vec!["a".into(), "bb".into()]);
        t.row(vec!["xxx".into(), "y".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0].len(), lines[2].len());
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn width_mismatch_panics() {
        let mut t = Table::new(vec!["a".into()]);
        t.row(vec!["x".into(), "y".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(ratio(1.5), "1.50x");
        assert_eq!(pct(0.123), "12.3%");
    }
}
