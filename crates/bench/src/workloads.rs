//! Trace generation with per-process caching, plus a parameterized
//! synthetic-trace spec that streams ops straight to disk.

use std::collections::HashMap;
use std::io;
use std::sync::Mutex;
use std::sync::OnceLock;

use fpraker_dnn::{models, train_and_sample, Engine};
use fpraker_num::reference::SplitMix64;
use fpraker_num::Bf16;
use fpraker_trace::{codec, Phase, TensorKind, Trace, TraceOp};

/// The models to benchmark: `FPRAKER_MODELS` (comma separated) or all nine
/// Table I analogues.
pub fn model_set() -> Vec<String> {
    match std::env::var("FPRAKER_MODELS") {
        Ok(s) if !s.trim().is_empty() => s.split(',').map(|m| m.trim().to_string()).collect(),
        _ => models::PAPER_MODELS.iter().map(|m| m.to_string()).collect(),
    }
}

/// Training epochs before sampling (env `FPRAKER_EPOCHS`, default 4).
pub fn epochs() -> usize {
    std::env::var("FPRAKER_EPOCHS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(4)
}

/// Cache key: (model name, sampled progress percentages).
type TraceCache = Mutex<HashMap<(String, Vec<u32>), Vec<Trace>>>;

fn cache() -> &'static TraceCache {
    static CACHE: OnceLock<TraceCache> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Trains the named workload (caching per process) and returns traces
/// sampled at the given progress percentages.
pub fn traces_for(model: &str, sample_at_pct: &[u32]) -> Vec<Trace> {
    let key = (model.to_string(), sample_at_pct.to_vec());
    if let Some(hit) = cache().lock().unwrap().get(&key) {
        return hit.clone();
    }
    let mut workload = models::build(model);
    let mut engine = Engine::f32();
    let run = train_and_sample(&mut workload, &mut engine, epochs(), sample_at_pct);
    cache().lock().unwrap().insert(key, run.traces.clone());
    run.traces
}

/// One trace per model at mid-training (the default measurement point for
/// the steady-state figures).
pub fn steady_state_trace(model: &str) -> Trace {
    traces_for(model, &[50])
        .into_iter()
        .next()
        .expect("sampling produced no trace")
}

/// The fixed synthetic GEMM trace the simulator wall-clock benchmarks use
/// (`benches/simulator.rs` and the `bench_sim` binary): three mid-sized
/// phases with 40% zeros and trained-tensor-shaped values. Deterministic —
/// identical across processes and machines.
pub fn synthetic_bench_trace() -> Trace {
    let mut rng = SplitMix64::new(99);
    let mut tr = Trace::new("bench", 50);
    let (m, n, k) = (96, 32, 64);
    let gen = |rng: &mut SplitMix64, count: usize| -> Vec<Bf16> {
        (0..count)
            .map(|_| {
                if rng.next_f64() < 0.4 {
                    Bf16::ZERO
                } else {
                    rng.bf16_in_range(3)
                }
            })
            .collect()
    };
    for phase in [Phase::AxW, Phase::GxW, Phase::AxG] {
        tr.ops.push(TraceOp {
            layer: "bench".into(),
            phase,
            m,
            n,
            k,
            a: gen(&mut rng, m * k),
            b: gen(&mut rng, n * k),
            a_kind: TensorKind::Activation,
            b_kind: TensorKind::Weight,
            a_dup: 1.0,
            b_dup: 1.0,
            out_dup: 1.0,
        });
    }
    tr
}

/// A trace of many small GEMMs (64 ops of a few 8×8 output blocks each) —
/// the NCF/BERT-analogue shape where op-level scheduling matters: under
/// per-op fan-out these ops serialize; under the op×block scheduler they
/// share one worker pool. Deterministic, like [`synthetic_bench_trace`].
pub fn many_small_ops_bench_trace() -> Trace {
    let mut rng = SplitMix64::new(777);
    let mut tr = Trace::new("small-ops-bench", 50);
    let phases = [Phase::AxW, Phase::GxW, Phase::AxG];
    for i in 0..64 {
        let (m, n, k) = (16, 16, 32);
        let gen = |rng: &mut SplitMix64, count: usize| -> Vec<Bf16> {
            (0..count)
                .map(|_| {
                    if rng.next_f64() < 0.4 {
                        Bf16::ZERO
                    } else {
                        rng.bf16_in_range(3)
                    }
                })
                .collect()
        };
        tr.ops.push(TraceOp {
            layer: format!("small{}", i % 8),
            phase: phases[i % 3],
            m,
            n,
            k,
            a: gen(&mut rng, m * k),
            b: gen(&mut rng, n * k),
            a_kind: TensorKind::Activation,
            b_kind: TensorKind::Weight,
            a_dup: 1.0,
            b_dup: 1.0,
            out_dup: 1.0,
        });
    }
    tr
}

/// A parameterized synthetic GEMM trace that can be generated **op by
/// op**: each op is seeded from `(seed, index)` alone, so a trace of any
/// length streams to disk through the incremental [`codec::Writer`]
/// without ever materializing a `Trace`. Used by the `tracegen` binary
/// and the `fpraker/stream_*` benchmark.
#[derive(Clone, Debug)]
pub struct SyntheticTraceSpec {
    /// Model name written to the trace header.
    pub model: String,
    /// Number of ops.
    pub ops: u32,
    /// Output rows per op.
    pub m: usize,
    /// Output columns per op.
    pub n: usize,
    /// Reduction length per op.
    pub k: usize,
    /// Fraction of operand values forced to zero.
    pub zero_fraction: f64,
    /// Base seed; each op derives its own generator from `(seed, index)`.
    pub seed: u64,
}

impl SyntheticTraceSpec {
    /// The spec the `stream` benchmark uses: enough small-GEMM ops that a
    /// bounded window is visibly smaller than the trace.
    pub fn stream_bench(ops: u32) -> Self {
        SyntheticTraceSpec {
            model: "stream-bench".into(),
            ops,
            m: 16,
            n: 16,
            k: 32,
            zero_fraction: 0.4,
            seed: 0x5EED,
        }
    }

    /// Generates op `index` (deterministic; independent of the other ops).
    pub fn op(&self, index: u32) -> TraceOp {
        let mut rng = SplitMix64::new(self.seed ^ (u64::from(index) + 1).wrapping_mul(0x9E37_79B9));
        let gen = |rng: &mut SplitMix64, count: usize| -> Vec<Bf16> {
            (0..count)
                .map(|_| {
                    if rng.next_f64() < self.zero_fraction {
                        Bf16::ZERO
                    } else {
                        rng.bf16_in_range(3)
                    }
                })
                .collect()
        };
        TraceOp {
            layer: format!("syn{}", index % 8),
            phase: [Phase::AxW, Phase::GxW, Phase::AxG][(index % 3) as usize],
            m: self.m,
            n: self.n,
            k: self.k,
            a: gen(&mut rng, self.m * self.k),
            b: gen(&mut rng, self.n * self.k),
            a_kind: TensorKind::Activation,
            b_kind: TensorKind::Weight,
            a_dup: 1.0,
            b_dup: 1.0,
            out_dup: 1.0,
        }
    }

    /// Total MACs of the whole trace.
    pub fn macs(&self) -> u64 {
        u64::from(self.ops) * (self.m * self.n * self.k) as u64
    }

    /// Streams the trace into `w` through the incremental writer, one op
    /// resident at a time. Returns the number of ops written and the
    /// FNV-1a content digest of the stream (hashed for free by the
    /// writer; the service layer's cache key, also usable for dedup).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn write_to<W: io::Write>(&self, w: W) -> io::Result<(u32, u64)> {
        let mut writer = codec::Writer::new(w, &self.model, 50, self.ops)?;
        for i in 0..self.ops {
            writer.write_op(&self.op(i))?;
        }
        let digest = writer.digest();
        writer.finish()?;
        Ok((self.ops, digest))
    }

    /// [`SyntheticTraceSpec::write_to`] plus an index footer at `stride`
    /// (`0` = auto): the written file supports `codec::IndexedReader`
    /// seeking and `Engine::run_indexed` parallel segment decode. The
    /// returned digest covers the **whole indexed file** (footer
    /// included) — the digest a client submitting the file declares.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn write_indexed_to<W: io::Write>(&self, w: W, stride: u32) -> io::Result<(u32, u64)> {
        let mut sink = fpraker_trace::digest::DigestWrite::new(w);
        let mut writer = codec::Writer::new(&mut sink, &self.model, 50, self.ops)?;
        for i in 0..self.ops {
            writer.write_op(&self.op(i))?;
        }
        writer.finish_indexed(stride)?;
        Ok((self.ops, sink.digest()))
    }

    /// Materializes the whole trace in memory (the comparison path for
    /// the streaming benchmark and tests).
    pub fn trace(&self) -> Trace {
        let mut tr = Trace::new(self.model.clone(), 50);
        tr.ops = (0..self.ops).map(|i| self.op(i)).collect();
        tr
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_spec_streams_exactly_its_materialized_trace() {
        let spec = SyntheticTraceSpec::stream_bench(7);
        let mut bytes = Vec::new();
        let (ops, digest) = spec.write_to(&mut bytes).unwrap();
        assert_eq!(ops, 7);
        let decoded = codec::decode(&bytes).unwrap();
        assert_eq!(decoded, spec.trace());
        assert_eq!(decoded.macs(), spec.macs());
        // The streamed digest is the trace's content digest.
        assert_eq!(digest, fpraker_trace::Fnv64::digest_of(&bytes));
        assert_eq!(digest, decoded.content_digest());
        // Index-seeded generation: the same op twice is the same op.
        assert_eq!(spec.op(3), spec.op(3));
        assert_ne!(spec.op(3).a, spec.op(4).a);
    }

    #[test]
    fn indexed_synthetic_trace_decodes_and_indexes() {
        let spec = SyntheticTraceSpec::stream_bench(9);
        let mut bytes = Vec::new();
        let (ops, digest) = spec.write_indexed_to(&mut bytes, 2).unwrap();
        assert_eq!(ops, 9);
        // The declared digest covers the whole indexed file.
        assert_eq!(digest, fpraker_trace::Fnv64::digest_of(&bytes));
        // decode() skips the footer; the ops are the plain spec's.
        assert_eq!(codec::decode(&bytes).unwrap(), spec.trace());
        let reader =
            codec::IndexedReader::new(std::io::Cursor::new(bytes)).expect("indexed header");
        assert!(reader.has_index());
        assert_eq!(reader.segments().iter().map(|s| s.ops).sum::<u32>(), 9);
    }

    #[test]
    fn many_small_ops_trace_is_deterministic_and_small_per_op() {
        let a = many_small_ops_bench_trace();
        assert_eq!(a, many_small_ops_bench_trace());
        assert_eq!(a.ops.len(), 64);
        // Each op is 2x2 = 4 output blocks of the paper's 8x8 tile.
        assert!(a.ops.iter().all(|op| op.m * op.n <= 16 * 16));
    }

    #[test]
    fn synthetic_bench_trace_is_deterministic() {
        let a = synthetic_bench_trace();
        let b = synthetic_bench_trace();
        assert_eq!(a, b);
        assert_eq!(a.ops.len(), 3);
        assert!(a.macs() > 0);
    }

    #[test]
    fn model_set_defaults_to_table_i() {
        // (Assumes the env var is unset in the test environment.)
        if std::env::var("FPRAKER_MODELS").is_err() {
            assert_eq!(model_set().len(), 9);
        }
    }

    #[test]
    fn traces_are_cached() {
        std::env::set_var("FPRAKER_EPOCHS", "1");
        let a = traces_for("ncf", &[50]);
        let b = traces_for("ncf", &[50]);
        assert_eq!(a.len(), 1);
        assert_eq!(a[0], b[0]);
        std::env::remove_var("FPRAKER_EPOCHS");
    }
}
