//! Trace generation with per-process caching.

use std::collections::HashMap;
use std::sync::Mutex;
use std::sync::OnceLock;

use fpraker_dnn::{models, train_and_sample, Engine};
use fpraker_trace::Trace;

/// The models to benchmark: `FPRAKER_MODELS` (comma separated) or all nine
/// Table I analogues.
pub fn model_set() -> Vec<String> {
    match std::env::var("FPRAKER_MODELS") {
        Ok(s) if !s.trim().is_empty() => s.split(',').map(|m| m.trim().to_string()).collect(),
        _ => models::PAPER_MODELS.iter().map(|m| m.to_string()).collect(),
    }
}

/// Training epochs before sampling (env `FPRAKER_EPOCHS`, default 4).
pub fn epochs() -> usize {
    std::env::var("FPRAKER_EPOCHS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(4)
}

fn cache() -> &'static Mutex<HashMap<(String, Vec<u32>), Vec<Trace>>> {
    static CACHE: OnceLock<Mutex<HashMap<(String, Vec<u32>), Vec<Trace>>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Trains the named workload (caching per process) and returns traces
/// sampled at the given progress percentages.
pub fn traces_for(model: &str, sample_at_pct: &[u32]) -> Vec<Trace> {
    let key = (model.to_string(), sample_at_pct.to_vec());
    if let Some(hit) = cache().lock().unwrap().get(&key) {
        return hit.clone();
    }
    let mut workload = models::build(model);
    let mut engine = Engine::f32();
    let run = train_and_sample(&mut workload, &mut engine, epochs(), sample_at_pct);
    cache().lock().unwrap().insert(key, run.traces.clone());
    run.traces
}

/// One trace per model at mid-training (the default measurement point for
/// the steady-state figures).
pub fn steady_state_trace(model: &str) -> Trace {
    traces_for(model, &[50])
        .into_iter()
        .next()
        .expect("sampling produced no trace")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_set_defaults_to_table_i() {
        // (Assumes the env var is unset in the test environment.)
        if std::env::var("FPRAKER_MODELS").is_err() {
            assert_eq!(model_set().len(), 9);
        }
    }

    #[test]
    fn traces_are_cached() {
        std::env::set_var("FPRAKER_EPOCHS", "1");
        let a = traces_for("ncf", &[50]);
        let b = traces_for("ncf", &[50]);
        assert_eq!(a.len(), 1);
        assert_eq!(a[0], b[0]);
        std::env::remove_var("FPRAKER_EPOCHS");
    }
}
