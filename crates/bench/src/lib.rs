//! The benchmark harness: regenerates every table and figure of the
//! paper's evaluation section.
//!
//! Each `fig*` binary prints the corresponding figure's rows/series as an
//! ASCII table; the `reproduce` binary runs them all and is what
//! `EXPERIMENTS.md` records. Workload traces come from actually training
//! the Table I analogues ([`fpraker_dnn::models`]) and are cached per
//! process so multi-figure runs don't retrain.
//!
//! Environment knobs (all optional):
//!
//! * `FPRAKER_MODELS` — comma-separated zoo names to restrict the model
//!   set (default: all nine Table I analogues);
//! * `FPRAKER_EPOCHS` — training epochs before the measurement trace is
//!   sampled (default 4).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod figures;
pub mod harness;
pub mod simbench;
pub mod table;
pub mod workloads;

pub use table::Table;
