//! Figure and table generators: one function per evaluation artifact.
//!
//! Every function returns the printable report; binaries are thin wrappers.
//! Simulation results are cached per `(model, configuration)` within the
//! process so the full `reproduce` run does not repeat work.

use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

use fpraker_core::PeConfig;
use fpraker_core::TileConfig;
use fpraker_dnn::{
    data, models, Arithmetic, Conv2d, Engine, Flatten, Linear, MaxPool2d, Relu, Sequential, Sgd,
    Workload,
};
use fpraker_energy::area::{fpraker_tile_ratio, iso_area_fpraker_tiles, TileArea, TilePower};
use fpraker_energy::EnergyModel;
use fpraker_mem::bdc;
use fpraker_num::encode::Encoding;
use fpraker_sim::{AcceleratorConfig, Engine as SimEngine, Machine, RunResult};
use fpraker_trace::stats::{exponent_histograms, TraceStatistics};
use fpraker_trace::{TensorKind, Trace};

use crate::table::{pct, ratio, Table};
use crate::workloads::{model_set, steady_state_trace, traces_for};

fn run_cache() -> &'static Mutex<HashMap<String, RunResult>> {
    static CACHE: OnceLock<Mutex<HashMap<String, RunResult>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

fn stats_cache() -> &'static Mutex<HashMap<String, TraceStatistics>> {
    static CACHE: OnceLock<Mutex<HashMap<String, TraceStatistics>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// All Section II statistics of a model's steady-state trace, computed in
/// one shared pass (and cached): Figs. 1 and 2 read from the same
/// [`TraceStatistics`] fold the streaming path uses, so the in-memory and
/// larger-than-RAM statistics cannot drift apart. (Fig. 6 uses different
/// sample points — epoch 0 and fully trained — so it folds its own traces
/// through the exponent-only wrapper.)
fn stats_for(model: &str) -> TraceStatistics {
    if let Some(hit) = stats_cache().lock().unwrap().get(model) {
        return hit.clone();
    }
    let trace = steady_state_trace(model);
    let stats = TraceStatistics::from_trace(&trace, Encoding::Canonical);
    stats_cache()
        .lock()
        .unwrap()
        .insert(model.to_string(), stats.clone());
    stats
}

/// The simulation engine every figure shares: one worker per core (results
/// are bit-identical to a sequential run; see `fpraker_sim::Engine`).
fn sim_engine() -> SimEngine {
    SimEngine::new()
}

/// FPRaker configuration variants of Fig. 11.
fn fp_variant(tag: &str) -> AcceleratorConfig {
    let mut cfg = AcceleratorConfig::fpraker_paper();
    match tag {
        "zero" => {
            cfg.tile.pe.ob_skip = false;
            cfg.bdc_offchip = false;
        }
        "bdc" => {
            cfg.tile.pe.ob_skip = false;
        }
        "full" => {}
        other => panic!("unknown variant {other}"),
    }
    cfg
}

/// Simulates (with caching) a model's steady-state trace under a variant
/// tag: `full`, `zero`, `bdc`, `baseline`, or `rows<N>`.
pub fn run_for(model: &str, tag: &str) -> RunResult {
    let key = format!("{model}/{tag}");
    if let Some(hit) = run_cache().lock().unwrap().get(&key) {
        return hit.clone();
    }
    let trace = steady_state_trace(model);
    let engine = sim_engine();
    let result = match tag {
        "baseline" => engine.run(
            Machine::Baseline,
            &trace,
            &AcceleratorConfig::baseline_paper(),
        ),
        t if t.starts_with("rows") => {
            let rows: usize = t[4..].parse().expect("rows tag");
            let mut cfg = AcceleratorConfig::fpraker_paper();
            cfg.tile = TileConfig::with_rows(rows);
            // Hold the total PE count constant across geometries.
            cfg.tiles = (36 * 8) / rows;
            engine.run(Machine::FpRaker, &trace, &cfg)
        }
        t => engine.run(Machine::FpRaker, &trace, &fp_variant(t)),
    };
    run_cache().lock().unwrap().insert(key, result.clone());
    result
}

/// Fig. 1: value and term sparsity per tensor kind per model.
pub fn fig01() -> String {
    let mut t = Table::new(vec![
        "model".into(),
        "value A".into(),
        "value W".into(),
        "value G".into(),
        "term A".into(),
        "term W".into(),
        "term G".into(),
    ]);
    for model in model_set() {
        let s = stats_for(&model).sparsity;
        t.row(vec![
            models::display_name(&model).into(),
            pct(s.activation.value_sparsity()),
            pct(s.weight.value_sparsity()),
            pct(s.gradient.value_sparsity()),
            pct(s.activation.term_sparsity()),
            pct(s.weight.term_sparsity()),
            pct(s.gradient.term_sparsity()),
        ]);
    }
    format!(
        "Fig. 1 — Value and term sparsity during training\n{}",
        t.render()
    )
}

/// Fig. 2: ideal potential speedup from term sparsity, per phase (Eq. 4).
pub fn fig02() -> String {
    let mut t = Table::new(vec![
        "model".into(),
        "AxG".into(),
        "GxW".into(),
        "AxW".into(),
    ]);
    for model in model_set() {
        let pot = stats_for(&model).potential;
        let get = |k: &str| {
            pot.get(k)
                .map(|p| ratio(p.potential_speedup()))
                .unwrap_or_else(|| "-".into())
        };
        t.row(vec![
            models::display_name(&model).into(),
            get("AxG"),
            get("GxW"),
            get("AxW"),
        ]);
    }
    format!(
        "Fig. 2 — Potential speedup from skipping zero terms (Eq. 4)\n{}",
        t.render()
    )
}

/// Fig. 6: exponent histograms of a conv layer early and late in training.
pub fn fig06() -> String {
    let mut out = String::from("Fig. 6 — Exponent distributions (ResNet18 analogue)\n");
    for (label, pcts) in [
        ("epoch 0 (0%)", vec![0u32]),
        ("trained (100%)", vec![100u32]),
    ] {
        let trace = traces_for("resnet18", &pcts).remove(0);
        out.push_str(&format!("-- {label} --\n"));
        let mut t = Table::new(vec![
            "tensor".into(),
            "exp range".into(),
            "span(90%)".into(),
            "zeros".into(),
        ]);
        for (kind, hist) in exponent_histograms(&trace) {
            let range = hist
                .range()
                .map(|(lo, hi)| format!("[{lo}, {hi}]"))
                .unwrap_or_else(|| "-".into());
            t.row(vec![
                kind.to_string(),
                range,
                format!("{} values", hist.span_containing(0.9)),
                pct(hist.zeros as f64 / hist.total.max(1) as f64),
            ]);
        }
        out.push_str(&t.render());
    }
    out.push_str(
        "(The 90% span staying narrow is the locality BDC and the limited\n shifter window rely on.)\n",
    );
    out
}

/// Fig. 10: normalized exponent footprint after base-delta compression.
pub fn fig10() -> String {
    let mut t = Table::new(vec![
        "model".into(),
        "A chan".into(),
        "W chan".into(),
        "G chan".into(),
        "A spatial".into(),
    ]);
    for model in model_set() {
        let trace = steady_state_trace(&model);
        let mut by_kind: HashMap<TensorKind, Vec<fpraker_num::Bf16>> = HashMap::new();
        for op in &trace.ops {
            by_kind
                .entry(op.a_kind)
                .or_default()
                .extend_from_slice(&op.a);
            by_kind
                .entry(op.b_kind)
                .or_default()
                .extend_from_slice(&op.b);
        }
        let footprint = |kind: TensorKind, transposed: bool| -> String {
            let Some(values) = by_kind.get(&kind) else {
                return "-".into();
            };
            let values = if transposed {
                // "Spatial" grouping analogue: stride the stream so groups
                // gather distant elements.
                let stride = 97usize;
                (0..values.len())
                    .map(|i| values[(i * stride) % values.len()])
                    .collect()
            } else {
                values.clone()
            };
            pct(bdc::footprint(&values).exponent_ratio())
        };
        t.row(vec![
            models::display_name(&model).into(),
            footprint(TensorKind::Activation, false),
            footprint(TensorKind::Weight, false),
            footprint(TensorKind::Gradient, false),
            footprint(TensorKind::Activation, true),
        ]);
    }
    format!(
        "Fig. 10 — Normalized exponent footprint after BDC (lower is better)\n{}",
        t.render()
    )
}

/// Fig. 11: iso-compute-area performance and core energy efficiency.
pub fn fig11() -> String {
    let model = EnergyModel::paper();
    let mut t = Table::new(vec![
        "model".into(),
        "perf (zero terms)".into(),
        "perf (BDC+zero)".into(),
        "perf (total)".into(),
        "compute-only".into(),
        "core energy eff".into(),
    ]);
    let mut geo: [f64; 5] = [1.0; 5];
    let set = model_set();
    for name in &set {
        let bl = run_for(name, "baseline");
        let zero = run_for(name, "zero");
        let bdc = run_for(name, "bdc");
        let full = run_for(name, "full");
        let perf = |fp: &RunResult| bl.cycles() as f64 / fp.cycles().max(1) as f64;
        let compute = bl.compute_cycles() as f64 / full.compute_cycles().max(1) as f64;
        let eff = fpraker_sim::energy_efficiency(&full, &bl, &model, true);
        let vals = [perf(&zero), perf(&bdc), perf(&full), compute, eff];
        for (g, v) in geo.iter_mut().zip(vals) {
            *g *= v;
        }
        t.row(vec![
            models::display_name(name).into(),
            ratio(vals[0]),
            ratio(vals[1]),
            ratio(vals[2]),
            ratio(vals[3]),
            ratio(vals[4]),
        ]);
    }
    let n = set.len().max(1) as f64;
    t.row(vec![
        "Geomean".into(),
        ratio(geo[0].powf(1.0 / n)),
        ratio(geo[1].powf(1.0 / n)),
        ratio(geo[2].powf(1.0 / n)),
        ratio(geo[3].powf(1.0 / n)),
        ratio(geo[4].powf(1.0 / n)),
    ]);
    format!(
        "Fig. 11 — Iso-compute-area FPRaker vs baseline (36 vs 8 tiles)\n{}",
        t.render()
    )
}

/// Fig. 12: energy breakdown.
pub fn fig12() -> String {
    let model = EnergyModel::paper();
    let mut t = Table::new(vec![
        "model".into(),
        "machine".into(),
        "compute".into(),
        "control".into(),
        "accum".into(),
        "on-chip".into(),
        "off-chip".into(),
        "total rel".into(),
    ]);
    for name in model_set() {
        let full = run_for(&name, "full");
        let bl = run_for(&name, "baseline");
        let ef = full.energy(&model);
        let eb = bl.energy(&model);
        for (mach, e, total_rel) in [
            ("FPRaker", &ef, ef.total_pj() / eb.total_pj()),
            ("Baseline", &eb, 1.0),
        ] {
            let f = e.fractions();
            t.row(vec![
                models::display_name(&name).into(),
                mach.into(),
                pct(f[0]),
                pct(f[1]),
                pct(f[2]),
                pct(f[3]),
                pct(f[4]),
                ratio(total_rel),
            ]);
        }
    }
    format!(
        "Fig. 12 — Energy breakdown (fractions of each machine's total)\n{}",
        t.render()
    )
}

/// Fig. 13: breakdown of skipped terms (zero vs out-of-bounds).
pub fn fig13() -> String {
    let mut t = Table::new(vec![
        "model".into(),
        "skipped".into(),
        "zero share".into(),
        "OB share".into(),
    ]);
    for name in model_set() {
        let full = run_for(&name, "full");
        let ts = full.stats().terms;
        t.row(vec![
            models::display_name(&name).into(),
            pct(ts.skipped_fraction()),
            pct(ts.zero_share_of_skipped()),
            pct(1.0 - ts.zero_share_of_skipped()),
        ]);
    }
    format!("Fig. 13 — Breakdown of skipped terms\n{}", t.render())
}

/// Fig. 14: speedup per training phase.
pub fn fig14() -> String {
    let mut t = Table::new(vec![
        "model".into(),
        "AxG".into(),
        "GxW".into(),
        "AxW".into(),
    ]);
    for name in model_set() {
        let full = run_for(&name, "full");
        let bl = run_for(&name, "baseline");
        let f = full.cycles_by_phase();
        let b = bl.cycles_by_phase();
        let sp = |k: &str| {
            let fc = *f.get(k).unwrap_or(&0);
            let bc = *b.get(k).unwrap_or(&0);
            if fc == 0 {
                "-".to_string()
            } else {
                ratio(bc as f64 / fc as f64)
            }
        };
        t.row(vec![
            models::display_name(&name).into(),
            sp("AxG"),
            sp("GxW"),
            sp("AxW"),
        ]);
    }
    format!("Fig. 14 — Speedup per training phase\n{}", t.render())
}

/// Fig. 15: lane-cycle breakdown.
pub fn fig15() -> String {
    let mut t = Table::new(vec![
        "model".into(),
        "useful".into(),
        "no term".into(),
        "shift range".into(),
        "inter-PE".into(),
        "exponent".into(),
    ]);
    for name in model_set() {
        let full = run_for(&name, "full");
        let f = full.stats().lane_cycles.fractions();
        t.row(vec![
            models::display_name(&name).into(),
            pct(f[0]),
            pct(f[1]),
            pct(f[2]),
            pct(f[3]),
            pct(f[4]),
        ]);
    }
    format!(
        "Fig. 15 — Where cycles go (lane-cycle attribution)\n{}",
        t.render()
    )
}

/// Fig. 16: effect of out-of-bounds skipping on synchronization overhead.
pub fn fig16() -> String {
    let mut t = Table::new(vec![
        "model".into(),
        "sync overhead (OBS)".into(),
        "sync overhead (no OBS)".into(),
        "reduction".into(),
    ]);
    for name in model_set() {
        let with = run_for(&name, "full");
        let without = run_for(&name, "bdc"); // same config, OB skip off
        let sync = |r: &RunResult| {
            let f = r.stats().lane_cycles;
            (f.no_term + f.shift_range + f.inter_pe + f.exponent) as f64 / f.total().max(1) as f64
        };
        let (s_with, s_without) = (sync(&with), sync(&without));
        t.row(vec![
            models::display_name(&name).into(),
            pct(s_with),
            pct(s_without),
            pct(1.0 - s_with / s_without.max(f64::MIN_POSITIVE)),
        ]);
    }
    format!(
        "Fig. 16 — Synchronization overhead with/without OB skipping\n{}",
        t.render()
    )
}

fn fig17_workload(classes: usize, seed: u64) -> Workload {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut net = Sequential::new("fig17-cnn");
    net.push(Conv2d::new(
        "conv1",
        fpraker_tensor::ConvGeom {
            in_channels: 3,
            out_channels: 8,
            kernel: 3,
            stride: 1,
            pad: 1,
        },
        &mut rng,
    ));
    net.push(Relu::new("relu1"));
    net.push(MaxPool2d::new("pool"));
    net.push(Flatten::new("flat"));
    net.push(Linear::new("fc", 8 * 4 * 4, classes, &mut rng));
    let data = data::synth_images(40, classes, 3, 8, 0.3, seed + 1);
    Workload::new("fig17-cnn", net, data, 8, Sgd::new(0.05).with_momentum(0.9))
}

/// Trains one fig17 workload under the given arithmetic and returns its
/// per-epoch accuracy curve. Self-contained (builds its own workload and
/// training engine) so the three arithmetic modes can run concurrently.
fn fig17_curve(classes: usize, arith: Arithmetic, epochs: usize) -> Vec<f64> {
    let mut w = fig17_workload(classes, 0xC1FA);
    let mut e = Engine::new(arith);
    let mut curve = Vec::new();
    for epoch in 0..epochs {
        let _ = w.train_epoch(&mut e, epoch);
        curve.push(w.eval_accuracy(&mut e));
    }
    curve
}

/// Fig. 17: end-to-end training accuracy under native f32, bit-parallel
/// bfloat16 and FPRaker-emulated arithmetic ("SynthCIFAR" substitutes for
/// CIFAR-10/100 — no datasets offline).
///
/// The three arithmetic modes are independent end-to-end training runs —
/// the wall-clock bulk of `reproduce` — so they share the same parallelism
/// budget as the simulation engine: on a multi-core machine they train
/// concurrently (results are deterministic either way; each run is
/// self-contained and seeded), on one core they run in sequence.
pub fn fig17() -> String {
    let mut out =
        String::from("Fig. 17 — Training accuracy: FPRaker arithmetic vs baselines (SynthCIFAR)\n");
    for (label, classes) in [
        ("SynthCIFAR-10", 10usize),
        ("SynthCIFAR-100 (20-class)", 20),
    ] {
        let mut t = Table::new(vec![
            "epoch".into(),
            "Native_FP32".into(),
            "Baseline_BF16".into(),
            "FPRaker_BF16".into(),
        ]);
        let epochs = 8;
        let arithmetics = [
            Arithmetic::F32,
            Arithmetic::Bf16Baseline,
            Arithmetic::FpRaker(PeConfig::paper()),
        ];
        let budget = sim_engine().resolved_threads().min(arithmetics.len());
        let curves: Vec<Vec<f64>> = if budget > 1 {
            // Waves of at most `budget` concurrent training runs, so fig17
            // never oversubscribes the engine's worker budget (3 runs on a
            // 2-core budget train 2-then-1, not 3 at once).
            std::thread::scope(|scope| {
                let mut curves = Vec::new();
                for wave in arithmetics.chunks(budget) {
                    let handles: Vec<_> = wave
                        .iter()
                        .map(|&arith| scope.spawn(move || fig17_curve(classes, arith, epochs)))
                        .collect();
                    curves.extend(
                        handles
                            .into_iter()
                            .map(|h| h.join().expect("fig17 training run panicked")),
                    );
                }
                curves
            })
        } else {
            arithmetics
                .iter()
                .map(|&arith| fig17_curve(classes, arith, epochs))
                .collect()
        };
        #[allow(clippy::needless_range_loop)]
        for epoch in 0..epochs {
            t.row(vec![
                format!("{}", epoch + 1),
                pct(curves[0][epoch]),
                pct(curves[1][epoch]),
                pct(curves[2][epoch]),
            ]);
        }
        out.push_str(&format!("-- {label} --\n{}", t.render()));
        let final_gap = (curves[2][epochs - 1] - curves[1][epochs - 1]).abs();
        out.push_str(&format!(
            "final |FPRaker - BF16 baseline| accuracy gap: {}\n",
            pct(final_gap)
        ));
    }
    out
}

/// Fig. 18: speedup over the course of training.
pub fn fig18() -> String {
    let points = [0u32, 25, 50, 75, 100];
    let mut t = Table::new(
        std::iter::once("model".to_string())
            .chain(points.iter().map(|p| format!("{p}%")))
            .collect(),
    );
    for name in model_set() {
        let traces = traces_for(&name, &points);
        let mut row = vec![models::display_name(&name).to_string()];
        for trace in &traces {
            let fp = sim_engine().run(Machine::FpRaker, trace, &AcceleratorConfig::fpraker_paper());
            let bl = sim_engine().run(
                Machine::Baseline,
                trace,
                &AcceleratorConfig::baseline_paper(),
            );
            row.push(ratio(fpraker_sim::speedup(&fp, &bl)));
        }
        while row.len() < points.len() + 1 {
            row.push("-".into());
        }
        t.row(row);
    }
    format!("Fig. 18 — Speedup over training progress\n{}", t.render())
}

/// Fig. 19: speedup vs tile row count (total PE count held constant).
/// Reported on compute cycles: the geometry moves synchronization costs,
/// which the memory-bound totals of our scaled-down layers would mask.
pub fn fig19() -> String {
    let rows_sweep = [2usize, 4, 8, 16];
    let mut t = Table::new(
        std::iter::once("model".to_string())
            .chain(rows_sweep.iter().map(|r| format!("{r} rows")))
            .collect(),
    );
    for name in model_set() {
        let bl = run_for(&name, "baseline");
        let mut row = vec![models::display_name(&name).to_string()];
        for rows in rows_sweep {
            let fp = run_for(&name, &format!("rows{rows}"));
            row.push(ratio(
                bl.compute_cycles() as f64 / fp.compute_cycles().max(1) as f64,
            ));
        }
        t.row(row);
    }
    format!(
        "Fig. 19 — Compute speedup vs rows per tile (total PEs constant)\n{}",
        t.render()
    )
}

/// Fig. 20: lane-cycle breakdown across the row sweep.
pub fn fig20() -> String {
    let rows_sweep = [2usize, 4, 8, 16];
    let mut t = Table::new(vec![
        "model".into(),
        "rows".into(),
        "useful".into(),
        "no term".into(),
        "shift range".into(),
        "inter-PE".into(),
        "exponent".into(),
    ]);
    for name in model_set() {
        for rows in rows_sweep {
            let fp = run_for(&name, &format!("rows{rows}"));
            let f = fp.stats().lane_cycles.fractions();
            t.row(vec![
                models::display_name(&name).into(),
                rows.to_string(),
                pct(f[0]),
                pct(f[1]),
                pct(f[2]),
                pct(f[3]),
                pct(f[4]),
            ]);
        }
    }
    format!(
        "Fig. 20 — Lane-cycle breakdown vs rows per tile\n{}",
        t.render()
    )
}

/// Per-layer accumulator-width profile for Fig. 21 (the Sakr et al. [61]
/// per-layer mantissa schedule, emulated by depth: early conv layers
/// tolerate narrow accumulators, the classifier needs the full window).
fn theta_profile(trace: &Trace) -> Vec<(String, i32)> {
    let mut layers: Vec<String> = Vec::new();
    for op in &trace.ops {
        if !layers.contains(&op.layer) {
            layers.push(op.layer.clone());
        }
    }
    let n = layers.len().max(1);
    layers
        .into_iter()
        .enumerate()
        .map(|(i, l)| {
            // 6 bits for the first layers, ramping to 12 for the last.
            let theta = 6 + ((6 * i) / (n - 1).max(1)) as i32;
            (l, theta)
        })
        .collect()
}

/// Fig. 21: fixed vs per-layer-profiled accumulator width.
pub fn fig21() -> String {
    let mut t = Table::new(vec![
        "model".into(),
        "cycles (fixed)".into(),
        "cycles (profiled)".into(),
        "speedup".into(),
        "AxW".into(),
        "GxW".into(),
        "AxG".into(),
    ]);
    for name in ["alexnet", "resnet18"] {
        let trace = steady_state_trace(name);
        let fixed = sim_engine().run(
            Machine::FpRaker,
            &trace,
            &AcceleratorConfig::fpraker_paper(),
        );
        let mut cfg = AcceleratorConfig::fpraker_paper();
        cfg.theta_overrides = theta_profile(&trace);
        let profiled = sim_engine().run(Machine::FpRaker, &trace, &cfg);
        // The accumulator width moves *compute*; the paper's layers are
        // compute-bound, so the comparison is on compute cycles.
        let fph = fixed.compute_cycles_by_phase();
        let pph = profiled.compute_cycles_by_phase();
        let phase_speedup = |k: &str| {
            let f = *fph.get(k).unwrap_or(&0) as f64;
            let p = *pph.get(k).unwrap_or(&1) as f64;
            ratio(f / p.max(1.0))
        };
        t.row(vec![
            models::display_name(name).into(),
            fixed.compute_cycles().to_string(),
            profiled.compute_cycles().to_string(),
            ratio(fixed.compute_cycles() as f64 / profiled.compute_cycles().max(1) as f64),
            phase_speedup("AxW"),
            phase_speedup("GxW"),
            phase_speedup("AxG"),
        ]);
    }
    format!(
        "Fig. 21 — Per-layer profiled accumulator width vs fixed (θ sweep, compute cycles)\n{}",
        t.render()
    )
}

/// Section I comparison: the bfloat16 Bit-Pragmatic design the paper
/// rejects — term-serial but with full-width shifters, no OB skipping and
/// no shared exponent blocks, affording only 20 iso-area tiles. The paper
/// measured it 1.72× *slower* than the bit-parallel baseline on average
/// (2.86× worst case), which is what motivated FPRaker's area choices.
pub fn intro_pragmatic() -> String {
    let mut t = Table::new(vec![
        "model".into(),
        "Pragmatic-BF16 vs baseline".into(),
        "FPRaker vs baseline".into(),
    ]);
    let mut geo = [1.0f64; 2];
    let set = model_set();
    for name in &set {
        let trace = steady_state_trace(name);
        let bl = run_for(name, "baseline");
        let fp = run_for(name, "full");
        let pr = sim_engine().run(
            Machine::FpRaker,
            &trace,
            &AcceleratorConfig::pragmatic_paper(),
        );
        let compute = |r: &RunResult| bl.compute_cycles() as f64 / r.compute_cycles().max(1) as f64;
        let vals = [compute(&pr), compute(&fp)];
        geo[0] *= vals[0];
        geo[1] *= vals[1];
        t.row(vec![
            models::display_name(name).into(),
            ratio(vals[0]),
            ratio(vals[1]),
        ]);
    }
    let n = set.len().max(1) as f64;
    t.row(vec![
        "Geomean".into(),
        ratio(geo[0].powf(1.0 / n)),
        ratio(geo[1].powf(1.0 / n)),
    ]);
    format!(
        "Section I — why not Bit-Pragmatic? (compute speedup vs bit-parallel baseline)\n{}\n\
         (paper: the bfloat16 Bit-Pragmatic accelerator is 1.72x slower than the\n\
         baseline on average because its PE is only 2.5x smaller — 20 iso-area\n\
         tiles cannot recover the term-serial throughput loss.)\n",
        t.render()
    )
}

/// Table III: area and power per tile (the embedded synthesis constants).
pub fn table3() -> String {
    let mut t = Table::new(vec![
        "design".into(),
        "PE array [um2]".into(),
        "encoders [um2]".into(),
        "total [um2]".into(),
        "power [mW]".into(),
        "normalized".into(),
    ]);
    for (name, area, power) in [
        ("FPRaker", TileArea::FPRAKER, TilePower::FPRAKER),
        ("Baseline", TileArea::BASELINE, TilePower::BASELINE),
    ] {
        t.row(vec![
            name.into(),
            format!("{:.0}", area.pe_array_um2),
            format!("{:.0}", area.encoders_um2),
            format!("{:.0}", area.total_um2()),
            format!("{:.1}", power.total_mw()),
            format!("{:.2}x", area.total_um2() / TileArea::BASELINE.total_um2()),
        ]);
    }
    format!(
        "Table III — Area and power per tile (constants from the paper's 65nm synthesis)\n{}\n\
         Iso-compute-area: {} baseline tiles -> {} FPRaker tiles (ratio {:.2})\n",
        t.render(),
        8,
        iso_area_fpraker_tiles(8),
        fpraker_tile_ratio()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variants_differ_where_expected() {
        let zero = fp_variant("zero");
        assert!(!zero.tile.pe.ob_skip);
        assert!(!zero.bdc_offchip);
        let bdc = fp_variant("bdc");
        assert!(!bdc.tile.pe.ob_skip);
        assert!(bdc.bdc_offchip);
        let full = fp_variant("full");
        assert!(full.tile.pe.ob_skip && full.bdc_offchip);
    }

    #[test]
    fn table3_contains_paper_constants() {
        let s = table3();
        assert!(s.contains("317068"));
        assert!(s.contains("1421579"));
        assert!(s.contains("36 FPRaker tiles"));
    }

    #[test]
    fn theta_profile_ramps_with_depth() {
        let mut trace = Trace::new("t", 0);
        for i in 0..4 {
            trace.ops.push(fpraker_trace::TraceOp {
                layer: format!("l{i}"),
                phase: fpraker_trace::Phase::AxW,
                m: 1,
                n: 1,
                k: 8,
                a: vec![fpraker_num::Bf16::ONE; 8],
                b: vec![fpraker_num::Bf16::ONE; 8],
                a_kind: TensorKind::Activation,
                b_kind: TensorKind::Weight,
                a_dup: 1.0,
                b_dup: 1.0,
                out_dup: 1.0,
            });
        }
        let prof = theta_profile(&trace);
        assert_eq!(prof.first().unwrap().1, 6);
        assert_eq!(prof.last().unwrap().1, 12);
    }
}
